//! The serving acceptance property: any interleaving of pipelined
//! `fire` / `fire_batch` requests over one connection commits exactly
//! the journal the same sequence produces through in-process calls.
//! The server may batch a burst into `fire_runs` — one instance-lock
//! acquisition and one store append per instance per burst — but it
//! must never reorder one instance's requests or leak one request's
//! failure into another.

use ctr_runtime::SharedRuntime;
use ctr_serve::{Client, Request, Response, ServeOptions, Server};
use proptest::prelude::*;

/// Small spec with branching so random event picks hit eligible,
/// ineligible, and completed states.
const PAY: &str = "workflow pay { graph invoice * (approve + reject) * file; }";
const EVENTS: [&str; 5] = ["invoice", "approve", "reject", "file", "bogus"];
const INSTANCES: usize = 3;

#[derive(Clone, Debug)]
enum Op {
    Fire(usize, usize),
    FireBatch(usize, Vec<usize>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0..INSTANCES), (0..EVENTS.len())).prop_map(|(slot, e)| Op::Fire(slot, e)),
        (
            (0..INSTANCES),
            proptest::collection::vec(0..EVENTS.len(), 1..4)
        )
            .prop_map(|(slot, events)| Op::FireBatch(slot, events)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipelined_wire_bursts_commit_the_in_process_journal(
        ops in proptest::collection::vec(op_strategy(), 1..24),
    ) {
        // Served side: one connection, every op pipelined into a
        // single flush so the server sees (up to) one big burst.
        let served = SharedRuntime::new();
        let server =
            Server::bind(served.clone(), "127.0.0.1:0", ServeOptions::default()).unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());

        let mut client = Client::connect(addr).unwrap();
        client.deploy(PAY).unwrap();
        let wire_ids: Vec<u64> = (0..INSTANCES).map(|_| client.start("pay").unwrap()).collect();

        // In-process oracle: the same sequence, one call at a time.
        let local = SharedRuntime::new();
        local.deploy_source(PAY).unwrap();
        let local_ids: Vec<u64> = (0..INSTANCES).map(|_| local.start("pay").unwrap()).collect();

        for op in &ops {
            match op {
                Op::Fire(slot, e) => client.send(&Request::Fire {
                    instance: wire_ids[*slot],
                    event: EVENTS[*e].to_owned(),
                }),
                Op::FireBatch(slot, events) => client.send(&Request::FireBatch {
                    instance: wire_ids[*slot],
                    events: events.iter().map(|e| EVENTS[*e].to_owned()).collect(),
                }),
            }
        }
        client.flush().unwrap();
        let responses: Vec<Response> = ops.iter().map(|_| client.recv().unwrap()).collect();

        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Fire(slot, e) => {
                    let oracle = local.fire(local_ids[*slot], EVENTS[*e]);
                    match (&responses[i], oracle) {
                        (Response::Status(_), Ok(_)) => {}
                        (Response::Error(_), Err(_)) => {}
                        (wire, oracle) => {
                            prop_assert!(false, "op {i} diverged: wire {wire:?} vs {oracle:?}")
                        }
                    }
                }
                Op::FireBatch(slot, events) => {
                    let names: Vec<&str> = events.iter().map(|e| EVENTS[*e]).collect();
                    let oracle = local.fire_batch(local_ids[*slot], &names).unwrap();
                    match &responses[i] {
                        Response::Outcomes(wire) => {
                            prop_assert_eq!(wire.len(), oracle.len(), "op {}", i);
                            for (w, o) in wire.iter().zip(&oracle) {
                                let same = matches!(
                                    (w, o),
                                    (
                                        ctr_serve::WireOutcome::Fired(_),
                                        ctr_runtime::FireOutcome::Fired(_)
                                    ) | (
                                        ctr_serve::WireOutcome::Rejected(_),
                                        ctr_runtime::FireOutcome::Rejected(_)
                                    ) | (
                                        ctr_serve::WireOutcome::Skipped,
                                        ctr_runtime::FireOutcome::Skipped
                                    )
                                );
                                prop_assert!(same, "op {} outcome diverged: {:?} vs {:?}", i, w, o);
                            }
                        }
                        other => prop_assert!(false, "op {i}: expected Outcomes, got {other:?}"),
                    }
                }
            }
        }

        // The committed state is identical, instance by instance.
        for (wire_id, local_id) in wire_ids.iter().zip(&local_ids) {
            prop_assert_eq!(
                served.journal(*wire_id).unwrap(),
                local.journal(*local_id).unwrap()
            );
        }
        prop_assert_eq!(served.snapshot(), local.snapshot());

        handle.shutdown();
        join.join().unwrap().unwrap();
    }
}
