//! Integration tests crossing the parser, the workflow pipeline, and the
//! state-aware execution engine: transition conditions resolved against
//! real database states, oracles mutating state, and the §7 caveat that
//! compilation is sound-but-not-complete for condition-bearing graphs.

use ctr::sym;
use ctr::term::{Atom, Term};
use ctr_engine::{Engine, ExecOptions};
use ctr_parser::{parse_goal, parse_spec};
use ctr_state::{Database, StandardOracle};

/// Conditions choose the branch at run time; the same compiled workflow
/// behaves differently per state.
#[test]
fn conditions_select_branches_per_state() {
    let spec = parse_spec(
        r"
        workflow claims {
            graph file_claim * ((auto_approve? * pay) + (manual? * review * pay)) * close;
        }
        ",
    );
    // `auto_approve?` is not valid syntax — conditions are plain atoms.
    assert!(spec.is_err());

    let spec = parse_spec(
        r"
        workflow claims {
            graph file_claim * ((small_claim * pay) + (!small_claim * review * pay)) * close;
        }
        ",
    )
    .unwrap();
    let compiled = spec.compile().unwrap();
    assert!(compiled.is_consistent());
    assert!(
        compiled.has_conditions,
        "negated query atoms count as conditions"
    );

    let engine = Engine::new();

    let mut small = Database::new();
    small.insert_fact("small_claim");
    let execs = engine.executions(&compiled.goal, &small).unwrap();
    assert_eq!(execs.len(), 1);
    assert_eq!(
        execs[0].event_names(),
        vec![sym("file_claim"), sym("pay"), sym("close")]
    );

    // The relation must be declared for the positive atom to resolve as a
    // query — an undeclared name is a significant event (assumption (2)).
    let mut large = Database::new();
    large.declare("small_claim");
    let execs = engine.executions(&compiled.goal, &large).unwrap();
    assert_eq!(execs.len(), 1);
    assert_eq!(
        execs[0].event_names(),
        vec![sym("file_claim"), sym("review"), sym("pay"), sym("close")]
    );
}

/// The §7 soundness gap, demonstrated: compilation says "consistent", but
/// a specific state blocks every execution; the engine resolves it.
#[test]
fn soundness_gap_resolved_by_execution() {
    let goal = parse_goal("start * approved * finish").unwrap();
    let compiled = ctr::analysis::compile(&goal, &[]).unwrap();
    assert!(
        compiled.is_consistent(),
        "consistent for some condition outcomes"
    );
    // `approved` is only a condition if the schema declares it.
    let mut db = Database::new();
    db.declare("approved");
    let engine = Engine::new();
    assert!(!engine.is_executable(&compiled.goal, &db).unwrap());
    db.insert_fact("approved");
    assert!(engine.is_executable(&compiled.goal, &db).unwrap());
}

/// Oracles and conditions interact: an update enables a later condition.
#[test]
fn updates_enable_downstream_conditions() {
    let goal = parse_goal("ins_approved(claim9) * approved(claim9) * pay").unwrap();
    let engine = Engine::with_oracle(Box::new(StandardOracle::new()));
    let execs = engine.executions(&goal, &Database::new()).unwrap();
    assert_eq!(execs.len(), 1);
    assert!(execs[0]
        .db
        .contains(sym("approved"), &[Term::constant("claim9")]));
}

/// Variables flow from queries into updates across a parsed goal, and
/// answer bindings surface in the execution.
#[test]
fn parsed_variables_bind_across_atoms() {
    let goal = parse_goal("pending(C) * ins_done(C) * notify").unwrap();
    let mut db = Database::new();
    db.insert("pending", vec![Term::constant("c1")]);
    db.insert("pending", vec![Term::constant("c2")]);
    let engine = Engine::with_oracle(Box::new(StandardOracle::new()));
    let execs = engine.executions(&goal, &db).unwrap();
    assert_eq!(execs.len(), 2, "one execution per pending claim");
    for e in &execs {
        assert_eq!(e.bindings.len(), 1);
        let (_, term) = &e.bindings[0];
        assert!(e.db.contains(sym("done"), std::slice::from_ref(term)));
    }
}

/// A full spec executed end to end: trigger action runs only when its
/// condition holds in the database.
#[test]
fn triggers_with_conditions_execute_against_state() {
    let spec = parse_spec(
        r"
        workflow shipping {
            graph pack * ship;
            trigger on pack if fragile do add_padding;
        }
        ",
    )
    .unwrap();
    let compiled = spec.compile().unwrap();
    let engine = Engine::new();

    let mut db = Database::new();
    db.insert_fact("fragile");
    let execs = engine.executions(&compiled.goal, &db).unwrap();
    assert_eq!(
        execs[0].event_names(),
        vec![sym("pack"), sym("add_padding"), sym("ship")]
    );

    let mut not_fragile = Database::new();
    not_fragile.declare("fragile");
    let execs = engine.executions(&compiled.goal, &not_fragile).unwrap();
    assert_eq!(execs[0].event_names(), vec![sym("pack"), sym("ship")]);
}

/// Bounded recursion (§7 loops) through the engine, with a state-based
/// termination condition: retry until the upload succeeds.
#[test]
fn recursive_retry_loop_with_state_condition() {
    let mut oracle = StandardOracle::new();
    // The third attempt succeeds: `attempt` counts via inserted tuples.
    oracle.register(
        "try_upload",
        Box::new(|_, db| {
            let n = db.cardinality(sym("attempts")) as i64;
            vec![vec![ctr_state::Change::Insert {
                rel: sym("attempts"),
                tuple: vec![Term::Int(n)],
            }]]
        }),
    );
    let mut engine = Engine::with_oracle(Box::new(oracle));
    engine.rules.allow_recursion();
    engine
        .rules
        .define(
            "upload_loop",
            parse_goal("try_upload * ((attempts(2) * done) + (!attempts(2) * upload_loop))")
                .unwrap(),
        )
        .unwrap();
    engine.set_options(ExecOptions {
        max_solutions: 1,
        max_steps: 100_000,
        max_depth: 16,
        ..Default::default()
    });

    let execs = engine
        .executions(&ctr::Goal::atom("upload_loop"), &Database::new())
        .unwrap();
    assert_eq!(execs.len(), 1);
    let uploads = execs[0]
        .events
        .iter()
        .filter(|a| a.pred == sym("try_upload"))
        .count();
    assert_eq!(uploads, 3, "two failures then success");
    assert!(execs[0].events.iter().any(|a| a.pred == sym("done")));
}

/// Isolation is honored when updates race: ⊙ makes check-then-set atomic.
#[test]
fn isolation_makes_check_then_set_atomic() {
    use ctr::goal::{conc, isolated, seq, Goal};
    // Two concurrent withdrawals, each: check funds available, then take
    // them. Without ⊙ both can pass the check first; with ⊙ one runs
    // entirely before the other.
    let withdraw = |tag: &str| {
        seq(vec![
            Goal::Atom(Atom::new("funds", vec![Term::constant("x")])),
            Goal::Atom(Atom::new("del_funds", vec![Term::constant("x")])),
            Goal::atom(format!("paid_{tag}")),
        ])
    };
    let engine = Engine::with_oracle(Box::new(StandardOracle::new()));
    let mut db = Database::new();
    db.insert("funds", vec![Term::constant("x")]);

    // Unisolated: the double-spend interleaving exists (both checks pass
    // before either delete — `del_` is a no-op on a missing tuple, arc
    // ⟨s,s⟩, so both branches "succeed").
    let racy = conc(vec![withdraw("a"), withdraw("b")]);
    let execs = engine.executions(&racy, &db).unwrap();
    assert!(
        execs
            .iter()
            .any(|e| e.event_names().contains(&sym("paid_a"))
                && e.event_names().contains(&sym("paid_b"))),
        "the race is observable without isolation"
    );

    // Isolated: the second transaction always sees the empty funds
    // relation and fails its check — no execution pays both.
    let atomic = conc(vec![isolated(withdraw("a")), isolated(withdraw("b"))]);
    let execs = engine.executions(&atomic, &db).unwrap();
    assert!(
        execs.is_empty(),
        "one withdrawal empties funds; the other's check fails"
    );
}
