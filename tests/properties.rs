//! Structural property tests: invariants the transformations must
//! preserve, and round-trips through the textual syntax.

use ctr::apply::{apply, ChannelAlloc};
use ctr::constraints::Constraint;
use ctr::excise::excise;
use ctr::gen::{random_constraints, random_goal, GoalShape};
use ctr::goal::Goal;
use ctr::unique::is_unique_event;
use ctr_parser::{parse_constraint, parse_goal};
use proptest::prelude::*;

fn shape() -> GoalShape {
    GoalShape {
        depth: 4,
        width: 3,
        or_bias: 0.35,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Definition 5.1/5.3/5.5 note that Apply preserves the unique-event
    /// property — required for composing constraint applications.
    #[test]
    fn apply_preserves_unique_event(seed in 0u64..10_000, cseed in 0u64..10_000, n in 1usize..4) {
        let (goal, events) = random_goal(seed, shape(), "u");
        prop_assume!(events.len() >= 2);
        let constraints = random_constraints(cseed, &events, n);
        let applied = apply(&constraints, &goal);
        prop_assert!(is_unique_event(&applied), "apply broke uniqueness on {}", goal);
    }

    /// Excise is idempotent: a second pass finds nothing further.
    #[test]
    fn excise_is_idempotent(seed in 0u64..10_000, cseed in 0u64..10_000) {
        let (goal, events) = random_goal(seed, shape(), "i");
        prop_assume!(events.len() >= 2);
        let constraints = random_constraints(cseed, &events, 2);
        let once = excise(&apply(&constraints, &goal));
        prop_assert_eq!(excise(&once), once.clone());
    }

    /// Simplify is idempotent and preserves size-or-shrinks.
    #[test]
    fn simplify_is_idempotent_and_monotone(seed in 0u64..10_000) {
        let (goal, _) = random_goal(seed, shape(), "m");
        let s = goal.simplify();
        prop_assert_eq!(s.simplify(), s.clone());
        prop_assert!(s.size() <= goal.size());
    }

    /// The textual syntax round-trips: Display output re-parses to the
    /// same goal.
    #[test]
    fn goal_display_round_trips(seed in 0u64..10_000) {
        let (goal, _) = random_goal(seed, shape(), "rt");
        let text = goal.to_string();
        let reparsed = parse_goal(&text).unwrap();
        prop_assert_eq!(reparsed, goal, "text was `{}`", text);
    }

    /// Compiled goals (with channels) round-trip exactly: send/receive
    /// re-parse to the channel primitives.
    #[test]
    fn compiled_goal_display_round_trips(seed in 0u64..10_000, cseed in 0u64..10_000) {
        let (goal, events) = random_goal(seed, shape(), "rc");
        prop_assume!(events.len() >= 2);
        let constraints = random_constraints(cseed, &events, 2);
        let compiled = excise(&apply(&constraints, &goal));
        prop_assume!(!compiled.is_nopath());
        let text = compiled.to_string();
        let reparsed = parse_goal(&text).unwrap();
        prop_assert_eq!(reparsed, compiled, "text was `{}`", text);
    }

    /// Constraint Display output re-parses to a constraint with the same
    /// normal form.
    #[test]
    fn constraint_display_round_trips(cseed in 0u64..10_000, n in 1usize..3) {
        let events: Vec<ctr::Symbol> = (0..6).map(|i| ctr::sym(&format!("ev{i}"))).collect();
        for c in random_constraints(cseed, &events, n) {
            let text = c.to_string();
            let reparsed = parse_constraint(&text).unwrap();
            prop_assert_eq!(reparsed.normalize(), c.normalize(), "text was `{}`", text);
        }
    }

    /// Channel freshness: compiling never reuses a channel already in the
    /// goal, and distinct order constraints get distinct channels.
    #[test]
    fn channels_stay_fresh(seed in 0u64..10_000) {
        let (goal, events) = random_goal(seed, shape(), "ch");
        prop_assume!(events.len() >= 4);
        let c1 = Constraint::order(events[0], events[1]);
        let c2 = Constraint::order(events[2], events[3]);
        let mut alloc = ChannelAlloc::fresh_for(&goal);
        let step1 = ctr::apply::apply_all(std::slice::from_ref(&c1), &goal, &mut alloc);
        let chans1 = step1.channels();
        let step2 = ctr::apply::apply_all(std::slice::from_ref(&c2), &step1, &mut alloc);
        let chans2 = step2.channels();
        // Channels only accumulate; the new ones are disjoint from old.
        for c in chans2.difference(&chans1) {
            prop_assert!(!chans1.contains(c));
        }
    }

    /// The unique-event checker agrees with a brute-force trace check on
    /// small goals: no event occurs twice in any enumerated trace.
    #[test]
    fn unique_event_check_is_sound(seed in 0u64..10_000) {
        let (goal, _) = random_goal(seed, GoalShape { depth: 3, width: 2, or_bias: 0.4 }, "q");
        prop_assume!(is_unique_event(&goal));
        if let Ok(traces) = ctr::semantics::event_traces(&goal, 20_000) {
            for t in traces {
                let mut seen = std::collections::BTreeSet::new();
                for e in t {
                    prop_assert!(seen.insert(e), "event repeated in a trace of {}", goal);
                }
            }
        }
    }

    /// The parallel compile path is a pure performance variant: for any
    /// generated workload it produces the exact same `Compiled` output as
    /// the sequential reference — same goal (hence same deterministic
    /// channel numbering), same knot diagnostics, same flags.
    #[test]
    fn parallel_compile_matches_sequential(seed in 0u64..10_000, cseed in 0u64..10_000, n in 1usize..5) {
        use ctr::apply::Parallelism;
        let (goal, events) = random_goal(seed, shape(), "par");
        prop_assume!(events.len() >= 2);
        let constraints = random_constraints(cseed, &events, n);
        let sequential = ctr::analysis::compile_unchecked_with(&goal, &constraints, Parallelism::Never);
        let parallel = ctr::analysis::compile_unchecked_with(&goal, &constraints, Parallelism::Always);
        prop_assert_eq!(&parallel.goal, &sequential.goal, "goals diverge on {}", goal);
        prop_assert_eq!(parallel.goal.channels(), sequential.goal.channels());
        prop_assert_eq!(parallel.knots.len(), sequential.knots.len());
        prop_assert_eq!(parallel.applied_size, sequential.applied_size);
        prop_assert_eq!(parallel.guaranteed_knot_free, sequential.guaranteed_knot_free);
        prop_assert_eq!(parallel.has_conditions, sequential.has_conditions);
        // Both are trace-equivalent to each other on small outputs (they
        // are structurally equal, so this exercises the checker cheaply).
        if sequential.goal.size() <= 60 {
            if let Ok(eq) = ctr::semantics::equivalent(&parallel.goal, &sequential.goal, 20_000) {
                prop_assert!(eq);
            }
        }
    }

    /// Scheduling from a compiled program never deadlocks when Excise
    /// guaranteed knot-freedom.
    #[test]
    fn excised_programs_never_deadlock(seed in 0u64..10_000, cseed in 0u64..10_000, n in 1usize..4) {
        let (goal, events) = random_goal(seed, shape(), "dl");
        prop_assume!(events.len() >= 2);
        let constraints = random_constraints(cseed, &events, n);
        let result = ctr::excise::excise_with_diagnostics(&apply(&constraints, &goal));
        prop_assume!(!result.goal.is_nopath());
        prop_assume!(result.guaranteed_knot_free);
        let program = ctr_engine::Program::compile(&result.goal).unwrap();
        // Drive 8 random-ish schedules by rotating the eligible pick.
        for salt in 0..8usize {
            let mut s = ctr_engine::Scheduler::new(&program);
            let mut step = 0usize;
            while !s.is_complete() {
                let eligible = s.eligible();
                prop_assert!(!eligible.is_empty(), "deadlock on {} (salt {})", result.goal, salt);
                let pick = eligible[(step * 7 + salt) % eligible.len()];
                s.fire(pick.node);
                step += 1;
                prop_assert!(step < 10_000, "runaway schedule");
            }
        }
    }

    /// The scheduler's incrementally maintained frontier is
    /// observationally identical — same set, same order, same
    /// observability flags — to the from-scratch recursive walk retained
    /// as `eligible_reference`, at every stage of random schedules over
    /// constrained corpus programs, including deadlocked ones.
    #[test]
    fn incremental_frontier_matches_recursive_oracle(
        seed in 0u64..10_000,
        cseed in 0u64..10_000,
        decisions in 0u64..u64::MAX,
    ) {
        let (goal, events) = random_goal(seed, shape(), "fr");
        prop_assume!(events.len() >= 2);
        let constraints = random_constraints(cseed, &events, 2);
        let compiled = excise(&apply(&constraints, &goal));
        prop_assume!(!compiled.is_nopath());
        let program = ctr_engine::Program::compile(&compiled).unwrap();
        let mut s = ctr_engine::Scheduler::new(&program);
        let mut rng = decisions;
        loop {
            let reference = s.eligible_reference();
            prop_assert_eq!(
                s.eligible(),
                reference.as_slice(),
                "frontier diverged from recursive walk on {}", compiled
            );
            prop_assert_eq!(
                s.is_deadlocked(),
                !s.is_complete() && reference.is_empty()
            );
            if s.is_complete() || s.eligible().is_empty() {
                break;
            }
            let pick = s.eligible()[(rng % s.eligible().len() as u64) as usize];
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s.fire(pick.node);
        }
    }
}

/// Non-proptest structural checks that complement the random ones.
#[test]
fn or_idempotence_is_observable() {
    let a = Goal::atom("a");
    let dup = ctr::goal::or(vec![a.clone(), a.clone(), Goal::atom("b"), a.clone()]);
    assert_eq!(dup, ctr::goal::or(vec![a, Goal::atom("b")]));
}

#[test]
fn channel_alloc_is_monotone() {
    let mut alloc = ChannelAlloc::new();
    let a = alloc.fresh();
    let b = alloc.fresh();
    assert!(b.0 > a.0);
}
