//! Property-based tests of the paper's central equivalences, with the
//! trace-semantics oracle as ground truth.
//!
//! The key equations under test:
//!
//! * Propositions 5.2/5.4/5.6: `Apply(σ, T) ≡ T ∧ σ` — the traces of the
//!   compiled goal are exactly the traces of `T` satisfying `σ`.
//! * `Excise` preserves trace semantics exactly (it only removes
//!   unexecutable structure).
//! * The SLD interpreter, the compiled scheduler, and the model-theoretic
//!   trace enumeration all denote the same execution sets.
//! * The passive baselines accept exactly the satisfying traces.
//!
//! Random inputs come from `ctr::gen` (unique-event by construction),
//! driven by proptest-chosen seeds; oversized interleaving spaces are
//! skipped via the enumeration budget.

use ctr::analysis::compile;
use ctr::constraints::Constraint;
use ctr::excise::excise;
use ctr::gen::{random_constraints, random_goal, GoalShape};
use ctr::goal::Goal;
use ctr::semantics::{event_traces, satisfies};
use ctr::symbol::Symbol;
use proptest::prelude::*;
use std::collections::BTreeSet;

const BUDGET: usize = 60_000;

fn shape() -> GoalShape {
    GoalShape {
        depth: 3,
        width: 3,
        or_bias: 0.35,
    }
}

/// Trace set of a goal, or `None` if enumeration exceeds the budget.
fn traces(goal: &Goal) -> Option<BTreeSet<Vec<Symbol>>> {
    event_traces(goal, BUDGET).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Apply + Excise computes exactly { t ∈ traces(G) | t ⊨ C }.
    #[test]
    fn compile_equals_filtered_semantics(seed in 0u64..5000, cseed in 0u64..5000, n in 1usize..4) {
        let (goal, events) = random_goal(seed, shape(), "e");
        prop_assume!(events.len() >= 2);
        let constraints = random_constraints(cseed, &events, n);
        let Some(base) = traces(&goal) else { return Ok(()) };

        let compiled = compile(&goal, &constraints).expect("generated goals are unique-event");
        let Some(got) = traces(&compiled.goal) else { return Ok(()) };

        let want: BTreeSet<Vec<Symbol>> = base
            .into_iter()
            .filter(|t| constraints.iter().all(|c| satisfies(t, c)))
            .collect();
        prop_assert_eq!(got, want, "goal {} constraints {:?}", goal, constraints);
    }

    /// Excise never changes the trace semantics, only the structure.
    #[test]
    fn excise_preserves_traces(seed in 0u64..5000, cseed in 0u64..5000) {
        let (goal, events) = random_goal(seed, shape(), "x");
        prop_assume!(events.len() >= 2);
        // Produce channel-laden goals by applying an order constraint
        // without excising.
        let constraints = random_constraints(cseed, &events, 2);
        let applied = ctr::apply::apply(&constraints, &goal);
        let Some(before) = traces(&applied) else { return Ok(()) };
        let excised = excise(&applied);
        let Some(after) = traces(&excised) else { return Ok(()) };
        prop_assert_eq!(before, after, "applied {}", applied);
    }

    /// Consistency decided by compilation agrees with the semantics.
    #[test]
    fn consistency_matches_semantics(seed in 0u64..5000, cseed in 0u64..5000, n in 1usize..5) {
        let (goal, events) = random_goal(seed, shape(), "c");
        prop_assume!(events.len() >= 2);
        let constraints = random_constraints(cseed, &events, n);
        let Some(base) = traces(&goal) else { return Ok(()) };
        let semantically = base.iter().any(|t| constraints.iter().all(|c| satisfies(t, c)));
        let compiled = compile(&goal, &constraints).unwrap();
        prop_assert_eq!(compiled.is_consistent(), semantically);
    }

    /// The verification decision (Theorem 5.9) agrees with checking the
    /// property on every trace, and counterexamples are genuine.
    #[test]
    fn verification_matches_semantics(seed in 0u64..5000, cseed in 0u64..5000) {
        let (goal, events) = random_goal(seed, shape(), "v");
        prop_assume!(events.len() >= 2);
        let property = random_constraints(cseed, &events, 1).pop().expect("one constraint");
        let Some(base) = traces(&goal) else { return Ok(()) };
        let all_satisfy = base.iter().all(|t| satisfies(t, &property));
        match ctr::analysis::verify(&goal, &[], &property).unwrap() {
            ctr::analysis::Verification::Holds => prop_assert!(all_satisfy),
            ctr::analysis::Verification::CounterExample(ce) => {
                prop_assert!(!all_satisfy);
                if let Some(ce_traces) = traces(&ce) {
                    prop_assert!(!ce_traces.is_empty());
                    for t in &ce_traces {
                        prop_assert!(!satisfies(t, &property), "counterexample trace {:?} satisfies {}", t, property);
                    }
                }
            }
        }
    }

    /// Interpreter, scheduler, and semantics agree on propositional goals.
    #[test]
    fn all_three_execution_layers_agree(seed in 0u64..5000) {
        let (goal, _) = random_goal(seed, shape(), "l");
        let Some(semantic) = traces(&goal) else { return Ok(()) };

        let engine = ctr_engine::Engine::new();
        // The exhaustive interpreter explores interleaved configurations,
        // which can exceed its step budget even when the trace set fits
        // ours; skip those goals.
        let Ok(execs) = engine.executions(&goal, &ctr_state::Database::new()) else {
            return Ok(());
        };
        let from_engine: BTreeSet<Vec<Symbol>> =
            execs.iter().map(ctr_engine::Execution::event_names).collect();
        prop_assert_eq!(&from_engine, &semantic, "interpreter vs semantics on {}", goal);

        let program = ctr_engine::Program::compile(&goal).expect("consistent");
        let from_scheduler = ctr_engine::Scheduler::new(&program).enumerate_traces(BUDGET * 4);
        prop_assert_eq!(&from_scheduler, &semantic, "scheduler vs semantics on {}", goal);
    }

    /// The passive validator and the automata product accept exactly the
    /// satisfying traces of real workflow executions.
    #[test]
    fn baselines_agree_with_semantics(seed in 0u64..5000, cseed in 0u64..5000, n in 1usize..4) {
        let (goal, events) = random_goal(seed, shape(), "b");
        prop_assume!(events.len() >= 2);
        let constraints = random_constraints(cseed, &events, n);
        let Some(base) = traces(&goal) else { return Ok(()) };

        let validator = ctr_baselines::PassiveValidator::new(&constraints);
        let product = ctr_baselines::ProductScheduler::new(&constraints);
        for t in base.iter().take(64) {
            let want = constraints.iter().all(|c| satisfies(t, c));
            prop_assert_eq!(validator.validate(t), want, "singh on {:?}", t);
            prop_assert_eq!(product.validate(t), want, "attie on {:?}", t);
        }
    }

    /// Scheduling a compiled workflow always yields a trace satisfying
    /// every constraint — no run-time checking needed (the §4 claim).
    #[test]
    fn scheduled_paths_need_no_validation(seed in 0u64..5000, cseed in 0u64..5000, n in 1usize..4) {
        let (goal, events) = random_goal(seed, shape(), "s");
        prop_assume!(events.len() >= 2);
        let constraints = random_constraints(cseed, &events, n);
        let compiled = compile(&goal, &constraints).unwrap();
        if !compiled.is_consistent() {
            return Ok(());
        }
        let program = ctr_engine::Program::compile(&compiled.goal).unwrap();
        let trace = ctr_engine::Scheduler::new(&program)
            .run_first()
            .expect("excised goals are knot-free");
        let names: Vec<Symbol> = trace.iter().filter_map(ctr::term::Atom::as_event).collect();
        for c in &constraints {
            prop_assert!(satisfies(&names, c), "constraint {} on scheduled {:?}", c, names);
        }
    }

    /// End-to-end: enumerating the compiled program's schedules yields
    /// exactly the constraint-satisfying traces of the original workflow
    /// — the full Apply → Excise → Program → Scheduler pipeline against
    /// the oracle.
    #[test]
    fn scheduler_enumeration_of_compiled_matches_filter(
        seed in 0u64..5000, cseed in 0u64..5000, n in 1usize..4
    ) {
        let (goal, events) = random_goal(seed, shape(), "sc");
        prop_assume!(events.len() >= 2);
        let constraints = random_constraints(cseed, &events, n);
        let Some(base) = traces(&goal) else { return Ok(()) };
        let want: BTreeSet<Vec<Symbol>> = base
            .into_iter()
            .filter(|t| constraints.iter().all(|c| satisfies(t, c)))
            .collect();

        let compiled = compile(&goal, &constraints).unwrap();
        if !compiled.is_consistent() {
            prop_assert!(want.is_empty());
            return Ok(());
        }
        let program = ctr_engine::Program::compile(&compiled.goal).unwrap();
        let got = ctr_engine::Scheduler::new(&program).enumerate_traces(BUDGET * 4);
        prop_assert_eq!(got, want, "goal {} constraints {:?}", goal, constraints);
    }

    /// The activity report (mandatory/optional/dead) agrees with the
    /// trace-level ground truth.
    #[test]
    fn activity_report_matches_semantics(seed in 0u64..5000, cseed in 0u64..5000, n in 1usize..4) {
        let (goal, events) = random_goal(seed, shape(), "ar");
        prop_assume!(events.len() >= 2);
        let constraints = random_constraints(cseed, &events, n);
        let compiled = compile(&goal, &constraints).unwrap();
        let Some(allowed) = traces(&compiled.goal) else { return Ok(()) };
        let report = ctr::analysis::activity_report(&goal, &constraints).unwrap();
        for (event, status) in report {
            let occurs_in = allowed.iter().filter(|t| t.contains(&event)).count();
            let expected = if occurs_in == 0 {
                ctr::analysis::ActivityStatus::Dead
            } else if occurs_in == allowed.len() {
                ctr::analysis::ActivityStatus::Mandatory
            } else {
                ctr::analysis::ActivityStatus::Optional
            };
            prop_assert_eq!(status, expected, "event {} on {}", event, goal);
        }
    }

    /// The declarative formula reading of `G ∧ C` (ctr::formula) agrees
    /// with the compiled pipeline — the headline equivalence restated at
    /// the full-CTR level.
    #[test]
    fn formula_spec_matches_compiled_pipeline(seed in 0u64..5000, cseed in 0u64..5000, n in 1usize..3) {
        let (goal, events) = random_goal(seed, GoalShape { depth: 3, width: 2, or_bias: 0.35 }, "f");
        prop_assume!(events.len() >= 2);
        let constraints = random_constraints(cseed, &events, n);
        let formula = ctr::Formula::spec(goal.clone(), &constraints);
        let Ok(declarative) = formula.executions_of(&goal, BUDGET) else { return Ok(()) };
        let compiled = compile(&goal, &constraints).unwrap();
        let Some(fast) = traces(&compiled.goal) else { return Ok(()) };
        prop_assert_eq!(fast, declarative, "goal {} constraints {:?}", goal, constraints);
    }

    /// Constraint normalization preserves satisfaction (Cor 3.5), and
    /// double negation is involutive (Lemma 3.4).
    #[test]
    fn normalization_preserves_satisfaction(cseed in 0u64..5000, tlen in 0usize..5) {
        let events: Vec<Symbol> = (0..5).map(|i| ctr::sym(&format!("n{i}"))).collect();
        let c = random_constraints(cseed, &events, 1).pop().expect("one constraint");
        let nf = c.normalize();
        let neg_neg = Constraint::not(Constraint::not(c.clone()));

        // Unique-event traces over the pool.
        let mut trace: Vec<Symbol> = events.clone();
        // Deterministic pseudo-shuffle from the seed.
        trace.rotate_left((cseed as usize) % events.len().max(1));
        trace.truncate(tlen);

        prop_assert_eq!(
            satisfies(&trace, &c),
            ctr::semantics::satisfies_normal_form(&trace, &nf),
            "constraint {} trace {:?}", c, trace
        );
        prop_assert_eq!(
            satisfies(&trace, &c),
            satisfies(&trace, &neg_neg),
            "double negation on {}", c
        );
    }
}
