//! Concurrency tests for the sharded `SharedRuntime`: random
//! multi-threaded interleavings checked against the single-threaded
//! replay oracle, and snapshot consistency under write storms.
//!
//! The property being pinned is **linearizability per instance**: however
//! many clients race, every instance's journal must be a legal sequential
//! execution of its workflow (replaying it event by event on a fresh
//! single-threaded `Runtime` accepts every event), and a `snapshot()`
//! taken at any moment must parse and restore.

use ctr_runtime::{Runtime, RuntimeError, SharedRuntime};
use proptest::prelude::*;

const SPEC: &str = r"
    workflow claims {
        graph file * (triage # verify_policy) * (approve_claim + deny) * notify;
        constraint before(triage, verify_policy);
    }
";

/// Every observable event of the spec — threads fire blindly from this
/// universe, so ineligible fires (rejected, journal untouched) interleave
/// with committed ones.
const EVENTS: &[&str] = &[
    "file",
    "triage",
    "verify_policy",
    "approve_claim",
    "deny",
    "notify",
];

/// The splitmix-style step every thread uses for its private RNG.
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Replays `journal` on a fresh single-threaded runtime; every event must
/// be accepted in order (the oracle for per-instance linearizability).
fn replay_oracle(journal: &[String]) -> Result<Runtime, RuntimeError> {
    let mut oracle = Runtime::new();
    oracle.deploy_source(SPEC)?;
    let id = oracle.start("claims")?;
    for event in journal {
        oracle.fire(id, event)?;
    }
    Ok(oracle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// K threads run a random interleaving of
    /// `start`/`fire`/`try_complete`/`snapshot` against one sharded
    /// runtime. Afterwards every journal must replay cleanly on the
    /// single-threaded oracle, and every snapshot taken mid-run (plus the
    /// final one) must restore.
    #[test]
    fn random_interleavings_linearize_per_instance(
        seed in 0u64..1_000_000,
        threads in 2usize..5,
        ops in 30usize..100,
    ) {
        let rt = SharedRuntime::new();
        rt.deploy_source(SPEC).unwrap();
        // A shared pool of instances all threads race on; threads also
        // start fresh instances mid-run.
        let pool: Vec<_> = (0..6).map(|_| rt.start("claims").unwrap()).collect();

        let mid_snapshots = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let rt = rt.clone();
                    let mut ids = pool.clone();
                    let mut rng = seed.wrapping_add(t as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
                    scope.spawn(move || {
                        let mut snaps = Vec::new();
                        for _ in 0..ops {
                            let id = ids[next(&mut rng) as usize % ids.len()];
                            match next(&mut rng) % 10 {
                                // Fire dominates: it is the contended path.
                                0..=5 => {
                                    let event = EVENTS[next(&mut rng) as usize % EVENTS.len()];
                                    // Rejections (NotEligible / AlreadyComplete)
                                    // are part of the contract, not failures.
                                    let _ = rt.fire(id, event);
                                }
                                6 => {
                                    let _ = rt.try_complete(id);
                                }
                                7 => {
                                    let _ = rt.eligible_symbols(id);
                                }
                                8 => {
                                    ids.push(rt.start("claims").unwrap());
                                }
                                _ => snaps.push(rt.snapshot()),
                            }
                        }
                        snaps
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect::<Vec<String>>()
        });

        // Every mid-storm snapshot is internally consistent: it parses,
        // and every journal in it replays.
        for snap in &mid_snapshots {
            prop_assert!(
                Runtime::restore(snap).is_ok(),
                "mid-run snapshot failed to restore:\n{snap}"
            );
        }

        // Per-instance linearizability: each journal the storm produced
        // is a legal sequential execution.
        let final_snap = rt.snapshot();
        let restored = Runtime::restore(&final_snap).unwrap();
        for id in restored.instances() {
            let journal = rt.journal(id).unwrap();
            prop_assert_eq!(&journal, &restored.journal(id).unwrap());
            let oracle = replay_oracle(&journal);
            prop_assert!(
                oracle.is_ok(),
                "journal of instance {} not replayable: {:?}",
                id,
                journal
            );
            // The restored status agrees with the live one (restore
            // re-probes silent completion for `[completed]` lines).
            prop_assert_eq!(rt.status(id).unwrap(), restored.status(id).unwrap());
        }
    }
}

/// `snapshot()` taken mid-storm — while writer threads continuously fire
/// on a fleet — always parses and restores, and the frozen cut never
/// tears an instance (journals in the snapshot are valid prefixes).
#[test]
fn snapshot_mid_storm_parses_and_restores() {
    let rt = SharedRuntime::new();
    rt.deploy_source(SPEC).unwrap();
    let ids: Vec<_> = (0..16).map(|_| rt.start("claims").unwrap()).collect();

    std::thread::scope(|scope| {
        for chunk in ids.chunks(4) {
            let rt = rt.clone();
            scope.spawn(move || {
                for &id in chunk {
                    for event in ["file", "triage", "verify_policy", "approve_claim", "notify"] {
                        rt.fire(id, event).unwrap();
                        std::thread::yield_now();
                    }
                }
            });
        }
        // Storm in progress: every snapshot restores.
        for _ in 0..25 {
            let snap = rt.snapshot();
            let restored =
                Runtime::restore(&snap).expect("snapshot taken mid-storm is internally consistent");
            for id in restored.instances() {
                assert!(restored.journal(id).unwrap().len() <= 5);
            }
            std::thread::yield_now();
        }
    });

    let restored = Runtime::restore(&rt.snapshot()).unwrap();
    for &id in &ids {
        assert!(restored.is_complete(id).unwrap());
        assert_eq!(
            restored.journal(id).unwrap(),
            vec!["file", "triage", "verify_policy", "approve_claim", "notify"]
        );
    }
}

/// Hot polling via `eligible_symbols` allocates no per-name strings and
/// agrees with the `String` variant (which delegates to it).
#[test]
fn eligible_symbols_agrees_with_eligible() {
    let rt = SharedRuntime::new();
    rt.deploy_source(SPEC).unwrap();
    let id = rt.start("claims").unwrap();
    loop {
        let symbols = rt.eligible_symbols(id).unwrap();
        let names = rt.eligible(id).unwrap();
        assert_eq!(
            symbols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
            names
        );
        let Some(first) = names.first() else { break };
        rt.fire(id, first).unwrap();
        if rt.is_complete(id).unwrap() {
            break;
        }
    }
}
