//! Cross-crate integration at the operational layer: specifications flow
//! from text through deployment, instance management, enactment, and
//! simulation, with the passive baselines auditing every produced trace.

use ctr::constraints::Constraint;
use ctr::semantics::satisfies;
use ctr::sym;
use ctr_baselines::{PassiveValidator, ProductScheduler};
use ctr_engine::scheduler::Program;
use ctr_runtime::{simulate, ChoicePolicy, Enactor, Runtime};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const SPEC: &str = r"
    workflow claims {
        graph file * (triage # verify_policy) * (approve_claim + deny) * notify;
        constraint before(triage, verify_policy);
        constraint klein_order(verify_policy, approve_claim);
    }
";

fn constraints() -> Vec<Constraint> {
    vec![
        Constraint::order("triage", "verify_policy"),
        Constraint::klein_order("verify_policy", "approve_claim"),
    ]
}

/// Drive instances through the runtime and audit every journal with the
/// reimplemented related-work validators.
#[test]
fn runtime_journals_satisfy_constraints_per_baselines() {
    let mut rt = Runtime::new();
    rt.deploy_source(SPEC).unwrap();
    let validator = PassiveValidator::new(&constraints());
    let product = ProductScheduler::new(&constraints());

    // Drive a handful of instances with different decision patterns by
    // always firing the k-th eligible event.
    for k in 0..4usize {
        let id = rt.start("claims").unwrap();
        while !rt.is_complete(id).unwrap() {
            let eligible = rt.eligible(id).unwrap();
            if eligible.is_empty() {
                rt.try_complete(id).unwrap();
                continue;
            }
            let pick = eligible[k % eligible.len()].clone();
            rt.fire(id, &pick).unwrap();
        }
        let journal: Vec<ctr::Symbol> = rt.journal(id).unwrap().iter().map(|s| sym(s)).collect();
        assert!(validator.validate(&journal), "instance {k}: {journal:?}");
        assert!(product.validate(&journal), "instance {k}: {journal:?}");
        for c in constraints() {
            assert!(satisfies(&journal, &c));
        }
    }
}

/// Enact the same compiled workflow with real handlers under the random
/// policy; every run's trace satisfies the constraints and runs each
/// executed activity's handler exactly once.
#[test]
fn enactment_respects_compiled_constraints() {
    let spec = ctr_parser::parse_spec(SPEC).unwrap();
    let compiled = spec.compile().unwrap();
    let program = Program::compile(&compiled.goal).unwrap();

    for seed in 0..12u64 {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut enactor = Enactor::new().with_policy(ChoicePolicy::Random(seed));
        for event in [
            "file",
            "triage",
            "verify_policy",
            "approve_claim",
            "deny",
            "notify",
        ] {
            let c = Arc::clone(&counter);
            enactor.register(
                event,
                Box::new(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
            );
        }
        let trace = enactor.run(&program).unwrap();
        let names: Vec<ctr::Symbol> = trace.iter().filter_map(ctr::term::Atom::as_event).collect();
        assert_eq!(
            counter.load(Ordering::SeqCst),
            names.len(),
            "one handler call per event"
        );
        for c in constraints() {
            assert!(satisfies(&names, &c), "seed {seed}: {names:?}");
        }
    }
}

/// Simulation statistics over the same program reflect the compiled
/// constraint structure.
#[test]
fn simulation_reflects_constraint_structure() {
    let spec = ctr_parser::parse_spec(SPEC).unwrap();
    let compiled = spec.compile().unwrap();
    let program = Program::compile(&compiled.goal).unwrap();
    let sim = simulate(&program, 400, 99);
    assert_eq!(sim.completed, 400);
    // The mandatory spine runs every time.
    for e in ["file", "triage", "verify_policy", "notify"] {
        assert_eq!(sim.frequency(sym(e)), 1.0, "{e}");
    }
    // Exactly one decision per run.
    let approve = sim.frequency(sym("approve_claim"));
    let deny = sim.frequency(sym("deny"));
    assert!((approve + deny - 1.0).abs() < f64::EPSILON);
    assert!(approve > 0.0 && deny > 0.0);
}

/// The cached-cursor regression gate: per-fire work must not grow with
/// journal length. 10k incremental fires replay nothing; recovery paths
/// (restore, invalidate) replay the journal exactly once each.
#[test]
fn per_fire_work_is_flat_in_journal_length() {
    let n = 10_000usize;
    let mut rt = Runtime::new();
    rt.deploy_compiled("pipe", ctr::gen::pipeline_workflow(n))
        .unwrap();
    let id = rt.start("pipe").unwrap();
    for i in 0..n {
        rt.fire(id, &format!("t{i}")).unwrap();
    }
    assert!(rt.is_complete(id).unwrap());
    assert_eq!(
        rt.replayed_steps(),
        0,
        "incremental fires must advance the cursor without replaying the journal"
    );

    // Restoring from a snapshot replays each journal entry exactly once.
    let restored = Runtime::restore(&rt.snapshot()).unwrap();
    assert_eq!(restored.replayed_steps(), n as u64);
    assert!(restored.is_complete(id).unwrap());

    // Explicit cache invalidation replays the journal exactly once more.
    let mut rt = restored;
    rt.invalidate(id).unwrap();
    assert_eq!(rt.replayed_steps(), 2 * n as u64);
    assert!(rt.is_complete(id).unwrap());
}

mod cursor_oracle {
    use super::*;
    use proptest::prelude::*;

    fn shape() -> ctr::gen::GoalShape {
        ctr::gen::GoalShape {
            depth: 4,
            width: 3,
            or_bias: 0.35,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Interleaves fire / snapshot+restore / invalidate over random
        /// workflows from the `gen` corpus, asserting at every step that
        /// the cached cursor's eligibility set equals the
        /// replay-from-scratch oracle's (a fresh runtime rebuilt from the
        /// snapshot text). This pins the cache-coherence invariant: the
        /// cursor is always exactly what replaying the journal produces.
        #[test]
        fn cached_cursor_matches_replay_oracle(seed in 0u64..10_000, decisions in 0u64..u64::MAX) {
            let (goal, events) = ctr::gen::random_goal(seed, shape(), "w");
            prop_assume!(!events.is_empty());
            let mut rt = Runtime::new();
            prop_assume!(rt.deploy_compiled("w", goal).is_ok());
            let id = rt.start("w").unwrap();

            let mut rng = decisions;
            for step in 0..64usize {
                let oracle = Runtime::restore(&rt.snapshot()).unwrap();
                prop_assert_eq!(
                    rt.eligible(id).unwrap(),
                    oracle.eligible(id).unwrap(),
                    "step {}: cached cursor diverged from replay", step
                );
                prop_assert_eq!(rt.status(id).unwrap(), oracle.status(id).unwrap());

                let eligible = rt.eligible(id).unwrap();
                if eligible.is_empty() {
                    rt.try_complete(id).unwrap();
                    let oracle = Runtime::restore(&rt.snapshot()).unwrap();
                    prop_assert_eq!(rt.status(id).unwrap(), oracle.status(id).unwrap());
                    break;
                }
                // Exercise each recovery path on a rotating schedule.
                match step % 3 {
                    1 => rt = Runtime::restore(&rt.snapshot()).unwrap(),
                    2 => rt.invalidate(id).unwrap(),
                    _ => {}
                }
                let pick = eligible[(rng % eligible.len() as u64) as usize].clone();
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                rt.fire(id, &pick).unwrap();
            }
        }

        /// Batched firing is bit-identical to individual firing: a
        /// `fire_batch` of random (sometimes ineligible) events produces
        /// the same per-event outcomes, the same journal, and the same
        /// snapshot **bytes** as firing the events one by one — across
        /// restore and invalidate interleavings.
        #[test]
        fn fire_batch_is_bit_identical_to_individual_fires(
            seed in 0u64..10_000,
            decisions in 0u64..u64::MAX,
        ) {
            use ctr_runtime::FireOutcome;
            let (goal, events) = ctr::gen::random_goal(seed, shape(), "b");
            prop_assume!(!events.is_empty());
            let mut batched = Runtime::new();
            prop_assume!(batched.deploy_compiled("w", goal.clone()).is_ok());
            let mut single = Runtime::new();
            single.deploy_compiled("w", goal).unwrap();
            let id = batched.start("w").unwrap();
            single.start("w").unwrap();

            let mut rng = decisions;
            let mut next = move || {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                rng
            };
            for round in 0..16usize {
                // Build a batch of 1–4 events: mostly eligible picks, with
                // a chance of an arbitrary (possibly ineligible) event so
                // rejection and skip paths are exercised.
                let size = (next() % 4 + 1) as usize;
                let mut batch: Vec<String> = Vec::new();
                for _ in 0..size {
                    let eligible = batched.eligible(id).unwrap();
                    let roll = next();
                    if eligible.is_empty() || roll % 5 == 0 {
                        batch.push(events[(roll % events.len() as u64) as usize].as_str().to_owned());
                    } else {
                        batch.push(eligible[(roll % eligible.len() as u64) as usize].clone());
                    }
                }
                // Exercise recovery paths between batches.
                match round % 4 {
                    1 => batched = Runtime::restore(&batched.snapshot()).unwrap(),
                    2 => batched.invalidate(id).unwrap(),
                    _ => {}
                }

                let outcomes = batched.fire_batch(id, &batch).unwrap();
                prop_assert_eq!(outcomes.len(), batch.len());
                // Mirror with individual fires, asserting per-event
                // outcome equivalence and stop-at-first-failure.
                let mut failed = false;
                for (event, outcome) in batch.iter().zip(&outcomes) {
                    if failed {
                        prop_assert_eq!(outcome, &FireOutcome::Skipped);
                        continue;
                    }
                    match single.fire(id, event) {
                        Ok(status) => prop_assert_eq!(outcome, &FireOutcome::Fired(status)),
                        Err(e) => {
                            prop_assert_eq!(outcome, &FireOutcome::Rejected(e));
                            failed = true;
                        }
                    }
                }
                prop_assert_eq!(batched.journal(id).unwrap(), single.journal(id).unwrap());
                prop_assert_eq!(
                    batched.snapshot(), single.snapshot(),
                    "snapshot bytes diverged after round {}", round
                );
                if batched.is_complete(id).unwrap() {
                    break;
                }
            }
        }
    }
}

/// Snapshot mid-enactment state consistency: runtime journals written by
/// a driver thread restore correctly at any point.
#[test]
fn concurrent_drive_and_snapshot() {
    let rt = ctr_runtime::SharedRuntime::new();
    rt.deploy_source(SPEC).unwrap();
    let ids: Vec<_> = (0..6).map(|_| rt.start("claims").unwrap()).collect();
    let drivers: Vec<_> = ids
        .iter()
        .map(|&id| {
            let rt = rt.clone();
            std::thread::spawn(move || {
                while rt.status(id).unwrap() == ctr_runtime::InstanceStatus::Running {
                    let eligible = rt.eligible(id).unwrap();
                    match eligible.first() {
                        Some(e) => {
                            let _ = rt.fire(id, e);
                        }
                        None => {
                            let _ = rt.try_complete(id);
                        }
                    }
                }
            })
        })
        .collect();
    // Interleave snapshots with the drivers.
    for _ in 0..20 {
        let snap = rt.snapshot();
        Runtime::restore(&snap).expect("mid-flight snapshot restores");
    }
    for d in drivers {
        d.join().unwrap();
    }
    let final_rt = Runtime::restore(&rt.snapshot()).unwrap();
    for id in ids {
        assert!(final_rt.is_complete(id).unwrap());
    }
}
