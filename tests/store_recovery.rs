//! Kill-recover property: crash the write-ahead store at a random byte
//! offset inside the last operation's write, recover, and the replayed
//! runtime must byte-match a never-crashed oracle.
//!
//! Every *tail-eligible* operation below replays all-or-nothing under
//! a torn tail, so a tear inside the final operation's bytes
//! invalidates exactly that operation: recovery lands on the state
//! just before it. A tear that removes the whole frame — or no tear at
//! all, when the operation wrote nothing — lands on the state just
//! after it. Both are checked against an oracle [`Runtime`] that ran
//! the corresponding prefix with no store attached.
//!
//! Most operations issue at most one store append (the group commit
//! discipline). [`Op::Start`] on a timed workflow issues two
//! (`TimerArm` write-ahead of `Start`), but any tear through the pair
//! erases the whole start: an arm whose start never landed is an
//! orphan the recovery scan drops. The one genuine exception is
//! [`Op::Advance`], which appends one `TimerFire` per expiry — a tear
//! mid-advance matches neither oracle state, so `Advance` appears only
//! in prefixes, never as the torn final operation; the partial-advance
//! crash gets its own dedicated exactly-once property below instead.

use ctr_runtime::{Runtime, WalStore};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SPECS: [(&str, &str); 3] = [
    (
        "pay",
        "workflow pay { graph invoice * (approve # audit) * archive; }",
    ),
    ("ship", "workflow ship { graph pick * pack * dispatch; }"),
    (
        "timed",
        "workflow timed { graph invoice * approve * archive; \
         after(approve, 30s); deadline(archive, 1h); }",
    ),
];

/// Index of the timed spec — the one whose starts arm timers.
const TIMED: usize = 2;

/// One session operation. Each variant performs at most one store
/// append when applied, which is what makes the torn-tail oracle exact.
#[derive(Clone, Debug)]
enum Op {
    /// Deploy `SPECS[i]` (skipped once deployed).
    Deploy(usize),
    /// Start an instance of `SPECS[i]` (skipped until deployed).
    Start(usize),
    /// Group-commit up to `k` currently-eligible events on the
    /// `slot`-th instance (skipped while no instance exists).
    FireBatch(usize, usize),
    /// Probe the `slot`-th instance for completion.
    Complete(usize),
    /// Cancel the first (tick-name-sorted) pending timer of the
    /// `slot`-th instance (skipped while none is armed).
    CancelTimer(usize),
    /// Advance the fleet clock by `delta` ms, expiring every timer due
    /// on the way. One `TimerFire` append *per expiry* — prefix-only.
    Advance(u64),
    /// Compact the store (durable side only; a no-op on the oracle).
    Checkpoint,
}

/// Applies `op` identically on the durable runtime and the oracle: all
/// choices (which instance, which events) read only deterministic,
/// sorted runtime state, so the two sides stay in lockstep.
fn apply(rt: &mut Runtime, op: &Op, durable: bool) {
    match *op {
        Op::Deploy(i) => {
            let (name, source) = SPECS[i];
            if !rt.workflows().contains(&name.to_owned()) {
                rt.deploy_source(source).expect("deploy");
            }
        }
        Op::Start(i) => {
            let (name, _) = SPECS[i];
            if rt.workflows().contains(&name.to_owned()) {
                rt.start(name).expect("start");
            }
        }
        Op::FireBatch(slot, k) => {
            let ids = rt.instances();
            let Some(&id) = ids.get(slot % ids.len().max(1)) else {
                return;
            };
            let events: Vec<String> = rt
                .eligible(id)
                .unwrap_or_default()
                .into_iter()
                .take(k)
                .collect();
            if !events.is_empty() {
                rt.fire_batch(id, &events).expect("fire_batch");
            }
        }
        Op::Complete(slot) => {
            let ids = rt.instances();
            if let Some(&id) = ids.get(slot % ids.len().max(1)) {
                let _ = rt.try_complete(id);
            }
        }
        Op::CancelTimer(slot) => {
            let ids = rt.instances();
            let Some(&id) = ids.get(slot % ids.len().max(1)) else {
                return;
            };
            let pending = rt.pending_timers(id).expect("pending_timers");
            if let Some((tick, _)) = pending.first() {
                rt.cancel_timer(id, tick).expect("cancel_timer");
            }
        }
        Op::Advance(delta) => {
            let to = rt.clock_ms().saturating_add(delta);
            rt.advance(to).expect("advance");
        }
        Op::Checkpoint => {
            if durable {
                rt.checkpoint().expect("checkpoint");
            }
        }
    }
}

/// Byte length of every `.seg` file under `dir`, keyed by path.
fn seg_sizes(dir: &Path) -> BTreeMap<PathBuf, u64> {
    let mut sizes = BTreeMap::new();
    let Ok(shards) = std::fs::read_dir(dir) else {
        return sizes;
    };
    for shard in shards.flatten() {
        let Ok(entries) = std::fs::read_dir(shard.path()) else {
            continue;
        };
        for entry in entries.flatten() {
            if entry.path().extension().is_some_and(|e| e == "seg") {
                sizes.insert(entry.path(), entry.metadata().map(|m| m.len()).unwrap_or(0));
            }
        }
    }
    sizes
}

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ctr_recovery_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Operations whose replayed effect is all-or-nothing under a torn
/// tail — every variant except the multi-append [`Op::Advance`]. Only
/// these may sit in the final (torn) position.
fn tail_op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..SPECS.len()).prop_map(Op::Deploy),
        (0..SPECS.len()).prop_map(Op::Start),
        ((0..8usize), (1..5usize)).prop_map(|(slot, k)| Op::FireBatch(slot, k)),
        (0..8usize).prop_map(Op::Complete),
        (0..8usize).prop_map(Op::CancelTimer),
        Just(Op::Checkpoint),
    ]
}

/// Everything, including [`Op::Advance`] — for prefix positions and
/// tests that never tear the log mid-operation. Deltas reach past the
/// 30s after-gate often and the 1h deadline over a long prefix.
fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        tail_op_strategy(),
        tail_op_strategy(),
        tail_op_strategy(),
        tail_op_strategy(),
        (1u64..2_000_000).prop_map(Op::Advance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Crash the WAL at a random byte offset inside the final
    /// operation's write; the recovered snapshot byte-matches the
    /// oracle that stopped just before (torn) or just after (untouched)
    /// that operation.
    #[test]
    fn kill_recover_matches_the_never_crashed_oracle(
        prefix in proptest::collection::vec(op_strategy(), 0..15),
        last in tail_op_strategy(),
        tear in 1..4096usize,
    ) {
        let dir = scratch("kill");

        let mut rt = Runtime::with_store(Arc::new(WalStore::open(&dir).unwrap()));
        for op in &prefix {
            apply(&mut rt, op, true);
        }
        let before = seg_sizes(&dir);
        apply(&mut rt, &last, true);
        drop(rt); // the crash: no shutdown hook runs, files stay as-is

        // Tear `1..=written` bytes off the end of whichever segment the
        // final operation extended (checkpoints and no-op finals extend
        // nothing and are left alone).
        let after = seg_sizes(&dir);
        let grown = after
            .iter()
            .find(|(path, len)| before.get(*path).copied().unwrap_or(0) < **len);
        let torn = if let Some((path, &len)) = grown {
            let written = len - before.get(path).copied().unwrap_or(0);
            let cut = len - 1 - (tear as u64 - 1) % written;
            let file = std::fs::OpenOptions::new().write(true).open(path).unwrap();
            file.set_len(cut).unwrap();
            true
        } else {
            false
        };

        let mut oracle = Runtime::new();
        for op in &prefix {
            apply(&mut oracle, op, false);
        }
        if !torn {
            apply(&mut oracle, &last, false);
        }

        let store = Arc::new(WalStore::open(&dir).unwrap());
        let recovered = Runtime::open(store).unwrap();
        prop_assert_eq!(recovered.snapshot(), oracle.snapshot());
        // The snapshot already carries timer lines; assert the armed
        // set through the query API too, so a pending_timers /
        // snapshot divergence cannot hide. The clocks are *not*
        // compared: the recovered clock is the durable TimerFire
        // watermark and legitimately lags an oracle whose advances
        // expired nothing.
        prop_assert_eq!(
            recovered.pending_timer_count(),
            oracle.pending_timer_count()
        );
        for id in oracle.instances() {
            prop_assert_eq!(
                recovered.pending_timers(id).unwrap(),
                oracle.pending_timers(id).unwrap()
            );
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    /// Crash at a random byte offset inside a *coalesced group's*
    /// single write: every record acknowledged before the crash point
    /// survives recovery, and the group's staged records drop only as a
    /// contiguous seq suffix of the stripe — never a gap. (The torn
    /// byte invalidates its own frame and everything after it in the
    /// group's one `write_all`; frames before it are whole and
    /// checksum-clean, so the scan keeps them.)
    #[test]
    fn coalesced_group_tear_drops_only_a_contiguous_seq_suffix(
        acked in 1..6usize,
        group in 2..6usize,
        tear in 0..100_000u64,
    ) {
        use ctr_store::{Durability, Record, Store, WalOptions, WalStore};
        let dir = scratch("grouptear");
        let options = WalOptions {
            shards: 1,
            durability: Durability::Coalesced {
                max_wait: std::time::Duration::from_millis(10),
            },
            ..WalOptions::default()
        };
        let ev = |n: usize| Record::Events {
            instance: 0,
            events: vec![format!("e{n}")],
        };

        // Phase 1: sequential appends, each acknowledged durable before
        // the next — these must survive any later crash.
        let store = WalStore::open_with(&dir, options).unwrap();
        for i in 0..acked {
            store.append(&ev(i)).unwrap();
        }
        let seg = dir.join("shard-00").join("00000000.seg");
        let base = std::fs::metadata(&seg).unwrap().len();

        // Phase 2: concurrent appends riding the commit pipeline — the
        // tear below lands somewhere inside their group write(s).
        let store = Arc::new(store);
        std::thread::scope(|scope| {
            for t in 0..group {
                let store = &store;
                scope.spawn(move || store.append(&ev(acked + t)).unwrap());
            }
        });
        drop(store);

        // Capture the untorn history: the durable order the group's
        // frames actually landed in (concurrent, so not fixed).
        let store = WalStore::open_with(&dir, options).unwrap();
        let full = store.replay().unwrap().records;
        prop_assert_eq!(full.len(), acked + group);
        drop(store);

        // The crash: cut the segment at a random byte at or past the
        // group region's start — at least the final frame tears.
        let len = std::fs::metadata(&seg).unwrap().len();
        let cut = base + tear % (len - base);
        let file = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let store = WalStore::open_with(&dir, options).unwrap();
        let recovered = store.replay().unwrap().records;
        prop_assert!(
            recovered.len() >= acked,
            "an individually acknowledged record was lost: {} < {}",
            recovered.len(), acked
        );
        prop_assert!(
            recovered.len() < acked + group,
            "a torn group write cannot survive whole"
        );
        // Contiguous-prefix survival == contiguous-suffix loss: no
        // recovered record may be reordered or skipped past a hole.
        prop_assert_eq!(&recovered[..], &full[..recovered.len()]);
        drop(store);

        std::fs::remove_dir_all(&dir).ok();
    }

    /// The recovered runtime is live, not just a matching snapshot: it
    /// accepts further work and a second recovery sees that work too.
    #[test]
    fn recovery_composes_with_further_work(
        ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        let dir = scratch("compose");

        let mut rt = Runtime::with_store(Arc::new(WalStore::open(&dir).unwrap()));
        for op in &ops {
            apply(&mut rt, op, true);
        }
        drop(rt);

        let mut recovered = Runtime::open(Arc::new(WalStore::open(&dir).unwrap())).unwrap();
        apply(&mut recovered, &Op::Deploy(0), true);
        apply(&mut recovered, &Op::Start(0), true);
        apply(&mut recovered, &Op::FireBatch(7, 2), true);
        let expected = recovered.snapshot();
        drop(recovered);

        let again = Runtime::open(Arc::new(WalStore::open(&dir).unwrap())).unwrap();
        prop_assert_eq!(again.snapshot(), expected);

        std::fs::remove_dir_all(&dir).ok();
    }

    /// An expiry racing the crash fires exactly once. `advance` appends
    /// one `TimerFire` per expired timer; tearing inside that run of
    /// appends un-fires a suffix of them. Recovery re-arms exactly the
    /// un-fired timers (their `TimerArm` survived inside `Start`, their
    /// `TimerFire` did not), so repeating the advance fires each of
    /// those once — and only those: a tick whose `TimerFire` survived
    /// replays as already-fired and is never re-armed.
    #[test]
    fn expiry_racing_the_crash_fires_exactly_once(
        fleet in 1..5usize,
        pick in 0..64usize,
        tear in 1..4096u64,
    ) {
        let dir = scratch("expiry");
        let (name, source) = SPECS[TIMED];
        let mut rt = Runtime::with_store(Arc::new(WalStore::open(&dir).unwrap()));
        rt.deploy_source(source).expect("deploy");
        let ids: Vec<_> = (0..fleet).map(|_| rt.start(name).expect("start")).collect();

        let before = seg_sizes(&dir);
        let fired = rt.advance(30_000).expect("advance");
        prop_assert_eq!(fired.len(), fleet); // one after-gate each
        drop(rt); // crash mid-durability: files stay as-is

        // Tear inside one of the advance's TimerFire runs. The fleet
        // shards across segments, so several may have grown; cut one.
        let after = seg_sizes(&dir);
        let grown: Vec<_> = after
            .iter()
            .filter(|(path, len)| before.get(*path).copied().unwrap_or(0) < **len)
            .collect();
        prop_assert!(!grown.is_empty());
        let (path, &len) = grown[pick % grown.len()];
        let written = len - before.get(path).copied().unwrap_or(0);
        let cut = len - 1 - (tear - 1) % written;
        let file = std::fs::OpenOptions::new().write(true).open(path).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        // Recover and repeat the advance: the recovered wheel starts
        // behind the restored clock, so every still-armed 30s gate
        // (torn away mid-advance) expires now; every gate whose
        // TimerFire survived is already in its journal and disarmed.
        let mut recovered = Runtime::open(Arc::new(WalStore::open(&dir).unwrap())).unwrap();
        recovered.advance(30_000).expect("advance after recovery");
        let tick = "approve@after30000";
        for &id in &ids {
            let journal = recovered.journal(id).unwrap();
            prop_assert_eq!(
                journal.iter().filter(|e| e.as_str() == tick).count(),
                1,
                "instance {} journal {:?}",
                id,
                journal
            );
            prop_assert!(
                recovered
                    .pending_timers(id)
                    .unwrap()
                    .iter()
                    .all(|(t, _)| t != tick),
                "instance {} still holds the fired gate",
                id
            );
        }

        std::fs::remove_dir_all(&dir).ok();
    }
}
