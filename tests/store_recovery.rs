//! Kill-recover property: crash the write-ahead store at a random byte
//! offset inside the last operation's write, recover, and the replayed
//! runtime must byte-match a never-crashed oracle.
//!
//! Every operation below issues at most one store append (the group
//! commit discipline), so a tear inside the final operation's bytes
//! invalidates exactly that operation's frame: recovery lands on the
//! state just before it. A tear that removes the whole frame — or no
//! tear at all, when the operation wrote nothing — lands on the state
//! just after it. Both are checked against an oracle [`Runtime`] that
//! ran the corresponding prefix with no store attached.

use ctr_runtime::{Runtime, WalStore};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SPECS: [(&str, &str); 2] = [
    (
        "pay",
        "workflow pay { graph invoice * (approve # audit) * archive; }",
    ),
    ("ship", "workflow ship { graph pick * pack * dispatch; }"),
];

/// One session operation. Each variant performs at most one store
/// append when applied, which is what makes the torn-tail oracle exact.
#[derive(Clone, Debug)]
enum Op {
    /// Deploy `SPECS[i]` (skipped once deployed).
    Deploy(usize),
    /// Start an instance of `SPECS[i]` (skipped until deployed).
    Start(usize),
    /// Group-commit up to `k` currently-eligible events on the
    /// `slot`-th instance (skipped while no instance exists).
    FireBatch(usize, usize),
    /// Probe the `slot`-th instance for completion.
    Complete(usize),
    /// Compact the store (durable side only; a no-op on the oracle).
    Checkpoint,
}

/// Applies `op` identically on the durable runtime and the oracle: all
/// choices (which instance, which events) read only deterministic,
/// sorted runtime state, so the two sides stay in lockstep.
fn apply(rt: &mut Runtime, op: &Op, durable: bool) {
    match *op {
        Op::Deploy(i) => {
            let (name, source) = SPECS[i];
            if !rt.workflows().contains(&name.to_owned()) {
                rt.deploy_source(source).expect("deploy");
            }
        }
        Op::Start(i) => {
            let (name, _) = SPECS[i];
            if rt.workflows().contains(&name.to_owned()) {
                rt.start(name).expect("start");
            }
        }
        Op::FireBatch(slot, k) => {
            let ids = rt.instances();
            let Some(&id) = ids.get(slot % ids.len().max(1)) else {
                return;
            };
            let events: Vec<String> = rt
                .eligible(id)
                .unwrap_or_default()
                .into_iter()
                .take(k)
                .collect();
            if !events.is_empty() {
                rt.fire_batch(id, &events).expect("fire_batch");
            }
        }
        Op::Complete(slot) => {
            let ids = rt.instances();
            if let Some(&id) = ids.get(slot % ids.len().max(1)) {
                let _ = rt.try_complete(id);
            }
        }
        Op::Checkpoint => {
            if durable {
                rt.checkpoint().expect("checkpoint");
            }
        }
    }
}

/// Byte length of every `.seg` file under `dir`, keyed by path.
fn seg_sizes(dir: &Path) -> BTreeMap<PathBuf, u64> {
    let mut sizes = BTreeMap::new();
    let Ok(shards) = std::fs::read_dir(dir) else {
        return sizes;
    };
    for shard in shards.flatten() {
        let Ok(entries) = std::fs::read_dir(shard.path()) else {
            continue;
        };
        for entry in entries.flatten() {
            if entry.path().extension().is_some_and(|e| e == "seg") {
                sizes.insert(entry.path(), entry.metadata().map(|m| m.len()).unwrap_or(0));
            }
        }
    }
    sizes
}

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ctr_recovery_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..SPECS.len()).prop_map(Op::Deploy),
        (0..SPECS.len()).prop_map(Op::Start),
        ((0..8usize), (1..5usize)).prop_map(|(slot, k)| Op::FireBatch(slot, k)),
        (0..8usize).prop_map(Op::Complete),
        Just(Op::Checkpoint),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Crash the WAL at a random byte offset inside the final
    /// operation's write; the recovered snapshot byte-matches the
    /// oracle that stopped just before (torn) or just after (untouched)
    /// that operation.
    #[test]
    fn kill_recover_matches_the_never_crashed_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..16),
        tear in 1..4096usize,
    ) {
        let dir = scratch("kill");
        let (prefix, last) = ops.split_at(ops.len() - 1);

        let mut rt = Runtime::with_store(Arc::new(WalStore::open(&dir).unwrap()));
        for op in prefix {
            apply(&mut rt, op, true);
        }
        let before = seg_sizes(&dir);
        apply(&mut rt, &last[0], true);
        drop(rt); // the crash: no shutdown hook runs, files stay as-is

        // Tear `1..=written` bytes off the end of whichever segment the
        // final operation extended (checkpoints and no-op finals extend
        // nothing and are left alone).
        let after = seg_sizes(&dir);
        let grown = after
            .iter()
            .find(|(path, len)| before.get(*path).copied().unwrap_or(0) < **len);
        let torn = if let Some((path, &len)) = grown {
            let written = len - before.get(path).copied().unwrap_or(0);
            let cut = len - 1 - (tear as u64 - 1) % written;
            let file = std::fs::OpenOptions::new().write(true).open(path).unwrap();
            file.set_len(cut).unwrap();
            true
        } else {
            false
        };

        let mut oracle = Runtime::new();
        let survived = if torn { prefix } else { &ops[..] };
        for op in survived {
            apply(&mut oracle, op, false);
        }

        let store = Arc::new(WalStore::open(&dir).unwrap());
        let recovered = Runtime::open(store).unwrap();
        prop_assert_eq!(recovered.snapshot(), oracle.snapshot());

        std::fs::remove_dir_all(&dir).ok();
    }

    /// Crash at a random byte offset inside a *coalesced group's*
    /// single write: every record acknowledged before the crash point
    /// survives recovery, and the group's staged records drop only as a
    /// contiguous seq suffix of the stripe — never a gap. (The torn
    /// byte invalidates its own frame and everything after it in the
    /// group's one `write_all`; frames before it are whole and
    /// checksum-clean, so the scan keeps them.)
    #[test]
    fn coalesced_group_tear_drops_only_a_contiguous_seq_suffix(
        acked in 1..6usize,
        group in 2..6usize,
        tear in 0..100_000u64,
    ) {
        use ctr_store::{Durability, Record, Store, WalOptions, WalStore};
        let dir = scratch("grouptear");
        let options = WalOptions {
            shards: 1,
            durability: Durability::Coalesced {
                max_wait: std::time::Duration::from_millis(10),
            },
            ..WalOptions::default()
        };
        let ev = |n: usize| Record::Events {
            instance: 0,
            events: vec![format!("e{n}")],
        };

        // Phase 1: sequential appends, each acknowledged durable before
        // the next — these must survive any later crash.
        let store = WalStore::open_with(&dir, options).unwrap();
        for i in 0..acked {
            store.append(&ev(i)).unwrap();
        }
        let seg = dir.join("shard-00").join("00000000.seg");
        let base = std::fs::metadata(&seg).unwrap().len();

        // Phase 2: concurrent appends riding the commit pipeline — the
        // tear below lands somewhere inside their group write(s).
        let store = Arc::new(store);
        std::thread::scope(|scope| {
            for t in 0..group {
                let store = &store;
                scope.spawn(move || store.append(&ev(acked + t)).unwrap());
            }
        });
        drop(store);

        // Capture the untorn history: the durable order the group's
        // frames actually landed in (concurrent, so not fixed).
        let store = WalStore::open_with(&dir, options).unwrap();
        let full = store.replay().unwrap().records;
        prop_assert_eq!(full.len(), acked + group);
        drop(store);

        // The crash: cut the segment at a random byte at or past the
        // group region's start — at least the final frame tears.
        let len = std::fs::metadata(&seg).unwrap().len();
        let cut = base + tear % (len - base);
        let file = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let store = WalStore::open_with(&dir, options).unwrap();
        let recovered = store.replay().unwrap().records;
        prop_assert!(
            recovered.len() >= acked,
            "an individually acknowledged record was lost: {} < {}",
            recovered.len(), acked
        );
        prop_assert!(
            recovered.len() < acked + group,
            "a torn group write cannot survive whole"
        );
        // Contiguous-prefix survival == contiguous-suffix loss: no
        // recovered record may be reordered or skipped past a hole.
        prop_assert_eq!(&recovered[..], &full[..recovered.len()]);
        drop(store);

        std::fs::remove_dir_all(&dir).ok();
    }

    /// The recovered runtime is live, not just a matching snapshot: it
    /// accepts further work and a second recovery sees that work too.
    #[test]
    fn recovery_composes_with_further_work(
        ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        let dir = scratch("compose");

        let mut rt = Runtime::with_store(Arc::new(WalStore::open(&dir).unwrap()));
        for op in &ops {
            apply(&mut rt, op, true);
        }
        drop(rt);

        let mut recovered = Runtime::open(Arc::new(WalStore::open(&dir).unwrap())).unwrap();
        apply(&mut recovered, &Op::Deploy(0), true);
        apply(&mut recovered, &Op::Start(0), true);
        apply(&mut recovered, &Op::FireBatch(7, 2), true);
        let expected = recovered.snapshot();
        drop(recovered);

        let again = Runtime::open(Arc::new(WalStore::open(&dir).unwrap())).unwrap();
        prop_assert_eq!(again.snapshot(), expected);

        std::fs::remove_dir_all(&dir).ok();
    }
}
