//! Tabled analysis ≡ untabled analysis, pinned over the `gen` corpus.
//!
//! The memo tables in `ctr::memo` only change *how often* the structural
//! recursion runs — every tabled operation is a pure function of its key,
//! so the compiled goals, knot reports, verdicts, and counterexamples must
//! be **bit-identical** (structural `Goal` equality) to the one-shot
//! functions in `ctr::analysis`. These properties are the contract the
//! `verify_incr` benchmarks rely on when they compare wall-clock only.

use ctr::analysis;
use ctr::constraints::Constraint;
use ctr::gen::{random_constraints, random_goal, GoalShape};
use ctr::memo::{Analyzer, Memo};
use proptest::prelude::*;

fn shape() -> GoalShape {
    GoalShape {
        depth: 3,
        width: 3,
        or_bias: 0.35,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Memo::compile_unchecked` reproduces the untabled compilation
    /// exactly: same compiled goal, same knot reports in the same order,
    /// same sizes and flags. Compiling twice through one memo (warm
    /// tables) must also stay identical.
    #[test]
    fn tabled_compile_is_bit_identical(seed in 0u64..5000, cseed in 0u64..5000, n in 1usize..4) {
        let (goal, events) = random_goal(seed, shape(), "t");
        prop_assume!(events.len() >= 2);
        let constraints = random_constraints(cseed, &events, n);

        let reference = analysis::compile(&goal, &constraints).expect("unique-event by construction");
        let mut memo = Memo::new();
        for round in 0..2 {
            let tabled = memo.compile_unchecked(&goal, &constraints);
            prop_assert_eq!(&tabled.goal, &reference.goal, "round {} goal {}", round, goal);
            prop_assert_eq!(&tabled.knots, &reference.knots, "round {}", round);
            prop_assert_eq!(tabled.applied_size, reference.applied_size, "round {}", round);
            prop_assert_eq!(
                tabled.guaranteed_knot_free,
                reference.guaranteed_knot_free,
                "round {}", round
            );
            prop_assert_eq!(tabled.has_conditions, reference.has_conditions, "round {}", round);
        }
        let stats = memo.stats();
        prop_assert!(stats.hits > 0, "the second compile replays from the tables");
    }

    /// `Analyzer::verify` agrees with `analysis::verify` on every
    /// property, including the most-general counterexample goal — across
    /// a sequence of properties answered by one warm session.
    #[test]
    fn analyzer_verify_matches_one_shot(seed in 0u64..5000, cseed in 0u64..5000, n in 1usize..4) {
        let (goal, events) = random_goal(seed, shape(), "av");
        prop_assume!(events.len() >= 2);
        let constraints = random_constraints(cseed, &events, n);
        let properties = random_constraints(cseed.wrapping_add(1), &events, 3);

        let mut analyzer = Analyzer::new(&goal, &constraints).expect("unique-event");
        for property in &properties {
            prop_assert_eq!(
                analyzer.verify(property),
                analysis::verify(&goal, &constraints, property).unwrap(),
                "property {} on {}", property, goal
            );
        }
        prop_assert_eq!(
            analyzer.is_consistent(),
            analysis::is_consistent(&goal, &constraints).unwrap()
        );
    }

    /// Incremental re-verification after editing one constraint matches a
    /// from-scratch recompile of the edited set — for add, replace, and
    /// remove edits.
    #[test]
    fn analyzer_incremental_edit_matches_recompile(
        seed in 0u64..5000, cseed in 0u64..5000, n in 2usize..4
    ) {
        let (goal, events) = random_goal(seed, shape(), "ie");
        prop_assume!(events.len() >= 2);
        let constraints = random_constraints(cseed, &events, n);
        let edit = random_constraints(cseed.wrapping_add(7), &events, 1).pop().expect("one");
        let property = random_constraints(cseed.wrapping_add(13), &events, 1).pop().expect("one");

        let mut analyzer = Analyzer::new(&goal, &constraints).expect("unique-event");
        // Warm the tables on the original set.
        analyzer.compiled();

        // Replace the last constraint.
        let mut edited = constraints.clone();
        edited[n - 1] = edit.clone();
        analyzer.replace_constraint(n - 1, edit.clone());
        prop_assert_eq!(
            &analyzer.compiled().goal,
            &analysis::compile(&goal, &edited).unwrap().goal,
            "after replace on {}", goal
        );
        prop_assert_eq!(
            analyzer.verify(&property),
            analysis::verify(&goal, &edited, &property).unwrap(),
            "verify after replace"
        );

        // Remove it.
        analyzer.remove_constraint(n - 1);
        let removed = &edited[..n - 1];
        prop_assert_eq!(
            &analyzer.compiled().goal,
            &analysis::compile(&goal, removed).unwrap().goal,
            "after remove on {}", goal
        );

        // Add it back.
        analyzer.add_constraint(edit);
        prop_assert_eq!(
            &analyzer.compiled().goal,
            &analysis::compile(&goal, &edited).unwrap().goal,
            "after add on {}", goal
        );
    }

    /// The session-level reports agree with the one-shot functions, and
    /// the clone-free `minimize_constraints` (both paths) preserves the
    /// original elimination order and result.
    #[test]
    fn analyzer_reports_match_one_shot(seed in 0u64..5000, cseed in 0u64..5000, n in 1usize..4) {
        let (goal, events) = random_goal(seed, shape(), "rp");
        prop_assume!(events.len() >= 2);
        let constraints = random_constraints(cseed, &events, n);

        let mut analyzer = Analyzer::new(&goal, &constraints).expect("unique-event");
        prop_assert_eq!(
            analyzer.activity_report(),
            analysis::activity_report(&goal, &constraints).unwrap()
        );
        prop_assert_eq!(
            analyzer.minimize_constraints(),
            analysis::minimize_constraints(&goal, &constraints).unwrap(),
            "minimize on {}", goal
        );
        let a = events[0];
        let b = events[1];
        prop_assert_eq!(
            analyzer.ordering(a, b),
            analysis::ordering(&goal, &constraints, a, b).unwrap(),
            "ordering({}, {}) on {}", a, b, goal
        );
    }

    /// `is_redundant` (rebuilt to construct its probe set in one pass)
    /// still decides redundancy exactly: dropping a redundant constraint
    /// never changes the compiled goal's consistency against its negation.
    #[test]
    fn is_redundant_agrees_with_verify(seed in 0u64..5000, cseed in 0u64..5000, n in 1usize..4) {
        let (goal, events) = random_goal(seed, shape(), "ir");
        prop_assume!(events.len() >= 2);
        let constraints = random_constraints(cseed, &events, n);
        for index in 0..constraints.len() {
            let mut rest = constraints.clone();
            let phi = rest.remove(index);
            prop_assert_eq!(
                analysis::is_redundant(&goal, &constraints, index).unwrap(),
                analysis::verify(&goal, &rest, &phi).unwrap().holds(),
                "index {} of {:?}", index, constraints
            );
        }
    }
}

/// Deterministic regression: a worked spec where redundancy is known.
#[test]
fn minimize_drops_the_implied_constraint() {
    use ctr::goal::seq;
    let goal = seq(vec![
        ctr::goal::Goal::atom("a"),
        ctr::goal::Goal::atom("b"),
        ctr::goal::Goal::atom("c"),
    ]);
    // before(a, c) is implied by the sequential graph: redundant.
    let constraints = vec![Constraint::order("a", "c"), Constraint::must("b")];
    assert_eq!(
        analysis::minimize_constraints(&goal, &constraints).unwrap(),
        Vec::<usize>::new(),
        "both constraints are implied by the chain"
    );
    let mut analyzer = Analyzer::new(&goal, &constraints).unwrap();
    assert_eq!(analyzer.minimize_constraints(), Vec::<usize>::new());
}
