//! Stress tests for the hard corners of `Excise`: nested isolation,
//! choice-entangled knots, and channel topologies that force the
//! Or-expansion path — all checked against the trace-semantics oracle.

use ctr::apply::apply;
use ctr::constraints::Constraint;
use ctr::excise::{excise, excise_with_diagnostics};
use ctr::goal::{conc, isolated, or, seq, Channel, Goal};
use ctr::semantics::event_traces;

const BUDGET: usize = 500_000;

fn g(name: &str) -> Goal {
    Goal::atom(name)
}

fn assert_excise_exact(goal: &Goal) {
    let excised = excise(goal);
    assert_eq!(
        event_traces(&excised, BUDGET).unwrap(),
        event_traces(goal, BUDGET).unwrap(),
        "excise changed the semantics of {goal}"
    );
}

/// Three-deep nested isolation with channels crossing every level.
#[test]
fn nested_isolation_with_channels() {
    let (x1, x2) = (Channel(1), Channel(2));
    let goal = conc(vec![
        isolated(seq(vec![
            g("outer_start"),
            isolated(seq(vec![g("inner"), Goal::Send(x1)])),
            g("outer_end"),
        ])),
        seq(vec![Goal::Receive(x1), g("after"), Goal::Send(x2)]),
        seq(vec![Goal::Receive(x2), g("last")]),
    ]);
    assert_excise_exact(&goal);
    assert!(!excise(&goal).is_nopath());
}

/// A knot reachable only through one branch of each of two different
/// choices: Excise must expand both and prune exactly the knotted
/// combination.
#[test]
fn doubly_guarded_knot_prunes_one_combination() {
    let (x1, x2) = (Channel(1), Channel(2));
    // Branch choice A: send-then-recv (fine) vs recv-then-send (half knot).
    let left = or(vec![
        seq(vec![g("a1"), Goal::Send(x1), Goal::Receive(x2)]),
        seq(vec![g("a2"), Goal::Receive(x2), Goal::Send(x1)]),
    ]);
    // Same for choice B on the opposite channels.
    let right = or(vec![
        seq(vec![g("b1"), Goal::Send(x2), Goal::Receive(x1)]),
        seq(vec![g("b2"), Goal::Receive(x1), Goal::Send(x2)]),
    ]);
    let goal = conc(vec![left, right]);
    // The (a2, b2) combination is a cross-wait knot; the other three
    // combinations complete.
    assert_excise_exact(&goal);
    let excised = excise(&goal);
    let traces = event_traces(&excised, BUDGET).unwrap();
    assert!(!traces
        .iter()
        .any(|t| t.contains(&ctr::sym("a2")) && t.contains(&ctr::sym("b2"))));
    assert!(traces
        .iter()
        .any(|t| t.contains(&ctr::sym("a1")) && t.contains(&ctr::sym("b2"))));
}

/// Channels spanning an ∨: the send sits in the chosen branch, the
/// receive after the join; both branches carry a send on the same
/// channel (the legal "unique per execution" multi-occurrence shape that
/// Apply itself produces when an event occurs in several ∨-branches).
#[test]
fn per_branch_sends_with_shared_receive() {
    let xi = Channel(5);
    let goal = seq(vec![
        or(vec![
            seq(vec![g("fast"), Goal::Send(xi)]),
            seq(vec![g("slow"), g("slower"), Goal::Send(xi)]),
        ]),
        Goal::Receive(xi),
        g("done"),
    ]);
    assert_excise_exact(&goal);
    // The coverage analysis cannot statically see that *every* branch
    // provides the send, so it expands the ∨ — exact (same traces, as
    // asserted above) but distributed; nothing is pruned.
    let excised = excise(&goal);
    assert!(!excised.is_nopath());
    assert_eq!(
        event_traces(&excised, BUDGET).unwrap().len(),
        2,
        "both branches survive"
    );
}

/// Compiled Klein constraints interacting with isolation blocks.
#[test]
fn klein_constraints_through_isolation() {
    let goal = seq(vec![
        g("init"),
        conc(vec![
            isolated(seq(vec![g("tx_a"), g("tx_b")])),
            or(vec![g("audit"), g("skip_audit")]),
        ]),
        g("close"),
    ]);
    for constraints in [
        vec![Constraint::klein_order("audit", "tx_a")],
        vec![Constraint::klein_order("tx_b", "audit")],
        vec![
            Constraint::must("audit"),
            Constraint::order("tx_a", "audit"),
        ],
    ] {
        let applied = apply(&constraints, &goal);
        let excised = excise(&applied);
        assert_eq!(
            event_traces(&excised, BUDGET).unwrap(),
            event_traces(&applied, BUDGET).unwrap(),
            "constraints {constraints:?}"
        );
    }
}

/// Contradictory orders forced through every branch: the whole thing
/// collapses, and a report is produced for the designer.
#[test]
fn global_collapse_reports_every_knot() {
    let goal = conc(vec![or(vec![g("a"), g("b")]), g("c")]);
    let constraints = [
        Constraint::order("c", "a"),
        // a must occur (killing the b branch) and precede c: contradiction.
        Constraint::order("a", "c"),
    ];
    let applied = apply(&constraints, &goal);
    let result = excise_with_diagnostics(&applied);
    assert!(result.goal.is_nopath());
    assert!(!result.reports.is_empty());
    assert!(event_traces(&applied, BUDGET).unwrap().is_empty());
}

/// Deep alternation of ⊗/|/∨ with two independent compiled constraints —
/// a larger structure exercising region analysis across many levels.
#[test]
fn deep_alternation_with_two_constraints() {
    let goal = seq(vec![
        g("s0"),
        conc(vec![
            seq(vec![
                g("p1"),
                or(vec![g("q1"), seq(vec![g("q2"), g("q3")])]),
                g("p2"),
            ]),
            seq(vec![
                or(vec![g("r1"), g("r2")]),
                conc(vec![g("u1"), g("u2")]),
            ]),
        ]),
        g("s1"),
    ]);
    let constraints = [
        Constraint::klein_order("q2", "u1"),
        Constraint::causes_later("r1", "p2"),
    ];
    let applied = apply(&constraints, &goal);
    assert_excise_exact(&applied);
    let excised = excise(&applied);
    // Still consistent: plenty of executions satisfy both.
    assert!(!excised.is_nopath());
}
