//! Integration tests pinning the paper's named results, end to end across
//! the crates. Each test cites the claim it exercises.

use ctr::analysis::{compile, is_redundant, verify, Verification};
use ctr::constraints::Constraint;
use ctr::gen;
use ctr::goal::{conc, or, seq, Goal};
use ctr::semantics::{event_traces, satisfies};
use ctr::sym;
use ctr_baselines::{PassiveValidator, ProductScheduler};
use ctr_engine::{Program, Scheduler};
use ctr_parser::{parse_constraint, parse_goal};

fn g(name: &str) -> Goal {
    Goal::atom(name)
}

/// Equation (1): the Figure 1 graph, its textual form, and the Cfg
/// translation all denote the same executions.
#[test]
fn equation_1_three_ways() {
    let from_graph = ctr_workflow::Cfg::figure1().to_goal().unwrap();
    let from_text = parse_goal(
        "a * ((cond1 * b * ((d * cond3 * h) + e) * j) \
            # (cond2 * c * ((f * i * cond4) + (g * cond5)))) * k",
    )
    .unwrap();
    let built = seq(vec![
        g("a"),
        conc(vec![
            seq(vec![
                g("cond1"),
                g("b"),
                or(vec![seq(vec![g("d"), g("cond3"), g("h")]), g("e")]),
                g("j"),
            ]),
            seq(vec![
                g("cond2"),
                g("c"),
                or(vec![
                    seq(vec![g("f"), g("i"), g("cond4")]),
                    seq(vec![g("g"), g("cond5")]),
                ]),
            ]),
        ]),
        g("k"),
    ]);
    let t1 = event_traces(&from_graph, 1_000_000).unwrap();
    let t2 = event_traces(&from_text, 1_000_000).unwrap();
    let t3 = event_traces(&built, 1_000_000).unwrap();
    assert_eq!(t1, t2);
    assert_eq!(t2, t3);
}

/// Proposition 3.3: splitting serial constraints preserves semantics on
/// unique-event traces.
#[test]
fn proposition_3_3_splitting() {
    let c = Constraint::serial(vec![sym("p"), sym("q"), sym("r"), sym("s")]);
    let split = ctr::constraints::split_serials(&c);
    let universe = [sym("p"), sym("q"), sym("r"), sym("s"), sym("x")];
    // All unique-event traces of length ≤ 5 via permutation prefixes.
    let mut traces: Vec<Vec<ctr::Symbol>> = vec![vec![]];
    for _ in 0..universe.len() {
        let mut next = Vec::new();
        for t in &traces {
            for &e in &universe {
                if !t.contains(&e) {
                    let mut t2 = t.clone();
                    t2.push(e);
                    next.push(t2);
                }
            }
        }
        traces.extend(next);
    }
    for t in &traces {
        assert_eq!(satisfies(t, &c), satisfies(t, &split), "trace {t:?}");
    }
}

/// Lemma 3.4 / Corollary 3.5: CONSTR is closed under negation, with the
/// exact unfolding ¬(∇e₁ ⊗ ∇e₂) ≡ ¬∇e₁ ∨ ¬∇e₂ ∨ (∇e₂ ⊗ ∇e₁).
#[test]
fn lemma_3_4_negation_closure() {
    let neg = Constraint::not(Constraint::order("e1", "e2"));
    let unfolded = parse_constraint("absent(e1) or absent(e2) or before(e2, e1)").unwrap();
    assert_eq!(neg.normalize(), unfolded.normalize());
}

/// §4: verification reduces to consistency — `Φ` holds on every execution
/// iff `G ∧ C ∧ ¬Φ` is inconsistent. Both directions.
#[test]
fn verification_via_consistency() {
    let goal = conc(vec![g("a"), g("b"), g("c")]);
    let constraints = [Constraint::order("a", "b")];
    let holds = Constraint::klein_order("a", "b");
    let fails = Constraint::klein_order("c", "a");

    assert!(verify(&goal, &constraints, &holds).unwrap().holds());
    let mut augmented = constraints.to_vec();
    augmented.push(Constraint::not(holds));
    assert!(!compile(&goal, &augmented).unwrap().is_consistent());

    assert!(!verify(&goal, &constraints, &fails).unwrap().holds());
    let mut augmented = constraints.to_vec();
    augmented.push(Constraint::not(fails));
    assert!(compile(&goal, &augmented).unwrap().is_consistent());
}

/// Proposition 4.1's reduction: workflow consistency with existence
/// constraints decides 3-SAT (here cross-checked against brute force).
#[test]
fn proposition_4_1_sat_reduction() {
    for seed in 100..115 {
        let inst = gen::random_3sat(seed, 6, 25);
        let (goal, constraints) = gen::sat_to_workflow(&inst);
        assert!(constraints.iter().all(Constraint::is_existence));
        assert_eq!(
            compile(&goal, &constraints).unwrap().is_consistent(),
            inst.brute_force_sat(),
            "seed {seed}"
        );
    }
}

/// Theorem 5.11 (size): one Klein constraint (d = 3) at most triples the
/// goal plus constant sync overhead; N such constraints stay within
/// d^N · |G| plus sync; serial-only constraints (d = 1) stay linear.
#[test]
fn theorem_5_11_size_bounds() {
    let goal = gen::layered_workflow(6, 2);
    let base = goal.size();

    for n in 1..=4usize {
        let constraints = gen::klein_chain(n);
        let compiled = compile(&goal, &constraints).unwrap();
        let bound = 3usize.pow(n as u32) * (base + 8 * n);
        assert!(
            compiled.applied_size <= bound,
            "n={n}: {} > {bound}",
            compiled.applied_size
        );
    }

    // d = 1: linear in |G| regardless of N.
    let pipeline = gen::pipeline_workflow(64);
    let orders = gen::order_chain(16);
    let compiled = compile(&pipeline, &orders).unwrap();
    assert!(
        compiled.applied_size <= pipeline.size() + 4 * 16 + 8,
        "serial-only compiled size {} vs |G| {}",
        compiled.applied_size,
        pipeline.size()
    );
}

/// Theorem 5.9's counterexamples are *most general*: every execution of
/// the returned goal violates the property, and every violating execution
/// of the workflow is an execution of the counterexample.
#[test]
fn most_general_counterexamples() {
    let goal = seq(vec![
        g("s"),
        conc(vec![g("a"), g("b"), or(vec![g("c"), g("d")])]),
        g("t"),
    ]);
    let property = Constraint::klein_order("a", "b");
    let Verification::CounterExample(ce) = verify(&goal, &[], &property).unwrap() else {
        panic!("a|b is unordered, the property must fail");
    };
    let ce_traces = event_traces(&ce, 1_000_000).unwrap();
    let violating: std::collections::BTreeSet<_> = event_traces(&goal, 1_000_000)
        .unwrap()
        .into_iter()
        .filter(|t| !satisfies(t, &property))
        .collect();
    assert_eq!(ce_traces, violating);
}

/// Example 5.7, the full pipeline across crates: parse the goal, compile
/// the constraints, excise the knot, schedule the survivor.
#[test]
fn example_5_7_end_to_end() {
    let goal = parse_goal("gamma * (eta + (alpha # beta # eta))").unwrap();
    let constraints = vec![
        parse_constraint("causes(alpha, beta)").unwrap(),
        parse_constraint("causes(beta, eta)").unwrap(),
        parse_constraint("absent(alpha) or before(eta, alpha)").unwrap(),
    ];
    let compiled = compile(&goal, &constraints).unwrap();
    assert_eq!(compiled.goal, parse_goal("gamma * eta").unwrap());
    assert!(!compiled.knots.is_empty(), "the knot is reported as G_fail");

    let program = Program::compile(&compiled.goal).unwrap();
    let trace = Scheduler::new(&program).run_first().unwrap();
    let names: Vec<_> = trace.iter().filter_map(ctr::term::Atom::as_event).collect();
    assert_eq!(names, vec![sym("gamma"), sym("eta")]);
}

/// Theorem 5.10 via the spec layer, plus baseline agreement on the
/// compiled schedules.
#[test]
fn redundancy_and_baseline_agreement() {
    // Unordered concurrent events, so only the constraints impose order.
    let goal = conc(vec![g("a"), g("b"), g("c"), g("d")]);
    let constraints = vec![
        Constraint::order("a", "b"),
        Constraint::order("b", "c"),
        // Implied by the two above (transitivity).
        Constraint::order("a", "c"),
    ];
    assert!(is_redundant(&goal, &constraints, 2).unwrap());
    assert!(!is_redundant(&goal, &constraints, 0).unwrap());

    let compiled = compile(&goal, &constraints).unwrap();
    let program = Program::compile(&compiled.goal).unwrap();
    let validator = PassiveValidator::new(&constraints);
    let product = ProductScheduler::new(&constraints);
    for t in Scheduler::new(&program).enumerate_traces(200) {
        assert!(validator.validate(&t));
        assert!(product.validate(&t));
    }
}

/// §6: the model checker and the logical verifier agree; the marking
/// graph explodes with concurrency while Apply stays linear.
#[test]
fn model_checking_comparison() {
    let goal = gen::layered_workflow(3, 3);
    let property = Constraint::klein_order("l0_0", "l2_2");
    let mc = ctr_baselines::check(&goal, &property, 10_000_000).unwrap();
    let logical = verify(&goal, &[], &property).unwrap();
    assert_eq!(mc.counterexample.is_none(), logical.holds());

    // State explosion vs linear compilation.
    let wide = gen::parallel_workflow(10);
    let mc_states = ctr_baselines::explore(&wide, 10_000_000).unwrap().states;
    let compiled = compile(&wide, &[Constraint::must("t0")]).unwrap();
    assert!(
        mc_states >= 1 << 10,
        "marking graph of 10 parallel tasks: {mc_states}"
    );
    assert!(compiled.applied_size < 2 * wide.size());
}

/// §7 modular compilation: local constraints keep the exponent at M, and
/// the modular result is semantically identical to the flat one.
#[test]
fn modular_compilation_exponent() {
    use ctr_workflow::{compile_modular, WorkflowSpec};
    use std::collections::BTreeMap;

    let k = 5usize;
    let mut spec = WorkflowSpec::new(
        "modular",
        seq((0..k).map(|i| g(&format!("sub{i}"))).collect()),
    );
    let mut local: BTreeMap<ctr::Symbol, Vec<Constraint>> = BTreeMap::new();
    for i in 0..k {
        spec.subworkflows
            .define(
                format!("sub{i}").as_str(),
                conc(vec![
                    or(vec![g(&format!("a{i}")), g(&format!("x{i}"))]),
                    g(&format!("b{i}")),
                ]),
            )
            .unwrap();
        local.insert(
            sym(&format!("sub{i}")),
            vec![Constraint::klein_order(
                format!("a{i}").as_str(),
                format!("b{i}").as_str(),
            )],
        );
    }
    let modular = compile_modular(&spec, &local).unwrap();

    let mut flat = spec.clone();
    flat.constraints = (0..k)
        .map(|i| Constraint::klein_order(format!("a{i}").as_str(), format!("b{i}").as_str()))
        .collect();
    let flat_compiled = flat.compile().unwrap();

    // M = 1 per sub-workflow vs N = 5 global: at least an order of
    // magnitude apart at d = 3.
    assert!(modular.applied_size * 10 < flat_compiled.applied_size);
    assert!(modular.is_consistent() && flat_compiled.is_consistent());
}
