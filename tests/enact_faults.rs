//! Fault-injection properties for the enactment dispatcher.
//!
//! The contract under test: for *any* workflow shape and *any* injected
//! fault plan, `Enactor::run_report` terminates in bounded time with
//! either
//!
//! * the no-fault oracle's outcome — same committed event **multiset**
//!   (concurrent completion order legitimately varies) and a trace that
//!   replays event-by-event on a fresh scheduler to completion — or
//! * a typed `EnactError` whose `completed` prefix is a valid schedule
//!   prefix (every event replays in order on a fresh scheduler).
//!
//! Goals are generated constraint-free with unique atoms (no channels ⇒
//! no silent steps), so the observable trace *is* the full trace and
//! `fire_event`-replay is exact.

use ctr::goal::{conc, or, seq, Goal};
use ctr::symbol::Symbol;
use ctr_engine::scheduler::{Program, Scheduler};
use ctr_runtime::{Backoff, ChoicePolicy, EnactReport, Enactor, Fault, FaultPlan, RetryPolicy};
use proptest::prelude::*;
use std::time::Duration;

fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Deterministically grows a goal tree from a seed: seq/conc/or over
/// uniquely-named atoms (`e0`, `e1`, …), depth ≤ 3, fanout 2–3.
fn build_goal(rng: &mut u64, depth: u32, counter: &mut u32) -> Goal {
    let pick = if depth == 0 { 0 } else { next(rng) % 4 };
    if pick == 0 {
        let name = format!("e{}", *counter);
        *counter += 1;
        return Goal::atom(name.as_str());
    }
    let fanout = 2 + (next(rng) % 2) as usize;
    let children: Vec<Goal> = (0..fanout)
        .map(|_| build_goal(rng, depth - 1, counter))
        .collect();
    match pick {
        1 => seq(children),
        2 => conc(children),
        _ => or(children),
    }
}

fn events_of(goal: &Goal) -> Vec<Symbol> {
    let mut events = Vec::new();
    goal.for_each_atom(&mut |atom| {
        if let Some(e) = atom.as_event() {
            events.push(e);
        }
    });
    events
}

/// Runs the enactor under a watchdog: the property is *bounded-time*
/// termination, so a wedged dispatcher must fail the test, not hang it.
fn run_watchdogged(enactor: Enactor, program: Program) -> EnactReport {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(enactor.run_report(&program));
    });
    rx.recv_timeout(Duration::from_secs(120))
        .expect("enactment must terminate in bounded time")
}

/// Every committed event must replay, in order, on a fresh scheduler.
/// Returns the scheduler for completion checks.
fn assert_valid_prefix<'p>(program: &'p Program, completed: &[Symbol]) -> Scheduler<&'p Program> {
    let mut replay = Scheduler::new(program);
    for (i, &event) in completed.iter().enumerate() {
        assert!(
            replay.fire_event(event),
            "committed event #{i} `{event}` does not replay — not a schedule prefix"
        );
    }
    replay
}

fn multiset(events: &[Symbol]) -> Vec<Symbol> {
    let mut sorted = events.to_vec();
    sorted.sort_unstable();
    sorted
}

/// Builds a fault plan over ~half the events; `recoverable` bounds every
/// fault under the 3-attempt budget.
fn build_plan(events: &[Symbol], fault_seed: u64, recoverable: bool) -> FaultPlan {
    let mut rng = fault_seed | 1;
    let mut plan = FaultPlan::new(fault_seed);
    let mut faulted_any = false;
    for &event in events {
        if next(&mut rng).is_multiple_of(2) {
            continue;
        }
        let fault = match next(&mut rng) % 4 {
            0 => Fault::FailTimes(1 + (next(&mut rng) % 2) as u32),
            1 => Fault::PanicOnAttempt(1 + (next(&mut rng) % 2) as u32),
            2 => Fault::Delay(Duration::from_millis(1 + next(&mut rng) % 3)),
            _ => Fault::Vanish(1),
        };
        let fault = if recoverable {
            fault
        } else {
            // Outlast any retry budget.
            Fault::FailTimes(u32::MAX)
        };
        plan = plan.inject(event, fault);
        faulted_any = true;
    }
    if !recoverable && !faulted_any {
        // An unrecoverable plan must doom at least one event; the first
        // is mandatory in every schedule shape we generate... not quite
        // (or-branches), but it is always *an* event, which suffices for
        // "if the run fails, the prefix is valid".
        if let Some(&event) = events.first() {
            plan = plan.inject(event, Fault::FailTimes(u32::MAX));
        }
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Recoverable faults (every fault exhausts before the 3-attempt
    /// budget): the run must reach exactly the no-fault oracle's
    /// outcome, fault machinery invisible in the result.
    #[test]
    fn recoverable_faults_reach_the_oracle_outcome(
        goal_seed in 0u64..1_000_000,
        fault_seed in 0u64..u64::MAX,
    ) {
        let mut rng = goal_seed.wrapping_mul(2).wrapping_add(1);
        let mut counter = 0;
        let goal = build_goal(&mut rng, 3, &mut counter);
        let program = Program::compile(&goal).unwrap();
        let events = events_of(&goal);
        prop_assume!(!events.is_empty());

        let oracle = run_watchdogged(Enactor::new(), Program::compile(&goal).unwrap());
        prop_assert!(oracle.is_success());

        let enactor = Enactor::new()
            .with_policy(ChoicePolicy::First)
            .with_default_retry(
                RetryPolicy::attempts(3)
                    .with_backoff(Backoff::Fixed(Duration::from_micros(200)))
                    .with_jitter(),
            )
            .with_faults(build_plan(&events, fault_seed, true))
            .with_seed(fault_seed);
        let report = run_watchdogged(enactor, Program::compile(&goal).unwrap());

        prop_assert!(report.is_success(), "recoverable plan failed: {:?}", report.error);
        prop_assert_eq!(
            multiset(&report.completed),
            multiset(&oracle.completed),
            "same committed multiset as the no-fault oracle"
        );
        let replay = assert_valid_prefix(&program, &report.completed);
        prop_assert!(replay.is_complete(), "successful trace must replay to completion");
        // Every retry the log records was caused by an injected fault.
        prop_assert!(report.attempts.len() >= report.completed.len());
    }

    /// Arbitrary (possibly unrecoverable) plans: the run terminates with
    /// either the oracle outcome or a typed error whose committed prefix
    /// is a valid schedule prefix.
    #[test]
    fn any_fault_plan_terminates_with_oracle_or_typed_error(
        goal_seed in 0u64..1_000_000,
        fault_seed in 0u64..u64::MAX,
        recoverable_bit in 0u64..2,
    ) {
        let recoverable = recoverable_bit == 1;
        let mut rng = goal_seed.wrapping_mul(2).wrapping_add(1);
        let mut counter = 0;
        let goal = build_goal(&mut rng, 3, &mut counter);
        let program = Program::compile(&goal).unwrap();
        let events = events_of(&goal);
        prop_assume!(!events.is_empty());

        let enactor = Enactor::new()
            .with_policy(ChoicePolicy::First)
            .with_default_retry(RetryPolicy::attempts(2))
            .with_faults(build_plan(&events, fault_seed, recoverable))
            .with_seed(fault_seed);
        let report = run_watchdogged(enactor, Program::compile(&goal).unwrap());

        match &report.error {
            None => {
                let oracle = run_watchdogged(Enactor::new(), Program::compile(&goal).unwrap());
                prop_assert_eq!(multiset(&report.completed), multiset(&oracle.completed));
                let replay = assert_valid_prefix(&program, &report.completed);
                prop_assert!(replay.is_complete());
            }
            Some(err) => {
                // The typed error's prefix and the report's committed
                // trace must agree, and both must be a valid prefix.
                prop_assert_eq!(err.completed(), report.completed.as_slice());
                assert_valid_prefix(&program, &report.completed);
            }
        }
    }
}
