//! Robustness tests for the user-facing surfaces: the parser never
//! panics on arbitrary input, the analysis pipeline is total on
//! whatever the parser accepts, and the persistence boundary — snapshot
//! restore and write-ahead-log recovery — is total on corrupt bytes.

use ctr_parser::{lex, parse_constraint, parse_goal, parse_spec};
use proptest::prelude::*;

/// A small but representative runtime snapshot to corrupt: two
/// workflows, a running instance and a completed one.
fn seed_snapshot() -> String {
    let mut rt = ctr_runtime::Runtime::new();
    rt.deploy_source("workflow pay { graph invoice * (approve # audit) * archive; }")
        .unwrap();
    rt.deploy_source("workflow ship { graph pick * pack * dispatch; }")
        .unwrap();
    let a = rt.start("pay").unwrap();
    rt.fire(a, "invoice").unwrap();
    let b = rt.start("ship").unwrap();
    for event in ["pick", "pack", "dispatch"] {
        rt.fire(b, event).unwrap();
    }
    rt.try_complete(b).unwrap();
    rt.snapshot()
}

/// A scratch directory holding a small write-ahead log (a deploy, two
/// starts, a few fires, optionally a checkpoint) whose files the tests
/// then corrupt.
fn seed_wal(tag: &str, n: u64, checkpoint: bool) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ctr_fuzz_wal_{tag}_{}_{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = std::sync::Arc::new(ctr_runtime::WalStore::open(&dir).unwrap());
    let mut rt = ctr_runtime::Runtime::with_store(store);
    rt.deploy_source("workflow pay { graph invoice * (approve # audit) * archive; }")
        .unwrap();
    let a = rt.start("pay").unwrap();
    rt.fire_batch(a, &["invoice", "approve", "audit", "archive"])
        .unwrap();
    rt.try_complete(a).unwrap();
    if checkpoint {
        rt.checkpoint().unwrap();
    }
    let b = rt.start("pay").unwrap();
    rt.fire(b, "invoice").unwrap();
    dir
}

/// Every file under the store directory, sorted for determinism.
fn wal_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(at) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&at) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer returns a token stream or a positioned error — never a
    /// panic — on arbitrary input.
    #[test]
    fn lexer_is_total(input in ".{0,200}") {
        let _ = lex(&input);
    }

    /// Same for the three parsers.
    #[test]
    fn parsers_are_total(input in ".{0,200}") {
        let _ = parse_goal(&input);
        let _ = parse_constraint(&input);
        let _ = parse_spec(&input);
    }

    /// Structured noise: well-formed tokens in random arrangements.
    #[test]
    fn parsers_are_total_on_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("*".to_owned()),
                Just("#".to_owned()),
                Just("+".to_owned()),
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just(";".to_owned()),
                Just("{".to_owned()),
                Just("}".to_owned()),
                Just(":=".to_owned()),
                Just("!".to_owned()),
                Just("iso".to_owned()),
                Just("poss".to_owned()),
                Just("empty".to_owned()),
                Just("repeat".to_owned()),
                Just("guarded".to_owned()),
                Just("workflow".to_owned()),
                Just("graph".to_owned()),
                Just("constraint".to_owned()),
                Just("exists".to_owned()),
                Just("before".to_owned()),
                Just("a".to_owned()),
                Just("b".to_owned()),
                Just("3".to_owned()),
            ],
            0..30,
        )
    ) {
        let input = tokens.join(" ");
        let _ = parse_goal(&input);
        let _ = parse_spec(&input);
    }

    /// Whatever the goal parser accepts, the whole pipeline handles
    /// without panicking: unique-event check, compilation, scheduling.
    #[test]
    fn pipeline_is_total_on_parsed_goals(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("*".to_owned()),
                Just("#".to_owned()),
                Just("+".to_owned()),
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just("a".to_owned()),
                Just("b".to_owned()),
                Just("c".to_owned()),
                Just("d".to_owned()),
                Just("empty".to_owned()),
            ],
            1..24,
        )
    ) {
        let input = tokens.join(" ");
        let Ok(goal) = parse_goal(&input) else { return Ok(()) };
        let constraints = [ctr::Constraint::klein_order("a", "b")];
        // compile() rejects non-unique-event goals with an error, not a
        // panic; consistent outputs must schedule without panicking.
        if let Ok(compiled) = ctr::analysis::compile(&goal, &constraints) {
            if compiled.is_consistent() {
                let program = ctr_engine::Program::compile(&compiled.goal).unwrap();
                let _ = ctr_engine::Scheduler::new(&program).run_first();
            }
        }
    }

    /// Snapshot restore — through both the single-threaded and the
    /// sharded runtime — returns `Ok` or a typed error on arbitrarily
    /// mangled snapshots (truncated anywhere, noise spliced anywhere),
    /// never a panic.
    #[test]
    fn restore_is_total_on_corrupted_snapshots(
        cut in 0..400usize,
        pos in 0..400usize,
        noise in proptest::collection::vec(0..=255u8, 0..24),
    ) {
        let base = seed_snapshot().into_bytes();
        let mut mangled = base.clone();
        mangled.truncate(cut.min(base.len()));
        let at = pos.min(mangled.len());
        mangled.splice(at..at, noise);
        let text = String::from_utf8_lossy(&mangled);
        let _ = ctr_runtime::Runtime::restore(&text);
        let _ = ctr_runtime::SharedRuntime::restore(&text);
    }

    /// Write-ahead-log recovery is total on torn and bit-flipped files:
    /// any prefix truncation or byte corruption of any store file —
    /// segments or the checkpoint — yields a recovered runtime or a
    /// typed error, never a panic. (A tear confined to the newest
    /// segment's tail must recover cleanly; that stronger property is
    /// pinned in tests/store_recovery.rs.)
    #[test]
    fn wal_recovery_is_total_on_corrupted_files(
        n in 0..u64::MAX,
        checkpoint in (0..2u8).prop_map(|b| b == 1),
        which in 0..16usize,
        truncate_to in 0..4096usize,
        flips in proptest::collection::vec((0..4096usize, 1..=255u8), 0..6),
    ) {
        let dir = seed_wal("total", n, checkpoint);
        let files = wal_files(&dir);
        let path = &files[which % files.len()];
        let mut bytes = std::fs::read(path).unwrap();
        bytes.truncate(truncate_to.min(bytes.len()));
        for (at, mask) in flips {
            if !bytes.is_empty() {
                let at = at % bytes.len();
                bytes[at] ^= mask;
            }
        }
        std::fs::write(path, &bytes).unwrap();
        if let Ok(store) = ctr_runtime::WalStore::open(&dir) {
            let _ = ctr_runtime::Runtime::open(std::sync::Arc::new(store));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
