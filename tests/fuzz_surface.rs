//! Robustness tests for the user-facing surfaces: the parser never
//! panics on arbitrary input, and the analysis pipeline is total on
//! whatever the parser accepts.

use ctr_parser::{lex, parse_constraint, parse_goal, parse_spec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer returns a token stream or a positioned error — never a
    /// panic — on arbitrary input.
    #[test]
    fn lexer_is_total(input in ".{0,200}") {
        let _ = lex(&input);
    }

    /// Same for the three parsers.
    #[test]
    fn parsers_are_total(input in ".{0,200}") {
        let _ = parse_goal(&input);
        let _ = parse_constraint(&input);
        let _ = parse_spec(&input);
    }

    /// Structured noise: well-formed tokens in random arrangements.
    #[test]
    fn parsers_are_total_on_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("*".to_owned()),
                Just("#".to_owned()),
                Just("+".to_owned()),
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just(";".to_owned()),
                Just("{".to_owned()),
                Just("}".to_owned()),
                Just(":=".to_owned()),
                Just("!".to_owned()),
                Just("iso".to_owned()),
                Just("poss".to_owned()),
                Just("empty".to_owned()),
                Just("repeat".to_owned()),
                Just("guarded".to_owned()),
                Just("workflow".to_owned()),
                Just("graph".to_owned()),
                Just("constraint".to_owned()),
                Just("exists".to_owned()),
                Just("before".to_owned()),
                Just("a".to_owned()),
                Just("b".to_owned()),
                Just("3".to_owned()),
            ],
            0..30,
        )
    ) {
        let input = tokens.join(" ");
        let _ = parse_goal(&input);
        let _ = parse_spec(&input);
    }

    /// Whatever the goal parser accepts, the whole pipeline handles
    /// without panicking: unique-event check, compilation, scheduling.
    #[test]
    fn pipeline_is_total_on_parsed_goals(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("*".to_owned()),
                Just("#".to_owned()),
                Just("+".to_owned()),
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just("a".to_owned()),
                Just("b".to_owned()),
                Just("c".to_owned()),
                Just("d".to_owned()),
                Just("empty".to_owned()),
            ],
            1..24,
        )
    ) {
        let input = tokens.join(" ");
        let Ok(goal) = parse_goal(&input) else { return Ok(()) };
        let constraints = [ctr::Constraint::klein_order("a", "b")];
        // compile() rejects non-unique-event goals with an error, not a
        // panic; consistent outputs must schedule without panicking.
        if let Ok(compiled) = ctr::analysis::compile(&goal, &constraints) {
            if compiled.is_consistent() {
                let program = ctr_engine::Program::compile(&compiled.goal).unwrap();
                let _ = ctr_engine::Scheduler::new(&program).run_first();
            }
        }
    }
}
