//! Trip planning — the paper's opening example of a workflow — executed
//! against a real database state with nondeterministic elementary
//! updates, sub-workflow rules, and transition conditions.
//!
//! Run with: `cargo run --example trip_planning`

use ctr::goal::{conc, seq, Goal};
use ctr::term::{Atom, Term, Var};
use ctr_engine::{Engine, Rule};
use ctr_state::{choose_any, Database, StandardOracle};

fn main() {
    // --- The travel agency's database ------------------------------------
    let mut db = Database::new();
    for flight in ["aa100", "ba226"] {
        db.insert("flight", vec![Term::constant(flight)]);
    }
    for hotel in ["ritz", "ibis"] {
        db.insert("hotel", vec![Term::constant(hotel)]);
    }
    db.insert_fact("budget_approved");
    db.declare("booked_flight");
    db.declare("booked_hotel");

    // --- The engine: oracle + sub-workflow rules --------------------------
    let mut oracle = StandardOracle::new();
    // A black-box "legacy reservation system": nondeterministically books
    // any available flight/hotel (paper, §2: elementary updates may be
    // nondeterministic).
    oracle.register("reserve_flight", choose_any("flight", "booked_flight"));
    oracle.register("reserve_hotel", choose_any("hotel", "booked_hotel"));

    let mut engine = Engine::with_oracle(Box::new(oracle));

    // Sub-workflow: payment is a rule with two alternative definitions
    // (concurrent-Horn rules, §2).
    engine.rules.define("pay", Goal::atom("pay_card")).unwrap();
    engine
        .rules
        .define("pay", Goal::atom("pay_invoice"))
        .unwrap();

    // A parametric logging sub-workflow with a variable: record(X) inserts
    // into the log relation.
    let x = Term::Var(Var(0));
    engine
        .rules
        .add(Rule {
            head: Atom::new("record", vec![x.clone()]),
            body: Goal::Atom(Atom::new("ins_log", vec![x])),
        })
        .unwrap();

    // --- The workflow ------------------------------------------------------
    // Check the budget (a transition condition querying the state), then
    // book flight and hotel concurrently — hotel booking is isolated (⊙:
    // no interleaving while the transaction runs) — then pay one way or
    // another, and record completion.
    let trip = seq(vec![
        Goal::Atom(Atom::prop("budget_approved")), // transition condition
        conc(vec![
            Goal::atom("reserve_flight"),
            ctr::goal::isolated(seq(vec![
                Goal::atom("reserve_hotel"),
                Goal::atom("confirm_hotel"),
            ])),
        ]),
        Goal::atom("pay"),
        Goal::Atom(Atom::new("record", vec![Term::constant("trip_done")])),
    ]);
    println!("workflow: {trip}\n");

    // --- Execute -----------------------------------------------------------
    let execs = engine.executions(&trip, &db).unwrap();
    println!(
        "{} distinct executions (2 flights × 2 hotels × 2 payments × interleavings):",
        execs.len()
    );
    for (i, e) in execs.iter().enumerate().take(6) {
        let path: Vec<String> = e.events.iter().map(|a| a.to_string()).collect();
        println!("  #{i}: {}", path.join(" -> "));
    }
    println!("  …");

    // Every execution books exactly one flight and one hotel and logs
    // completion.
    for e in &execs {
        assert_eq!(e.db.cardinality(ctr::sym("booked_flight")), 1);
        assert_eq!(e.db.cardinality(ctr::sym("booked_hotel")), 1);
        assert!(e
            .db
            .contains(ctr::sym("log"), &[Term::constant("trip_done")]));
    }
    println!("\nall executions book one flight, one hotel, and log completion");

    // --- A frozen budget stops the workflow at the condition --------------
    let mut frozen = db.clone();
    frozen.apply(&ctr_state::Change::Delete {
        rel: ctr::sym("budget_approved"),
        tuple: vec![],
    });
    assert!(!engine.is_executable(&trip, &frozen).unwrap());
    println!("without budget approval, the workflow has no execution — the condition blocks it");

    // --- ◇: checking feasibility without side effects ----------------------
    let feasibility = ctr::goal::possible(trip.clone());
    let check = engine.executions(&feasibility, &db).unwrap();
    assert_eq!(check.len(), 1);
    assert!(check[0].events.is_empty(), "◇ consumes no path");
    assert_eq!(check[0].db, db, "◇ leaves the state untouched");
    println!("◇(trip) succeeds: the trip is executable from this state, nothing was changed");
}
