//! Figure 1 of the paper, end to end: the same workflow specified in all
//! three frameworks — control flow graph, triggers, and temporal
//! constraints — unified in CTR and compiled to a single executable goal.
//!
//! Run with: `cargo run --example figure1`

use ctr::constraints::Constraint;
use ctr::semantics::event_traces;
use ctr_engine::scheduler::{Program, Scheduler};
use ctr_parser::parse_goal;
use ctr_workflow::{Cfg, Trigger};

fn main() {
    // --- Framework 1: the control flow graph of Figure 1 ----------------
    // Drawn with AND/OR splits and five transition conditions, then
    // translated by series-parallel reduction into equation (1).
    let cfg = Cfg::figure1();
    let graph_goal = cfg.to_goal().expect("Figure 1 is well-structured");
    println!("equation (1), from the graph:\n  {graph_goal}\n");

    // The same goal, written directly in the surface syntax.
    let textual = parse_goal(
        "a * ((cond1 * b * ((d * cond3 * h) + e) * j) \
            # (cond2 * c * ((f * i * cond4) + (g * cond5)))) * k",
    )
    .unwrap();
    assert_eq!(
        event_traces(&graph_goal, 1_000_000).unwrap(),
        event_traces(&textual, 1_000_000).unwrap(),
        "graph translation and hand-written goal denote the same executions"
    );

    // --- Framework 2: a trigger ------------------------------------------
    // Figure 1's trigger box: "on event if condition do action".
    let trigger = Trigger::immediate("b", ctr::goal::Goal::atom("audit_b"));
    let mut channels = ctr::apply::ChannelAlloc::fresh_for(&graph_goal);
    let with_trigger = ctr_workflow::compile_trigger(&graph_goal, &trigger, &mut channels);
    println!("with the trigger compiled in:\n  {with_trigger}\n");

    // --- Framework 3: global temporal constraints -------------------------
    // Klein-style dependencies that no control flow graph can express
    // (paper, §1): "d cannot be taken unless g is" and "h must precede i
    // whenever both happen".
    let constraints = vec![
        Constraint::klein_exists("d", "g"),
        Constraint::klein_order("h", "i"),
    ];

    let compiled = ctr::analysis::compile(&with_trigger, &constraints).unwrap();
    assert!(compiled.is_consistent());
    println!(
        "compiled (constraints folded into the structure, {} nodes from {}):\n  {}\n",
        compiled.goal.size(),
        with_trigger.size(),
        compiled.goal
    );

    // Every execution of the compiled goal satisfies all three frameworks'
    // requirements at once — no run-time checking left.
    let traces = event_traces(&compiled.goal, 1_000_000).unwrap();
    println!("{} distinct executions remain; for example:", traces.len());
    for t in traces.iter().take(4) {
        let names: Vec<&str> = t.iter().map(|s| s.as_str()).collect();
        println!("  {}", names.join(" -> "));
    }
    for t in &traces {
        // d chosen ⇒ g chosen.
        if t.contains(&ctr::sym("d")) {
            assert!(t.contains(&ctr::sym("g")));
        }
        // h and i both present ⇒ h first.
        if let (Some(ph), Some(pi)) = (
            t.iter().position(|&x| x == ctr::sym("h")),
            t.iter().position(|&x| x == ctr::sym("i")),
        ) {
            assert!(ph < pi);
        }
        // the trigger ran after b in b's own thread (concurrent branches
        // may interleave between them).
        if let Some(pb) = t.iter().position(|&x| x == ctr::sym("b")) {
            let pa = t
                .iter()
                .position(|&x| x == ctr::sym("audit_b"))
                .expect("trigger fired");
            assert!(pb < pa);
        }
    }
    println!("\nall executions satisfy the graph, the trigger, and both global constraints");

    // And the compiled object schedules directly.
    let program = Program::compile(&compiled.goal).unwrap();
    let trace = Scheduler::new(&program).run_first().expect("knot-free");
    println!(
        "scheduled first path: {:?}",
        trace.iter().map(|a| a.to_string()).collect::<Vec<_>>()
    );
}
