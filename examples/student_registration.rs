//! Graduate student registration — another workflow from the paper's
//! opening paragraph — written in the textual specification language and
//! analyzed end to end: consistency, property verification with
//! counterexamples, and redundancy elimination.
//!
//! Run with: `cargo run --example student_registration`

use ctr::analysis::Verification;
use ctr::constraints::Constraint;
use ctr_parser::{parse_constraint, parse_spec};

fn main() {
    let spec = parse_spec(
        r"
        workflow registration {
            // Advisor meeting, then enrolment and funding paperwork in
            // parallel, then the registrar's confirmation.
            graph advisor_meeting * (enrol # funding) * confirm;

            // Enrolment: pick courses, then either regular or late
            // registration.
            define enrol := pick_courses * (register + late_register);

            // Funding: a stipend or a teaching assignment; a TA line
            // additionally requires the assignment step.
            define funding := stipend + (ta_offer * ta_assignment);

            // Departmental policy as global constraints:
            //  - late registration requires the registrar's waiver first;
            constraint klein_order(waiver, late_register);
            //  - a waiver only ever happens after the advisor meeting;
            constraint klein_order(advisor_meeting, waiver);
            //  - TA offers must be assigned before confirmation.
            constraint klein_order(ta_assignment, confirm);

            // The waiver itself is issued by a trigger when courses are
            // picked while the deadline has passed.
            trigger on pick_courses if deadline_passed do waiver;
        }
        ",
    )
    .expect("specification parses");

    println!("workflow `{}`:", spec.name);
    println!("  graph: {}", spec.graph);
    println!("  sub-workflows: {}", spec.subworkflows.len());
    println!("  constraints: {}", spec.constraints.len());
    println!("  triggers: {}\n", spec.triggers.len());

    // Flattened goal: sub-workflows expanded, trigger compiled in.
    let flat = spec.to_goal();
    println!("flattened: {flat}\n");

    // Consistency (Theorem 5.8).
    let compiled = spec.compile().expect("unique-event specification");
    assert!(compiled.is_consistent());
    println!(
        "consistent: yes ({} knots excised, compiled to {} nodes)\n",
        compiled.knots.len(),
        compiled.goal.size()
    );

    // Verification (Theorem 5.9): does every execution confirm only after
    // courses were picked?
    let property = parse_constraint("before(pick_courses, confirm)").unwrap();
    match spec.verify(&property).unwrap() {
        Verification::Holds => println!("verified: confirmation always follows course selection"),
        Verification::CounterExample(ce) => println!("property fails, e.g.: {ce}"),
    }

    // A property that does NOT hold: stipends are not mandatory. The
    // verifier returns the most general counterexample.
    let not_forced = parse_constraint("exists(stipend)").unwrap();
    match spec.verify(&not_forced).unwrap() {
        Verification::Holds => unreachable!("TA route avoids the stipend"),
        Verification::CounterExample(ce) => {
            println!("`exists(stipend)` fails; most general counterexample:\n  {ce}\n");
        }
    }

    // Redundancy (Theorem 5.10): a constraint implied by the graph
    // structure is detected and can be dropped.
    let mut with_redundant = spec.clone();
    with_redundant
        .constraints
        .push(parse_constraint("before(advisor_meeting, confirm)").unwrap());
    let idx = with_redundant.constraints.len() - 1;
    assert!(with_redundant.is_redundant(idx).unwrap());
    println!("`before(advisor_meeting, confirm)` is redundant — the graph already forces it");

    // …and in fact all three policy constraints turn out to be enforced
    // by the graph + trigger structure already (the waiver is always
    // issued right after pick_courses, which precedes late_register):
    for i in 0..spec.constraints.len() {
        assert!(spec.is_redundant(i).unwrap(), "constraint {i}");
    }
    println!("all three written policies are implied by the structure — detected as redundant");

    // A genuinely load-bearing constraint crosses the concurrent lanes:
    // course selection before any TA offer is made.
    let mut stricter = spec.clone();
    stricter
        .constraints
        .push(parse_constraint("klein_order(pick_courses, ta_offer)").unwrap());
    let idx = stricter.constraints.len() - 1;
    assert!(!stricter.is_redundant(idx).unwrap());
    println!("`klein_order(pick_courses, ta_offer)` is NOT redundant — it prunes real executions");

    // Inconsistent tightening: the trigger always issues the waiver right
    // after pick_courses, so demanding a late registration *before* the
    // waiver contradicts the structure — caught constructively.
    let mut broken = spec.clone();
    broken
        .constraints
        .push(Constraint::order("late_register", "waiver"));
    assert!(!broken.is_consistent().unwrap());
    println!("\nadding `before(late_register, waiver)` makes the spec inconsistent — detected");
}
