//! Loan origination — a larger, end-to-end scenario pulling every part of
//! the system together: a control flow graph built programmatically,
//! triggers, global constraints, saga-style compensation (§7), state-aware
//! execution with a transition oracle, and pro-active scheduling.
//!
//! Run with: `cargo run --example loan_origination`

use ctr_workflows::prelude::*;
use ctr_workflows::workflow::SplitKind;

fn main() {
    // --- 1. The underwriting graph, drawn as a CFG -----------------------
    // intake → (credit_pull | income_verify | collateral_appraisal) → decision
    //        → [approve → fund → close | decline → close]
    let mut cfg = Cfg::new();
    let intake = cfg.activity("intake");
    let credit = cfg.activity("credit_pull");
    let income = cfg.activity("income_verify");
    let collateral = cfg.activity("collateral_appraisal");
    let decision = cfg.add(Atom::prop("decision"), SplitKind::Or);
    let approve = cfg.activity("approve");
    let fund = cfg.activity("fund");
    let decline = cfg.activity("decline");
    let close = cfg.activity("close");
    cfg.arc(intake, credit)
        .arc(intake, income)
        .arc(intake, collateral);
    cfg.arc(credit, decision)
        .arc(income, decision)
        .arc(collateral, decision);
    cfg.arc(decision, approve).arc(decision, decline);
    cfg.arc(approve, fund);
    cfg.arc(fund, close).arc(decline, close);
    let graph = cfg
        .to_goal()
        .expect("the underwriting graph is well-structured");
    println!("graph: {graph}\n");

    // --- 2. Policy: spec with triggers and global constraints -------------
    let mut spec = WorkflowSpec::new("loan_origination", graph);
    // Compliance: every funded loan must have had its credit pulled
    // before funding (redundant here — verified below), and a declined
    // application must never fund.
    spec.constraints
        .push(parse_constraint("klein_order(credit_pull, fund)").unwrap());
    spec.constraints
        .push(parse_constraint("absent(decline) or absent(fund)").unwrap());
    // Audit trigger: every decision is logged, eventually.
    spec.triggers
        .push(Trigger::eventual("decision", Goal::atom("audit_decision")));

    let compiled = spec.compile().unwrap();
    assert!(compiled.is_consistent());
    println!(
        "compiled: {} nodes (from {}), {} knots excised",
        compiled.goal.size(),
        spec.to_goal().size(),
        compiled.knots.len()
    );

    // Verification: funding always follows approval.
    assert!(spec
        .verify(&parse_constraint("klein_order(approve, fund)").unwrap())
        .unwrap()
        .holds());
    // Redundancy: the credit-before-fund rule is already structural.
    assert!(spec.is_redundant(0).unwrap());
    println!("verified: funding requires approval; constraint 0 is structurally redundant\n");

    // --- 3. Pro-active scheduling -----------------------------------------
    let program = Program::compile(&compiled.goal).unwrap();
    let path = Scheduler::new(&program).run_first().unwrap();
    let names: Vec<String> = path.iter().map(ToString::to_string).collect();
    println!("one compliant schedule:\n  {}\n", names.join(" -> "));

    // --- 4. Funding as a saga with compensation (§7) ----------------------
    // Disbursement happens in compensable steps: reserve funds, register
    // the lien, wire the money. If the lien registration fails, reserved
    // funds are released; if the wire fails, the lien is also released.
    let disbursement = saga(&[
        SagaStep::new(Goal::atom("reserve_funds"), Goal::atom("release_funds")),
        SagaStep::new(Goal::atom("register_lien"), Goal::atom("release_lien"))
            .when(Atom::prop("registry_up")),
        SagaStep::new(Goal::atom("wire_funds"), Goal::atom("recall_wire"))
            .when(Atom::prop("wire_ok")),
    ]);
    println!("disbursement saga: {disbursement}\n");

    let engine = Engine::new();
    // Registry up, wire fails: compensation of lien then funds.
    let mut db = Database::new();
    db.insert_fact("registry_up");
    db.declare("wire_ok");
    let execs = engine.executions(&disbursement, &db).unwrap();
    assert_eq!(execs.len(), 1);
    let run: Vec<String> = execs[0].events.iter().map(ToString::to_string).collect();
    println!("wire failure run:\n  {}", run.join(" -> "));
    assert_eq!(
        execs[0].event_names(),
        vec![
            sym("reserve_funds"),
            sym("register_lien"),
            sym("release_lien"),
            sym("release_funds"),
        ]
    );

    // Happy path.
    db.insert_fact("wire_ok");
    let execs = engine.executions(&disbursement, &db).unwrap();
    assert_eq!(
        execs[0].event_names(),
        vec![
            sym("reserve_funds"),
            sym("register_lien"),
            sym("wire_funds")
        ]
    );
    println!("\nhappy path run:\n  reserve_funds -> register_lien -> wire_funds");

    // --- 5. State-aware execution of the full workflow --------------------
    // Decisions come from the database: the engine resolves `approve` as a
    // sub-workflow guarded by a credit-score query.
    let mut engine = Engine::with_oracle(Box::new(StandardOracle::new()));
    engine
        .rules
        .define(
            "approve",
            ctr_workflows::logic::goal::seq(vec![
                Goal::Atom(Atom::prop("good_credit")),
                Goal::Atom(Atom::new("ins_approved", vec![Term::constant("loan1")])),
            ]),
        )
        .unwrap();
    let mut db = Database::new();
    db.insert_fact("good_credit");
    let flow = parse_goal("intake * approve * fund").unwrap();
    let execs = engine.executions(&flow, &db).unwrap();
    assert_eq!(execs.len(), 1);
    assert!(execs[0]
        .db
        .contains(sym("approved"), &[Term::constant("loan1")]));
    println!("\nstate-aware run recorded approval in the database: approved(loan1)");
}
