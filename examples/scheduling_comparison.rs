//! Pro-active vs. passive scheduling (paper, §4): the same workflow and
//! constraints driven through this library's compiled scheduler and
//! through re-implementations of the passive baselines it is compared
//! against — Singh's event-algebra validator and the Attie et al.
//! dependency automata.
//!
//! Run with: `cargo run --example scheduling_comparison`

use ctr::analysis::compile;
use ctr::constraints::Constraint;
use ctr::gen;
use ctr_baselines::{Admission, PassiveValidator, ProductScheduler, ReorderingScheduler};
use ctr_engine::scheduler::{Program, Scheduler};
use std::time::Instant;

fn main() {
    // A 6-stage, 3-lane layered workflow with Klein order constraints
    // chaining the stages.
    let goal = gen::layered_workflow(6, 3);
    let constraints = gen::klein_chain(5);
    println!(
        "workflow: {} nodes, constraints: {}\n",
        goal.size(),
        constraints.len()
    );

    // --- Pro-active: compile once, schedule with no run-time checks -----
    let t0 = Instant::now();
    let compiled = compile(&goal, &constraints).unwrap();
    let compile_time = t0.elapsed();
    assert!(compiled.is_consistent());

    let program = Program::compile(&compiled.goal).unwrap();
    let t1 = Instant::now();
    let trace = Scheduler::new(&program).run_first().expect("knot-free");
    let schedule_time = t1.elapsed();
    let names: Vec<_> = trace.iter().filter_map(ctr::term::Atom::as_event).collect();
    println!(
        "pro-active: compiled {} -> {} nodes in {compile_time:?}, scheduled {} events in {schedule_time:?}",
        goal.size(),
        compiled.goal.size(),
        names.len()
    );

    // The schedule needs no validation — but let the baselines check it.
    let validator = PassiveValidator::new(&constraints);
    assert!(validator.validate(&names));
    let product = ProductScheduler::new(&constraints);
    assert!(product.validate(&names));
    println!("  (both passive baselines confirm the compiled schedule is valid)\n");

    // --- Passive: validate sequences after the fact ----------------------
    // An external source emits events out of order against unconditional
    // order constraints; the reordering scheduler buffers them. (Only
    // single-disjunct constraints give hard reorderings — Klein
    // constraints are conditional and can only be validated post hoc.)
    let stage_orders: Vec<Constraint> = (0..5)
        .map(|i| {
            Constraint::order(
                ctr::sym(&format!("l{i}_0")),
                ctr::sym(&format!("l{}_0", i + 1)),
            )
        })
        .collect();
    let mut reorder = ReorderingScheduler::new(&stage_orders);
    let l5 = ctr::sym("l5_0");
    match reorder.admit(l5) {
        Admission::Buffered => println!("passive reordering: l5_0 arrived early — buffered"),
        other => println!("passive reordering: unexpected {other:?}"),
    }
    for i in 0..5 {
        reorder.admit(ctr::sym(&format!("l{i}_0")));
    }
    println!(
        "  after the missing stages arrived, emitted order: {:?}",
        reorder
            .emitted()
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
    );
    assert_eq!(reorder.emitted().last(), Some(&l5));

    // --- The cost asymmetry -----------------------------------------------
    // Passive validation rescans the trace per constraint: quadratic-ish.
    // The compiled scheduler's cost per path stays linear in the graph.
    // Order constraints (d = 1) keep the compiled structure linear in the
    // graph (corollary of Theorem 5.11), so per-path scheduling cost is
    // the honest comparison here; disjunctive constraints multiply the
    // compiled structure and are measured separately in experiment E1.
    println!("\nscaling (per-path scheduling vs passive validation):");
    println!(
        "{:>8} {:>16} {:>16}",
        "events", "pro-active", "passive-validate"
    );
    for lanes in [2usize, 4, 8, 16] {
        let goal = gen::layered_workflow(8, lanes);
        let constraints: Vec<Constraint> = (0..7)
            .map(|i| {
                Constraint::order(
                    ctr::sym(&format!("l{i}_0")),
                    ctr::sym(&format!("l{}_0", i + 1)),
                )
            })
            .collect();
        let compiled = compile(&goal, &constraints).unwrap();
        let program = Program::compile(&compiled.goal).unwrap();

        let t = Instant::now();
        let trace = Scheduler::new(&program).run_first().unwrap();
        let active = t.elapsed();

        let names: Vec<_> = trace.iter().filter_map(ctr::term::Atom::as_event).collect();
        let validator = PassiveValidator::new(&constraints);
        let t = Instant::now();
        for _ in 0..100 {
            assert!(validator.validate(&names));
        }
        let passive = t.elapsed() / 100;

        println!("{:>8} {:>16?} {:>16?}", names.len(), active, passive);
    }
    println!(
        "\n(the full parameter sweep is experiment E5: `cargo run -p ctr-bench --bin experiments`)"
    );
}
