//! Running a workflow management service: deploy specifications, drive
//! event-sourced instances from "external" events, recover from a crash
//! via a snapshot — the operational layer over the paper's compiled
//! schedules.
//!
//! Run with: `cargo run --example instance_runtime`

use ctr_workflows::prelude::*;

fn main() {
    let mut rt = Runtime::new();

    // Deploy two workflows. Compilation — including constraint folding
    // and knot excision — happens once, here; inconsistent specifications
    // never reach production.
    rt.deploy_source(
        r"
        workflow expense {
            graph submit * (manager_ok # finance_ok) * payout;
            constraint before(manager_ok, finance_ok);
        }
        ",
    )
    .unwrap();
    rt.deploy_source(
        r"
        workflow onboarding {
            graph offer * (sign + decline) * archive;
        }
        ",
    )
    .unwrap();
    println!("deployed: {:?}", rt.workflows());

    let broken = rt.deploy_source("workflow broken { graph b * a; constraint before(a, b); }");
    println!("deploying an inconsistent spec: {}\n", broken.unwrap_err());

    // Drive instances. The runtime exposes, at every stage, exactly the
    // events the compiled schedule allows — the pro-active scheduler as a
    // service.
    let exp = rt.start("expense").unwrap();
    let onb = rt.start("onboarding").unwrap();
    println!("expense #{exp} eligible: {:?}", rt.eligible(exp).unwrap());
    rt.fire(exp, "submit").unwrap();
    println!("after submit:        {:?}", rt.eligible(exp).unwrap());

    // finance_ok is structurally concurrent, but the compiled order
    // constraint gates it behind manager_ok:
    let refused = rt.fire(exp, "finance_ok").unwrap_err();
    println!("firing finance_ok:   {refused}");
    rt.fire(exp, "manager_ok").unwrap();
    rt.fire(exp, "finance_ok").unwrap();

    rt.fire(onb, "offer").unwrap();

    // --- Crash: snapshot everything, restart, resume ---------------------
    let snapshot = rt.snapshot();
    println!("\nsnapshot ({} bytes):\n{snapshot}", snapshot.len());
    drop(rt);

    let mut rt = Runtime::restore(&snapshot).expect("journals replay cleanly");
    println!("restored; expense journal: {:?}", rt.journal(exp).unwrap());
    assert_eq!(rt.eligible(exp).unwrap(), vec!["payout".to_owned()]);

    rt.fire(exp, "payout").unwrap();
    rt.fire(onb, "decline").unwrap();
    rt.fire(onb, "archive").unwrap();
    assert!(rt.is_complete(exp).unwrap());
    assert!(rt.is_complete(onb).unwrap());
    println!("\nboth instances completed after recovery:");
    println!("  expense:    {:?}", rt.journal(exp).unwrap());
    println!("  onboarding: {:?}", rt.journal(onb).unwrap());
}
