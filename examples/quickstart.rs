//! Quickstart: specify, verify, and schedule a workflow in a few lines.
//!
//! Run with: `cargo run --example quickstart`

use ctr::analysis::{compile, verify, Verification};
use ctr::constraints::Constraint;
use ctr::goal::{conc, seq, Goal};
use ctr_engine::scheduler::{Program, Scheduler};

fn main() {
    // An order-fulfilment workflow: after the order is taken, picking,
    // invoicing, and a credit check run concurrently; then we ship.
    let workflow = seq(vec![
        Goal::atom("take_order"),
        conc(vec![
            Goal::atom("pick_items"),
            Goal::atom("send_invoice"),
            Goal::atom("credit_check"),
        ]),
        Goal::atom("ship"),
    ]);
    println!("workflow: {workflow}\n");

    // Business policy, as global temporal constraints (paper, §3):
    // the credit check must pass before the invoice goes out, and
    // shipping anything requires the credit check to have happened.
    let policy = vec![
        Constraint::order("credit_check", "send_invoice"),
        Constraint::requires_earlier("credit_check", "ship"),
    ];

    // Compile the constraints *into* the workflow (Apply + Excise, §5).
    let compiled = compile(&workflow, &policy).expect("unique-event workflow");
    assert!(
        compiled.is_consistent(),
        "policy is satisfiable on this workflow"
    );
    println!("compiled:  {}\n", compiled.goal);

    // Verification (Theorem 5.9): every remaining execution invoices
    // after the check.
    match verify(
        &workflow,
        &policy,
        &Constraint::klein_order("credit_check", "send_invoice"),
    )
    .unwrap()
    {
        Verification::Holds => println!("verified: invoices always follow the credit check"),
        Verification::CounterExample(ce) => println!("violated, e.g. by: {ce}"),
    }

    // Pro-active scheduling (§4): the compiled goal runs with zero
    // run-time constraint checking.
    let program = Program::compile(&compiled.goal).expect("consistent");
    let mut scheduler = Scheduler::new(&program);
    println!("\nschedule:");
    while !scheduler.is_complete() {
        let eligible = scheduler.eligible();
        let names: Vec<String> = eligible
            .iter()
            .filter_map(|c| program.event(c.node))
            .map(|a| a.to_string())
            .collect();
        let step = eligible
            .first()
            .expect("knot-free compiled goals never deadlock");
        println!("  eligible now: {names:?}");
        scheduler.fire(step.node);
    }
    println!("\nexecuted path: {:?}", scheduler.trace_names());
}
