//! Example 5.7 of the paper, reproduced exactly: three innocuous-looking
//! constraints whose interaction deadlocks one branch of the workflow,
//! detected and excised as a *knot*.
//!
//! Run with: `cargo run --example knots`

use ctr::analysis::compile;
use ctr::apply::apply;
use ctr::constraints::Constraint;
use ctr::excise::excise_with_diagnostics;
use ctr::goal::{conc, or, seq, Goal};

fn main() {
    // G = γ ⊗ (η ∨ (α | β | η))
    let goal = seq(vec![
        Goal::atom("gamma"),
        or(vec![
            Goal::atom("eta"),
            conc(vec![
                Goal::atom("alpha"),
                Goal::atom("beta"),
                Goal::atom("eta"),
            ]),
        ]),
    ]);
    println!("G  = {goal}");

    // c₁: if α takes place, β must happen afterwards.
    // c₂: if β takes place, η must happen afterwards.
    // c₃: if α takes place, η must have happened before.
    let c1 = Constraint::causes_later("alpha", "beta");
    let c2 = Constraint::causes_later("beta", "eta");
    let c3 = Constraint::or(vec![
        Constraint::must_not("alpha"),
        Constraint::order("eta", "alpha"),
    ]);
    println!("c1 = {c1}");
    println!("c2 = {c2}");
    println!("c3 = {c3}\n");

    // Apply compiles the constraints into the graph. The α-branch becomes
    // G₄ of the paper: a cycle of send/receive waits across ξ₁, ξ₂, ξ₃.
    let applied = apply(&[c1.clone(), c2.clone(), c3.clone()], &goal);
    println!("Apply(c1 ∧ c2 ∧ c3, G) =\n  {applied}\n");

    // Excise detects the knot, reports it as designer feedback (G_fail),
    // and prunes the dead branch.
    let excised = excise_with_diagnostics(&applied);
    println!("Excise(…) = {}", excised.goal);
    assert_eq!(
        excised.goal,
        seq(vec![Goal::atom("gamma"), Goal::atom("eta")])
    );
    println!("\nknot reports (the paper's G_fail feedback):");
    for report in &excised.reports {
        println!("  - {report}");
    }
    assert!(!excised.reports.is_empty());

    // The one-call pipeline agrees, and the result — exactly γ ⊗ η as in
    // the paper — is consistent: the workflow survives, minus the branch
    // that could never satisfy all three constraints.
    let compiled = compile(&goal, &[c1, c2, c3]).unwrap();
    assert!(compiled.is_consistent());
    assert_eq!(
        compiled.goal,
        seq(vec![Goal::atom("gamma"), Goal::atom("eta")])
    );
    println!("\nExcise(Apply(c1 ∧ c2 ∧ c3, G)) ≡ gamma * eta   — as in Example 5.7");

    // Tightening c₃ to an unconditional order (η must precede α, and both
    // must happen) kills the η-only branch too: the whole specification
    // becomes inconsistent, constructively.
    let strict = compile(
        &goal,
        &[
            Constraint::causes_later("alpha", "beta"),
            Constraint::causes_later("beta", "eta"),
            Constraint::order("eta", "alpha"),
        ],
    )
    .unwrap();
    assert!(!strict.is_consistent());
    println!("with the unconditional order constraint instead, the specification is inconsistent");
}
