#![warn(missing_docs)]

//! # ctr-workflows — the umbrella crate
//!
//! One `use` away from the whole system described in *Logic Based
//! Modeling and Analysis of Workflows* (PODS 1998): specify workflows as
//! Concurrent Transaction Logic goals, compile global temporal
//! constraints into them, verify properties constructively, and schedule
//! the result with zero run-time constraint checking.
//!
//! The member crates, re-exported here:
//!
//! * [`logic`] (`ctr`) — goals, the `CONSTR` algebra, `Apply`/`Excise`,
//!   consistency/verification/redundancy, the reference trace semantics;
//! * [`state`] (`ctr-state`) — relational database states and transition
//!   oracles for elementary updates;
//! * [`engine`] (`ctr-engine`) — the SLD-style proof procedure and the
//!   compiled pro-active scheduler;
//! * [`workflow`] (`ctr-workflow`) — control flow graphs, triggers,
//!   sub-workflows, compensation/sagas, and the spec pipeline;
//! * [`parser`] (`ctr-parser`) — the textual specification language;
//! * [`runtime`] (`ctr-runtime`) — deployment, event-sourced instances,
//!   and snapshots;
//! * [`baselines`] (`ctr-baselines`) — the passive/automata/model-checking
//!   comparators from the paper's related work.
//!
//! ```
//! use ctr_workflows::prelude::*;
//!
//! let spec = parse_spec(r"
//!     workflow payments {
//!         graph submit * (fraud_check # prepare) * settle;
//!         constraint before(fraud_check, settle);
//!     }
//! ").unwrap();
//!
//! let compiled = spec.compile().unwrap();
//! assert!(compiled.is_consistent());
//!
//! let program = Program::compile(&compiled.goal).unwrap();
//! let path = Scheduler::new(&program).run_first().unwrap();
//! assert_eq!(path.len(), 4);
//! ```

pub use ctr as logic;
pub use ctr_baselines as baselines;
pub use ctr_engine as engine;
pub use ctr_parser as parser;
pub use ctr_runtime as runtime;
pub use ctr_state as state;
pub use ctr_workflow as workflow;

/// The most common imports, for examples and downstream binaries.
pub mod prelude {
    pub use ctr::analysis::{compile, is_consistent, is_redundant, verify, Compiled, Verification};
    pub use ctr::constraints::Constraint;
    pub use ctr::goal::{conc, isolated, or, possible, seq, Goal};
    pub use ctr::symbol::{sym, Symbol};
    pub use ctr::term::{Atom, Term};
    pub use ctr_engine::{Engine, Program, Scheduler};
    pub use ctr_parser::{parse_constraint, parse_goal, parse_spec};
    pub use ctr_runtime::{InstanceStatus, Runtime};
    pub use ctr_state::{Database, StandardOracle};
    pub use ctr_workflow::{saga, Cfg, SagaStep, Trigger, WorkflowSpec};
}
