//! Loops and iteration (paper, §7, "Loops and iteration").
//!
//! Loops in a control flow graph correspond to recursive CTR rules, which
//! the constraint compiler cannot accept directly: the unique-event
//! property (Definition 3.1) fails as soon as an event can recur. The
//! paper points out that the property "has to be relaxed to handle
//! workflows with loops"; the standard compilation-friendly relaxation is
//! **bounded unrolling with occurrence renaming** — iteration `i` of event
//! `e` becomes the distinct event `e@i`, restoring uniqueness.
//!
//! [`unroll`] produces the unrolled goal; [`Unrolling`] maps constraints
//! written against base event names onto the renamed occurrences
//! (existential reading: *some* iteration's occurrence satisfies the
//! dependency), so the whole `Apply`/`Excise` pipeline applies unchanged.
//! For unbounded iteration, execute the recursive rules directly with
//! `ctr-engine` (whose rule bases accept recursion behind an opt-in and a
//! depth bound).

use ctr::constraints::Constraint;
use ctr::goal::{conc, isolated, or, possible, seq, Goal};
use ctr::symbol::{sym, Symbol};
use std::collections::BTreeMap;

/// The renamed event for iteration `i` (1-based) of `base`.
pub fn iteration_event(base: Symbol, i: usize) -> Symbol {
    sym(&format!("{base}@{i}"))
}

/// A bounded-loop unrolling: the goal plus the mapping from base events
/// to their per-iteration renamings.
#[derive(Clone, Debug)]
pub struct Unrolling {
    /// `body^min ⊗ (body^{min+1} ∨ …)` with renamed events.
    pub goal: Goal,
    /// base event → the renamed events of each unrolled iteration.
    pub occurrences: BTreeMap<Symbol, Vec<Symbol>>,
}

/// Unrolls `repeat body between min and max times` into a loop-free,
/// unique-event goal. Every propositional event `e` of the body becomes
/// `e@i` in iteration `i`.
///
/// # Panics
///
/// Panics if `min > max` or `max == 0`.
pub fn unroll(body: &Goal, min: usize, max: usize) -> Unrolling {
    assert!(min <= max, "min iterations must not exceed max");
    assert!(max > 0, "at least one unrolled iteration is required");

    let mut occurrences: BTreeMap<Symbol, Vec<Symbol>> = BTreeMap::new();
    let iterations: Vec<Goal> = (1..=max)
        .map(|i| rename_iteration(body, i, &mut occurrences))
        .collect();

    // mandatory prefix ⊗ optional nested suffix:
    // it₁ ⊗ … ⊗ it_min ⊗ (ε ∨ it_{min+1} ⊗ (ε ∨ …)).
    let mut optional = Goal::Empty;
    for it in iterations[min..].iter().rev() {
        optional = or(vec![Goal::Empty, seq(vec![it.clone(), optional])]);
    }
    let mut parts: Vec<Goal> = iterations[..min].to_vec();
    parts.push(optional);
    Unrolling {
        goal: seq(parts),
        occurrences,
    }
}

fn rename_iteration(
    goal: &Goal,
    i: usize,
    occurrences: &mut BTreeMap<Symbol, Vec<Symbol>>,
) -> Goal {
    match goal {
        Goal::Atom(a) => match a.as_event() {
            Some(e) => {
                let renamed = iteration_event(e, i);
                let list = occurrences.entry(e).or_default();
                if !list.contains(&renamed) {
                    list.push(renamed);
                }
                Goal::atom(renamed)
            }
            // Conditions and first-order atoms are state queries, not
            // events: they repeat freely.
            None => goal.clone(),
        },
        Goal::Seq(gs) => seq(gs
            .iter()
            .map(|g| rename_iteration(g, i, occurrences))
            .collect()),
        Goal::Conc(gs) => conc(
            gs.iter()
                .map(|g| rename_iteration(g, i, occurrences))
                .collect(),
        ),
        Goal::Or(gs) => or(gs
            .iter()
            .map(|g| rename_iteration(g, i, occurrences))
            .collect()),
        Goal::Isolated(g) => isolated(rename_iteration(g, i, occurrences)),
        Goal::Possible(g) => possible(rename_iteration(g, i, occurrences)),
        other => other.clone(),
    }
}

impl Unrolling {
    /// Lifts a constraint over base event names to the unrolled goal.
    ///
    /// Each `∇e` becomes `∨ᵢ ∇e@i` ("some iteration's occurrence"), and
    /// each `¬∇e` becomes `∧ᵢ ¬∇e@i` ("no iteration's occurrence") — the
    /// natural existential reading of dependencies over repeating events.
    /// Events not occurring in the loop body pass through unchanged.
    pub fn lift(&self, constraint: &Constraint) -> Constraint {
        match constraint {
            Constraint::Must(e) => match self.occurrences.get(e) {
                Some(renamed) => {
                    Constraint::or(renamed.iter().map(|&r| Constraint::Must(r)).collect())
                }
                None => constraint.clone(),
            },
            Constraint::MustNot(e) => match self.occurrences.get(e) {
                Some(renamed) => {
                    Constraint::and(renamed.iter().map(|&r| Constraint::MustNot(r)).collect())
                }
                None => constraint.clone(),
            },
            Constraint::Serial(_) => {
                // ∇e₁ ⊗ ∇e₂ over iterations: some pair of occurrences in
                // order. Split first (Prop 3.3), then lift each binary
                // order as the disjunction over occurrence pairs.
                let split = ctr::constraints::split_serials(constraint);
                match split {
                    Constraint::Serial(pair) => self.lift_order(pair[0], pair[1]),
                    other => self.lift(&other),
                }
            }
            Constraint::And(cs) => Constraint::and(cs.iter().map(|c| self.lift(c)).collect()),
            Constraint::Or(cs) => Constraint::or(cs.iter().map(|c| self.lift(c)).collect()),
            Constraint::Not(c) => Constraint::not(self.lift(c)),
        }
    }

    fn variants(&self, e: Symbol) -> Vec<Symbol> {
        self.occurrences.get(&e).cloned().unwrap_or_else(|| vec![e])
    }

    fn lift_order(&self, a: Symbol, b: Symbol) -> Constraint {
        let mut alternatives = Vec::new();
        for &ra in &self.variants(a) {
            for &rb in &self.variants(b) {
                if ra != rb {
                    alternatives.push(Constraint::Serial(vec![ra, rb]));
                }
            }
        }
        Constraint::or(alternatives)
    }

    /// Strips iteration suffixes from a trace, recovering base event
    /// names (`e@2` → `e`).
    pub fn debase(trace: &[Symbol]) -> Vec<Symbol> {
        trace
            .iter()
            .map(|s| {
                let name = s.as_str();
                match name.rsplit_once('@') {
                    Some((base, iter)) if iter.chars().all(|c| c.is_ascii_digit()) => sym(base),
                    _ => *s,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::analysis::compile;
    use ctr::semantics::event_traces;
    use ctr::unique::is_unique_event;

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    #[test]
    fn unrolled_goal_is_unique_event() {
        let body = seq(vec![g("fetch"), or(vec![g("retry"), g("ok")])]);
        let u = unroll(&body, 1, 3);
        assert!(is_unique_event(&u.goal));
        assert_eq!(u.occurrences[&sym("fetch")].len(), 3);
    }

    #[test]
    fn iteration_counts_are_respected() {
        let u = unroll(&g("tick"), 1, 3);
        let traces = event_traces(&u.goal, 10_000).unwrap();
        let lengths: Vec<usize> = traces.iter().map(Vec::len).collect();
        assert_eq!(lengths, vec![1, 2, 3], "between 1 and 3 ticks");
        // And base names recover.
        for t in &traces {
            assert!(Unrolling::debase(t).iter().all(|&e| e == sym("tick")));
        }
    }

    #[test]
    fn zero_minimum_allows_empty_run() {
        let u = unroll(&g("tick"), 0, 2);
        let traces = event_traces(&u.goal, 10_000).unwrap();
        assert_eq!(
            traces.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn lifted_must_means_some_iteration() {
        let body = or(vec![g("pay_card"), g("pay_cash")]);
        let u = unroll(&body, 1, 2);
        let c = u.lift(&Constraint::must("pay_card"));
        let compiled = compile(&u.goal, &[c]).unwrap();
        let traces = event_traces(&compiled.goal, 10_000).unwrap();
        assert!(!traces.is_empty());
        for t in traces {
            assert!(
                t.iter().any(|s| s.as_str().starts_with("pay_card@")),
                "trace {t:?} lacks a card payment"
            );
        }
    }

    #[test]
    fn lifted_must_not_bans_every_iteration() {
        let body = or(vec![g("pay_card"), g("pay_cash")]);
        let u = unroll(&body, 1, 2);
        let c = u.lift(&Constraint::must_not("pay_card"));
        let compiled = compile(&u.goal, &[c]).unwrap();
        let traces = event_traces(&compiled.goal, 10_000).unwrap();
        assert!(!traces.is_empty());
        for t in traces {
            assert!(t.iter().all(|s| !s.as_str().starts_with("pay_card@")));
        }
    }

    #[test]
    fn lifted_order_spans_iterations() {
        // In each iteration a and b run concurrently; require some a
        // before some b overall.
        let body = conc(vec![g("a"), g("b")]);
        let u = unroll(&body, 2, 2);
        let c = u.lift(&Constraint::order("a", "b"));
        let compiled = compile(&u.goal, &[c]).unwrap();
        assert!(compiled.is_consistent());
        let traces = event_traces(&compiled.goal, 100_000).unwrap();
        for t in &traces {
            let first_a = t.iter().position(|s| s.as_str().starts_with("a@"));
            let last_b = t.iter().rposition(|s| s.as_str().starts_with("b@"));
            assert!(first_a.unwrap() < last_b.unwrap(), "trace {t:?}");
        }
    }

    #[test]
    fn constraints_on_non_loop_events_pass_through() {
        let u = unroll(&g("tick"), 1, 2);
        let c = u.lift(&Constraint::must("outside"));
        assert_eq!(c, Constraint::must("outside"));
    }

    #[test]
    #[should_panic(expected = "min iterations")]
    fn inverted_bounds_panic() {
        unroll(&g("x"), 3, 2);
    }

    #[test]
    fn debase_ignores_literal_at_signs_in_names() {
        let t = vec![sym("tick@2"), sym("plain"), sym("odd@name")];
        assert_eq!(
            Unrolling::debase(&t),
            vec![sym("tick"), sym("plain"), sym("odd@name")]
        );
    }
}
