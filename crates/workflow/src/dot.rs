//! Graphviz (DOT) rendering of goals — the visual counterpart of the
//! control flow graph view ("a good way to visualize the overall flow of
//! control", paper §1).
//!
//! A concurrent-Horn goal renders as a structured flow graph: `⊗` chains
//! become arrows, `|` blocks fork at an AND node and join at its match,
//! `∨` blocks fork at an OR node, `⊙` draws a dashed enclosure, and
//! channels appear as dotted cross arrows from `send(ξ)` to
//! `receive(ξ)` — which makes compiled constraints *visible* in the
//! rendered workflow.

use ctr::goal::{Channel, Goal};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders a goal as a complete DOT digraph.
pub fn goal_to_dot(name: &str, goal: &Goal) -> String {
    let mut r = Renderer::default();
    let (entry, exit) = r.walk(goal);
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
    let _ = writeln!(
        out,
        "  start [shape=circle, label=\"\", style=filled, fillcolor=black, width=0.15];"
    );
    let _ = writeln!(
        out,
        "  end [shape=doublecircle, label=\"\", style=filled, fillcolor=black, width=0.12];"
    );
    out.push_str(&r.body);
    let _ = writeln!(out, "  start -> n{entry};");
    let _ = writeln!(out, "  n{exit} -> end;");
    // Channel cross-edges: compiled order constraints made visible.
    for (ch, (send, recv)) in &r.channels {
        if let (Some(s), Some(t)) = (send, recv) {
            let _ = writeln!(
                out,
                "  n{s} -> n{t} [style=dotted, color=crimson, label=\"{ch}\"];"
            );
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[derive(Default)]
struct Renderer {
    body: String,
    next: usize,
    cluster: usize,
    channels: BTreeMap<Channel, (Option<usize>, Option<usize>)>,
}

impl Renderer {
    fn fresh(&mut self) -> usize {
        self.next += 1;
        self.next
    }

    fn node(&mut self, label: &str, attrs: &str) -> usize {
        let id = self.fresh();
        let _ = writeln!(self.body, "  n{id} [label=\"{}\"{}];", escape(label), attrs);
        id
    }

    fn edge(&mut self, from: usize, to: usize) {
        let _ = writeln!(self.body, "  n{from} -> n{to};");
    }

    /// Renders a subgoal; returns its (entry, exit) node ids.
    fn walk(&mut self, goal: &Goal) -> (usize, usize) {
        match goal {
            Goal::Atom(a) => {
                let id = self.node(&a.to_string(), ", shape=box, style=rounded");
                (id, id)
            }
            Goal::Send(c) => {
                let id = self.node(&format!("send {c}"), ", shape=cds, color=crimson");
                self.channels.entry(*c).or_default().0 = Some(id);
                (id, id)
            }
            Goal::Receive(c) => {
                let id = self.node(&format!("recv {c}"), ", shape=cds, color=crimson");
                self.channels.entry(*c).or_default().1 = Some(id);
                (id, id)
            }
            Goal::Empty => {
                let id = self.node("", ", shape=point");
                (id, id)
            }
            Goal::NoPath => {
                let id = self.node("nopath", ", shape=octagon, color=red");
                (id, id)
            }
            Goal::Seq(gs) => {
                let mut entry = None;
                let mut prev: Option<usize> = None;
                for g in gs.iter() {
                    let (e, x) = self.walk(g);
                    if let Some(p) = prev {
                        self.edge(p, e);
                    }
                    entry.get_or_insert(e);
                    prev = Some(x);
                }
                (
                    entry.expect("canonical Seq is non-empty"),
                    prev.expect("non-empty"),
                )
            }
            Goal::Conc(gs) => self.block(gs, "AND", "diamond"),
            Goal::Or(gs) => self.block(gs, "OR", "diamond, style=dashed"),
            Goal::Isolated(g) => {
                let c = self.cluster;
                self.cluster += 1;
                let _ = writeln!(self.body, "  subgraph cluster_iso{c} {{");
                let _ = writeln!(self.body, "    label=\"iso\"; style=dashed;");
                let (e, x) = self.walk(g);
                let _ = writeln!(self.body, "  }}");
                (e, x)
            }
            Goal::Possible(g) => {
                let c = self.cluster;
                self.cluster += 1;
                let _ = writeln!(self.body, "  subgraph cluster_poss{c} {{");
                let _ = writeln!(self.body, "    label=\"poss\"; style=dotted;");
                let (e, x) = self.walk(g);
                let _ = writeln!(self.body, "  }}");
                (e, x)
            }
        }
    }

    /// A fork/join block for `|` or `∨`.
    fn block(&mut self, gs: &[Goal], label: &str, shape: &str) -> (usize, usize) {
        let fork = self.node(label, &format!(", shape={shape}"));
        let join = self.node("", ", shape=point");
        for g in gs.iter() {
            let (e, x) = self.walk(g);
            self.edge(fork, e);
            self.edge(x, join);
        }
        (fork, join)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::goal::{conc, isolated, or, seq};

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    #[test]
    fn seq_renders_as_chain() {
        let dot = goal_to_dot("t", &seq(vec![g("a"), g("b")]));
        assert!(dot.starts_with("digraph \"t\" {"));
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("label=\"b\""));
        assert!(dot.contains("start ->"));
        assert!(dot.contains("-> end;"));
    }

    #[test]
    fn forks_render_with_labels() {
        let dot = goal_to_dot("t", &conc(vec![g("a"), or(vec![g("b"), g("c")])]));
        assert!(dot.contains("label=\"AND\""));
        assert!(dot.contains("label=\"OR\""));
    }

    #[test]
    fn channels_render_as_cross_edges() {
        use ctr::apply::apply;
        use ctr::constraints::Constraint;
        let goal = conc(vec![g("a"), g("b")]);
        let compiled = apply(&[Constraint::order("a", "b")], &goal);
        let dot = goal_to_dot("t", &compiled);
        assert!(
            dot.contains("style=dotted, color=crimson"),
            "channel edge missing:\n{dot}"
        );
        assert!(dot.contains("send xi"));
        assert!(dot.contains("recv xi"));
    }

    #[test]
    fn isolation_renders_as_cluster() {
        let dot = goal_to_dot("t", &isolated(seq(vec![g("a"), g("b")])));
        assert!(dot.contains("subgraph cluster_iso0"));
        assert!(dot.contains("label=\"iso\""));
    }

    #[test]
    fn labels_are_escaped() {
        let dot = goal_to_dot("we\"ird", &g("x"));
        assert!(dot.contains("digraph \"we\\\"ird\""));
    }

    #[test]
    fn braces_are_balanced() {
        let goal = seq(vec![
            isolated(conc(vec![g("a"), g("b")])),
            or(vec![g("c"), g("d")]),
        ]);
        let dot = goal_to_dot("t", &goal);
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
