//! Timers compiled into the control flow graph as ordinary channel
//! goals.
//!
//! The surface forms `after(ev, 30s)`, `deadline(ev, 24h)`, and
//! `every(ev, 5m)` follow the same compilation discipline as triggers
//! and order constraints: no new goal forms, only `send(ξ)`/
//! `receive(ξ)` plumbing plus one synthetic **tick event** per timer
//! whose name ([`ctr::timer::tick_name`]) carries the delay. The
//! verifier, the tabled `Analyzer`, the journal, and the wire protocol
//! all see plain events; only the runtime's timer wheel interprets the
//! names.
//!
//! * **`after(e, d)`** gates `e` behind the tick: every occurrence of
//!   `e` becomes `receive(ξ) ⊗ e`, and `tick ⊗ send(ξ)` runs
//!   concurrently with the whole goal. `e` cannot fire before the tick
//!   has — the exact shape `Apply` uses for `before(tick, e)` — and
//!   the goal is rewritten *in place* (a single copy), so no
//!   or-branch duplication can misroute an early commitment.
//! * **`deadline(e, d)`** races a watchdog against `e`: every
//!   occurrence of `e` becomes `e ⊗ send(ξ)`, and
//!   `receive(ξ) ∨ tick` runs concurrently. Firing `e` enables the
//!   silent receive (the structural cancellation the runtime mirrors
//!   by disarming the wheel entry); firing the tick resolves the
//!   watchdog the other way and surfaces as an ordinary event that
//!   enactment escalates into compensation. In the *verification*
//!   semantics the tick remains possible even after `e` — a sound
//!   over-approximation of the runtime, which cancels it.
//! * **`every(e, d)`** is pure sugar over `after`: the k-th occurrence
//!   of the family `e@1, e@2, …` (minted by `repeat`) is gated at
//!   `k·d`, staggering the family on the period.
//!
//! A timer whose event does not occur in the goal compiles to the
//! identity, the same convention as an eventual trigger on a missing
//! event. Declaring the same timer twice mints the same tick name
//! twice and is rejected downstream by the unique-event check.

use crate::triggers::rewrite_event;
use ctr::apply::ChannelAlloc;
use ctr::goal::{conc, or, seq, Goal};
use ctr::symbol::{sym, Symbol};
use ctr::timer::{render_delay, tick_name, TimerKind};
use std::fmt;

/// What the timer does when it elapses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimerRule {
    /// `after(ev, d)`: the event may not fire before `d` has elapsed.
    After {
        /// Delay from instance start, in milliseconds.
        delay_ms: u64,
    },
    /// `deadline(ev, d)`: if the event has not fired within `d`, the
    /// tick fires instead (escalation / compensation at enactment).
    Deadline {
        /// Deadline from instance start, in milliseconds.
        delay_ms: u64,
    },
    /// `every(ev, d)`: the k-th occurrence of the family is gated at
    /// `k·d` — a periodic schedule over `repeat`-minted occurrences.
    Every {
        /// Period between occurrences, in milliseconds.
        period_ms: u64,
    },
}

/// One surface timer declaration: `after(ev, 30s)` etc.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerSpec {
    /// The guarded event — an exact name or a `repeat` family base
    /// (`poll` matches `poll@1`, `poll@2`, …).
    pub event: Symbol,
    /// Gate, watchdog, or periodic schedule.
    pub rule: TimerRule,
}

impl TimerSpec {
    /// An `after(event, delay)` gate.
    pub fn after(event: impl Into<Symbol>, delay_ms: u64) -> TimerSpec {
        TimerSpec {
            event: event.into(),
            rule: TimerRule::After { delay_ms },
        }
    }

    /// A `deadline(event, delay)` watchdog.
    pub fn deadline(event: impl Into<Symbol>, delay_ms: u64) -> TimerSpec {
        TimerSpec {
            event: event.into(),
            rule: TimerRule::Deadline { delay_ms },
        }
    }

    /// An `every(event, period)` schedule.
    pub fn every(event: impl Into<Symbol>, period_ms: u64) -> TimerSpec {
        TimerSpec {
            event: event.into(),
            rule: TimerRule::Every { period_ms },
        }
    }
}

impl fmt::Display for TimerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.rule {
            TimerRule::After { delay_ms } => {
                write!(f, "after({}, {})", self.event, render_delay(delay_ms))
            }
            TimerRule::Deadline { delay_ms } => {
                write!(f, "deadline({}, {})", self.event, render_delay(delay_ms))
            }
            TimerRule::Every { period_ms } => {
                write!(f, "every({}, {})", self.event, render_delay(period_ms))
            }
        }
    }
}

/// The events of `goal` matching a timer's `event`: the exact name, or
/// `repeat`-minted occurrences `event@1`, `event@2`, …. Returned in
/// occurrence order (the exact name counts as occurrence 0); names
/// that are themselves ticks never match (a timer cannot time another
/// timer's tick).
fn matching_events(goal: &Goal, event: Symbol) -> Vec<(u64, Symbol)> {
    let base = event.as_str();
    let mut found: Vec<(u64, Symbol)> = goal
        .events()
        .into_iter()
        .filter(|e| ctr::timer::parse_tick(e.as_str()).is_none())
        .filter_map(|e| {
            let name = e.as_str();
            if name == base {
                return Some((0, e));
            }
            let suffix = name.strip_prefix(base)?.strip_prefix('@')?;
            if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
                Some((suffix.parse().ok()?, e))
            } else {
                None
            }
        })
        .collect();
    found.sort_unstable();
    found
}

/// Compiles one timer into the goal; identity when the event is
/// absent. `channels` must be fresh for `goal`
/// ([`ChannelAlloc::fresh_for`]).
pub fn compile_timer(goal: &Goal, timer: &TimerSpec, channels: &mut ChannelAlloc) -> Goal {
    let mut current = goal.clone();
    for (k, target) in matching_events(goal, timer.event) {
        let (kind, delay_ms) = match timer.rule {
            TimerRule::After { delay_ms } => (TimerKind::After, delay_ms),
            TimerRule::Deadline { delay_ms } => (TimerKind::Deadline, delay_ms),
            // The k-th family member waits k periods; a bare (non-
            // family) event counts as the first occurrence.
            TimerRule::Every { period_ms } => {
                (TimerKind::After, period_ms.saturating_mul(k.max(1)))
            }
        };
        let tick = Goal::atom(sym(&tick_name(target.as_str(), kind, delay_ms)));
        let xi = channels.fresh();
        current = match kind {
            TimerKind::After => {
                let gated = rewrite_event(
                    &current,
                    target,
                    &seq(vec![Goal::Receive(xi), Goal::atom(target)]),
                );
                conc(vec![gated, seq(vec![tick, Goal::Send(xi)])])
            }
            TimerKind::Deadline => {
                let signalling = rewrite_event(
                    &current,
                    target,
                    &seq(vec![Goal::atom(target), Goal::Send(xi)]),
                );
                conc(vec![signalling, or(vec![Goal::Receive(xi), tick])])
            }
        };
    }
    current
}

/// Compiles a list of timers in order (like triggers, earlier rewrites
/// are visible to later ones, so an event carrying both an `after`
/// gate and a `deadline` watchdog composes).
pub fn compile_timers(goal: &Goal, timers: &[TimerSpec], channels: &mut ChannelAlloc) -> Goal {
    let mut current = goal.clone();
    for t in timers {
        current = compile_timer(&current, t, channels);
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::semantics::event_traces;
    use ctr::timer::parse_tick;
    use std::collections::BTreeSet;

    const BUDGET: usize = 100_000;

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    fn traces(goal: &Goal) -> BTreeSet<Vec<Symbol>> {
        event_traces(goal, BUDGET).unwrap()
    }

    fn compile(goal: &Goal, timer: TimerSpec) -> Goal {
        let mut channels = ChannelAlloc::fresh_for(goal);
        compile_timer(goal, &timer, &mut channels)
    }

    #[test]
    fn after_gates_the_event_behind_its_tick() {
        let goal = seq(vec![g("a"), g("b")]);
        let compiled = compile(&goal, TimerSpec::after("b", 30_000));
        let tick = sym("b@after30000");
        let ts = traces(&compiled);
        assert!(!ts.is_empty());
        for t in &ts {
            let tick_at = t.iter().position(|e| *e == tick).expect("tick fires");
            let b_at = t.iter().position(|e| *e == sym("b")).expect("b fires");
            assert!(tick_at < b_at, "tick must precede b: {t:?}");
        }
    }

    #[test]
    fn deadline_races_the_watchdog_against_the_event() {
        let goal = g("pay");
        let compiled = compile(&goal, TimerSpec::deadline("pay", 1_000));
        let tick = sym("pay@deadline1000");
        let ts = traces(&compiled);
        // pay alone (watchdog cancelled via the silent receive), the
        // tick first (deadline expired before pay), and the sound
        // over-approximation where the tick fires after pay.
        assert!(ts.contains(&vec![sym("pay")]));
        assert!(ts.contains(&vec![tick, sym("pay")]));
        assert_eq!(ts.len(), 3, "{ts:?}");
    }

    #[test]
    fn deadline_tick_resolves_an_abandoned_watchdog() {
        // If the base event sits on an untaken or-branch, completion
        // requires the tick: the deadline *must* expire.
        let goal = or(vec![g("pay"), g("cancel")]);
        let compiled = compile(&goal, TimerSpec::deadline("pay", 1_000));
        let tick = sym("pay@deadline1000");
        let ts = traces(&compiled);
        assert!(ts.contains(&vec![sym("cancel"), tick]));
        assert!(ts.contains(&vec![tick, sym("cancel")]));
        assert!(ts.contains(&vec![sym("pay")]));
    }

    #[test]
    fn every_staggers_the_family_on_the_period() {
        let unrolled = crate::loops::unroll(&g("poll"), 2, 2).goal;
        let goal = seq(vec![g("start"), unrolled]);
        let compiled = compile(&goal, TimerSpec::every("poll", 5_000));
        let events = compiled.events();
        assert!(events.contains(&sym("poll@1@after5000")));
        assert!(events.contains(&sym("poll@2@after10000")));
        // And each occurrence is gated behind its own tick.
        for t in &traces(&compiled) {
            for (k, tick) in [(1u32, "poll@1@after5000"), (2, "poll@2@after10000")] {
                let tick_at = t.iter().position(|e| e.as_str() == tick).unwrap();
                let ev = format!("poll@{k}");
                let ev_at = t.iter().position(|e| e.as_str() == ev).unwrap();
                assert!(tick_at < ev_at, "{t:?}");
            }
        }
    }

    #[test]
    fn missing_event_is_identity() {
        let goal = seq(vec![g("a"), g("b")]);
        assert_eq!(compile(&goal, TimerSpec::after("zzz", 5)), goal);
    }

    #[test]
    fn ticks_never_match_as_timer_targets() {
        let goal = seq(vec![g("a"), g("b")]);
        let once = compile(&goal, TimerSpec::deadline("b", 500));
        // A second timer on the tick's name is identity: ticks are not
        // timeable events.
        let mut channels = ChannelAlloc::fresh_for(&once);
        let again = compile_timer(&once, &TimerSpec::after("b@deadline500", 9), &mut channels);
        assert_eq!(again, once);
    }

    #[test]
    fn compiled_ticks_parse_back_to_their_delays() {
        let goal = conc(vec![g("a"), g("b")]);
        let compiled = compile(&goal, TimerSpec::deadline("a", 86_400_000));
        let ticks: Vec<_> = compiled
            .events()
            .into_iter()
            .filter_map(|e| parse_tick(e.as_str()).map(|t| (t.base.to_owned(), t.delay_ms)))
            .collect();
        assert_eq!(ticks, vec![("a".to_owned(), 86_400_000)]);
    }

    #[test]
    fn after_and_deadline_compose_on_one_event() {
        let goal = seq(vec![g("a"), g("b")]);
        let mut channels = ChannelAlloc::fresh_for(&goal);
        let compiled = compile_timers(
            &goal,
            &[TimerSpec::after("b", 100), TimerSpec::deadline("b", 500)],
            &mut channels,
        );
        assert!(ctr::unique::check_unique_events(&compiled).is_ok());
        let events = compiled.events();
        assert!(events.contains(&sym("b@after100")));
        assert!(events.contains(&sym("b@deadline500")));
        for t in &traces(&compiled) {
            if let Some(b_at) = t.iter().position(|e| *e == sym("b")) {
                let gate = t.iter().position(|e| *e == sym("b@after100")).unwrap();
                assert!(gate < b_at, "{t:?}");
            }
        }
    }
}
