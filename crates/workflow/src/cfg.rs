//! Control flow graphs and their translation into CTR.
//!
//! The control flow graph is "the primary specification means in most
//! commercial implementations of workflow management systems" (paper, §1):
//! activities with AND/OR-labeled successor sets and transition conditions
//! on arcs. Equation (1) of the paper translates Figure 1's graph into a
//! concurrent-Horn goal; this module implements that translation for any
//! *well-structured* (series-parallel) graph.
//!
//! The algorithm is classical two-terminal series-parallel reduction:
//! every activity becomes an edge `v_in → v_out` labeled with its atom;
//! arcs become edges labeled with their transition condition (or the empty
//! goal). Series reductions concatenate labels with `⊗`; parallel
//! reductions merge labels with `|` or `∨` according to the *split kind*
//! of the diverging activity. A graph that does not reduce to a single
//! `start → end` edge is not series-parallel and is rejected — such graphs
//! have no faithful concurrent-Horn reading.

use ctr::goal::{conc, or, seq, Goal};
use ctr::term::Atom;
use std::collections::BTreeMap;
use std::fmt;

/// Index of an activity node in a [`Cfg`].
pub type ActivityId = usize;

/// How a node's outgoing arcs combine (paper, Figure 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SplitKind {
    /// All successors execute, concurrently (`|`).
    #[default]
    And,
    /// Exactly one successor executes, chosen nondeterministically (`∨`).
    Or,
}

/// An arc between activities, optionally guarded by a transition
/// condition — a query on the current workflow state that must hold for
/// the successor to begin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Arc {
    /// Target activity.
    pub to: ActivityId,
    /// Transition condition, queried when the source completes.
    pub condition: Option<Atom>,
}

#[derive(Clone, Debug)]
struct Activity {
    atom: Atom,
    split: SplitKind,
    arcs: Vec<Arc>,
}

/// A control flow graph with designated initial and final activities.
#[derive(Clone, Debug, Default)]
pub struct Cfg {
    activities: Vec<Activity>,
}

/// Errors in graph construction or translation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CfgError {
    /// The graph is empty.
    Empty,
    /// The graph is not series-parallel (unstructured splits/joins), so it
    /// has no concurrent-Horn translation.
    NotSeriesParallel,
    /// An arc references a nonexistent activity.
    DanglingArc(ActivityId),
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::Empty => write!(f, "control flow graph has no activities"),
            CfgError::NotSeriesParallel => write!(
                f,
                "control flow graph is not well-structured (series-parallel); \
                 unmatched splits/joins cannot be expressed as a concurrent-Horn goal"
            ),
            CfgError::DanglingArc(id) => write!(f, "arc references unknown activity #{id}"),
        }
    }
}

impl std::error::Error for CfgError {}

impl Cfg {
    /// An empty graph.
    pub fn new() -> Cfg {
        Cfg::default()
    }

    /// Adds an activity with the given split kind; returns its id. The
    /// first activity added is the initial one; the final activity is the
    /// unique sink (validated at translation).
    pub fn add(&mut self, atom: impl Into<Atom>, split: SplitKind) -> ActivityId {
        self.activities.push(Activity {
            atom: atom.into(),
            split,
            arcs: Vec::new(),
        });
        self.activities.len() - 1
    }

    /// Adds an AND-split activity (the common case).
    pub fn activity(&mut self, name: &str) -> ActivityId {
        self.add(Atom::prop(name), SplitKind::And)
    }

    /// Adds an OR-split activity.
    pub fn choice(&mut self, name: &str) -> ActivityId {
        self.add(Atom::prop(name), SplitKind::Or)
    }

    /// Connects `from → to` unconditionally.
    pub fn arc(&mut self, from: ActivityId, to: ActivityId) -> &mut Self {
        self.activities[from].arcs.push(Arc {
            to,
            condition: None,
        });
        self
    }

    /// Connects `from → to` guarded by a transition condition.
    pub fn arc_if(&mut self, from: ActivityId, to: ActivityId, condition: Atom) -> &mut Self {
        self.activities[from].arcs.push(Arc {
            to,
            condition: Some(condition),
        });
        self
    }

    /// Number of activities.
    pub fn len(&self) -> usize {
        self.activities.len()
    }

    /// True if the graph has no activities.
    pub fn is_empty(&self) -> bool {
        self.activities.is_empty()
    }

    /// Translates the graph into a concurrent-Horn goal — the
    /// implementation of equation (1).
    pub fn to_goal(&self) -> Result<Goal, CfgError> {
        if self.activities.is_empty() {
            return Err(CfgError::Empty);
        }
        for a in &self.activities {
            for arc in &a.arcs {
                if arc.to >= self.activities.len() {
                    return Err(CfgError::DanglingArc(arc.to));
                }
            }
        }

        // Vertices: 2 per activity. Vertex 2i = in(i), 2i+1 = out(i).
        // Terminals: in(start), out(sink).
        let start = 0usize;
        let sink = self.unique_sink().ok_or(CfgError::NotSeriesParallel)?;

        #[derive(Clone, Debug)]
        struct Edge {
            from: usize,
            to: usize,
            goal: Goal,
        }

        let mut edges: Vec<Edge> = Vec::new();
        for (i, a) in self.activities.iter().enumerate() {
            edges.push(Edge {
                from: 2 * i,
                to: 2 * i + 1,
                goal: Goal::Atom(a.atom.clone()),
            });
            for arc in &a.arcs {
                let goal = match &arc.condition {
                    Some(c) => Goal::Atom(c.clone()),
                    None => Goal::Empty,
                };
                edges.push(Edge {
                    from: 2 * i + 1,
                    to: 2 * arc.to,
                    goal,
                });
            }
        }
        let (s, t) = (2 * start, 2 * sink + 1);

        // The parallel-merge connective for edges diverging at a vertex:
        // out-vertices use the activity's split kind; in-vertices never
        // host parallel edges in a well-formed graph (two identical arcs
        // from the same source share the out-vertex too).
        let merge_kind = |vertex: usize| -> SplitKind {
            if vertex % 2 == 1 {
                self.activities[vertex / 2].split
            } else {
                SplitKind::And
            }
        };

        // Reduce to a single s→t edge.
        loop {
            if edges.len() == 1 && edges[0].from == s && edges[0].to == t {
                return Ok(edges.pop().expect("single edge").goal);
            }

            // Parallel reduction: two edges with identical endpoints.
            let mut reduced = false;
            'par: for i in 0..edges.len() {
                for j in (i + 1)..edges.len() {
                    if edges[i].from == edges[j].from && edges[i].to == edges[j].to {
                        let b = edges.swap_remove(j);
                        let a = edges[i].goal.clone();
                        edges[i].goal = match merge_kind(edges[i].from) {
                            SplitKind::And => conc(vec![a, b.goal]),
                            SplitKind::Or => or(vec![a, b.goal]),
                        };
                        reduced = true;
                        break 'par;
                    }
                }
            }
            if reduced {
                continue;
            }

            // Series reduction: an interior vertex with in-degree 1 and
            // out-degree 1.
            let mut degree: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
            for e in &edges {
                degree.entry(e.from).or_default().1 += 1;
                degree.entry(e.to).or_default().0 += 1;
            }
            let candidate = degree
                .iter()
                .find(|(&v, &(ind, outd))| v != s && v != t && ind == 1 && outd == 1)
                .map(|(&v, _)| v);
            match candidate {
                Some(v) => {
                    let in_idx = edges.iter().position(|e| e.to == v).expect("in-degree 1");
                    let in_edge = edges.swap_remove(in_idx);
                    let out_idx = edges
                        .iter()
                        .position(|e| e.from == v)
                        .expect("out-degree 1");
                    let out_edge = &mut edges[out_idx];
                    out_edge.goal = seq(vec![in_edge.goal, out_edge.goal.clone()]);
                    out_edge.from = in_edge.from;
                }
                None => return Err(CfgError::NotSeriesParallel),
            }
        }
    }

    /// The unique activity with no outgoing arcs, if exactly one exists.
    fn unique_sink(&self) -> Option<ActivityId> {
        let mut sinks = self
            .activities
            .iter()
            .enumerate()
            .filter(|(_, a)| a.arcs.is_empty())
            .map(|(i, _)| i);
        let first = sinks.next()?;
        sinks.next().is_none().then_some(first)
    }

    /// Builds the Figure 1 graph of the paper, with its five transition
    /// conditions. Used by examples and benchmarks.
    pub fn figure1() -> Cfg {
        let mut cfg = Cfg::new();
        let a = cfg.activity("a");
        let b = cfg.choice("b"); // OR: (d…h…j) or (e…j)
        let c = cfg.choice("c"); // OR: (f i) or (g)
        let d = cfg.activity("d");
        let e = cfg.activity("e");
        let f = cfg.activity("f");
        let g = cfg.activity("g");
        let h = cfg.activity("h");
        let i = cfg.activity("i");
        let j = cfg.activity("j");
        let k = cfg.activity("k");
        cfg.arc_if(a, b, Atom::prop("cond1"));
        cfg.arc_if(a, c, Atom::prop("cond2"));
        cfg.arc(b, d).arc(b, e);
        cfg.arc_if(d, h, Atom::prop("cond3"));
        cfg.arc(h, j).arc(e, j);
        cfg.arc(c, f).arc(c, g);
        cfg.arc(f, i);
        cfg.arc_if(i, k, Atom::prop("cond4"));
        cfg.arc_if(g, k, Atom::prop("cond5"));
        cfg.arc(j, k);
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::unique::is_unique_event;

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    #[test]
    fn straight_line_graph() {
        let mut cfg = Cfg::new();
        let a = cfg.activity("a");
        let b = cfg.activity("b");
        let c = cfg.activity("c");
        cfg.arc(a, b).arc(b, c);
        assert_eq!(cfg.to_goal().unwrap(), seq(vec![g("a"), g("b"), g("c")]));
    }

    #[test]
    fn and_split_becomes_conc() {
        let mut cfg = Cfg::new();
        let a = cfg.activity("a");
        let b = cfg.activity("b");
        let c = cfg.activity("c");
        let d = cfg.activity("d");
        cfg.arc(a, b).arc(a, c).arc(b, d).arc(c, d);
        let goal = cfg.to_goal().unwrap();
        assert_eq!(goal, seq(vec![g("a"), conc(vec![g("b"), g("c")]), g("d")]));
    }

    #[test]
    fn or_split_becomes_or() {
        let mut cfg = Cfg::new();
        let a = cfg.choice("a");
        let b = cfg.activity("b");
        let c = cfg.activity("c");
        let d = cfg.activity("d");
        cfg.arc(a, b).arc(a, c).arc(b, d).arc(c, d);
        let goal = cfg.to_goal().unwrap();
        assert_eq!(goal, seq(vec![g("a"), or(vec![g("b"), g("c")]), g("d")]));
    }

    #[test]
    fn conditions_guard_arcs() {
        let mut cfg = Cfg::new();
        let a = cfg.activity("a");
        let b = cfg.activity("b");
        cfg.arc_if(a, b, Atom::prop("ok"));
        let goal = cfg.to_goal().unwrap();
        assert_eq!(goal, seq(vec![g("a"), g("ok"), g("b")]));
    }

    #[test]
    fn figure1_matches_equation_1() {
        let goal = Cfg::figure1().to_goal().unwrap();
        // a ⊗ ((cond1 ⊗ b ⊗ ((d ⊗ cond3 ⊗ h) ∨ e) ⊗ j) |
        //      (cond2 ⊗ c ⊗ ((f ⊗ i ⊗ cond4) ∨ (g ⊗ cond5)))) ⊗ k
        let expected = seq(vec![
            g("a"),
            conc(vec![
                seq(vec![
                    g("cond1"),
                    g("b"),
                    or(vec![seq(vec![g("d"), g("cond3"), g("h")]), g("e")]),
                    g("j"),
                ]),
                seq(vec![
                    g("cond2"),
                    g("c"),
                    or(vec![
                        seq(vec![g("f"), g("i"), g("cond4")]),
                        seq(vec![g("g"), g("cond5")]),
                    ]),
                ]),
            ]),
            g("k"),
        ]);
        // The reduction may order ∨/| operands differently; compare trace
        // semantics (structure-insensitive) and structure size.
        let got = ctr::semantics::event_traces(&goal, 1_000_000).unwrap();
        let want = ctr::semantics::event_traces(&expected, 1_000_000).unwrap();
        assert_eq!(got, want);
        assert!(is_unique_event(&goal));
    }

    #[test]
    fn empty_graph_is_rejected() {
        assert_eq!(Cfg::new().to_goal(), Err(CfgError::Empty));
    }

    #[test]
    fn dangling_arc_is_rejected() {
        let mut cfg = Cfg::new();
        let a = cfg.activity("a");
        cfg.activities[a].arcs.push(Arc {
            to: 99,
            condition: None,
        });
        assert_eq!(cfg.to_goal(), Err(CfgError::DanglingArc(99)));
    }

    #[test]
    fn two_sinks_are_rejected() {
        let mut cfg = Cfg::new();
        let a = cfg.activity("a");
        let b = cfg.activity("b");
        let c = cfg.activity("c");
        cfg.arc(a, b).arc(a, c);
        assert_eq!(cfg.to_goal(), Err(CfgError::NotSeriesParallel));
    }

    #[test]
    fn non_series_parallel_graph_is_rejected() {
        // The "N" graph: a→c, a→d, b→d with joins that cross.
        let mut cfg = Cfg::new();
        let s = cfg.activity("s");
        let a = cfg.activity("a");
        let b = cfg.activity("b");
        let c = cfg.activity("c");
        let d = cfg.activity("d");
        let t = cfg.activity("t");
        cfg.arc(s, a).arc(s, b);
        cfg.arc(a, c).arc(a, d).arc(b, d);
        cfg.arc(c, t).arc(d, t);
        assert_eq!(cfg.to_goal(), Err(CfgError::NotSeriesParallel));
    }

    #[test]
    fn nested_structures_reduce() {
        let mut cfg = Cfg::new();
        let a = cfg.activity("a");
        let b = cfg.choice("b");
        let c = cfg.activity("c");
        let d = cfg.activity("d");
        let e = cfg.activity("e");
        let f = cfg.activity("f");
        cfg.arc(a, b);
        cfg.arc(b, c).arc(b, d);
        cfg.arc(c, e).arc(d, e);
        cfg.arc(e, f);
        let goal = cfg.to_goal().unwrap();
        assert_eq!(
            goal,
            seq(vec![
                g("a"),
                g("b"),
                or(vec![g("c"), g("d")]),
                g("e"),
                g("f")
            ])
        );
    }

    /// Recursive generator of random well-structured graphs, driven by an
    /// inline LCG so the test stays dependency-free and reproducible.
    fn random_structured_cfg(seed: u64, budget: usize) -> Cfg {
        struct Gen {
            state: u64,
            next_name: usize,
        }
        impl Gen {
            fn next(&mut self) -> u64 {
                self.state = self
                    .state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                self.state >> 33
            }
            fn name(&mut self) -> String {
                self.next_name += 1;
                format!("n{}", self.next_name)
            }
        }
        fn build(cfg: &mut Cfg, gen: &mut Gen, budget: usize) -> (ActivityId, ActivityId) {
            if budget <= 1 || gen.next().is_multiple_of(3) {
                let a = cfg.activity(&gen.name());
                return (a, a);
            }
            match gen.next() % 2 {
                0 => {
                    // Series composition.
                    let (e1, x1) = build(cfg, gen, budget / 2);
                    let (e2, x2) = build(cfg, gen, budget - budget / 2);
                    cfg.arc(x1, e2);
                    (e1, x2)
                }
                _ => {
                    // Parallel composition behind a split and a join.
                    let kind = if gen.next().is_multiple_of(2) {
                        SplitKind::And
                    } else {
                        SplitKind::Or
                    };
                    let split = cfg.add(Atom::prop(gen.name().as_str()), kind);
                    let join = cfg.activity(&gen.name());
                    let branches = 2 + (gen.next() % 2) as usize;
                    for _ in 0..branches {
                        let (e, x) = build(cfg, gen, budget / branches);
                        cfg.arc(split, e);
                        cfg.arc(x, join);
                    }
                    (split, join)
                }
            }
        }
        let mut cfg = Cfg::new();
        let mut gen = Gen {
            state: seed.wrapping_add(0x9E3779B97F4A7C15),
            next_name: 0,
        };
        // The generator's entry must be activity 0 (the Cfg convention),
        // so wrap in a fixed start/end chain.
        let start = cfg.activity("start");
        let (e, x) = build(&mut cfg, &mut gen, budget);
        let end = cfg.activity("end");
        cfg.arc(start, e).arc(x, end);
        cfg
    }

    #[test]
    fn random_structured_graphs_always_translate() {
        for seed in 0..60 {
            let cfg = random_structured_cfg(seed, 12);
            let goal = cfg
                .to_goal()
                .unwrap_or_else(|e| panic!("seed {seed}: structured graph rejected: {e}"));
            assert!(is_unique_event(&goal), "seed {seed}");
            // Every activity appears in the goal exactly once.
            assert_eq!(goal.events().len(), cfg.len(), "seed {seed}");
        }
    }

    #[test]
    fn diamond_within_diamond() {
        let mut cfg = Cfg::new();
        let s = cfg.activity("s");
        let x = cfg.activity("x");
        let y1 = cfg.activity("y1");
        let y2 = cfg.activity("y2");
        let z = cfg.activity("z");
        let t = cfg.activity("t");
        cfg.arc(s, x).arc(s, z);
        cfg.arc(x, y1).arc(x, y2);
        let join = cfg.activity("join");
        cfg.arc(y1, join).arc(y2, join);
        cfg.arc(join, t).arc(z, t);
        let goal = cfg.to_goal().unwrap();
        let inner = seq(vec![g("x"), conc(vec![g("y1"), g("y2")]), g("join")]);
        assert_eq!(goal, seq(vec![g("s"), conc(vec![inner, g("z")]), g("t")]));
    }
}
