#![warn(missing_docs)]

//! # ctr-workflow — the workflow specification front-end
//!
//! The three specification frameworks of the paper's Figure 1, unified
//! over CTR:
//!
//! * [`cfg`](mod@cfg) — control flow graphs with AND/OR splits and transition
//!   conditions, translated to concurrent-Horn goals by series-parallel
//!   reduction (equation (1));
//! * [`triggers`] — event-condition-action rules with immediate and
//!   eventual semantics, compiled into the graph;
//! * [`compensation`] — §7 failure semantics: saga-style compensation and
//!   `◇`-guarded pre-flight sequences;
//! * [`loops`] — §7 iteration: bounded unrolling with occurrence renaming
//!   and constraint lifting;
//! * [`timers`] — `after`/`deadline`/`every` compiled into `send`/
//!   `receive` channel goals plus synthetic tick events (no new goal
//!   forms; the runtime's timer wheel interprets the tick names);
//! * [`spec`] — complete specifications (graph, sub-workflows, triggers,
//!   timers, global constraints) with the full `Apply`/`Excise` pipeline
//!   and the §7 modular compilation.

pub mod cfg;
pub mod compensation;
pub mod dot;
pub mod loops;
pub mod spec;
pub mod timers;
pub mod triggers;

pub use cfg::{ActivityId, Arc, Cfg, CfgError, SplitKind};
pub use compensation::{guarded_seq, saga, SagaStep};
pub use dot::goal_to_dot;
pub use loops::{unroll, Unrolling};
pub use spec::{compile_modular, RecursiveDefinition, SubWorkflows, WorkflowSpec};
pub use timers::{compile_timer, compile_timers, TimerRule, TimerSpec};
pub use triggers::{compile_trigger, compile_triggers, Trigger, TriggerSemantics};
