//! Failure semantics and compensation (paper, §7, "Failure semantics").
//!
//! Failure *atomicity* is built into CTR — a goal with no execution simply
//! has no path. More advanced workflows need **compensation** in the style
//! of Sagas [Garcia-Molina & Salem, cited as \[15\]]: a long-running
//! sequence of committed steps where, if step `k+1` cannot proceed, the
//! already-committed steps `1..k` are undone by running their
//! *compensators* in reverse order.
//!
//! Two combinators, both expressible inside the concurrent-Horn fragment:
//!
//! * [`saga`] — the compensation expansion: the saga either runs to
//!   completion, or commits a prefix, observes the next step's guard
//!   fail, and compensates the prefix in reverse. Guards are ordinary
//!   query atoms (transition conditions), so the engine decides at run
//!   time which branch is executable.
//! * [`guarded_seq`] — the `◇`-based *pre-flight* semantics the paper
//!   hints at: each step is entered only when the whole remainder is
//!   still executable from the current state, so the workflow never
//!   strands a committed prefix. No compensators needed — failures are
//!   averted rather than repaired.

use ctr::goal::{or, possible, seq, Goal};
use ctr::symbol::Symbol;
use ctr::term::Atom;

/// One compensable step of a saga.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SagaStep {
    /// Guard queried before the step runs; `None` = always runnable.
    /// A failed guard triggers compensation of the committed prefix.
    pub guard: Option<Atom>,
    /// The forward action.
    pub action: Goal,
    /// The compensator that semantically undoes `action`.
    pub compensation: Goal,
}

impl SagaStep {
    /// An unguarded step.
    pub fn new(action: Goal, compensation: Goal) -> SagaStep {
        SagaStep {
            guard: None,
            action,
            compensation,
        }
    }

    /// Adds a guard condition.
    pub fn when(mut self, guard: Atom) -> SagaStep {
        self.guard = Some(guard);
        self
    }

    /// The event symbols of the forward action, in emission order.
    pub fn action_events(&self) -> Vec<Symbol> {
        collect_events(&self.action)
    }

    /// The event symbols of the compensator, in emission order.
    pub fn compensation_events(&self) -> Vec<Symbol> {
        collect_events(&self.compensation)
    }
}

fn collect_events(goal: &Goal) -> Vec<Symbol> {
    let mut events = Vec::new();
    goal.for_each_atom(&mut |atom| {
        if let Some(e) = atom.as_event() {
            events.push(e);
        }
    });
    events
}

/// The run-time counterpart of [`saga`]: given the saga's steps and the
/// *committed* observable prefix of an aborted enactment, returns the
/// compensating activity sequence — the compensators of every step whose
/// forward action fully committed, in reverse commitment order (Sagas:
/// undo `k..1` when step `k+1` failed).
///
/// A step counts as committed when its action's events appear as a
/// subsequence of `committed`; partially-committed steps (the failing
/// step itself, typically) are *not* compensated — their own attempt
/// never fired, so there is nothing recorded to undo. Steps are ordered
/// by the position of their last committed event, latest first, so
/// interleaved concurrent sagas unwind in reverse commit order rather
/// than reverse declaration order.
pub fn compensation_plan(steps: &[SagaStep], committed: &[Symbol]) -> Vec<Symbol> {
    let mut done: Vec<(usize, usize)> = Vec::new();
    for (step_idx, step) in steps.iter().enumerate() {
        let actions = step.action_events();
        if actions.is_empty() {
            continue;
        }
        let mut pos = 0usize;
        let mut last = 0usize;
        let mut matched = true;
        for action in &actions {
            match committed[pos..].iter().position(|c| c == action) {
                Some(offset) => {
                    last = pos + offset;
                    pos = last + 1;
                }
                None => {
                    matched = false;
                    break;
                }
            }
        }
        if matched {
            done.push((last, step_idx));
        }
    }
    // Latest-committed first; ties (steps sharing a last position cannot
    // happen, but keep deterministic anyway) break on later step index.
    done.sort_by(|a, b| b.cmp(a));
    done.into_iter()
        .flat_map(|(_, step_idx)| steps[step_idx].compensation_events())
        .collect()
}

/// Compiles a saga into a concurrent-Horn goal.
///
/// The result is the disjunction of the happy path with, for every prefix
/// length `k`, the branch "steps `1..k` ran and committed, step `k+1`'s
/// guard failed (its negation succeeded), so compensators `k..1` run".
/// Guardless steps cannot fail, so they produce no compensation branch.
///
/// Size is `O(n²)` in the number of steps — each failure branch repeats a
/// prefix — which is the standard cost of expressing sagas without
/// run-time machinery.
pub fn saga(steps: &[SagaStep]) -> Goal {
    let mut branches = Vec::new();

    // Failure at step k (0-based): prefix 0..k succeeded, guard k failed.
    for k in 0..steps.len() {
        let Some(guard) = &steps[k].guard else {
            continue;
        };
        let mut parts: Vec<Goal> = Vec::new();
        for step in &steps[..k] {
            if let Some(g) = &step.guard {
                parts.push(Goal::Atom(g.clone()));
            }
            parts.push(step.action.clone());
        }
        parts.push(Goal::Atom(guard.negate()));
        for step in steps[..k].iter().rev() {
            parts.push(step.compensation.clone());
        }
        branches.push(seq(parts));
    }

    // The happy path.
    let mut parts: Vec<Goal> = Vec::new();
    for step in steps {
        if let Some(g) = &step.guard {
            parts.push(Goal::Atom(g.clone()));
        }
        parts.push(step.action.clone());
    }
    branches.push(seq(parts));

    or(branches)
}

/// The `◇`-guarded sequence: before each step, check that the step *and
/// everything after it* is still executable from the current state —
/// `◇(sᵢ ⊗ … ⊗ sₙ) ⊗ sᵢ ⊗ …`. A workflow compiled this way never begins
/// a step it cannot finish, which is the possibility-operator reading of
/// failure handling in §7.
pub fn guarded_seq(steps: &[Goal]) -> Goal {
    let mut parts = Vec::with_capacity(steps.len() * 2);
    for (i, step) in steps.iter().enumerate() {
        parts.push(possible(seq(steps[i..].to_vec())));
        parts.push(step.clone());
    }
    seq(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::sym;
    use ctr_state::Database;

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    fn saga_3() -> Vec<SagaStep> {
        vec![
            SagaStep::new(g("book_flight"), g("cancel_flight")),
            SagaStep::new(g("book_hotel"), g("cancel_hotel")).when(Atom::prop("hotel_ok")),
            SagaStep::new(g("charge_card"), g("refund_card")).when(Atom::prop("card_ok")),
        ]
    }

    #[test]
    fn saga_has_happy_path_and_one_branch_per_guard() {
        let goal = saga(&saga_3());
        let Goal::Or(branches) = &goal else {
            panic!("expected disjunction")
        };
        assert_eq!(branches.len(), 3, "2 guarded steps + happy path");
    }

    #[test]
    fn saga_compensates_in_reverse_order() {
        // Hotel fine, card declined: flight and hotel must be undone, hotel
        // first.
        let mut db = Database::new();
        db.insert_fact("hotel_ok");
        db.declare("card_ok");
        let engine = ctr_engine::Engine::new();
        let execs = engine.executions(&saga(&saga_3()), &db).unwrap();
        assert_eq!(execs.len(), 1);
        assert_eq!(
            execs[0].event_names(),
            vec![
                sym("book_flight"),
                sym("book_hotel"),
                sym("cancel_hotel"),
                sym("cancel_flight"),
            ]
        );
    }

    #[test]
    fn saga_runs_happy_path_when_all_guards_hold() {
        let mut db = Database::new();
        db.insert_fact("hotel_ok");
        db.insert_fact("card_ok");
        let engine = ctr_engine::Engine::new();
        let execs = engine.executions(&saga(&saga_3()), &db).unwrap();
        assert_eq!(execs.len(), 1);
        assert_eq!(
            execs[0].event_names(),
            vec![sym("book_flight"), sym("book_hotel"), sym("charge_card")]
        );
    }

    #[test]
    fn saga_fails_fast_on_first_guard() {
        // Hotel guard fails immediately: only the flight gets compensated.
        let mut db = Database::new();
        db.declare("hotel_ok");
        db.declare("card_ok");
        let engine = ctr_engine::Engine::new();
        let execs = engine.executions(&saga(&saga_3()), &db).unwrap();
        assert_eq!(execs.len(), 1);
        assert_eq!(
            execs[0].event_names(),
            vec![sym("book_flight"), sym("cancel_flight")]
        );
    }

    #[test]
    fn unguarded_saga_is_just_the_sequence() {
        let steps = vec![
            SagaStep::new(g("a"), g("undo_a")),
            SagaStep::new(g("b"), g("undo_b")),
        ];
        assert_eq!(saga(&steps), seq(vec![g("a"), g("b")]));
    }

    #[test]
    fn guarded_seq_inserts_possibility_checks() {
        let goal = guarded_seq(&[g("a"), g("b")]);
        let Goal::Seq(parts) = &goal else {
            panic!("expected sequence")
        };
        assert_eq!(parts.len(), 4);
        assert!(matches!(parts[0], Goal::Possible(_)));
        assert!(matches!(parts[2], Goal::Possible(_)));
    }

    #[test]
    fn guarded_seq_blocks_doomed_runs_upfront() {
        // The final step queries a relation that is empty: the very first
        // ◇ fails, so nothing at all executes — no stranded prefix.
        let mut db = Database::new();
        db.declare("approved");
        let steps = vec![g("pay"), Goal::Atom(Atom::prop("approved"))];
        let engine = ctr_engine::Engine::new();
        assert!(!engine.is_executable(&guarded_seq(&steps), &db).unwrap());
        // The unguarded sequence would have executed (and stranded) `pay`
        // before discovering the failure: CTR's failure atomicity hides
        // this, but the ◇ guard rejects it without any search.
        assert!(!engine.is_executable(&seq(steps), &db).unwrap());
    }

    #[test]
    fn compensation_plan_unwinds_committed_steps_in_reverse() {
        let steps = saga_3();
        let committed = vec![sym("book_flight"), sym("book_hotel")];
        assert_eq!(
            compensation_plan(&steps, &committed),
            vec![sym("cancel_hotel"), sym("cancel_flight")]
        );
    }

    #[test]
    fn compensation_plan_skips_uncommitted_and_partial_steps() {
        let steps = vec![
            SagaStep::new(seq(vec![g("pick"), g("pack")]), g("unpack")),
            SagaStep::new(g("ship"), g("recall")),
        ];
        // `pick` committed but `pack` did not: the step is partial, and
        // `ship` never ran — nothing to compensate.
        assert!(compensation_plan(&steps, &[sym("pick")]).is_empty());
        // Both of step 1's events committed: only it is compensated.
        assert_eq!(
            compensation_plan(&steps, &[sym("pick"), sym("pack")]),
            vec![sym("unpack")]
        );
    }

    #[test]
    fn compensation_plan_orders_by_commit_position_not_declaration() {
        // Declared a-then-b, but b committed first (concurrent saga):
        // unwind must follow commit order.
        let steps = vec![
            SagaStep::new(g("a"), g("undo_a")),
            SagaStep::new(g("b"), g("undo_b")),
        ];
        assert_eq!(
            compensation_plan(&steps, &[sym("b"), sym("a")]),
            vec![sym("undo_a"), sym("undo_b")]
        );
    }

    #[test]
    fn compensation_plan_on_empty_prefix_is_empty() {
        assert!(compensation_plan(&saga_3(), &[]).is_empty());
    }

    #[test]
    fn step_event_helpers_flatten_goals() {
        let step = SagaStep::new(seq(vec![g("x"), g("y")]), g("undo"));
        assert_eq!(step.action_events(), vec![sym("x"), sym("y")]);
        assert_eq!(step.compensation_events(), vec![sym("undo")]);
    }

    #[test]
    fn guarded_seq_runs_when_everything_is_executable() {
        let mut db = Database::new();
        db.insert_fact("approved");
        let steps = vec![g("pay"), Goal::Atom(Atom::prop("approved")), g("ship")];
        let engine = ctr_engine::Engine::new();
        let execs = engine.executions(&guarded_seq(&steps), &db).unwrap();
        assert_eq!(execs.len(), 1);
        assert_eq!(execs[0].event_names(), vec![sym("pay"), sym("ship")]);
    }
}
