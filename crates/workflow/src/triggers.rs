//! Triggers (event-condition-action rules) compiled into the control flow
//! graph.
//!
//! "Since triggers can be 'compiled into' the control flow graph, we shall
//! be treating triggers as part of the control flow graph" (paper, §1,
//! citing the result of \[7\] for immediate-semantics triggers, adaptable to
//! eventual semantics).
//!
//! * **Immediate** semantics: the action runs right after the triggering
//!   event. Every occurrence of the event `e` is rewritten to
//!   `e ⊗ ((cond ⊗ action) ∨ ¬cond)` — the action fires exactly when the
//!   condition holds at that point of the execution.
//! * **Eventual** semantics: the action runs some time after the event,
//!   concurrently with the rest of the workflow. Compiled with the same
//!   machinery as order constraints: the triggering event `send`s on a
//!   fresh channel, and the action body `receive`s before it starts —
//!   executions without the event keep the original goal:
//!   `Apply(¬∇e, G) ∨ ((G with e ⊗ send ξ) | (receive ξ ⊗ action))`.

use ctr::apply::{apply_must, apply_must_not, ChannelAlloc};
use ctr::goal::{conc, or, seq, Goal};
use ctr::symbol::Symbol;
use ctr::term::Atom;
use std::fmt;

/// When the action runs relative to the triggering event.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TriggerSemantics {
    /// Immediately after the event.
    #[default]
    Immediate,
    /// Some time after the event, interleaved with the rest.
    Eventual,
}

/// An event-condition-action rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trigger {
    /// The triggering significant event.
    pub on: Symbol,
    /// Optional condition queried when the trigger fires.
    pub condition: Option<Atom>,
    /// The action, an arbitrary concurrent-Horn goal.
    pub action: Goal,
    /// Immediate or eventual execution.
    pub semantics: TriggerSemantics,
}

impl Trigger {
    /// An unconditional immediate trigger.
    pub fn immediate(on: impl Into<Symbol>, action: Goal) -> Trigger {
        Trigger {
            on: on.into(),
            condition: None,
            action,
            semantics: TriggerSemantics::Immediate,
        }
    }

    /// An unconditional eventual trigger.
    pub fn eventual(on: impl Into<Symbol>, action: Goal) -> Trigger {
        Trigger {
            on: on.into(),
            condition: None,
            action,
            semantics: TriggerSemantics::Eventual,
        }
    }

    /// Adds a condition.
    pub fn when(mut self, condition: Atom) -> Trigger {
        self.condition = Some(condition);
        self
    }

    /// The action guarded by the condition:
    /// `(cond ⊗ action) ∨ ¬cond`, or just the action when unconditional.
    fn guarded_action(&self) -> Goal {
        match &self.condition {
            None => self.action.clone(),
            Some(c) => or(vec![
                seq(vec![Goal::Atom(c.clone()), self.action.clone()]),
                Goal::Atom(c.negate()),
            ]),
        }
    }
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "on {}", self.on)?;
        if let Some(c) = &self.condition {
            write!(f, " if {c}")?;
        }
        write!(f, " do {}", self.action)?;
        if self.semantics == TriggerSemantics::Eventual {
            write!(f, " eventually")?;
        }
        Ok(())
    }
}

/// Rewrites every occurrence of event `e` in the goal to `f(e)`.
/// Shared with timer compilation (`crate::timers`), which gates and
/// watchdogs events with the same structural rewrite.
pub(crate) fn rewrite_event(goal: &Goal, e: Symbol, replacement: &Goal) -> Goal {
    match goal {
        Goal::Atom(a) if a.as_event() == Some(e) => replacement.clone(),
        Goal::Atom(_) | Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => {
            goal.clone()
        }
        Goal::Seq(gs) => seq(gs
            .iter()
            .map(|g| rewrite_event(g, e, replacement))
            .collect()),
        Goal::Conc(gs) => conc(
            gs.iter()
                .map(|g| rewrite_event(g, e, replacement))
                .collect(),
        ),
        Goal::Or(gs) => or(gs
            .iter()
            .map(|g| rewrite_event(g, e, replacement))
            .collect()),
        Goal::Isolated(g) => ctr::goal::isolated(rewrite_event(g, e, replacement)),
        Goal::Possible(g) => ctr::goal::possible(rewrite_event(g, e, replacement)),
    }
}

/// Compiles one trigger into the goal.
pub fn compile_trigger(goal: &Goal, trigger: &Trigger, channels: &mut ChannelAlloc) -> Goal {
    let action = trigger.guarded_action();
    match trigger.semantics {
        TriggerSemantics::Immediate => {
            let replacement = seq(vec![Goal::atom(trigger.on), action]);
            rewrite_event(goal, trigger.on, &replacement)
        }
        TriggerSemantics::Eventual => {
            // Executions without the event: unchanged.
            let without = apply_must_not(trigger.on, goal);
            // Executions with the event: event signals the action body.
            let with = apply_must(trigger.on, goal);
            if with.is_nopath() {
                return without;
            }
            let xi = channels.fresh();
            let signalled = rewrite_event(
                &with,
                trigger.on,
                &seq(vec![Goal::atom(trigger.on), Goal::Send(xi)]),
            );
            or(vec![
                without,
                conc(vec![signalled, seq(vec![Goal::Receive(xi), action])]),
            ])
        }
    }
}

/// Compiles a list of triggers in order. Actions of earlier triggers are
/// visible to later ones (cascading triggers), so order matters — the
/// usual ECA-rule priority list.
pub fn compile_triggers(goal: &Goal, triggers: &[Trigger], channels: &mut ChannelAlloc) -> Goal {
    let mut current = goal.clone();
    for t in triggers {
        current = compile_trigger(&current, t, channels);
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::semantics::event_traces;
    use ctr::symbol::sym;
    use std::collections::BTreeSet;

    const BUDGET: usize = 100_000;

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    fn traces(goal: &Goal) -> BTreeSet<Vec<Symbol>> {
        event_traces(goal, BUDGET).unwrap()
    }

    fn tr(names: &[&str]) -> Vec<Symbol> {
        names.iter().map(|n| sym(n)).collect()
    }

    #[test]
    fn immediate_trigger_inlines_action() {
        let goal = seq(vec![g("order"), g("ship")]);
        let t = Trigger::immediate("order", g("log_order"));
        let compiled = compile_trigger(&goal, &t, &mut ChannelAlloc::new());
        assert_eq!(compiled, seq(vec![g("order"), g("log_order"), g("ship")]));
    }

    #[test]
    fn immediate_trigger_fires_in_every_branch() {
        let goal = or(vec![seq(vec![g("a"), g("e")]), seq(vec![g("e"), g("b")])]);
        let t = Trigger::immediate("e", g("act"));
        let compiled = compile_trigger(&goal, &t, &mut ChannelAlloc::new());
        assert_eq!(
            traces(&compiled),
            [tr(&["a", "e", "act"]), tr(&["e", "act", "b"])]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn conditional_trigger_guards_action() {
        let goal = g("deposit");
        let t = Trigger::immediate("deposit", g("notify")).when(Atom::prop("large"));
        let compiled = compile_trigger(&goal, &t, &mut ChannelAlloc::new());
        // Two structural variants: condition holds → notify; or ¬large.
        let ts = traces(&compiled);
        assert!(ts.contains(&tr(&["deposit", "large", "notify"])));
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn eventual_trigger_runs_action_later() {
        let goal = seq(vec![g("order"), g("pack"), g("ship")]);
        let t = Trigger::eventual("order", g("bill"));
        let compiled = compile_trigger(&goal, &t, &mut ChannelAlloc::new());
        let ts = traces(&compiled);
        // bill can interleave anywhere after order.
        assert_eq!(
            ts,
            [
                tr(&["order", "bill", "pack", "ship"]),
                tr(&["order", "pack", "bill", "ship"]),
                tr(&["order", "pack", "ship", "bill"]),
            ]
            .into_iter()
            .collect()
        );
    }

    #[test]
    fn eventual_trigger_skips_when_event_absent() {
        let goal = or(vec![g("approve"), g("reject")]);
        let t = Trigger::eventual("approve", g("archive"));
        let compiled = compile_trigger(&goal, &t, &mut ChannelAlloc::new());
        let ts = traces(&compiled);
        assert!(
            ts.contains(&tr(&["reject"])),
            "no trigger on the reject path"
        );
        assert!(ts.contains(&tr(&["approve", "archive"])));
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn eventual_trigger_on_missing_event_is_identity() {
        let goal = seq(vec![g("a"), g("b")]);
        let t = Trigger::eventual("zzz", g("act"));
        let compiled = compile_trigger(&goal, &t, &mut ChannelAlloc::new());
        assert_eq!(compiled, goal);
    }

    #[test]
    fn cascading_triggers_compose() {
        let goal = g("a");
        let triggers = [
            Trigger::immediate("a", g("b")),
            Trigger::immediate("b", g("c")),
        ];
        let compiled = compile_triggers(&goal, &triggers, &mut ChannelAlloc::new());
        assert_eq!(
            traces(&compiled),
            [tr(&["a", "b", "c"])].into_iter().collect()
        );
    }

    #[test]
    fn trigger_display() {
        let t = Trigger::eventual("order", g("bill")).when(Atom::prop("paid"));
        assert_eq!(t.to_string(), "on order if paid do bill eventually");
    }
}
