//! Complete workflow specifications: graph + sub-workflows + triggers +
//! global constraints, with the full compilation pipeline.
//!
//! A [`WorkflowSpec`] bundles the three specification frameworks of
//! Figure 1 into one object and compiles them through one pipeline:
//!
//! 1. sub-workflow definitions are expanded (concurrent-Horn rules, §2);
//! 2. triggers are compiled into the graph (§1, \[7\]);
//! 3. global constraints are compiled with `Apply` and knots are removed
//!    with `Excise` (§5).
//!
//! [`compile_modular`] implements the §7 refinement: when global
//! dependencies do not span sub-workflow boundaries, constraints local to
//! a sub-workflow are compiled into its definition *before* expansion, so
//! the exponent in Theorem 5.11 drops from the total constraint count `N`
//! to the largest per-sub-workflow count `M`.

use crate::timers::{compile_timers, TimerSpec};
use crate::triggers::{compile_triggers, Trigger};
use ctr::analysis::{self, CompileError, Compiled, Verification};
use ctr::apply::{apply_all, ChannelAlloc};
use ctr::constraints::Constraint;
use ctr::excise::excise_with_diagnostics;
use ctr::goal::Goal;
use ctr::symbol::Symbol;
use std::collections::BTreeMap;
use std::fmt;

/// Propositional sub-workflow definitions: `name ← body` concurrent-Horn
/// rules, restricted (per the paper's non-iterative assumption) to acyclic
/// references.
#[derive(Clone, Debug, Default)]
pub struct SubWorkflows {
    defs: BTreeMap<Symbol, Vec<Goal>>,
}

/// Error from sub-workflow definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecursiveDefinition(pub Symbol);

impl fmt::Display for RecursiveDefinition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sub-workflow `{}` is (mutually) recursive; non-iterative workflows require \
             acyclic definitions",
            self.0
        )
    }
}

impl std::error::Error for RecursiveDefinition {}

impl SubWorkflows {
    /// No definitions.
    pub fn new() -> SubWorkflows {
        SubWorkflows::default()
    }

    /// Defines (another alternative of) a sub-workflow.
    pub fn define(
        &mut self,
        name: impl Into<Symbol>,
        body: Goal,
    ) -> Result<&mut Self, RecursiveDefinition> {
        let name = name.into();
        self.defs.entry(name).or_default().push(body);
        if let Some(offender) = self.find_cycle() {
            let list = self.defs.get_mut(&name).expect("just inserted");
            list.pop();
            if list.is_empty() {
                self.defs.remove(&name);
            }
            return Err(RecursiveDefinition(offender));
        }
        Ok(self)
    }

    /// True if `name` is defined.
    pub fn defines(&self, name: Symbol) -> bool {
        self.defs.contains_key(&name)
    }

    /// Number of defined sub-workflows.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if no sub-workflow is defined.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The definition bodies of `name`.
    pub fn bodies(&self, name: Symbol) -> &[Goal] {
        self.defs.get(&name).map_or(&[], Vec::as_slice)
    }

    /// Iterates the defined names.
    pub fn names(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.defs.keys().copied()
    }

    /// Replaces every defined name in `goal` with the disjunction of its
    /// bodies, recursively (definitions are acyclic, so this terminates).
    pub fn expand(&self, goal: &Goal) -> Goal {
        match goal {
            Goal::Atom(a) if a.is_prop() && self.defines(a.pred) => {
                ctr::goal::or(self.bodies(a.pred).iter().map(|b| self.expand(b)).collect())
            }
            Goal::Atom(_) | Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => {
                goal.clone()
            }
            Goal::Seq(gs) => ctr::goal::seq(gs.iter().map(|g| self.expand(g)).collect()),
            Goal::Conc(gs) => ctr::goal::conc(gs.iter().map(|g| self.expand(g)).collect()),
            Goal::Or(gs) => ctr::goal::or(gs.iter().map(|g| self.expand(g)).collect()),
            Goal::Isolated(g) => ctr::goal::isolated(self.expand(g)),
            Goal::Possible(g) => ctr::goal::possible(self.expand(g)),
        }
    }

    /// Expands with per-sub-workflow transformation: each definition body
    /// is passed through `transform(name, expanded_body)` before
    /// substitution. The hook for modular constraint compilation.
    fn expand_with(&self, goal: &Goal, transform: &impl Fn(Symbol, Goal) -> Goal) -> Goal {
        match goal {
            Goal::Atom(a) if a.is_prop() && self.defines(a.pred) => {
                let expanded = ctr::goal::or(
                    self.bodies(a.pred)
                        .iter()
                        .map(|b| self.expand_with(b, transform))
                        .collect(),
                );
                transform(a.pred, expanded)
            }
            Goal::Atom(_) | Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => {
                goal.clone()
            }
            Goal::Seq(gs) => {
                ctr::goal::seq(gs.iter().map(|g| self.expand_with(g, transform)).collect())
            }
            Goal::Conc(gs) => {
                ctr::goal::conc(gs.iter().map(|g| self.expand_with(g, transform)).collect())
            }
            Goal::Or(gs) => {
                ctr::goal::or(gs.iter().map(|g| self.expand_with(g, transform)).collect())
            }
            Goal::Isolated(g) => ctr::goal::isolated(self.expand_with(g, transform)),
            Goal::Possible(g) => ctr::goal::possible(self.expand_with(g, transform)),
        }
    }

    /// A defined name on a reference cycle, if any.
    fn find_cycle(&self) -> Option<Symbol> {
        fn visit(
            defs: &BTreeMap<Symbol, Vec<Goal>>,
            name: Symbol,
            visiting: &mut Vec<Symbol>,
            done: &mut Vec<Symbol>,
        ) -> Option<Symbol> {
            if done.contains(&name) {
                return None;
            }
            if visiting.contains(&name) {
                return Some(name);
            }
            visiting.push(name);
            for body in defs.get(&name).map_or(&[][..], Vec::as_slice) {
                for referenced in body.events() {
                    if defs.contains_key(&referenced) {
                        if let Some(off) = visit(defs, referenced, visiting, done) {
                            return Some(off);
                        }
                    }
                }
            }
            visiting.pop();
            done.push(name);
            None
        }
        let mut done = Vec::new();
        for &name in self.defs.keys() {
            if let Some(off) = visit(&self.defs, name, &mut Vec::new(), &mut done) {
                return Some(off);
            }
        }
        None
    }
}

/// A complete workflow specification.
#[derive(Clone, Debug, Default)]
pub struct WorkflowSpec {
    /// Human-readable name.
    pub name: String,
    /// The control flow graph, as a concurrent-Horn goal (equation (1)).
    pub graph: Goal,
    /// Sub-workflow definitions.
    pub subworkflows: SubWorkflows,
    /// Triggers, compiled into the graph in order.
    pub triggers: Vec<Trigger>,
    /// Timers (`after`/`deadline`/`every`), compiled after triggers.
    pub timers: Vec<TimerSpec>,
    /// Global temporal constraints.
    pub constraints: Vec<Constraint>,
}

impl WorkflowSpec {
    /// A specification with just a graph.
    pub fn new(name: &str, graph: Goal) -> WorkflowSpec {
        WorkflowSpec {
            name: name.to_owned(),
            graph,
            ..WorkflowSpec::default()
        }
    }

    /// The flattened goal: sub-workflows expanded, triggers and timers
    /// compiled, constraints *not* yet applied. Timers compile after
    /// triggers so a gate or watchdog also covers trigger-duplicated
    /// occurrences of its event.
    pub fn to_goal(&self) -> Goal {
        let expanded = self.subworkflows.expand(&self.graph);
        let mut channels = ChannelAlloc::fresh_for(&expanded);
        let triggered = compile_triggers(&expanded, &self.triggers, &mut channels);
        compile_timers(&triggered, &self.timers, &mut channels)
    }

    /// Full compilation: flatten, `Apply` every constraint, `Excise`
    /// knots. The result is the directly executable specification of
    /// Theorem 5.8.
    pub fn compile(&self) -> Result<Compiled, CompileError> {
        analysis::compile(&self.to_goal(), &self.constraints)
    }

    /// Consistency of the whole specification (Theorem 5.8).
    pub fn is_consistent(&self) -> Result<bool, CompileError> {
        Ok(self.compile()?.is_consistent())
    }

    /// Does every legal execution satisfy `property`? (Theorem 5.9.)
    pub fn verify(&self, property: &Constraint) -> Result<Verification, CompileError> {
        analysis::verify(&self.to_goal(), &self.constraints, property)
    }

    /// Is the `index`-th constraint redundant? (Theorem 5.10.)
    pub fn is_redundant(&self, index: usize) -> Result<bool, CompileError> {
        analysis::is_redundant(&self.to_goal(), &self.constraints, index)
    }
}

/// Modular compilation (§7): constraints in `local` are scoped to one
/// sub-workflow and compiled into its definition before substitution;
/// `spec.constraints` remain global. With `M` = the largest local
/// constraint count, the compiled size is `O(d^M · |G|)` instead of
/// `O(d^N · |G|)` — reproduced in experiment E7.
///
/// Correct when each local constraint's events occur only inside its
/// sub-workflow (dependencies do not span boundaries).
pub fn compile_modular(
    spec: &WorkflowSpec,
    local: &BTreeMap<Symbol, Vec<Constraint>>,
) -> Result<Compiled, CompileError> {
    // Shared across the per-sub-workflow closures so channels stay
    // globally fresh.
    let channels = std::cell::RefCell::new(ChannelAlloc::new());
    let flattened =
        spec.subworkflows
            .expand_with(&spec.graph, &|name, body| match local.get(&name) {
                Some(constraints) => apply_all(constraints, &body, &mut channels.borrow_mut()),
                None => body,
            });
    let mut alloc = ChannelAlloc::fresh_for(&flattened);
    let with_triggers = compile_triggers(&flattened, &spec.triggers, &mut alloc);
    let with_triggers = compile_timers(&with_triggers, &spec.timers, &mut alloc);
    ctr::unique::check_unique_events(&with_triggers).map_err(CompileError::NotUniqueEvent)?;
    let applied = apply_all(&spec.constraints, &with_triggers, &mut alloc);
    let applied_size = applied.size();
    let excised = excise_with_diagnostics(&applied);
    // Delegate the condition scan (and its §7 soundness caveat) to the
    // canonical pipeline on a constraint-free pass.
    let has_conditions = analysis::compile_unchecked(&with_triggers, &[]).has_conditions;
    Ok(Compiled {
        goal: excised.goal,
        knots: excised.reports,
        applied_size,
        guaranteed_knot_free: excised.guaranteed_knot_free,
        has_conditions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::semantics::{event_traces, satisfies};
    use ctr::symbol::sym;
    use std::collections::BTreeSet;

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    #[test]
    fn subworkflows_expand_recursively() {
        let mut sw = SubWorkflows::new();
        sw.define("inner", ctr::goal::or(vec![g("x"), g("y")]))
            .unwrap();
        sw.define("outer", ctr::goal::seq(vec![g("a"), g("inner")]))
            .unwrap();
        let flat = sw.expand(&ctr::goal::seq(vec![g("outer"), g("z")]));
        assert_eq!(
            flat,
            ctr::goal::seq(vec![g("a"), ctr::goal::or(vec![g("x"), g("y")]), g("z")])
        );
    }

    #[test]
    fn recursive_definitions_are_rejected() {
        let mut sw = SubWorkflows::new();
        sw.define("a", g("b")).unwrap();
        let err = sw.define("b", g("a")).unwrap_err();
        assert!(matches!(err, RecursiveDefinition(_)));
        assert!(!sw.defines(sym("b")), "rejected definition rolled back");
    }

    #[test]
    fn alternative_definitions_become_or() {
        let mut sw = SubWorkflows::new();
        sw.define("pay", g("card")).unwrap();
        sw.define("pay", g("cash")).unwrap();
        assert_eq!(
            sw.expand(&g("pay")),
            ctr::goal::or(vec![g("card"), g("cash")])
        );
    }

    #[test]
    fn full_pipeline_compiles_consistently() {
        let mut spec = WorkflowSpec::new(
            "orders",
            ctr::goal::seq(vec![g("order"), g("fulfil"), g("close")]),
        );
        spec.subworkflows
            .define("fulfil", ctr::goal::conc(vec![g("pick"), g("invoice")]))
            .unwrap();
        spec.triggers.push(Trigger::immediate("order", g("log")));
        spec.constraints.push(Constraint::order("pick", "invoice"));
        let compiled = spec.compile().unwrap();
        assert!(compiled.is_consistent());
        let traces = event_traces(&compiled.goal, 100_000).unwrap();
        assert!(!traces.is_empty());
        for t in &traces {
            assert!(satisfies(t, &Constraint::order("pick", "invoice")), "{t:?}");
            assert!(
                satisfies(t, &Constraint::order("log", "pick")),
                "trigger ran first: {t:?}"
            );
        }
    }

    #[test]
    fn verify_and_redundancy_through_spec() {
        let mut spec = WorkflowSpec::new("pipeline", ctr::goal::seq(vec![g("a"), g("b"), g("c")]));
        spec.constraints.push(Constraint::order("a", "c"));
        // The graph alone forces a<c: the constraint is redundant.
        assert!(spec.is_redundant(0).unwrap());
        assert!(spec.verify(&Constraint::order("a", "b")).unwrap().holds());
        assert!(spec.is_consistent().unwrap());
    }

    #[test]
    fn modular_compilation_matches_flat_semantics() {
        // Two sub-workflows with one local constraint each; the modular
        // and flat compilations must accept the same executions.
        let mut spec = WorkflowSpec::new(
            "modular",
            ctr::goal::seq(vec![
                g("start"),
                ctr::goal::conc(vec![g("sub1"), g("sub2")]),
                g("end"),
            ]),
        );
        spec.subworkflows
            .define("sub1", ctr::goal::conc(vec![g("a1"), g("b1")]))
            .unwrap();
        spec.subworkflows
            .define("sub2", ctr::goal::conc(vec![g("a2"), g("b2")]))
            .unwrap();
        let local: BTreeMap<Symbol, Vec<Constraint>> = [
            (sym("sub1"), vec![Constraint::order("a1", "b1")]),
            (sym("sub2"), vec![Constraint::order("a2", "b2")]),
        ]
        .into_iter()
        .collect();

        let modular = compile_modular(&spec, &local).unwrap();

        let mut flat = spec.clone();
        flat.constraints = vec![Constraint::order("a1", "b1"), Constraint::order("a2", "b2")];
        let flat_compiled = flat.compile().unwrap();

        let m: BTreeSet<_> = event_traces(&modular.goal, 1_000_000).unwrap();
        let f: BTreeSet<_> = event_traces(&flat_compiled.goal, 1_000_000).unwrap();
        assert_eq!(m, f);
    }

    #[test]
    fn modular_compilation_with_disjunctive_locals_is_smaller() {
        // K sub-workflows, each with one Klein constraint (d = 3). Global
        // compilation multiplies the whole goal 3^K times; modular only
        // multiplies each sub-workflow by 3.
        let k = 4;
        let mut spec = WorkflowSpec::new(
            "mod-size",
            ctr::goal::seq((0..k).map(|i| g(&format!("sub{i}"))).collect()),
        );
        let mut local: BTreeMap<Symbol, Vec<Constraint>> = BTreeMap::new();
        for i in 0..k {
            spec.subworkflows
                .define(
                    format!("sub{i}").as_str(),
                    ctr::goal::conc(vec![
                        ctr::goal::or(vec![g(&format!("a{i}")), g(&format!("x{i}"))]),
                        g(&format!("b{i}")),
                    ]),
                )
                .unwrap();
            local.insert(
                sym(&format!("sub{i}")),
                vec![Constraint::klein_order(
                    format!("a{i}").as_str(),
                    format!("b{i}").as_str(),
                )],
            );
        }
        let modular = compile_modular(&spec, &local).unwrap();

        let mut flat = spec.clone();
        flat.constraints = (0..k)
            .map(|i| Constraint::klein_order(format!("a{i}").as_str(), format!("b{i}").as_str()))
            .collect();
        let flat_compiled = flat.compile().unwrap();

        assert!(
            modular.applied_size * 2 < flat_compiled.applied_size,
            "modular {} vs flat {}",
            modular.applied_size,
            flat_compiled.applied_size
        );
        // And they accept the same executions.
        let m = event_traces(&modular.goal, 2_000_000);
        let f = event_traces(&flat_compiled.goal, 2_000_000);
        if let (Ok(m), Ok(f)) = (m, f) {
            assert_eq!(m, f);
        }
    }
}
