//! The SLD-style proof procedure for concurrent-Horn CTR.
//!
//! "Like in logic programming systems, the proof theory of CTR is also a
//! run-time environment for executing workflows" (paper, §1): proving that
//! a concurrent-Horn goal is executable *is* executing it. This module is
//! that procedure, following the procedural reading of §2:
//!
//! * `⊗` executes left to right; `|` interleaves; `∨` chooses;
//! * `⊙` runs its body without interleaving from concurrent siblings;
//! * `◇` tests executability at the current state without consuming path;
//! * atoms resolve, in order, as **rule calls** (sub-workflows, unfolded
//!   with unification), **elementary updates** (via the transition
//!   oracle), **queries** (matched against the database; negated atoms by
//!   negation-as-failure), or **significant events** (always-true updates
//!   that only append to the execution log — assumption (2));
//! * `send(ξ)`/`receive(ξ)` have the synchronization semantics of \[6\]:
//!   `receive` is true iff the matching `send` has executed earlier.
//!
//! The search is a depth-first exploration of *don't-know* choice points
//! (disjunctions, rule alternatives, oracle alternatives, query matches,
//! interleavings). Steps with no observable effect and no commitment —
//! enabled `send`/`receive` outside un-entered `⊙` blocks — fire eagerly:
//! they commute with every trace, so eager firing loses no executions and
//! prunes the interleaving space.

use crate::rules::RuleBase;
use crate::unify::{rename_atom, Subst};
use ctr::goal::{Channel, Goal};
use ctr::symbol::Symbol;
use ctr::term::Atom;
use ctr_state::{Database, Delta, NullOracle, TransitionOracle};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Resource limits for a run.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Stop after this many complete executions (`usize::MAX` = all).
    pub max_solutions: usize,
    /// Abort the search after this many inference steps.
    pub max_steps: usize,
    /// Maximum rule-unfolding depth per execution (guards the §7 bounded
    /// recursion extension).
    pub max_depth: usize,
    /// When set, every execution records the full sequence of database
    /// states it passed through — the CTR *path* ⟨s₁, …, sₙ⟩ itself, not
    /// just its event projection.
    pub record_states: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            max_solutions: usize::MAX,
            max_steps: 1_000_000,
            max_depth: 128,
            record_states: false,
        }
    }
}

/// Errors from the proof procedure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The step budget was exhausted before the search finished.
    StepLimit(usize),
    /// A negated query was evaluated on a non-ground atom — unsafe
    /// negation-as-failure.
    UnsafeNegation(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::StepLimit(n) => write!(f, "execution exceeded step limit of {n}"),
            EngineError::UnsafeNegation(a) => {
                write!(f, "negation-as-failure on non-ground atom {a}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A completed execution: the path through the workflow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Execution {
    /// Executed updates and significant events, in order (queries and
    /// channel operations are not part of the observable path).
    pub events: Vec<Atom>,
    /// The final database state.
    pub db: Database,
    /// Answer bindings for the variables of the query goal, in ascending
    /// variable order. Unbound variables are omitted.
    pub bindings: Vec<(ctr::term::Var, ctr::term::Term)>,
    /// The path through state space ⟨s₁, …, sₙ⟩: the initial state plus
    /// one entry per executed step. Empty unless
    /// [`ExecOptions::record_states`] is set.
    pub states: Vec<Database>,
}

impl Execution {
    /// The propositional event names of the path, for comparison against
    /// the trace semantics of `ctr::semantics`.
    pub fn event_names(&self) -> Vec<Symbol> {
        self.events.iter().filter_map(Atom::as_event).collect()
    }
}

// ---------------------------------------------------------------------------
// Resolvent
// ---------------------------------------------------------------------------

/// A resolvent node: the goal with run-time bookkeeping.
///
/// Mirrors `core::goal`'s `Arc`-shared representation at run time:
/// child lists and `⊙`-bodies sit behind `Arc`s, so cloning a resolvent
/// (one per choice point in the search) is a constant number of
/// refcount bumps, and rewrites clone only the spine from the root to
/// the rewritten node ([`node_at_mut`] / [`tidy_at`] use
/// `Arc::make_mut`, which copies a node only while it is shared).
/// `◇`-bodies stay as [`Goal`]s — compiling `◇G` bumps the refcount of
/// the goal's own `Arc` payload, keeping its cached size/fingerprint
/// machinery, instead of deep-copying the subtree.
#[derive(Clone, Debug)]
enum Res {
    Done,
    Atom(Atom),
    /// `cursor` indexes the first unfinished child.
    Seq {
        children: Arc<Vec<Res>>,
        cursor: usize,
    },
    Conc(Arc<Vec<Res>>),
    Or(Arc<Vec<Res>>),
    Iso {
        body: Arc<Res>,
        entered: bool,
    },
    Poss(Arc<Goal>),
    Send(Channel),
    Recv(Channel),
}

impl Res {
    /// Compiles a simplified goal, normalizing as it builds: sequence
    /// cursors start past finished children and fully finished
    /// composites collapse to [`Res::Done`]. Every `Res` in the search
    /// is kept in this normal form ([`tidy_at`] restores it after each
    /// spine rewrite), so "is this branch complete?" is a root check.
    fn compile(goal: &Goal) -> Res {
        match goal {
            Goal::Atom(a) => Res::Atom(a.clone()),
            Goal::Seq(gs) => Res::seq(gs.iter().map(Res::compile).collect()),
            Goal::Conc(gs) => Res::conc(gs.iter().map(Res::compile).collect()),
            Goal::Or(gs) => Res::Or(Arc::new(gs.iter().map(Res::compile).collect())),
            Goal::Isolated(g) => Res::iso(Res::compile(g), false),
            Goal::Possible(g) => Res::Poss(Arc::clone(g)),
            Goal::Send(c) => Res::Send(*c),
            Goal::Receive(c) => Res::Recv(*c),
            Goal::Empty => Res::Done,
            Goal::NoPath => {
                // Simplified goals contain ¬path only at the root; compile
                // it to an empty disjunction, which can never be chosen.
                Res::Or(Arc::new(Vec::new()))
            }
        }
    }

    /// Normalized sequence: skips finished prefixes, collapses when all
    /// children are done.
    fn seq(children: Vec<Res>) -> Res {
        let mut cursor = 0;
        while children.get(cursor).is_some_and(Res::is_done) {
            cursor += 1;
        }
        if cursor == children.len() {
            Res::Done
        } else {
            Res::Seq {
                children: Arc::new(children),
                cursor,
            }
        }
    }

    /// Normalized concurrence: collapses when all children are done.
    fn conc(children: Vec<Res>) -> Res {
        if children.iter().all(Res::is_done) {
            Res::Done
        } else {
            Res::Conc(Arc::new(children))
        }
    }

    /// Normalized isolation: collapses when the body is done.
    fn iso(body: Res, entered: bool) -> Res {
        if body.is_done() {
            Res::Done
        } else {
            Res::Iso {
                body: Arc::new(body),
                entered,
            }
        }
    }

    fn is_done(&self) -> bool {
        matches!(self, Res::Done)
    }
}

/// A position in the resolvent tree.
type Path = Vec<usize>;

fn node_at<'a>(res: &'a Res, path: &[usize]) -> &'a Res {
    match path.split_first() {
        None => res,
        Some((&i, rest)) => match res {
            Res::Seq { children, .. } | Res::Conc(children) | Res::Or(children) => {
                node_at(&children[i], rest)
            }
            Res::Iso { body, .. } => {
                debug_assert_eq!(i, 0);
                node_at(body, rest)
            }
            _ => unreachable!("path descends through interior nodes"),
        },
    }
}

/// Mutable access along a path — the spine-only rewrite. `Arc::make_mut`
/// copies a node (shallowly: its children are refcount bumps) only when
/// it is still shared with another configuration; everything off the
/// path stays shared.
fn node_at_mut<'a>(res: &'a mut Res, path: &[usize]) -> &'a mut Res {
    match path.split_first() {
        None => res,
        Some((&i, rest)) => match res {
            Res::Seq { children, .. } | Res::Conc(children) | Res::Or(children) => {
                node_at_mut(&mut Arc::make_mut(children)[i], rest)
            }
            Res::Iso { body, .. } => node_at_mut(Arc::make_mut(body), rest),
            _ => unreachable!("path descends through interior nodes"),
        },
    }
}

/// What can happen next at a ready position.
#[derive(Clone, Debug)]
enum Redex {
    /// Resolve the atom at `path` (rule / update / query / event).
    Fire(Path),
    /// Commit the disjunction at `path` to its `branch`-th child.
    Choose(Path, usize),
    /// Test the `◇` at `path`.
    Check(Path),
    /// Execute the enabled channel operation at `path`.
    Channel(Path),
}

/// Collects the redexes of the resolvent. When an entered `⊙` block
/// exists, only redexes inside the innermost one are eligible.
fn redexes(res: &Res, sent: &BTreeSet<Channel>) -> Vec<Redex> {
    // Find the innermost entered ⊙.
    fn innermost_entered(res: &Res, path: &mut Path, best: &mut Option<Path>) {
        match res {
            Res::Iso { body, entered } => {
                if *entered {
                    *best = Some(path.clone());
                }
                path.push(0);
                innermost_entered(body, path, best);
                path.pop();
            }
            Res::Seq { children, cursor } => {
                if let Some(child) = children.get(*cursor) {
                    path.push(*cursor);
                    innermost_entered(child, path, best);
                    path.pop();
                }
            }
            Res::Conc(children) => {
                for (i, c) in children.iter().enumerate() {
                    path.push(i);
                    innermost_entered(c, path, best);
                    path.pop();
                }
            }
            _ => {}
        }
    }

    fn collect(res: &Res, sent: &BTreeSet<Channel>, path: &mut Path, out: &mut Vec<Redex>) {
        match res {
            Res::Done => {}
            Res::Atom(_) => out.push(Redex::Fire(path.clone())),
            Res::Seq { children, cursor } => {
                if let Some(child) = children.get(*cursor) {
                    path.push(*cursor);
                    collect(child, sent, path, out);
                    path.pop();
                }
            }
            Res::Conc(children) => {
                for (i, c) in children.iter().enumerate() {
                    path.push(i);
                    collect(c, sent, path, out);
                    path.pop();
                }
            }
            Res::Or(children) => {
                for i in 0..children.len() {
                    out.push(Redex::Choose(path.clone(), i));
                }
            }
            Res::Iso { body, .. } => {
                path.push(0);
                collect(body, sent, path, out);
                path.pop();
            }
            Res::Poss(_) => out.push(Redex::Check(path.clone())),
            Res::Send(_) => out.push(Redex::Channel(path.clone())),
            Res::Recv(c) => {
                if sent.contains(c) {
                    out.push(Redex::Channel(path.clone()));
                }
            }
        }
    }

    let mut lock = None;
    innermost_entered(res, &mut Vec::new(), &mut lock);
    let mut out = Vec::new();
    match lock {
        None => collect(res, sent, &mut Vec::new(), &mut out),
        Some(lock_path) => {
            let Res::Iso { body, .. } = node_at(res, &lock_path) else {
                unreachable!("lock path leads to an ⊙ node")
            };
            let mut path = lock_path.clone();
            path.push(0);
            collect(body, sent, &mut path, &mut out);
        }
    }
    out
}

/// Restores the normal form after a rewrite at `path`: bottom-up along
/// the path (and only the path — everything else is already normalized
/// and possibly shared), advance sequence cursors past finished
/// children and collapse finished composites to [`Res::Done`]. The
/// spine was just made unique by the rewrite, so the `make_mut`s here
/// never copy.
fn tidy_at(res: &mut Res, path: &[usize]) {
    if let Some((&i, rest)) = path.split_first() {
        match res {
            Res::Seq { children, .. } | Res::Conc(children) | Res::Or(children) => {
                tidy_at(&mut Arc::make_mut(children)[i], rest);
            }
            Res::Iso { body, .. } => tidy_at(Arc::make_mut(body), rest),
            // The node below was rewritten to a leaf: nothing deeper.
            _ => {}
        }
    }
    match res {
        Res::Seq { children, cursor } => {
            while children.get(*cursor).is_some_and(Res::is_done) {
                *cursor += 1;
            }
            if *cursor == children.len() {
                *res = Res::Done;
            }
        }
        Res::Conc(children) if children.iter().all(Res::is_done) => *res = Res::Done,
        Res::Iso { body, .. } if body.is_done() => *res = Res::Done,
        _ => {}
    }
}

/// True if the redex sits inside some not-yet-entered `⊙` — firing it
/// would commit to isolation, which is a real scheduling decision.
fn enters_isolation(res: &Res, path: &[usize]) -> bool {
    let mut cur = res;
    for &i in path {
        if let Res::Iso { entered, .. } = cur {
            if !entered {
                return true;
            }
        }
        cur = match cur {
            Res::Seq { children, .. } | Res::Conc(children) | Res::Or(children) => &children[i],
            Res::Iso { body, .. } => body,
            _ => return false,
        };
    }
    matches!(cur, Res::Iso { entered: false, .. })
}

/// Marks every `⊙` along `path` as entered (spine-only: shared nodes on
/// the path are unshared by `make_mut`, siblings stay shared).
fn enter_isolation(res: &mut Res, path: &[usize]) {
    let mut cur = res;
    for &i in path {
        if let Res::Iso { entered, .. } = cur {
            *entered = true;
        }
        cur = match cur {
            Res::Seq { children, .. } | Res::Conc(children) | Res::Or(children) => {
                &mut Arc::make_mut(children)[i]
            }
            Res::Iso { body, .. } => Arc::make_mut(body),
            _ => return,
        };
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// The CTR execution engine: rule base + transition oracle + database.
pub struct Engine {
    /// Sub-workflow definitions.
    pub rules: RuleBase,
    oracle: Box<dyn TransitionOracle + Send + Sync>,
    options: ExecOptions,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

/// One configuration of the search. Cloning (one per choice point) is
/// cheap by construction: the resolvent, the database snapshot, the
/// event log, and the recorded state path are all `Arc`-shared —
/// mutation goes through `Arc::make_mut`, so a branch pays for copying
/// only what it actually changes.
#[derive(Clone)]
struct Config {
    res: Res,
    db: Arc<Database>,
    subst: Subst,
    sent: BTreeSet<Channel>,
    events: Arc<Vec<Atom>>,
    depth: usize,
    states: Vec<Arc<Database>>,
}

impl Engine {
    /// An engine for purely propositional workflows: no oracle, no rules —
    /// every atom is a significant event.
    pub fn new() -> Engine {
        Engine {
            rules: RuleBase::new(),
            oracle: Box::new(NullOracle),
            options: ExecOptions::default(),
        }
    }

    /// An engine with a transition oracle for elementary updates.
    pub fn with_oracle(oracle: Box<dyn TransitionOracle + Send + Sync>) -> Engine {
        Engine {
            rules: RuleBase::new(),
            oracle,
            options: ExecOptions::default(),
        }
    }

    /// Replaces the execution limits.
    pub fn set_options(&mut self, options: ExecOptions) -> &mut Self {
        self.options = options;
        self
    }

    /// Enumerates the executions of `goal` starting at `db`, up to the
    /// configured limits, deduplicated by observable path and final state.
    pub fn executions(&self, goal: &Goal, db: &Database) -> Result<Vec<Execution>, EngineError> {
        let mut out = Vec::new();
        self.search(goal, db, self.options.max_solutions, &mut out)?;
        Ok(out)
    }

    /// The first execution found, if any.
    pub fn first_execution(
        &self,
        goal: &Goal,
        db: &Database,
    ) -> Result<Option<Execution>, EngineError> {
        let mut out = Vec::new();
        self.search(goal, db, 1, &mut out)?;
        Ok(out.pop())
    }

    /// True if the goal has at least one execution from `db` — the `◇`
    /// test, and the proof-theoretic reading of consistency.
    pub fn is_executable(&self, goal: &Goal, db: &Database) -> Result<bool, EngineError> {
        Ok(self.first_execution(goal, db)?.is_some())
    }

    fn search(
        &self,
        goal: &Goal,
        db: &Database,
        max_solutions: usize,
        out: &mut Vec<Execution>,
    ) -> Result<(), EngineError> {
        let simplified = goal.simplify();
        let query_vars = goal_var_floor(&simplified);
        let db = Arc::new(db.clone());
        let initial = Config {
            res: Res::compile(&simplified),
            db: Arc::clone(&db),
            subst: Subst::with_floor(query_vars),
            sent: BTreeSet::new(),
            events: Arc::new(Vec::new()),
            depth: 0,
            states: if self.options.record_states {
                vec![db]
            } else {
                Vec::new()
            },
        };
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut steps = 0usize;
        let mut stack = vec![initial];

        while let Some(mut cfg) = stack.pop() {
            if out.len() >= max_solutions {
                return Ok(());
            }
            steps += 1;
            if steps > self.options.max_steps {
                return Err(EngineError::StepLimit(self.options.max_steps));
            }

            if cfg.res.is_done() {
                // Answer bindings: resolve each of the query's own
                // variables against the final substitution.
                let bindings: Vec<(ctr::term::Var, ctr::term::Term)> = (0..query_vars)
                    .filter_map(|i| {
                        let v = ctr::term::Var(i);
                        let resolved = cfg.subst.resolve(&ctr::term::Term::Var(v));
                        (resolved != ctr::term::Term::Var(v)).then_some((v, resolved))
                    })
                    .collect();
                let exec = Execution {
                    events: (*cfg.events).clone(),
                    db: (*cfg.db).clone(),
                    bindings,
                    states: cfg.states.iter().map(|s| (**s).clone()).collect(),
                };
                let key = execution_key(&exec);
                if seen.insert(key) {
                    out.push(exec);
                }
                continue;
            }

            let rs = redexes(&cfg.res, &cfg.sent);
            if rs.is_empty() {
                // Deadlock or unsatisfiable branch: fail this configuration.
                continue;
            }

            // Eagerly fire one commitment-free channel operation, if any.
            let eager = rs.iter().find_map(|r| match r {
                Redex::Channel(p) if !enters_isolation(&cfg.res, p) => Some(p.clone()),
                _ => None,
            });
            if let Some(path) = eager {
                if let Res::Send(c) = node_at(&cfg.res, &path) {
                    cfg.sent.insert(*c);
                }
                *node_at_mut(&mut cfg.res, &path) = Res::Done;
                tidy_at(&mut cfg.res, &path);
                stack.push(cfg);
                continue;
            }

            // Branch over the remaining redexes (reversed so the stack
            // explores them in listed order).
            for redex in rs.iter().rev() {
                match redex {
                    Redex::Choose(path, branch) => {
                        let mut next = cfg.clone();
                        let node = node_at_mut(&mut next.res, path);
                        let Res::Or(children) = node else {
                            unreachable!("choose redex leads to a disjunction")
                        };
                        // The chosen branch is an Arc-shared subtree:
                        // committing is a refcount bump, not a copy.
                        *node = children[*branch].clone();
                        tidy_at(&mut next.res, path);
                        stack.push(next);
                    }
                    Redex::Channel(path) => {
                        // Only reachable inside an un-entered ⊙ block.
                        let mut next = cfg.clone();
                        enter_isolation(&mut next.res, path);
                        if let Res::Send(c) = node_at(&next.res, path) {
                            next.sent.insert(*c);
                        }
                        *node_at_mut(&mut next.res, path) = Res::Done;
                        tidy_at(&mut next.res, path);
                        stack.push(next);
                    }
                    Redex::Check(path) => {
                        let Res::Poss(body) = node_at(&cfg.res, path) else {
                            unreachable!("check redex leads to a ◇ node")
                        };
                        // ◇: executable-at-current-state test; consumes no
                        // path and leaves no changes.
                        if self.is_executable(body.as_ref(), &cfg.db)? {
                            let mut next = cfg.clone();
                            *node_at_mut(&mut next.res, path) = Res::Done;
                            tidy_at(&mut next.res, path);
                            stack.push(next);
                        }
                    }
                    Redex::Fire(path) => {
                        self.fire_atom(&cfg, path, &mut stack)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Resolves the atom at `path`, pushing one successor configuration
    /// per alternative. Resolution order: rules, elementary updates,
    /// queries, significant events.
    fn fire_atom(
        &self,
        cfg: &Config,
        path: &Path,
        stack: &mut Vec<Config>,
    ) -> Result<(), EngineError> {
        let Res::Atom(atom) = node_at(&cfg.res, path) else {
            unreachable!("fire redex leads to an atom")
        };
        let atom = cfg.subst.resolve_atom(atom);

        // 1. Sub-workflow call.
        if !atom.negated && self.rules.defines(atom.pred) {
            if cfg.depth >= self.options.max_depth {
                return Ok(()); // depth-bounded failure of this branch
            }
            for rule in self.rules.rules_for(atom.pred) {
                let mut next = cfg.clone();
                next.depth += 1;
                let mut mapping = BTreeMap::new();
                let head = rename_atom(&rule.head, &mut mapping, &mut next.subst);
                if !next.subst.unify_atoms(&head, &atom) {
                    continue;
                }
                let body = rule
                    .body
                    .map_atoms(&mut |a| rename_atom(a, &mut mapping, &mut next.subst));
                *node_at_mut(&mut next.res, path) = Res::compile(&body.simplify());
                tidy_at(&mut next.res, path);
                stack.push(next);
            }
            return Ok(());
        }

        // 2. Elementary update.
        if let Some(alternatives) = self.oracle.transitions(&atom, &cfg.db) {
            for delta in &alternatives {
                let mut next = cfg.clone();
                enter_isolation(&mut next.res, path);
                apply_logged(Arc::make_mut(&mut next.db), delta);
                Arc::make_mut(&mut next.events).push(atom.clone());
                if self.options.record_states {
                    next.states.push(Arc::clone(&next.db));
                }
                *node_at_mut(&mut next.res, path) = Res::Done;
                tidy_at(&mut next.res, path);
                stack.push(next);
            }
            return Ok(());
        }

        // 3. Query against the database.
        if atom.negated {
            if !atom.is_ground() {
                return Err(EngineError::UnsafeNegation(atom.to_string()));
            }
            let present = cfg.db.contains(atom.pred, &atom.args);
            if !present {
                let mut next = cfg.clone();
                enter_isolation(&mut next.res, path);
                *node_at_mut(&mut next.res, path) = Res::Done;
                tidy_at(&mut next.res, path);
                stack.push(next);
            }
            return Ok(());
        }
        if cfg.db.has_relation(atom.pred) {
            // One successor per matching tuple (with bindings).
            let tuples: Vec<_> = cfg.db.tuples(atom.pred).cloned().collect();
            for tuple in tuples {
                if tuple.len() != atom.args.len() {
                    continue;
                }
                let mut next = cfg.clone();
                let mark = next.subst.mark();
                let matches = atom
                    .args
                    .iter()
                    .zip(&tuple)
                    .all(|(a, t)| next.subst.unify(a, t));
                if matches {
                    enter_isolation(&mut next.res, path);
                    *node_at_mut(&mut next.res, path) = Res::Done;
                    tidy_at(&mut next.res, path);
                    stack.push(next);
                } else {
                    next.subst.undo_to(mark);
                }
            }
            return Ok(());
        }

        // 4. Significant event: an update that applies in every state and
        // only appends to the log (assumption (2)).
        let mut next = cfg.clone();
        enter_isolation(&mut next.res, path);
        Arc::make_mut(&mut next.events).push(atom);
        if self.options.record_states {
            // Significant events leave the state unchanged (assumption
            // (2)); the path still advances by one arc ⟨s, s⟩.
            next.states.push(Arc::clone(&next.db));
        }
        *node_at_mut(&mut next.res, path) = Res::Done;
        tidy_at(&mut next.res, path);
        stack.push(next);
        Ok(())
    }
}

fn apply_logged(db: &mut Database, delta: &Delta) {
    let _ = db.apply_delta(delta);
}

/// Canonical dedup key for an execution.
fn execution_key(exec: &Execution) -> String {
    use std::fmt::Write;
    let mut key = String::new();
    for e in &exec.events {
        let _ = write!(key, "{e};");
    }
    key.push('|');
    let _ = write!(key, "{:?}", exec.db);
    key.push('|');
    for (v, t) in &exec.bindings {
        let _ = write!(key, "{v:?}={t};");
    }
    key
}

/// Highest variable index in the goal's atoms, plus one.
fn goal_var_floor(goal: &Goal) -> u32 {
    let mut floor = 0u32;
    goal.for_each_atom(&mut |a| {
        let mut vars = Vec::new();
        for arg in &a.args {
            arg.collect_vars(&mut vars);
        }
        for ctr::term::Var(i) in vars {
            floor = floor.max(i + 1);
        }
    });
    floor
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::goal::{conc, isolated, or, possible, seq};
    use ctr::symbol::sym;
    use ctr::term::Term;
    use ctr_state::StandardOracle;
    use std::collections::BTreeSet as Set;

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    fn event_sets(execs: &[Execution]) -> Set<Vec<Symbol>> {
        execs.iter().map(Execution::event_names).collect()
    }

    #[test]
    fn seq_executes_in_order() {
        let engine = Engine::new();
        let execs = engine
            .executions(&seq(vec![g("a"), g("b")]), &Database::new())
            .unwrap();
        assert_eq!(
            event_sets(&execs),
            [vec![sym("a"), sym("b")]].into_iter().collect()
        );
    }

    #[test]
    fn conc_produces_all_interleavings() {
        let engine = Engine::new();
        let execs = engine
            .executions(&conc(vec![g("a"), g("b")]), &Database::new())
            .unwrap();
        assert_eq!(execs.len(), 2);
    }

    #[test]
    fn or_produces_all_choices() {
        let engine = Engine::new();
        let execs = engine
            .executions(&or(vec![g("a"), g("b"), g("c")]), &Database::new())
            .unwrap();
        assert_eq!(execs.len(), 3);
    }

    #[test]
    fn agreement_with_trace_semantics_on_propositional_goals() {
        // The proof procedure and the model-theoretic trace enumeration
        // must denote the same execution set.
        let engine = Engine::new();
        let mut checked = 0;
        for seed in 0..15 {
            let (goal, _) = ctr::gen::random_goal(
                seed,
                ctr::gen::GoalShape {
                    depth: 3,
                    width: 3,
                    or_bias: 0.3,
                },
                "p",
            );
            // Skip seeds whose interleaving space exceeds the oracle budget.
            let Ok(semantic) = ctr::semantics::event_traces(&goal, 100_000) else {
                continue;
            };
            let execs = engine.executions(&goal, &Database::new()).unwrap();
            assert_eq!(event_sets(&execs), semantic, "seed {seed} goal {goal}");
            checked += 1;
        }
        assert!(checked >= 8, "enough seeds fit the budget ({checked})");
    }

    #[test]
    fn channels_synchronize() {
        let xi = Channel(0);
        let goal = conc(vec![
            seq(vec![g("a"), Goal::Send(xi)]),
            seq(vec![Goal::Receive(xi), g("b")]),
        ]);
        let engine = Engine::new();
        let execs = engine.executions(&goal, &Database::new()).unwrap();
        assert_eq!(
            event_sets(&execs),
            [vec![sym("a"), sym("b")]].into_iter().collect()
        );
    }

    #[test]
    fn knotted_goal_has_no_executions() {
        let xi = Channel(0);
        let goal = seq(vec![Goal::Receive(xi), g("a"), Goal::Send(xi)]);
        let engine = Engine::new();
        assert!(!engine.is_executable(&goal, &Database::new()).unwrap());
    }

    #[test]
    fn isolation_excludes_interleavings() {
        let goal = conc(vec![isolated(seq(vec![g("a"), g("b")])), g("c")]);
        let engine = Engine::new();
        let execs = engine.executions(&goal, &Database::new()).unwrap();
        let expected: Set<Vec<Symbol>> = [
            vec![sym("a"), sym("b"), sym("c")],
            vec![sym("c"), sym("a"), sym("b")],
        ]
        .into_iter()
        .collect();
        assert_eq!(event_sets(&execs), expected);
    }

    #[test]
    fn possibility_tests_without_consuming() {
        let goal = seq(vec![possible(g("x")), g("a")]);
        let engine = Engine::new();
        let execs = engine.executions(&goal, &Database::new()).unwrap();
        assert_eq!(event_sets(&execs), [vec![sym("a")]].into_iter().collect());
    }

    #[test]
    fn possibility_of_failing_goal_fails() {
        // ◇(query on empty relation) cannot succeed.
        let mut db = Database::new();
        db.declare("stock");
        let goal = seq(vec![possible(Goal::Atom(Atom::prop("stock"))), g("a")]);
        let engine = Engine::new();
        // `stock` resolves as a query (declared relation) with no tuples.
        assert!(!engine.is_executable(&goal, &db).unwrap());
    }

    #[test]
    fn updates_change_state() {
        let engine = Engine::with_oracle(Box::new(StandardOracle::new()));
        let goal = seq(vec![
            Goal::Atom(Atom::new("ins_cart", vec![Term::constant("book")])),
            g("checkout"),
        ]);
        let execs = engine.executions(&goal, &Database::new()).unwrap();
        assert_eq!(execs.len(), 1);
        assert!(execs[0].db.contains(sym("cart"), &[Term::constant("book")]));
        assert_eq!(execs[0].events.len(), 2, "update and event both logged");
    }

    #[test]
    fn queries_filter_executions() {
        let mut db = Database::new();
        db.insert_fact("approved");
        db.declare("rejected");
        let engine = Engine::new();
        // approved? succeeds, rejected? fails.
        let ok = seq(vec![Goal::Atom(Atom::prop("approved")), g("pay")]);
        let bad = seq(vec![Goal::Atom(Atom::prop("rejected")), g("pay")]);
        assert!(engine.is_executable(&ok, &db).unwrap());
        assert!(!engine.is_executable(&bad, &db).unwrap());
    }

    #[test]
    fn negated_queries_use_naf() {
        let mut db = Database::new();
        db.insert_fact("frozen");
        let engine = Engine::new();
        let goal = seq(vec![Goal::Atom(Atom::prop("frozen").negate()), g("pay")]);
        assert!(!engine.is_executable(&goal, &db).unwrap());
        let goal2 = seq(vec![Goal::Atom(Atom::prop("audited").negate()), g("pay")]);
        assert!(engine.is_executable(&goal2, &Database::new()).unwrap());
    }

    #[test]
    fn unsafe_negation_is_an_error() {
        let engine = Engine::new();
        let goal = Goal::Atom(Atom {
            pred: sym("p"),
            args: vec![Term::Var(ctr::term::Var(0))],
            negated: true,
        });
        assert!(matches!(
            engine.is_executable(&goal, &Database::new()),
            Err(EngineError::UnsafeNegation(_))
        ));
    }

    #[test]
    fn query_with_variables_binds_and_branches() {
        let mut db = Database::new();
        db.insert("flight", vec![Term::constant("aa100")]);
        db.insert("flight", vec![Term::constant("ba200")]);
        let engine = Engine::with_oracle(Box::new(StandardOracle::new()));
        // flight(X) ⊗ ins_booked(X): one execution per flight.
        let x = Term::Var(ctr::term::Var(0));
        let goal = seq(vec![
            Goal::Atom(Atom::new("flight", vec![x.clone()])),
            Goal::Atom(Atom::new("ins_booked", vec![x])),
        ]);
        let execs = engine.executions(&goal, &db).unwrap();
        assert_eq!(execs.len(), 2);
        let booked: Set<bool> = execs
            .iter()
            .map(|e| e.db.contains(sym("booked"), &[Term::constant("aa100")]))
            .collect();
        assert_eq!(booked.len(), 2, "each execution books a different flight");
    }

    #[test]
    fn state_paths_are_recorded_on_request() {
        let mut engine = Engine::with_oracle(Box::new(StandardOracle::new()));
        engine.set_options(ExecOptions {
            record_states: true,
            ..Default::default()
        });
        let goal = seq(vec![
            Goal::Atom(Atom::new("ins_cart", vec![Term::constant("book")])),
            g("checkout"),
        ]);
        let execs = engine.executions(&goal, &Database::new()).unwrap();
        assert_eq!(execs.len(), 1);
        // Path ⟨s₁, s₂, s₃⟩: initial, after the insert, after the event.
        let states = &execs[0].states;
        assert_eq!(states.len(), 3);
        assert!(states[0].is_empty());
        assert!(states[1].contains(sym("cart"), &[Term::constant("book")]));
        assert_eq!(states[1], states[2], "events move along ⟨s, s⟩ arcs");
    }

    #[test]
    fn state_paths_are_empty_by_default() {
        let engine = Engine::new();
        let execs = engine.executions(&g("a"), &Database::new()).unwrap();
        assert!(execs[0].states.is_empty());
    }

    #[test]
    fn answer_bindings_are_reported() {
        let mut db = Database::new();
        db.insert("flight", vec![Term::constant("aa100")]);
        db.insert("flight", vec![Term::constant("ba200")]);
        let engine = Engine::new();
        let x = Term::Var(ctr::term::Var(0));
        let goal = seq(vec![Goal::Atom(Atom::new("flight", vec![x])), g("board")]);
        let mut execs = engine.executions(&goal, &db).unwrap();
        execs.sort_by_key(|e| e.bindings.clone());
        assert_eq!(execs.len(), 2);
        assert_eq!(
            execs[0].bindings,
            vec![(ctr::term::Var(0), Term::constant("aa100"))]
        );
        assert_eq!(
            execs[1].bindings,
            vec![(ctr::term::Var(0), Term::constant("ba200"))]
        );
    }

    #[test]
    fn ground_goals_have_no_bindings() {
        let engine = Engine::new();
        let execs = engine.executions(&g("a"), &Database::new()).unwrap();
        assert!(execs[0].bindings.is_empty());
    }

    #[test]
    fn rules_unfold_subworkflows() {
        let mut engine = Engine::new();
        engine
            .rules
            .define(
                "ship",
                seq(vec![g("pack"), or(vec![g("ground"), g("air")])]),
            )
            .unwrap();
        let goal = seq(vec![g("order"), g("ship")]);
        let execs = engine.executions(&goal, &Database::new()).unwrap();
        assert_eq!(
            event_sets(&execs),
            [
                vec![sym("order"), sym("pack"), sym("ground")],
                vec![sym("order"), sym("pack"), sym("air")],
            ]
            .into_iter()
            .collect()
        );
    }

    #[test]
    fn rules_with_variables_bind_parameters() {
        let mut engine = Engine::with_oracle(Box::new(StandardOracle::new()));
        let x = Term::Var(ctr::term::Var(0));
        engine
            .rules
            .add(crate::rules::Rule {
                head: Atom::new("record", vec![x.clone()]),
                body: Goal::Atom(Atom::new("ins_log", vec![x])),
            })
            .unwrap();
        let goal = Goal::Atom(Atom::new("record", vec![Term::constant("done")]));
        let execs = engine.executions(&goal, &Database::new()).unwrap();
        assert_eq!(execs.len(), 1);
        assert!(execs[0].db.contains(sym("log"), &[Term::constant("done")]));
    }

    #[test]
    fn bounded_recursion_terminates() {
        let mut engine = Engine::new();
        engine.rules.allow_recursion();
        engine
            .rules
            .define(
                "loop",
                or(vec![Goal::Empty, seq(vec![g("tick"), g("loop")])]),
            )
            .unwrap();
        engine.set_options(ExecOptions {
            max_solutions: 5,
            max_steps: 100_000,
            max_depth: 16,
            ..Default::default()
        });
        let execs = engine.executions(&g("loop"), &Database::new()).unwrap();
        assert_eq!(execs.len(), 5);
        // Executions are tick-sequences of increasing length, including 0.
        assert!(execs.iter().any(|e| e.events.is_empty()));
    }

    #[test]
    fn step_limit_is_enforced() {
        let mut engine = Engine::new();
        engine.set_options(ExecOptions {
            max_solutions: usize::MAX,
            max_steps: 10,
            max_depth: 8,
            ..Default::default()
        });
        let goal = conc((0..6).map(|i| g(&format!("t{i}"))).collect());
        assert_eq!(
            engine.executions(&goal, &Database::new()),
            Err(EngineError::StepLimit(10))
        );
    }

    #[test]
    fn nondeterministic_oracle_branches() {
        let mut oracle = StandardOracle::new();
        oracle.register("pick", ctr_state::choose_any("options", "picked"));
        let engine = Engine::with_oracle(Box::new(oracle));
        let mut db = Database::new();
        db.insert("options", vec![Term::constant("x")]);
        db.insert("options", vec![Term::constant("y")]);
        let execs = engine.executions(&Goal::atom("pick"), &db).unwrap();
        assert_eq!(execs.len(), 2);
    }
}
