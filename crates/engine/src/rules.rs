//! Concurrent-Horn rules and rule bases.
//!
//! A concurrent-Horn rule `head ← body` names a procedure: "one way to
//! execute `head` is to execute `body`" (paper, §2). In workflow terms the
//! rules define **sub-workflows**: `subWorkFlowName ← subWorkFlowDefinition`
//! lets a composite activity appear in specifications as if it were a
//! regular activity, hiding its structure.
//!
//! The paper restricts attention to *non-iterative* workflows — no
//! recursive rules (§2); loops are future work (§7). [`RuleBase`] enforces
//! this by default and offers an opt-in for bounded recursion, which the
//! interpreter guards with a depth limit.

use ctr::goal::Goal;
use ctr::symbol::Symbol;
use ctr::term::Atom;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A concurrent-Horn rule `head ← body`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// The head atom; its variables are the formal parameters.
    pub head: Atom,
    /// The body, a concurrent-Horn goal.
    pub body: Goal,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <- {}", self.head, self.body)
    }
}

/// Errors when assembling a rule base.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuleError {
    /// The rule set is recursive (directly or mutually) on the named
    /// predicate, which non-iterative workflows forbid.
    Recursive(Symbol),
    /// A rule head is negated, which is not Horn.
    NegatedHead(Symbol),
    /// Static expansion was requested on a base with recursion enabled;
    /// bounded recursion cannot be flattened.
    CannotExpandRecursive,
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::Recursive(p) => write!(
                f,
                "rule predicate `{p}` is (mutually) recursive; non-iterative workflows \
                 require acyclic sub-workflow definitions (enable bounded recursion to allow)"
            ),
            RuleError::NegatedHead(p) => write!(f, "rule head `{p}` must not be negated"),
            RuleError::CannotExpandRecursive => {
                write!(f, "cannot statically expand a recursive rule base")
            }
        }
    }
}

impl std::error::Error for RuleError {}

/// A set of concurrent-Horn rules indexed by head predicate.
#[derive(Clone, Debug, Default)]
pub struct RuleBase {
    rules: BTreeMap<Symbol, Vec<Rule>>,
    allow_recursion: bool,
}

impl RuleBase {
    /// An empty rule base (recursion disallowed, per the paper's
    /// non-iterative restriction).
    pub fn new() -> RuleBase {
        RuleBase::default()
    }

    /// Opts in to recursive rules — the §7 "loops and iteration"
    /// extension. The interpreter bounds unfolding depth at run time.
    pub fn allow_recursion(&mut self) -> &mut Self {
        self.allow_recursion = true;
        self
    }

    /// True if recursion has been enabled.
    pub fn recursion_allowed(&self) -> bool {
        self.allow_recursion
    }

    /// Adds a rule, revalidating acyclicity unless recursion is enabled.
    pub fn add(&mut self, rule: Rule) -> Result<&mut Self, RuleError> {
        if rule.head.negated {
            return Err(RuleError::NegatedHead(rule.head.pred));
        }
        let pred = rule.head.pred;
        self.rules.entry(pred).or_default().push(rule);
        if !self.allow_recursion {
            if let Some(offender) = self.find_cycle() {
                // Roll the insertion back so the base stays valid.
                let list = self.rules.get_mut(&pred).expect("just inserted");
                list.pop();
                if list.is_empty() {
                    self.rules.remove(&pred);
                }
                return Err(RuleError::Recursive(offender));
            }
        }
        Ok(self)
    }

    /// Convenience: defines a propositional sub-workflow.
    pub fn define(&mut self, name: impl Into<Symbol>, body: Goal) -> Result<&mut Self, RuleError> {
        self.add(Rule {
            head: Atom::prop(name),
            body,
        })
    }

    /// The rules whose head predicate is `pred`.
    pub fn rules_for(&self, pred: Symbol) -> &[Rule] {
        self.rules.get(&pred).map_or(&[], Vec::as_slice)
    }

    /// True if any rule defines `pred`.
    pub fn defines(&self, pred: Symbol) -> bool {
        self.rules.contains_key(&pred)
    }

    /// All defined predicates.
    pub fn predicates(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.rules.keys().copied()
    }

    /// Total number of rules.
    pub fn len(&self) -> usize {
        self.rules.values().map(Vec::len).sum()
    }

    /// True if no rules are defined.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Returns a predicate on a definition cycle, if one exists.
    fn find_cycle(&self) -> Option<Symbol> {
        // DFS over the call graph: defined predicate → defined predicates
        // mentioned in its bodies.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let preds: Vec<Symbol> = self.rules.keys().copied().collect();
        let mut marks: BTreeMap<Symbol, Mark> = preds.iter().map(|&p| (p, Mark::White)).collect();

        fn callees(rules: &BTreeMap<Symbol, Vec<Rule>>, pred: Symbol) -> BTreeSet<Symbol> {
            let mut out = BTreeSet::new();
            if let Some(rs) = rules.get(&pred) {
                for r in rs {
                    r.body.for_each_atom(&mut |a| {
                        out.insert(a.pred);
                    });
                }
            }
            out.retain(|p| rules.contains_key(p));
            out
        }

        fn visit(
            rules: &BTreeMap<Symbol, Vec<Rule>>,
            marks: &mut BTreeMap<Symbol, Mark>,
            pred: Symbol,
        ) -> Option<Symbol> {
            match marks[&pred] {
                Mark::Black => return None,
                Mark::Grey => return Some(pred),
                Mark::White => {}
            }
            marks.insert(pred, Mark::Grey);
            for callee in callees(rules, pred) {
                if let Some(offender) = visit(rules, marks, callee) {
                    return Some(offender);
                }
            }
            marks.insert(pred, Mark::Black);
            None
        }

        for p in preds {
            if let Some(offender) = visit(&self.rules, &mut marks, p) {
                return Some(offender);
            }
        }
        None
    }

    /// Fully expands every defined propositional predicate in `goal`,
    /// replacing each call with the disjunction of its rule bodies. Only
    /// valid for non-recursive, propositional (variable-free) rule bases —
    /// the flattening used before constraint compilation when global
    /// dependencies span sub-workflow boundaries (§7).
    ///
    /// # Errors
    ///
    /// [`RuleError::CannotExpandRecursive`] if recursion was enabled —
    /// bounded recursion cannot be flattened statically.
    pub fn expand(&self, goal: &Goal) -> Result<Goal, RuleError> {
        if self.allow_recursion {
            return Err(RuleError::CannotExpandRecursive);
        }
        Ok(self.expand_inner(goal))
    }

    fn expand_inner(&self, goal: &Goal) -> Goal {
        match goal {
            Goal::Atom(a) if a.is_prop() && self.defines(a.pred) => {
                let bodies: Vec<Goal> = self
                    .rules_for(a.pred)
                    .iter()
                    .map(|r| self.expand_inner(&r.body))
                    .collect();
                ctr::goal::or(bodies)
            }
            Goal::Atom(_) | Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => {
                goal.clone()
            }
            Goal::Seq(gs) => ctr::goal::seq(gs.iter().map(|g| self.expand_inner(g)).collect()),
            Goal::Conc(gs) => ctr::goal::conc(gs.iter().map(|g| self.expand_inner(g)).collect()),
            Goal::Or(gs) => ctr::goal::or(gs.iter().map(|g| self.expand_inner(g)).collect()),
            Goal::Isolated(g) => ctr::goal::isolated(self.expand_inner(g)),
            Goal::Possible(g) => ctr::goal::possible(self.expand_inner(g)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::goal::{or, seq};
    use ctr::symbol::sym;

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    #[test]
    fn define_and_lookup() {
        let mut rb = RuleBase::new();
        rb.define("ship", seq(vec![g("pack"), g("post")])).unwrap();
        assert!(rb.defines(sym("ship")));
        assert_eq!(rb.rules_for(sym("ship")).len(), 1);
        assert_eq!(rb.len(), 1);
    }

    #[test]
    fn multiple_rules_per_predicate() {
        let mut rb = RuleBase::new();
        rb.define("deliver", g("courier")).unwrap();
        rb.define("deliver", g("mail")).unwrap();
        assert_eq!(rb.rules_for(sym("deliver")).len(), 2);
    }

    #[test]
    fn direct_recursion_is_rejected() {
        let mut rb = RuleBase::new();
        let err = rb
            .define("loop", seq(vec![g("work"), g("loop")]))
            .unwrap_err();
        assert_eq!(err, RuleError::Recursive(sym("loop")));
        assert!(!rb.defines(sym("loop")), "rejected rule is rolled back");
    }

    #[test]
    fn mutual_recursion_is_rejected() {
        let mut rb = RuleBase::new();
        rb.define("ping", g("pong")).unwrap();
        let err = rb.define("pong", g("ping")).unwrap_err();
        assert!(matches!(err, RuleError::Recursive(_)));
        assert!(rb.defines(sym("ping")), "earlier valid rule survives");
        assert!(!rb.defines(sym("pong")));
    }

    #[test]
    fn recursion_opt_in() {
        let mut rb = RuleBase::new();
        rb.allow_recursion();
        rb.define(
            "loop",
            or(vec![Goal::Empty, seq(vec![g("work"), g("loop")])]),
        )
        .unwrap();
        assert!(rb.defines(sym("loop")));
    }

    #[test]
    fn negated_head_is_rejected() {
        let mut rb = RuleBase::new();
        let err = rb
            .add(Rule {
                head: Atom::prop("p").negate(),
                body: g("q"),
            })
            .unwrap_err();
        assert_eq!(err, RuleError::NegatedHead(sym("p")));
    }

    #[test]
    fn expand_flattens_nested_subworkflows() {
        let mut rb = RuleBase::new();
        rb.define("inner", or(vec![g("x"), g("y")])).unwrap();
        rb.define("outer", seq(vec![g("a"), g("inner")])).unwrap();
        let flat = rb.expand(&seq(vec![g("outer"), g("z")])).unwrap();
        assert_eq!(flat, seq(vec![g("a"), or(vec![g("x"), g("y")]), g("z")]));
    }

    #[test]
    fn expand_with_alternative_definitions_becomes_or() {
        let mut rb = RuleBase::new();
        rb.define("pay", g("card")).unwrap();
        rb.define("pay", g("cash")).unwrap();
        assert_eq!(
            rb.expand(&g("pay")).unwrap(),
            or(vec![g("card"), g("cash")])
        );
    }

    #[test]
    fn expand_rejects_recursive_base() {
        let mut rb = RuleBase::new();
        rb.allow_recursion();
        rb.define("loop", or(vec![Goal::Empty, g("loop")])).unwrap();
        assert_eq!(
            rb.expand(&g("loop")).unwrap_err(),
            RuleError::CannotExpandRecursive
        );
    }

    #[test]
    fn display_rule() {
        let r = Rule {
            head: Atom::prop("ship"),
            body: seq(vec![g("pack"), g("post")]),
        };
        assert_eq!(r.to_string(), "ship <- pack * post");
    }
}
