#![warn(missing_docs)]

//! # ctr-engine — executing concurrent-Horn CTR
//!
//! The run-time half of the PODS'98 workflow system: an SLD-style proof
//! procedure that executes workflows while proving them
//! ([`interpreter`]), unification and concurrent-Horn rule bases for
//! sub-workflows ([`unify`], [`rules`]), and the pro-active scheduler
//! over compiled, constraint-free goals ([`scheduler`]).
//!
//! Two execution layers, by design:
//!
//! * [`Engine`] — the full first-order interpreter: database states,
//!   transition oracles, queries with unification, negation-as-failure
//!   transition conditions, `⊙` isolation, `◇` possibility, bounded
//!   recursion. Correctness-first, backtracking search.
//! * [`Scheduler`] — the fast propositional cursor over a compiled
//!   [`Program`]: eligible-event tracking and linear-time schedule
//!   construction, as promised in §4 of the paper.
//!
//! The two agree on propositional goals (differentially tested against
//! each other and against `ctr::semantics`).

pub mod interpreter;
pub mod rules;
pub mod scheduler;
pub mod unify;

pub use interpreter::{Engine, EngineError, ExecOptions, Execution};
pub use rules::{Rule, RuleBase, RuleError};
pub use scheduler::{Choice, NodeId, Program, ScheduleError, Scheduler};
pub use unify::Subst;
