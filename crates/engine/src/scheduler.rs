//! The pro-active scheduler (paper, §4).
//!
//! After `Apply` + `Excise`, the compiled goal `G'` is a "compressed"
//! explicit representation of all allowed executions: the constraints are
//! *compiled into the structure*, so no run-time constraint validation is
//! needed. This module executes that structure: "at each stage in the
//! execution of a workflow, the scheduler knows all events that are
//! eligible to start."
//!
//! [`Program`] is the goal flattened into an arena; [`Scheduler`] is a
//! cursor over it. Each [`Scheduler::fire`] commits the `∨`-choices and
//! `⊙`-entries on the fired node's path, appends the event to the trace,
//! and silently drains enabled `send`/`receive` bookkeeping.
//!
//! The scheduler's "knows all events" promise is implemented literally:
//! eligibility is **stateful and incremental**, not recomputed. The
//! cursor maintains a persistent *frontier* — the eligible-node set, kept
//! sorted in the program's DFS pre-order, plus an event-symbol index over
//! it — and every `fire` delta-updates it: only the fired leaf's
//! root-to-leaf path (committed `∨`-branches lose their abandoned
//! siblings, newly reached `⊗`-successors and enabled `receive`s join)
//! changes; the rest of the frontier is untouched. [`Scheduler::eligible`]
//! therefore returns a cached slice, [`Scheduler::fire_event`] is a hash
//! lookup, and [`Scheduler::is_complete`]/[`Scheduler::is_deadlocked`]
//! are O(1) flag/length reads. The delta rules and their soundness
//! argument are written up in DESIGN.md §11; the from-scratch recursive
//! walk is retained as [`Scheduler::eligible_reference`] and proptests
//! pin the two observationally identical.

use ctr::goal::{Channel, Goal};
use ctr::symbol::Symbol;
use ctr::term::Atom;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// Index of a node in a [`Program`].
pub type NodeId = usize;

/// Sentinel for "no slot" / "end of list" in the dense event index.
const NIL: u32 = u32::MAX;

/// FxHash-style mixer for the compile-time symbol→slot map. The key is a
/// single interned `u32` id, so a full SipHash pass per `fire_event`
/// dispatch is pure overhead; one rotate-xor-multiply round is enough to
/// spread sequential interner ids across buckets.
#[derive(Default)]
struct SymbolIdHasher(u64);

impl Hasher for SymbolIdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

type SymbolMap<V> = HashMap<Symbol, V, BuildHasherDefault<SymbolIdHasher>>;

#[derive(Clone, Debug)]
enum NodeKind {
    /// A workflow activity/event (any atom: the scheduler is the
    /// propositional layer; state effects belong to the interpreter).
    Event(Atom),
    Seq(Vec<NodeId>),
    Conc(Vec<NodeId>),
    Or(Vec<NodeId>),
    Iso(NodeId),
    Send(Channel),
    Recv(Channel),
    Empty,
}

#[derive(Clone, Debug)]
struct Node {
    kind: NodeKind,
    parent: Option<NodeId>,
}

/// Errors from compiling a goal into a schedulable program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// The goal is `¬path` — the specification is inconsistent and there
    /// is nothing to schedule.
    Inconsistent,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Inconsistent => {
                write!(
                    f,
                    "goal is ¬path: the workflow specification is inconsistent"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A compiled, schedulable workflow program.
#[derive(Clone, Debug)]
pub struct Program {
    nodes: Vec<Node>,
    root: NodeId,
    /// DFS pre-order rank of each node. The frontier is kept sorted by
    /// this rank, which reproduces the recursive walk's emission order;
    /// `[pre[n], end[n])` is `n`'s subtree as a rank interval, making
    /// descendant tests and subtree evictions O(1)/O(evicted).
    pre: Vec<u32>,
    /// One past the last pre-order rank inside each node's subtree.
    end: Vec<u32>,
    /// `receive` nodes per channel — consulted when a `send` fires to
    /// promote newly enabled receives into the frontier.
    recvs: HashMap<Channel, Vec<NodeId>>,
    /// One past the largest channel id mentioned; sizes the dense
    /// channel bitset carried by each cursor.
    channel_bound: u32,
    /// Event symbol → dense slot id, assigned at compile time. The one
    /// hashed lookup on the `fire_event` path; everything downstream
    /// indexes by slot.
    slots: SymbolMap<u32>,
    /// Per node: the slot of its event symbol, or [`NIL`] for nodes that
    /// are not event leaves. Lets the cursor's event index update without
    /// hashing.
    event_slot: Vec<u32>,
}

impl Program {
    /// Compiles a (simplified, knot-free) goal. `◇`-subgoals are resolved
    /// at compile time: in the propositional scheduling layer a simplified
    /// non-`¬path` body is always executable, so they reduce to `Empty`
    /// (state-dependent `◇` belongs to the interpreter).
    pub fn compile(goal: &Goal) -> Result<Program, ScheduleError> {
        let simplified = goal.simplify();
        if simplified.is_nopath() {
            return Err(ScheduleError::Inconsistent);
        }
        let mut nodes = Vec::with_capacity(simplified.size());
        let root = build(&simplified, &mut nodes);
        // Wire parents after construction.
        let links: Vec<(NodeId, Vec<NodeId>)> = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (i, children_of(&n.kind).to_vec()))
            .collect();
        for (parent, children) in links {
            for c in children {
                nodes[c].parent = Some(parent);
            }
        }
        let mut pre = vec![0u32; nodes.len()];
        let mut end = vec![0u32; nodes.len()];
        let mut counter = 0u32;
        assign_ranks(&nodes, root, &mut pre, &mut end, &mut counter);
        let mut recvs: HashMap<Channel, Vec<NodeId>> = HashMap::new();
        let mut channel_bound = 0u32;
        let mut slots: SymbolMap<u32> = SymbolMap::default();
        let mut event_slot = vec![NIL; nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            match &n.kind {
                NodeKind::Send(c) => channel_bound = channel_bound.max(c.0 + 1),
                NodeKind::Recv(c) => {
                    channel_bound = channel_bound.max(c.0 + 1);
                    recvs.entry(*c).or_default().push(i);
                }
                NodeKind::Event(a) => {
                    if let Some(s) = a.as_event() {
                        let next = slots.len() as u32;
                        event_slot[i] = *slots.entry(s).or_insert(next);
                    }
                }
                _ => {}
            }
        }
        Ok(Program {
            nodes,
            root,
            pre,
            end,
            recvs,
            channel_bound,
            slots,
            event_slot,
        })
    }

    /// Number of nodes in the program.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the program is a single `Empty` node.
    pub fn is_empty(&self) -> bool {
        matches!(self.nodes[self.root].kind, NodeKind::Empty)
    }

    /// The event atom of a node, if it is an event node.
    pub fn event(&self, node: NodeId) -> Option<&Atom> {
        match &self.nodes[node].kind {
            NodeKind::Event(a) => Some(a),
            _ => None,
        }
    }

    /// True if `node` lies in `anc`'s subtree (including `anc` itself).
    #[inline]
    fn in_subtree(&self, anc: NodeId, node: NodeId) -> bool {
        self.pre[node] >= self.pre[anc] && self.pre[node] < self.end[anc]
    }

    /// The `receive` nodes listening on a channel.
    fn recvs_on(&self, c: Channel) -> &[NodeId] {
        self.recvs.get(&c).map_or(&[], Vec::as_slice)
    }
}

fn children_of(kind: &NodeKind) -> &[NodeId] {
    match kind {
        NodeKind::Seq(cs) | NodeKind::Conc(cs) | NodeKind::Or(cs) => cs,
        NodeKind::Iso(c) => std::slice::from_ref(c),
        _ => &[],
    }
}

fn build(goal: &Goal, nodes: &mut Vec<Node>) -> NodeId {
    let kind = match goal {
        Goal::Atom(a) => NodeKind::Event(a.clone()),
        Goal::Seq(gs) => NodeKind::Seq(gs.iter().map(|g| build(g, nodes)).collect()),
        Goal::Conc(gs) => NodeKind::Conc(gs.iter().map(|g| build(g, nodes)).collect()),
        Goal::Or(gs) => NodeKind::Or(gs.iter().map(|g| build(g, nodes)).collect()),
        Goal::Isolated(g) => NodeKind::Iso(build(g, nodes)),
        Goal::Possible(_) => NodeKind::Empty,
        Goal::Send(c) => NodeKind::Send(*c),
        Goal::Receive(c) => NodeKind::Recv(*c),
        Goal::Empty => NodeKind::Empty,
        Goal::NoPath => unreachable!("simplified non-¬path goals contain no ¬path"),
    };
    nodes.push(Node { kind, parent: None });
    nodes.len() - 1
}

fn assign_ranks(nodes: &[Node], node: NodeId, pre: &mut [u32], end: &mut [u32], counter: &mut u32) {
    pre[node] = *counter;
    *counter += 1;
    for &c in children_of(&nodes[node].kind) {
        assign_ranks(nodes, c, pre, end, counter);
    }
    end[node] = *counter;
}

/// A dense channel bitset: channel ids are allocated contiguously by
/// `ChannelAlloc`, so membership is one shift-and-mask instead of a
/// `BTreeSet` probe. Iteration yields channels in ascending id order —
/// the same order the `BTreeSet` representation produced, which keeps
/// [`Scheduler::state_key`] byte-identical.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct ChannelSet {
    words: Vec<u64>,
}

impl ChannelSet {
    fn with_bound(bound: u32) -> ChannelSet {
        ChannelSet {
            words: vec![0; (bound as usize).div_ceil(64)],
        }
    }

    #[inline]
    fn contains(&self, c: Channel) -> bool {
        self.words
            .get((c.0 / 64) as usize)
            .is_some_and(|w| w & (1u64 << (c.0 % 64)) != 0)
    }

    /// Inserts the channel; true if it was newly added.
    fn insert(&mut self, c: Channel) -> bool {
        let (word, bit) = ((c.0 / 64) as usize, c.0 % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let fresh = self.words[word] & (1u64 << bit) == 0;
        self.words[word] |= 1u64 << bit;
        fresh
    }

    /// Set channels in ascending id order.
    fn iter(&self) -> impl Iterator<Item = Channel> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros();
                w &= w - 1;
                Some(Channel((i * 64) as u32 + bit))
            })
        })
    }
}

/// One schedulable step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Choice {
    /// The node to fire.
    pub node: NodeId,
    /// True if this step is an observable event (false: internal
    /// `send`/`receive` bookkeeping requiring a choice commitment).
    pub observable: bool,
}

/// The mutable cursor state, split out of [`Scheduler`] so the frontier
/// machinery can borrow the (generically held) program and the state
/// disjointly.
#[derive(Clone, Debug)]
struct Cursor {
    done: Vec<bool>,
    seq_pos: Vec<usize>,
    or_choice: Vec<Option<NodeId>>,
    sent: ChannelSet,
    /// Stack of entered, unfinished `⊙` nodes (innermost last).
    lock: Vec<NodeId>,
    /// Dense membership mirror of `lock` — O(1) instead of a `Vec` scan.
    locked: Vec<bool>,
    trace: Vec<Atom>,
    finished: bool,
    /// The eligible set, ignoring `⊙`-scoping, sorted by DFS pre-order
    /// rank (== the recursive walk's emission order). Invariant: a node
    /// is here iff the walk from the root would emit it.
    frontier: Vec<Choice>,
    /// Dense membership mirror of `frontier`.
    in_frontier: Vec<bool>,
    /// Eligible *event* nodes by event-symbol slot — `fire_event`'s O(1)
    /// dispatch index, as intrusive singly-linked lists: `evt_head[slot]`
    /// is the first frontier node carrying that symbol, `evt_next[node]`
    /// the next one (both [`NIL`]-terminated). Maintenance is pointer
    /// writes — no hashing, no allocation; lists are unordered and ties
    /// resolve by pre-order at dispatch.
    evt_head: Vec<u32>,
    evt_next: Vec<u32>,
    /// `frontier` filtered to the innermost `⊙` subtree; refreshed after
    /// every mutation while a lock is active, unused (empty) otherwise.
    scoped: Vec<Choice>,
    /// Reusable scratch buffers — the fire path allocates nothing.
    scratch: Vec<NodeId>,
    scratch_or: Vec<(NodeId, NodeId)>,
    scratch_evict: Vec<NodeId>,
}

impl Cursor {
    fn new(p: &Program) -> Cursor {
        let n = p.len();
        let mut cursor = Cursor {
            done: vec![false; n],
            seq_pos: vec![0; n],
            or_choice: vec![None; n],
            sent: ChannelSet::with_bound(p.channel_bound),
            lock: Vec::new(),
            locked: vec![false; n],
            trace: Vec::new(),
            finished: false,
            frontier: Vec::new(),
            in_frontier: vec![false; n],
            evt_head: vec![NIL; p.slots.len()],
            evt_next: vec![NIL; n],
            scoped: Vec::new(),
            scratch: Vec::new(),
            scratch_or: Vec::new(),
            scratch_evict: Vec::new(),
        };
        cursor.add_subtree(p, p.root);
        cursor.drain_silent(p);
        cursor.finished = cursor.done[p.root];
        cursor
    }

    /// True if `node` is visible through the current `⊙`-scoping: inside
    /// the innermost active lock's subtree, or unconditionally when no
    /// lock is active.
    #[inline]
    fn scoped_visible(&self, p: &Program, node: NodeId) -> bool {
        match self.lock.last() {
            Some(&l) => p.in_subtree(l, node),
            None => true,
        }
    }

    /// Rebuilds the scoped frontier view. Called at the end of every
    /// mutating operation; a no-op (empty) when no lock is active, since
    /// `eligible()` then serves the unscoped frontier directly.
    fn refresh_scoped(&mut self, p: &Program) {
        self.scoped.clear();
        if let Some(&l) = self.lock.last() {
            let (lo, hi) = (p.pre[l], p.end[l]);
            self.scoped.extend(self.frontier.iter().filter(|c| {
                let r = p.pre[c.node];
                r >= lo && r < hi
            }));
        }
    }

    /// Inserts a leaf into the frontier at its pre-order position and
    /// indexes its event symbol.
    fn insert_choice(&mut self, p: &Program, node: NodeId, observable: bool) {
        if self.in_frontier[node] {
            return;
        }
        self.in_frontier[node] = true;
        let rank = p.pre[node];
        let pos = self.frontier.partition_point(|c| p.pre[c.node] < rank);
        self.frontier.insert(pos, Choice { node, observable });
        let slot = p.event_slot[node];
        if slot != NIL {
            self.evt_next[node] = self.evt_head[slot as usize];
            self.evt_head[slot as usize] = node as u32;
        }
    }

    /// Removes a node from the frontier (no-op if absent).
    fn remove_choice(&mut self, p: &Program, node: NodeId) {
        if !self.in_frontier[node] {
            return;
        }
        self.in_frontier[node] = false;
        let rank = p.pre[node];
        let pos = self.frontier.partition_point(|c| p.pre[c.node] < rank);
        debug_assert_eq!(self.frontier[pos].node, node);
        self.frontier.remove(pos);
        self.unindex_event(p, node);
    }

    /// Unlinks `node` from its symbol's dispatch list. The walk is over
    /// frontier nodes *sharing one event symbol* — almost always a
    /// singleton — not the frontier.
    fn unindex_event(&mut self, p: &Program, node: NodeId) {
        let slot = p.event_slot[node];
        if slot == NIL {
            return;
        }
        let target = node as u32;
        let mut cur = self.evt_head[slot as usize];
        if cur == target {
            self.evt_head[slot as usize] = self.evt_next[node];
            self.evt_next[node] = NIL;
            return;
        }
        while cur != NIL {
            let next = self.evt_next[cur as usize];
            if next == target {
                self.evt_next[cur as usize] = self.evt_next[node];
                self.evt_next[node] = NIL;
                return;
            }
            cur = next;
        }
    }

    /// Evicts every frontier entry whose pre-order rank lies in
    /// `[lo, hi)` — the subtrees abandoned by an `∨`-commit.
    fn evict_range(&mut self, p: &Program, lo: u32, hi: u32) {
        if lo >= hi {
            return;
        }
        let start = self.frontier.partition_point(|c| p.pre[c.node] < lo);
        let stop = self.frontier.partition_point(|c| p.pre[c.node] < hi);
        if start == stop {
            return;
        }
        // `scratch` is live across this call (commit_path's iso list), so
        // eviction keeps its own reusable buffer.
        let mut evicted = std::mem::take(&mut self.scratch_evict);
        evicted.clear();
        evicted.extend(self.frontier.drain(start..stop).map(|c| c.node));
        for &node in &evicted {
            self.in_frontier[node] = false;
            self.unindex_event(p, node);
        }
        self.scratch_evict = evicted;
    }

    /// Walks a freshly reached subtree, inserting its ready leaves — the
    /// only place the frontier is grown structurally. Cost is bounded by
    /// the reached region, which the delta argument (DESIGN.md §11)
    /// charges to the nodes becoming reachable for the first time.
    fn add_subtree(&mut self, p: &Program, node: NodeId) {
        if self.done[node] {
            return;
        }
        match &p.nodes[node].kind {
            NodeKind::Event(_) => self.insert_choice(p, node, true),
            NodeKind::Send(_) | NodeKind::Empty => self.insert_choice(p, node, false),
            NodeKind::Recv(c) => {
                // A blocked receive stays out of the frontier; the send
                // that enables it promotes it via `recvs_on`.
                if self.sent.contains(*c) {
                    self.insert_choice(p, node, false);
                }
            }
            NodeKind::Seq(cs) => {
                if let Some(&cur) = cs.get(self.seq_pos[node]) {
                    self.add_subtree(p, cur);
                }
            }
            NodeKind::Conc(cs) => {
                for &c in cs {
                    self.add_subtree(p, c);
                }
            }
            NodeKind::Or(cs) => match self.or_choice[node] {
                Some(chosen) => self.add_subtree(p, chosen),
                None => {
                    for &c in cs {
                        self.add_subtree(p, c);
                    }
                }
            },
            NodeKind::Iso(body) => self.add_subtree(p, *body),
        }
    }

    /// True if the recursive walk from the root currently reaches `node`:
    /// no ancestor is done, every `⊗`-ancestor's position and committed
    /// `∨`-ancestor's choice point toward it. Used only to promote
    /// receives when their channel's send fires.
    fn walk_reachable(&self, p: &Program, node: NodeId) -> bool {
        let mut child = node;
        let mut cur = p.nodes[node].parent;
        while let Some(a) = cur {
            if self.done[a] {
                return false;
            }
            match &p.nodes[a].kind {
                NodeKind::Seq(cs) if cs.get(self.seq_pos[a]) != Some(&child) => return false,
                NodeKind::Or(_) if self.or_choice[a].is_some_and(|chosen| chosen != child) => {
                    return false;
                }
                _ => {}
            }
            child = a;
            cur = p.nodes[a].parent;
        }
        true
    }

    /// Commits every unchosen `∨` and un-entered `⊙` on the way to
    /// `node`, evicting the frontier entries of abandoned `∨`-siblings.
    /// Allocation-free: the upward walk records into reused scratch
    /// buffers, and sibling eviction uses the rank-interval complement of
    /// the committed child inside its parent.
    fn commit_path(&mut self, p: &Program, node: NodeId) {
        self.scratch_or.clear();
        self.scratch.clear();
        let mut child = node;
        let mut cur = p.nodes[node].parent;
        while let Some(a) = cur {
            match &p.nodes[a].kind {
                NodeKind::Or(_) if self.or_choice[a].is_none() => {
                    self.scratch_or.push((a, child));
                }
                NodeKind::Iso(_) if !self.locked[a] => self.scratch.push(a),
                _ => {}
            }
            child = a;
            cur = p.nodes[a].parent;
        }
        let commits = std::mem::take(&mut self.scratch_or);
        for &(a, chosen) in &commits {
            self.or_choice[a] = Some(chosen);
            self.evict_range(p, p.pre[a], p.pre[chosen]);
            self.evict_range(p, p.end[chosen], p.end[a]);
        }
        self.scratch_or = commits;
        // The upward walk met isos leaf-to-root; the lock stack pushes
        // them root-to-leaf (innermost last), like the old path walk.
        let isos = std::mem::take(&mut self.scratch);
        for &a in isos.iter().rev() {
            self.lock.push(a);
            self.locked[a] = true;
        }
        self.scratch = isos;
    }

    /// Records a fired `send` and promotes any receive on the channel
    /// that is already walk-reachable into the frontier.
    fn send_effect(&mut self, p: &Program, c: Channel) {
        if !self.sent.insert(c) {
            return;
        }
        for &r in p.recvs_on(c) {
            if !self.done[r] && !self.in_frontier[r] && self.walk_reachable(p, r) {
                self.insert_choice(p, r, false);
            }
        }
    }

    /// Marks `node` done and propagates completion upward, keeping the
    /// frontier in sync: the completed node leaves it, a `⊗`-parent's
    /// next child enters it, an exiting `⊙` unlocks.
    fn complete(&mut self, p: &Program, node: NodeId) {
        self.done[node] = true;
        self.remove_choice(p, node);
        let Some(parent) = p.nodes[node].parent else {
            return;
        };
        match &p.nodes[parent].kind {
            NodeKind::Seq(cs) => {
                let mut pos = self.seq_pos[parent];
                while pos < cs.len() && self.done[cs[pos]] {
                    pos += 1;
                }
                self.seq_pos[parent] = pos;
                if pos == cs.len() {
                    self.complete(p, parent);
                } else {
                    self.add_subtree(p, cs[pos]);
                }
            }
            NodeKind::Conc(cs) => {
                if cs.iter().all(|&c| self.done[c]) {
                    self.complete(p, parent);
                }
            }
            NodeKind::Or(_) => {
                debug_assert_eq!(self.or_choice[parent], Some(node));
                self.complete(p, parent);
            }
            NodeKind::Iso(_) => {
                if self.lock.last() == Some(&parent) {
                    self.lock.pop();
                } else {
                    self.lock.retain(|&l| l != parent);
                }
                self.locked[parent] = false;
                self.complete(p, parent);
            }
            other => unreachable!("leaf parent must be a connective, got {other:?}"),
        }
    }

    /// True if firing `node` commits no `∨`-choice and enters no `⊙`.
    fn commitment_free(&self, p: &Program, node: NodeId) -> bool {
        let mut cur = p.nodes[node].parent;
        while let Some(a) = cur {
            match &p.nodes[a].kind {
                NodeKind::Or(_) if self.or_choice[a].is_none() => return false,
                NodeKind::Iso(_) if !self.locked[a] && !self.done[a] => return false,
                _ => {}
            }
            cur = p.nodes[a].parent;
        }
        true
    }

    /// Fires one step's effects: path commitment, trace/channel effect,
    /// completion cascade, silent drain, finish flag, scoped refresh.
    fn fire(&mut self, p: &Program, node: NodeId) {
        debug_assert!(
            self.in_frontier[node] && self.scoped_visible(p, node),
            "fired node must be eligible"
        );
        self.commit_path(p, node);
        match &p.nodes[node].kind {
            NodeKind::Event(a) => self.trace.push(a.clone()),
            NodeKind::Send(c) => {
                let c = *c;
                self.send_effect(p, c);
            }
            NodeKind::Recv(_) | NodeKind::Empty => {}
            other => unreachable!("only leaves fire, got {other:?}"),
        }
        self.complete(p, node);
        self.drain_silent(p);
        self.finished = self.done[p.root];
        self.refresh_scoped(p);
    }

    /// Fires, to fixpoint, every eligible internal step that commits
    /// nothing: `Empty` nodes, `send`s, and enabled `receive`s whose path
    /// is already fully committed. Candidates come from the frontier's
    /// silent entries (scoped to the innermost `⊙`), not a tree walk.
    fn drain_silent(&mut self, p: &Program) {
        loop {
            let mut scratch = std::mem::take(&mut self.scratch);
            scratch.clear();
            match self.lock.last() {
                Some(&l) => {
                    let (lo, hi) = (p.pre[l], p.end[l]);
                    scratch.extend(self.frontier.iter().filter_map(|c| {
                        let r = p.pre[c.node];
                        (!c.observable && r >= lo && r < hi).then_some(c.node)
                    }));
                }
                None => scratch.extend(
                    self.frontier
                        .iter()
                        .filter_map(|c| (!c.observable).then_some(c.node)),
                ),
            }
            let mut fired = false;
            for &node in &scratch {
                if self.done[node] || !self.in_frontier[node] || !self.commitment_free(p, node) {
                    continue;
                }
                match &p.nodes[node].kind {
                    NodeKind::Send(c) => {
                        let c = *c;
                        self.send_effect(p, c);
                    }
                    NodeKind::Recv(c) => {
                        if !self.sent.contains(*c) {
                            continue;
                        }
                    }
                    NodeKind::Empty => {}
                    _ => continue,
                }
                self.complete(p, node);
                fired = true;
            }
            self.scratch = scratch;
            if !fired {
                return;
            }
        }
    }

    /// Locates the next step toward an event node carrying `slot` whose
    /// only blockers are enabled silent leaves on its own path: returns
    /// the event node itself when nothing precedes it, otherwise the
    /// first such silent leaf to fire. This is the weak-transition view
    /// of [`Scheduler::fire_event`]: accepting an observable event may
    /// perform the internal (τ) steps that uniquely precede it — e.g. a
    /// timer gate's `seq(receive ξ, e)` inside an uncommitted `∨` —
    /// because choosing `e` is exactly the decision those steps commit.
    fn step_toward(&self, p: &Program, node: NodeId, slot: u32) -> Option<NodeId> {
        if self.done[node] {
            return None;
        }
        match &p.nodes[node].kind {
            NodeKind::Event(_) => (p.event_slot[node] == slot).then_some(node),
            NodeKind::Send(_) | NodeKind::Recv(_) | NodeKind::Empty => None,
            NodeKind::Seq(cs) => {
                let mut pos = self.seq_pos[node];
                let mut via = None;
                while let Some(&cur) = cs.get(pos) {
                    if self.done[cur] {
                        pos += 1;
                        continue;
                    }
                    if let Some(step) = self.step_toward(p, cur, slot) {
                        return Some(via.unwrap_or(step));
                    }
                    // The event may hide behind this child — but only if
                    // the child is a silent leaf that is enabled *now*.
                    let silent = match &p.nodes[cur].kind {
                        NodeKind::Send(_) | NodeKind::Empty => true,
                        NodeKind::Recv(c) => self.sent.contains(*c),
                        _ => false,
                    };
                    if !silent {
                        return None;
                    }
                    via.get_or_insert(cur);
                    pos += 1;
                }
                None
            }
            NodeKind::Conc(cs) => cs.iter().find_map(|&c| self.step_toward(p, c, slot)),
            NodeKind::Or(cs) => match self.or_choice[node] {
                Some(chosen) => self.step_toward(p, chosen, slot),
                None => cs.iter().find_map(|&c| self.step_toward(p, c, slot)),
            },
            NodeKind::Iso(body) => self.step_toward(p, *body, slot),
        }
    }

    /// The from-scratch recursive eligibility walk — the original
    /// implementation, retained as the oracle the incremental frontier is
    /// proptested against.
    fn collect_eligible_recursive(&self, p: &Program, node: NodeId, out: &mut Vec<Choice>) {
        if self.done[node] {
            return;
        }
        match &p.nodes[node].kind {
            NodeKind::Event(_) => out.push(Choice {
                node,
                observable: true,
            }),
            NodeKind::Send(_) => out.push(Choice {
                node,
                observable: false,
            }),
            NodeKind::Recv(c) => {
                if self.sent.contains(*c) {
                    out.push(Choice {
                        node,
                        observable: false,
                    });
                }
            }
            // A ready Empty is only still pending when choosing it would
            // commit something (e.g. an ∨-branch that is just the empty
            // goal); taking that branch is a silent scheduling decision.
            NodeKind::Empty => out.push(Choice {
                node,
                observable: false,
            }),
            NodeKind::Seq(cs) => {
                if let Some(&cur) = cs.get(self.seq_pos[node]) {
                    self.collect_eligible_recursive(p, cur, out);
                }
            }
            NodeKind::Conc(cs) => {
                for &c in cs {
                    self.collect_eligible_recursive(p, c, out);
                }
            }
            NodeKind::Or(cs) => match self.or_choice[node] {
                Some(chosen) => self.collect_eligible_recursive(p, chosen, out),
                None => {
                    for &c in cs {
                        self.collect_eligible_recursive(p, c, out);
                    }
                }
            },
            NodeKind::Iso(body) => self.collect_eligible_recursive(p, *body, out),
        }
    }
}

/// A cursor executing a [`Program`].
///
/// Generic over how the program is held: `Scheduler<&Program>` borrows
/// (the common transient case — `Scheduler::new(&program)` infers it),
/// while `Scheduler<Arc<Program>>` co-owns the program, letting
/// long-lived cursors (e.g. `ctr-runtime` instances) share one compiled
/// arena across a whole deployment without lifetime plumbing.
#[derive(Clone, Debug)]
pub struct Scheduler<P: std::ops::Deref<Target = Program>> {
    program: P,
    cursor: Cursor,
}

impl<P: std::ops::Deref<Target = Program>> Scheduler<P> {
    /// A fresh cursor at the program's initial state. Leading `Empty`
    /// nodes and commitment-free channel operations are drained
    /// immediately.
    pub fn new(program: P) -> Scheduler<P> {
        let cursor = Cursor::new(&program);
        Scheduler { program, cursor }
    }

    /// The program this cursor executes.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The events fired so far.
    pub fn trace(&self) -> &[Atom] {
        &self.cursor.trace
    }

    /// The trace as propositional event names.
    pub fn trace_names(&self) -> Vec<Symbol> {
        self.cursor
            .trace
            .iter()
            .filter_map(Atom::as_event)
            .collect()
    }

    /// True when the whole workflow has completed. O(1).
    pub fn is_complete(&self) -> bool {
        self.cursor.finished
    }

    /// True when incomplete with nothing eligible — a knot at run time
    /// (cannot happen on `Excise`d programs with `guaranteed_knot_free`).
    /// O(1): a flag read and a cached-slice length check.
    pub fn is_deadlocked(&self) -> bool {
        !self.is_complete() && self.eligible().is_empty()
    }

    /// All steps eligible to start now: the pro-active scheduler's
    /// knowledge at this stage of the execution. Returns the cached
    /// frontier — no walk, no allocation — in the DFS pre-order the
    /// recursive walk would emit.
    pub fn eligible(&self) -> &[Choice] {
        if self.cursor.lock.is_empty() {
            &self.cursor.frontier
        } else {
            &self.cursor.scoped
        }
    }

    /// The eligible set recomputed from scratch by the original recursive
    /// walk. This is the reference implementation the incremental
    /// frontier is verified against (proptests in this crate and at the
    /// workspace root); production callers use [`Scheduler::eligible`].
    #[doc(hidden)]
    pub fn eligible_reference(&self) -> Vec<Choice> {
        let p: &Program = &self.program;
        let mut out = Vec::new();
        let start = *self.cursor.lock.last().unwrap_or(&p.root);
        self.cursor.collect_eligible_recursive(p, start, &mut out);
        out
    }

    /// Fires the step at `node` (which must currently be eligible):
    /// commits the choices on its path, records the event, and drains
    /// enabled bookkeeping. Delta-updates the frontier; work is bounded
    /// by the fired path and the region that changed, never the whole
    /// program.
    pub fn fire(&mut self, node: NodeId) {
        let p: &Program = &self.program;
        self.cursor.fire(p, node);
    }

    /// Fires the atom named `event` if an eligible node carries it;
    /// returns false when absent. When several branches offer the event
    /// any is valid (the program is knot-free); the first in frontier
    /// order is picked deterministically — the same node the recursive
    /// walk's first match would yield. One hash lookup; no allocation.
    ///
    /// When no frontier node carries the event, a weak-transition
    /// fallback looks for it behind enabled silent leaves on its own
    /// path (a sent-enabled `receive`, a `send`, an `Empty`) — the shape
    /// timer gates and eventual triggers compile to inside an
    /// uncommitted `∨`. Those τ-steps fire first, committing the path,
    /// then the event itself; choosing the event *is* the decision they
    /// commit, so no unrelated choice is ever taken on its behalf.
    pub fn fire_event(&mut self, event: Symbol) -> bool {
        let slot = {
            let p: &Program = &self.program;
            match p.slots.get(&event) {
                Some(&slot) => slot,
                None => return false,
            }
        };
        loop {
            let direct = {
                let p: &Program = &self.program;
                let mut best: Option<(u32, NodeId)> = None;
                let mut cur = self.cursor.evt_head[slot as usize];
                while cur != NIL {
                    let n = cur as NodeId;
                    cur = self.cursor.evt_next[n];
                    if !self.cursor.scoped_visible(p, n) {
                        continue;
                    }
                    let rank = p.pre[n];
                    if best.is_none_or(|(r, _)| rank < r) {
                        best = Some((rank, n));
                    }
                }
                best.map(|(_, n)| n)
            };
            if let Some(n) = direct {
                self.fire(n);
                return true;
            }
            let step = {
                let p: &Program = &self.program;
                let start = *self.cursor.lock.last().unwrap_or(&p.root);
                self.cursor.step_toward(p, start, slot)
            };
            match step {
                // Fire the leading τ-step and retry: each iteration
                // completes a node, so the loop is bounded by |program|.
                Some(n) => {
                    let carries_event = self.program.event_slot[n] == slot;
                    self.fire(n);
                    if carries_event {
                        return true;
                    }
                }
                None => return false,
            }
        }
    }

    /// True if firing `node` commits no `∨`-choice and enters no `⊙` —
    /// i.e. it cannot cancel any other currently-eligible step. Dispatch
    /// layers use this to decide which eligible activities may start
    /// concurrently and which require a branching decision first.
    pub fn is_commitment_free(&self, node: NodeId) -> bool {
        self.cursor.commitment_free(&self.program, node)
    }

    /// Drives the schedule to completion by always firing the first
    /// eligible step — the deterministic linear-time scheduling of §4.
    /// Returns the trace, or `None` on deadlock.
    pub fn run_first(mut self) -> Option<Vec<Atom>> {
        while !self.is_complete() {
            let choice = *self.eligible().first()?;
            self.fire(choice.node);
        }
        Some(self.cursor.trace)
    }

    /// A canonical fingerprint of the cursor state (node statuses, choice
    /// commitments, channels, locks). Two schedulers with equal keys admit
    /// the same continuations — the state identity used by explicit-state
    /// model checking over the marking graph.
    pub fn state_key(&self) -> Vec<u8> {
        let c = &self.cursor;
        let mut key = Vec::with_capacity(c.done.len() * 10 + 16);
        for (&d, (&pos, choice)) in c.done.iter().zip(c.seq_pos.iter().zip(c.or_choice.iter())) {
            key.push(d as u8);
            key.extend_from_slice(&(pos as u32).to_le_bytes());
            key.extend_from_slice(&choice.map_or(u32::MAX, |n| n as u32).to_le_bytes());
        }
        key.push(0xFE);
        for ch in c.sent.iter() {
            key.extend_from_slice(&ch.0.to_le_bytes());
        }
        key.push(0xFD);
        for l in &c.lock {
            key.extend_from_slice(&(*l as u32).to_le_bytes());
        }
        key
    }

    /// Drives the schedule to completion with a deterministic pseudo-random
    /// policy (a splitmix-style generator over `seed`): at each stage one
    /// of the eligible steps is picked uniformly. Returns the trace, or
    /// `None` on deadlock. Useful for randomized testing and for sampling
    /// the execution space without full enumeration.
    pub fn run_random(mut self, seed: u64) -> Option<Vec<Atom>> {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        while !self.is_complete() {
            let eligible = self.eligible();
            if eligible.is_empty() {
                return None;
            }
            let pick = eligible[(next() % eligible.len() as u64) as usize];
            self.fire(pick.node);
        }
        Some(self.cursor.trace)
    }

    /// Enumerates every complete trace (as event-name sequences), up to
    /// `limit` distinct traces. Clone-based DFS over the choice tree —
    /// the enumeration utility of §4 ("enumerate all allowed executions").
    pub fn enumerate_traces(&self, limit: usize) -> BTreeSet<Vec<Symbol>>
    where
        P: Clone,
    {
        let mut out = BTreeSet::new();
        let mut stack = vec![self.clone()];
        while let Some(s) = stack.pop() {
            if out.len() >= limit {
                break;
            }
            if s.is_complete() {
                out.insert(s.trace_names());
                continue;
            }
            for choice in s.eligible() {
                let mut next = s.clone();
                next.fire(choice.node);
                stack.push(next);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::goal::{conc, isolated, or, seq};
    use ctr::symbol::sym;

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    fn compile(goal: &Goal) -> Program {
        Program::compile(goal).expect("consistent goal")
    }

    #[test]
    fn nopath_is_rejected() {
        assert!(matches!(
            Program::compile(&Goal::NoPath),
            Err(ScheduleError::Inconsistent)
        ));
    }

    #[test]
    fn seq_schedules_in_order() {
        let p = compile(&seq(vec![g("a"), g("b"), g("c")]));
        let trace = Scheduler::new(&p).run_first().unwrap();
        assert_eq!(
            trace.iter().filter_map(Atom::as_event).collect::<Vec<_>>(),
            vec![sym("a"), sym("b"), sym("c")]
        );
    }

    #[test]
    fn eligible_lists_all_concurrent_starts() {
        let p = compile(&conc(vec![g("a"), g("b"), g("c")]));
        let s = Scheduler::new(&p);
        assert_eq!(s.eligible().len(), 3);
        assert!(s.eligible().iter().all(|c| c.observable));
    }

    #[test]
    fn firing_commits_or_choice() {
        let p = compile(&or(vec![
            seq(vec![g("a"), g("b")]),
            seq(vec![g("x"), g("y")]),
        ]));
        let mut s = Scheduler::new(&p);
        assert_eq!(s.eligible().len(), 2, "both branch heads eligible");
        assert!(s.fire_event(sym("a")));
        // After committing, only b remains.
        let names: Vec<_> = s
            .eligible()
            .iter()
            .filter_map(|c| p.event(c.node).and_then(Atom::as_event))
            .collect();
        assert_eq!(names, vec![sym("b")]);
    }

    #[test]
    fn fire_event_returns_false_for_ineligible() {
        let p = compile(&seq(vec![g("a"), g("b")]));
        let mut s = Scheduler::new(&p);
        assert!(!s.fire_event(sym("b")), "b is not eligible before a");
        assert!(s.fire_event(sym("a")));
        assert!(s.fire_event(sym("b")));
        assert!(s.is_complete());
    }

    #[test]
    fn channels_gate_eligibility() {
        let xi = Channel(0);
        // Compiled form (4): (a ⊗ send ξ) | (receive ξ ⊗ b).
        let goal = conc(vec![
            seq(vec![g("a"), Goal::Send(xi)]),
            seq(vec![Goal::Receive(xi), g("b")]),
        ]);
        let p = compile(&goal);
        let mut s = Scheduler::new(&p);
        let names: Vec<_> = s
            .eligible()
            .iter()
            .filter_map(|c| p.event(c.node).and_then(Atom::as_event))
            .collect();
        assert_eq!(names, vec![sym("a")], "b is gated by the channel");
        s.fire_event(sym("a"));
        assert!(s.fire_event(sym("b")), "send/receive drained silently");
        assert!(s.is_complete());
    }

    #[test]
    fn fire_event_pulls_through_an_enabled_gate_inside_an_or() {
        let xi = Channel(0);
        // A timer-gated optional step: the gate `receive ξ ⊗ b` sits in
        // an uncommitted ∨, so the receive cannot drain silently even
        // once ξ is sent — choosing it would commit the branch. Firing
        // `b` explicitly IS that choice, so the weak fallback takes the
        // τ-step and then the event.
        let goal = conc(vec![
            seq(vec![g("a"), Goal::Send(xi)]),
            or(vec![Goal::Empty, seq(vec![Goal::Receive(xi), g("b")])]),
        ]);
        let p = compile(&goal);
        let mut s = Scheduler::new(&p);
        assert!(!s.fire_event(sym("b")), "gate not enabled before the send");
        s.fire_event(sym("a"));
        assert!(s.fire_event(sym("b")), "enabled gate is pulled through");
        assert!(s.is_complete());
        assert_eq!(s.trace_names(), vec![sym("a"), sym("b")]);
    }

    #[test]
    fn fire_event_pulls_through_chained_gates() {
        let (xi, nu) = (Channel(0), Channel(1));
        let goal = conc(vec![
            seq(vec![Goal::Send(xi), Goal::Send(nu)]),
            or(vec![
                g("skip"),
                seq(vec![Goal::Receive(xi), Goal::Receive(nu), g("b")]),
            ]),
        ]);
        let p = compile(&goal);
        let mut s = Scheduler::new(&p);
        assert!(s.fire_event(sym("b")), "both τ-steps precede the event");
        assert!(s.is_complete());
        assert_eq!(s.trace_names(), vec![sym("b")]);
    }

    #[test]
    fn knotted_program_deadlocks() {
        let xi = Channel(0);
        let goal = seq(vec![Goal::Receive(xi), g("a"), Goal::Send(xi)]);
        let p = compile(&goal);
        let s = Scheduler::new(&p);
        assert!(s.is_deadlocked());
        assert_eq!(s.clone().run_first(), None);
    }

    #[test]
    fn isolation_locks_the_scheduler() {
        let goal = conc(vec![isolated(seq(vec![g("a"), g("b")])), g("c")]);
        let p = compile(&goal);
        let mut s = Scheduler::new(&p);
        s.fire_event(sym("a"));
        let names: Vec<_> = s
            .eligible()
            .iter()
            .filter_map(|c| p.event(c.node).and_then(Atom::as_event))
            .collect();
        assert_eq!(names, vec![sym("b")], "c is locked out while ⊙ is active");
        s.fire_event(sym("b"));
        assert!(s.fire_event(sym("c")));
        assert!(s.is_complete());
    }

    #[test]
    fn enumeration_agrees_with_trace_semantics() {
        let mut checked = 0;
        for seed in 0..15 {
            let (goal, _) = ctr::gen::random_goal(
                seed,
                ctr::gen::GoalShape {
                    depth: 3,
                    width: 3,
                    or_bias: 0.3,
                },
                "s",
            );
            // Skip seeds whose interleaving space exceeds the oracle budget.
            let Ok(semantic) = ctr::semantics::event_traces(&goal, 100_000) else {
                continue;
            };
            let p = compile(&goal);
            let scheduled = Scheduler::new(&p).enumerate_traces(1_000_000);
            assert_eq!(scheduled, semantic, "seed {seed} goal {goal}");
            checked += 1;
        }
        assert!(checked >= 8, "enough seeds fit the budget ({checked})");
    }

    #[test]
    fn enumeration_of_compiled_workflow_respects_constraints() {
        use ctr::analysis::compile as ctr_compile;
        use ctr::constraints::Constraint;
        let goal = conc(vec![g("a"), g("b"), g("c")]);
        let compiled = ctr_compile(&goal, &[Constraint::order("a", "b")]).unwrap();
        let p = compile(&compiled.goal);
        let traces = Scheduler::new(&p).enumerate_traces(1000);
        assert!(!traces.is_empty());
        for t in &traces {
            let pa = t.iter().position(|&x| x == sym("a")).unwrap();
            let pb = t.iter().position(|&x| x == sym("b")).unwrap();
            assert!(pa < pb, "trace {t:?}");
        }
        // c is unconstrained: 3 positions for c relative to a<b.
        assert_eq!(traces.len(), 3);
    }

    #[test]
    fn empty_program_is_immediately_complete() {
        let p = compile(&Goal::Empty);
        assert!(p.is_empty());
        let s = Scheduler::new(&p);
        assert!(s.is_complete());
        assert!(s.trace().is_empty());
    }

    #[test]
    fn or_with_silent_branch_can_finish_silently() {
        // a ⊗ (send ξ ∨ b): after a, the scheduler may finish by taking
        // the silent branch or by firing b.
        let xi = Channel(3);
        let goal = seq(vec![g("a"), or(vec![Goal::Send(xi), g("b")])]);
        let p = compile(&goal);
        let mut s = Scheduler::new(&p);
        s.fire_event(sym("a"));
        let eligible = s.eligible();
        assert_eq!(eligible.len(), 2);
        assert_eq!(eligible.iter().filter(|c| c.observable).count(), 1);
        // Take the silent branch.
        let silent = *eligible.iter().find(|c| !c.observable).unwrap();
        s.fire(silent.node);
        assert!(s.is_complete());
        assert_eq!(s.trace_names(), vec![sym("a")]);
    }

    #[test]
    fn empty_or_branches_are_choosable() {
        // a ⊗ (ε ∨ b): after a, the schedule may finish silently (taking
        // the empty branch) or fire b — both must be offered.
        let goal = seq(vec![g("a"), or(vec![Goal::Empty, g("b")])]);
        let p = compile(&goal);
        let traces = Scheduler::new(&p).enumerate_traces(100);
        assert_eq!(
            traces,
            [vec![sym("a")], vec![sym("a"), sym("b")]]
                .into_iter()
                .collect()
        );
        // And the semantics oracle agrees.
        assert_eq!(traces, ctr::semantics::event_traces(&goal, 10_000).unwrap());
    }

    #[test]
    fn run_random_respects_constraints_and_varies() {
        use ctr::analysis::compile as ctr_compile;
        use ctr::constraints::Constraint;
        let goal = conc((0..6).map(|i| g(&format!("r{i}"))).collect());
        let compiled = ctr_compile(&goal, &[Constraint::order("r0", "r5")]).unwrap();
        let p = compile(&compiled.goal);
        let mut distinct = std::collections::BTreeSet::new();
        for seed in 0..32u64 {
            let trace = Scheduler::new(&p).run_random(seed).expect("knot-free");
            let names: Vec<_> = trace.iter().filter_map(Atom::as_event).collect();
            let p0 = names.iter().position(|&x| x == sym("r0")).unwrap();
            let p5 = names.iter().position(|&x| x == sym("r5")).unwrap();
            assert!(p0 < p5, "constraint respected in {names:?}");
            distinct.insert(names);
        }
        assert!(distinct.len() > 4, "random policy explores many schedules");
    }

    #[test]
    fn run_first_is_linear_walk() {
        // A long pipeline completes with exactly one eligible step each
        // time.
        let goal = ctr::gen::pipeline_workflow(64);
        let p = compile(&goal);
        let trace = Scheduler::new(&p).run_first().unwrap();
        assert_eq!(trace.len(), 64);
    }

    #[test]
    fn state_key_is_byte_identical_to_btreeset_era_format() {
        // The sent-channel section of `state_key` must serialize exactly
        // as the retired `BTreeSet<Channel>` representation did: channel
        // ids as little-endian u32s in ascending order. Pin the bytes.
        let xi = Channel(5);
        let nu = Channel(2);
        let goal = conc(vec![
            seq(vec![g("a"), Goal::Send(xi)]),
            seq(vec![g("b"), Goal::Send(nu)]),
            seq(vec![Goal::Receive(xi), Goal::Receive(nu), g("c")]),
        ]);
        let p = compile(&goal);
        let mut s = Scheduler::new(&p);
        s.fire_event(sym("a"));
        s.fire_event(sym("b"));
        let key = s.state_key();

        // Reconstruct the expected key from first principles, with the
        // channel section built through an actual BTreeSet.
        let mut expected = Vec::new();
        for (&d, (&pos, choice)) in s
            .cursor
            .done
            .iter()
            .zip(s.cursor.seq_pos.iter().zip(s.cursor.or_choice.iter()))
        {
            expected.push(d as u8);
            expected.extend_from_slice(&(pos as u32).to_le_bytes());
            expected.extend_from_slice(&choice.map_or(u32::MAX, |n| n as u32).to_le_bytes());
        }
        expected.push(0xFE);
        let sent: std::collections::BTreeSet<Channel> = s.cursor.sent.iter().collect();
        assert_eq!(sent.len(), 2, "both sends drained into the channel set");
        for c in &sent {
            expected.extend_from_slice(&c.0.to_le_bytes());
        }
        expected.push(0xFD);
        for l in &s.cursor.lock {
            expected.extend_from_slice(&(*l as u32).to_le_bytes());
        }
        assert_eq!(key, expected);
    }

    #[test]
    fn channel_set_iterates_ascending_across_words() {
        let mut set = ChannelSet::default();
        for id in [200u32, 3, 64, 0, 127, 65] {
            assert!(set.insert(Channel(id)));
            assert!(!set.insert(Channel(id)), "second insert is a no-op");
        }
        assert!(set.contains(Channel(64)));
        assert!(!set.contains(Channel(63)));
        assert!(!set.contains(Channel(1000)), "beyond allocated words");
        let ids: Vec<u32> = set.iter().map(|c| c.0).collect();
        assert_eq!(ids, vec![0, 3, 64, 65, 127, 200]);
    }

    /// Drives random schedules over the `gen` corpus, asserting after
    /// every fire that the incremental frontier equals the retained
    /// recursive walk — set, order, and observability flags.
    #[test]
    fn frontier_matches_recursive_walk_on_corpus() {
        let mut fires_checked = 0usize;
        for seed in 0..60u64 {
            let (goal, _) = ctr::gen::random_goal(
                seed,
                ctr::gen::GoalShape {
                    depth: 4,
                    width: 3,
                    or_bias: 0.35,
                },
                "f",
            );
            let p = compile(&goal);
            for salt in 0..4u64 {
                let mut s = Scheduler::new(&p);
                let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
                loop {
                    assert_eq!(
                        s.eligible(),
                        s.eligible_reference().as_slice(),
                        "seed {seed} salt {salt} goal {goal}"
                    );
                    assert_eq!(
                        s.is_deadlocked(),
                        !s.is_complete() && s.eligible_reference().is_empty()
                    );
                    if s.is_complete() || s.eligible().is_empty() {
                        break;
                    }
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let pick = s.eligible()[(rng >> 33) as usize % s.eligible().len()];
                    s.fire(pick.node);
                    fires_checked += 1;
                }
            }
        }
        assert!(fires_checked > 500, "corpus exercised ({fires_checked})");
    }
}
