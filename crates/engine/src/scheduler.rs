//! The pro-active scheduler (paper, §4).
//!
//! After `Apply` + `Excise`, the compiled goal `G'` is a "compressed"
//! explicit representation of all allowed executions: the constraints are
//! *compiled into the structure*, so no run-time constraint validation is
//! needed. This module executes that structure: "at each stage in the
//! execution of a workflow, the scheduler knows all events that are
//! eligible to start."
//!
//! [`Program`] is the goal flattened into an arena; [`Scheduler`] is a
//! cursor over it. Each [`Scheduler::fire`] commits the `∨`-choices and
//! `⊙`-entries on the fired node's path, appends the event to the trace,
//! and silently drains enabled `send`/`receive` bookkeeping. Driving a
//! complete schedule touches each node of the chosen execution variant a
//! constant number of times — the linear-time scheduling the paper
//! contrasts with the quadratic per-sequence validation of the passive
//! approaches (benchmarked in experiment E5 against `ctr-baselines`).

use ctr::goal::{Channel, Goal};
use ctr::symbol::Symbol;
use ctr::term::Atom;
use std::collections::BTreeSet;
use std::fmt;

/// Index of a node in a [`Program`].
pub type NodeId = usize;

#[derive(Clone, Debug)]
enum NodeKind {
    /// A workflow activity/event (any atom: the scheduler is the
    /// propositional layer; state effects belong to the interpreter).
    Event(Atom),
    Seq(Vec<NodeId>),
    Conc(Vec<NodeId>),
    Or(Vec<NodeId>),
    Iso(NodeId),
    Send(Channel),
    Recv(Channel),
    Empty,
}

#[derive(Clone, Debug)]
struct Node {
    kind: NodeKind,
    parent: Option<NodeId>,
}

/// Errors from compiling a goal into a schedulable program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// The goal is `¬path` — the specification is inconsistent and there
    /// is nothing to schedule.
    Inconsistent,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Inconsistent => {
                write!(
                    f,
                    "goal is ¬path: the workflow specification is inconsistent"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A compiled, schedulable workflow program.
#[derive(Clone, Debug)]
pub struct Program {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Program {
    /// Compiles a (simplified, knot-free) goal. `◇`-subgoals are resolved
    /// at compile time: in the propositional scheduling layer a simplified
    /// non-`¬path` body is always executable, so they reduce to `Empty`
    /// (state-dependent `◇` belongs to the interpreter).
    pub fn compile(goal: &Goal) -> Result<Program, ScheduleError> {
        let simplified = goal.simplify();
        if simplified.is_nopath() {
            return Err(ScheduleError::Inconsistent);
        }
        let mut nodes = Vec::with_capacity(simplified.size());
        let root = build(&simplified, &mut nodes);
        // Wire parents after construction.
        let links: Vec<(NodeId, Vec<NodeId>)> = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (i, children_of(&n.kind).to_vec()))
            .collect();
        for (parent, children) in links {
            for c in children {
                nodes[c].parent = Some(parent);
            }
        }
        Ok(Program { nodes, root })
    }

    /// Number of nodes in the program.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the program is a single `Empty` node.
    pub fn is_empty(&self) -> bool {
        matches!(self.nodes[self.root].kind, NodeKind::Empty)
    }

    /// The event atom of a node, if it is an event node.
    pub fn event(&self, node: NodeId) -> Option<&Atom> {
        match &self.nodes[node].kind {
            NodeKind::Event(a) => Some(a),
            _ => None,
        }
    }
}

fn children_of(kind: &NodeKind) -> &[NodeId] {
    match kind {
        NodeKind::Seq(cs) | NodeKind::Conc(cs) | NodeKind::Or(cs) => cs,
        NodeKind::Iso(c) => std::slice::from_ref(c),
        _ => &[],
    }
}

fn build(goal: &Goal, nodes: &mut Vec<Node>) -> NodeId {
    let kind = match goal {
        Goal::Atom(a) => NodeKind::Event(a.clone()),
        Goal::Seq(gs) => NodeKind::Seq(gs.iter().map(|g| build(g, nodes)).collect()),
        Goal::Conc(gs) => NodeKind::Conc(gs.iter().map(|g| build(g, nodes)).collect()),
        Goal::Or(gs) => NodeKind::Or(gs.iter().map(|g| build(g, nodes)).collect()),
        Goal::Isolated(g) => NodeKind::Iso(build(g, nodes)),
        Goal::Possible(_) => NodeKind::Empty,
        Goal::Send(c) => NodeKind::Send(*c),
        Goal::Receive(c) => NodeKind::Recv(*c),
        Goal::Empty => NodeKind::Empty,
        Goal::NoPath => unreachable!("simplified non-¬path goals contain no ¬path"),
    };
    nodes.push(Node { kind, parent: None });
    nodes.len() - 1
}

/// One schedulable step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Choice {
    /// The node to fire.
    pub node: NodeId,
    /// True if this step is an observable event (false: internal
    /// `send`/`receive` bookkeeping requiring a choice commitment).
    pub observable: bool,
}

/// A cursor executing a [`Program`].
///
/// Generic over how the program is held: `Scheduler<&Program>` borrows
/// (the common transient case — `Scheduler::new(&program)` infers it),
/// while `Scheduler<Arc<Program>>` co-owns the program, letting
/// long-lived cursors (e.g. `ctr-runtime` instances) share one compiled
/// arena across a whole deployment without lifetime plumbing.
#[derive(Clone, Debug)]
pub struct Scheduler<P: std::ops::Deref<Target = Program>> {
    program: P,
    done: Vec<bool>,
    seq_pos: Vec<usize>,
    or_choice: Vec<Option<NodeId>>,
    sent: BTreeSet<Channel>,
    /// Stack of entered, unfinished `⊙` nodes (innermost last).
    lock: Vec<NodeId>,
    trace: Vec<Atom>,
    finished: bool,
}

impl<P: std::ops::Deref<Target = Program>> Scheduler<P> {
    /// A fresh cursor at the program's initial state. Leading `Empty`
    /// nodes and commitment-free channel operations are drained
    /// immediately.
    pub fn new(program: P) -> Scheduler<P> {
        let n = program.len();
        let root = program.root;
        let mut s = Scheduler {
            program,
            done: vec![false; n],
            seq_pos: vec![0; n],
            or_choice: vec![None; n],
            sent: BTreeSet::new(),
            lock: Vec::new(),
            trace: Vec::new(),
            finished: false,
        };
        s.drain_silent();
        s.finished = s.done[root];
        s
    }

    /// The program this cursor executes.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The events fired so far.
    pub fn trace(&self) -> &[Atom] {
        &self.trace
    }

    /// The trace as propositional event names.
    pub fn trace_names(&self) -> Vec<Symbol> {
        self.trace.iter().filter_map(Atom::as_event).collect()
    }

    /// True when the whole workflow has completed.
    pub fn is_complete(&self) -> bool {
        self.finished
    }

    /// True when incomplete with nothing eligible — a knot at run time
    /// (cannot happen on `Excise`d programs with `guaranteed_knot_free`).
    pub fn is_deadlocked(&self) -> bool {
        !self.is_complete() && self.eligible().is_empty()
    }

    /// All steps eligible to start now: the pro-active scheduler's
    /// knowledge at this stage of the execution.
    pub fn eligible(&self) -> Vec<Choice> {
        let mut out = Vec::new();
        let start = *self.lock.last().unwrap_or(&self.program.root);
        self.collect_eligible(start, &mut out);
        out
    }

    fn collect_eligible(&self, node: NodeId, out: &mut Vec<Choice>) {
        if self.done[node] {
            return;
        }
        match &self.program.nodes[node].kind {
            NodeKind::Event(_) => out.push(Choice {
                node,
                observable: true,
            }),
            NodeKind::Send(_) => out.push(Choice {
                node,
                observable: false,
            }),
            NodeKind::Recv(c) => {
                if self.sent.contains(c) {
                    out.push(Choice {
                        node,
                        observable: false,
                    });
                }
            }
            // A ready Empty is only still pending when choosing it would
            // commit something (e.g. an ∨-branch that is just the empty
            // goal); taking that branch is a silent scheduling decision.
            NodeKind::Empty => out.push(Choice {
                node,
                observable: false,
            }),
            NodeKind::Seq(cs) => {
                if let Some(&cur) = cs.get(self.seq_pos[node]) {
                    self.collect_eligible(cur, out);
                }
            }
            NodeKind::Conc(cs) => {
                for &c in cs {
                    self.collect_eligible(c, out);
                }
            }
            NodeKind::Or(cs) => match self.or_choice[node] {
                Some(chosen) => self.collect_eligible(chosen, out),
                None => {
                    for &c in cs {
                        self.collect_eligible(c, out);
                    }
                }
            },
            NodeKind::Iso(body) => self.collect_eligible(*body, out),
        }
    }

    /// Fires the step at `node` (which must currently be eligible):
    /// commits the choices on its path, records the event, and drains
    /// enabled bookkeeping.
    pub fn fire(&mut self, node: NodeId) {
        debug_assert!(
            self.eligible().iter().any(|c| c.node == node),
            "fired node must be eligible"
        );
        self.commit_path(node);
        match &self.program.nodes[node].kind {
            NodeKind::Event(a) => self.trace.push(a.clone()),
            NodeKind::Send(c) => {
                self.sent.insert(*c);
            }
            NodeKind::Recv(_) | NodeKind::Empty => {}
            other => unreachable!("only leaves fire, got {other:?}"),
        }
        self.complete(node);
        self.drain_silent();
        self.finished = self.done[self.program.root];
    }

    /// Fires the atom named `event` if exactly one eligible node carries
    /// it; returns false when absent or ambiguous.
    pub fn fire_event(&mut self, event: Symbol) -> bool {
        let matches: Vec<NodeId> = self
            .eligible()
            .into_iter()
            .filter(|c| self.program.event(c.node).and_then(Atom::as_event) == Some(event))
            .map(|c| c.node)
            .collect();
        match matches.as_slice() {
            [node] => {
                self.fire(*node);
                true
            }
            [node, ..] => {
                // Several branches offer the event; any is valid (the
                // program is knot-free), pick the first deterministically.
                self.fire(*node);
                true
            }
            [] => false,
        }
    }

    /// Path from root to `node`, exclusive of `node`.
    fn ancestors(&self, node: NodeId) -> Vec<NodeId> {
        let mut chain = Vec::new();
        let mut cur = self.program.nodes[node].parent;
        while let Some(p) = cur {
            chain.push(p);
            cur = self.program.nodes[p].parent;
        }
        chain.reverse();
        chain
    }

    /// Commits every unchosen `∨` and un-entered `⊙` on the way to `node`.
    fn commit_path(&mut self, node: NodeId) {
        let chain = self.ancestors(node);
        // `chain` runs root → parent; each entry's relevant child is the
        // next entry (or `node` itself at the end).
        for (i, &anc) in chain.iter().enumerate() {
            let towards = *chain.get(i + 1).unwrap_or(&node);
            match &self.program.nodes[anc].kind {
                NodeKind::Or(_) if self.or_choice[anc].is_none() => {
                    self.or_choice[anc] = Some(towards);
                }
                NodeKind::Iso(_) if !self.lock.contains(&anc) => {
                    self.lock.push(anc);
                }
                _ => {}
            }
        }
    }

    /// Marks `node` done and propagates completion upward.
    fn complete(&mut self, node: NodeId) {
        self.done[node] = true;
        let Some(parent) = self.program.nodes[node].parent else {
            return;
        };
        // Decide while the program is borrowed, mutate after — avoids
        // cloning child lists on the per-fire hot path.
        enum Action {
            Advance { pos: usize, complete: bool },
            CompleteParent,
            ExitIso,
            Nothing,
        }
        let action = match &self.program.nodes[parent].kind {
            NodeKind::Seq(cs) => {
                let mut pos = self.seq_pos[parent];
                while pos < cs.len() && self.done[cs[pos]] {
                    pos += 1;
                }
                Action::Advance {
                    pos,
                    complete: pos == cs.len(),
                }
            }
            NodeKind::Conc(cs) => {
                if cs.iter().all(|&c| self.done[c]) {
                    Action::CompleteParent
                } else {
                    Action::Nothing
                }
            }
            NodeKind::Or(_) => {
                debug_assert_eq!(self.or_choice[parent], Some(node));
                Action::CompleteParent
            }
            NodeKind::Iso(_) => Action::ExitIso,
            other => unreachable!("leaf parent must be a connective, got {other:?}"),
        };
        match action {
            Action::Advance { pos, complete } => {
                self.seq_pos[parent] = pos;
                if complete {
                    self.complete(parent);
                }
            }
            Action::CompleteParent => self.complete(parent),
            Action::ExitIso => {
                if self.lock.last() == Some(&parent) {
                    self.lock.pop();
                } else {
                    self.lock.retain(|&l| l != parent);
                }
                self.complete(parent);
            }
            Action::Nothing => {}
        }
    }

    /// Fires, to fixpoint, every eligible internal step that commits
    /// nothing: `Empty` nodes, `send`s, and enabled `receive`s whose path
    /// is already fully committed.
    fn drain_silent(&mut self) {
        loop {
            let mut fired = false;
            let start = *self.lock.last().unwrap_or(&self.program.root);
            let mut silents = Vec::new();
            self.collect_silent(start, &mut silents);
            for node in silents {
                if self.done[node] || !self.commitment_free(node) {
                    continue;
                }
                match &self.program.nodes[node].kind {
                    NodeKind::Send(c) => {
                        self.sent.insert(*c);
                    }
                    NodeKind::Recv(c) => {
                        if !self.sent.contains(c) {
                            continue;
                        }
                    }
                    NodeKind::Empty => {}
                    _ => continue,
                }
                self.complete(node);
                fired = true;
            }
            if !fired {
                return;
            }
        }
    }

    /// Collects ready silent candidates (sends, receives, empties).
    fn collect_silent(&self, node: NodeId, out: &mut Vec<NodeId>) {
        if self.done[node] {
            return;
        }
        match &self.program.nodes[node].kind {
            NodeKind::Send(_) | NodeKind::Recv(_) | NodeKind::Empty => out.push(node),
            NodeKind::Event(_) => {}
            NodeKind::Seq(cs) => {
                if let Some(&cur) = cs.get(self.seq_pos[node]) {
                    self.collect_silent(cur, out);
                }
            }
            NodeKind::Conc(cs) => {
                for &c in cs {
                    self.collect_silent(c, out);
                }
            }
            NodeKind::Or(cs) => match self.or_choice[node] {
                Some(chosen) => self.collect_silent(chosen, out),
                None => {
                    for &c in cs {
                        self.collect_silent(c, out);
                    }
                }
            },
            NodeKind::Iso(body) => self.collect_silent(*body, out),
        }
    }

    /// True if firing `node` commits no `∨`-choice and enters no `⊙` —
    /// i.e. it cannot cancel any other currently-eligible step. Dispatch
    /// layers use this to decide which eligible activities may start
    /// concurrently and which require a branching decision first.
    pub fn is_commitment_free(&self, node: NodeId) -> bool {
        self.commitment_free(node)
    }

    /// True if firing `node` commits no `∨`-choice and enters no `⊙`.
    fn commitment_free(&self, node: NodeId) -> bool {
        for anc in self.ancestors(node) {
            match &self.program.nodes[anc].kind {
                NodeKind::Or(_) if self.or_choice[anc].is_none() => return false,
                NodeKind::Iso(_) if !self.lock.contains(&anc) && !self.done[anc] => return false,
                _ => {}
            }
        }
        true
    }

    /// Drives the schedule to completion by always firing the first
    /// eligible step — the deterministic linear-time scheduling of §4.
    /// Returns the trace, or `None` on deadlock.
    pub fn run_first(mut self) -> Option<Vec<Atom>> {
        while !self.is_complete() {
            let choice = *self.eligible().first()?;
            self.fire(choice.node);
        }
        Some(self.trace)
    }

    /// A canonical fingerprint of the cursor state (node statuses, choice
    /// commitments, channels, locks). Two schedulers with equal keys admit
    /// the same continuations — the state identity used by explicit-state
    /// model checking over the marking graph.
    pub fn state_key(&self) -> Vec<u8> {
        let mut key = Vec::with_capacity(self.done.len() * 10 + 16);
        for (&d, (&pos, choice)) in self
            .done
            .iter()
            .zip(self.seq_pos.iter().zip(self.or_choice.iter()))
        {
            key.push(d as u8);
            key.extend_from_slice(&(pos as u32).to_le_bytes());
            key.extend_from_slice(&choice.map_or(u32::MAX, |c| c as u32).to_le_bytes());
        }
        key.push(0xFE);
        for c in &self.sent {
            key.extend_from_slice(&c.0.to_le_bytes());
        }
        key.push(0xFD);
        for l in &self.lock {
            key.extend_from_slice(&(*l as u32).to_le_bytes());
        }
        key
    }

    /// Drives the schedule to completion with a deterministic pseudo-random
    /// policy (a splitmix-style generator over `seed`): at each stage one
    /// of the eligible steps is picked uniformly. Returns the trace, or
    /// `None` on deadlock. Useful for randomized testing and for sampling
    /// the execution space without full enumeration.
    pub fn run_random(mut self, seed: u64) -> Option<Vec<Atom>> {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        while !self.is_complete() {
            let eligible = self.eligible();
            if eligible.is_empty() {
                return None;
            }
            let pick = eligible[(next() % eligible.len() as u64) as usize];
            self.fire(pick.node);
        }
        Some(self.trace)
    }

    /// Enumerates every complete trace (as event-name sequences), up to
    /// `limit` distinct traces. Clone-based DFS over the choice tree —
    /// the enumeration utility of §4 ("enumerate all allowed executions").
    pub fn enumerate_traces(&self, limit: usize) -> BTreeSet<Vec<Symbol>>
    where
        P: Clone,
    {
        let mut out = BTreeSet::new();
        let mut stack = vec![self.clone()];
        while let Some(s) = stack.pop() {
            if out.len() >= limit {
                break;
            }
            if s.is_complete() {
                out.insert(s.trace_names());
                continue;
            }
            let eligible = s.eligible();
            for choice in eligible {
                let mut next = s.clone();
                next.fire(choice.node);
                stack.push(next);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::goal::{conc, isolated, or, seq};
    use ctr::symbol::sym;

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    fn compile(goal: &Goal) -> Program {
        Program::compile(goal).expect("consistent goal")
    }

    #[test]
    fn nopath_is_rejected() {
        assert!(matches!(
            Program::compile(&Goal::NoPath),
            Err(ScheduleError::Inconsistent)
        ));
    }

    #[test]
    fn seq_schedules_in_order() {
        let p = compile(&seq(vec![g("a"), g("b"), g("c")]));
        let trace = Scheduler::new(&p).run_first().unwrap();
        assert_eq!(
            trace.iter().filter_map(Atom::as_event).collect::<Vec<_>>(),
            vec![sym("a"), sym("b"), sym("c")]
        );
    }

    #[test]
    fn eligible_lists_all_concurrent_starts() {
        let p = compile(&conc(vec![g("a"), g("b"), g("c")]));
        let s = Scheduler::new(&p);
        assert_eq!(s.eligible().len(), 3);
        assert!(s.eligible().iter().all(|c| c.observable));
    }

    #[test]
    fn firing_commits_or_choice() {
        let p = compile(&or(vec![
            seq(vec![g("a"), g("b")]),
            seq(vec![g("x"), g("y")]),
        ]));
        let mut s = Scheduler::new(&p);
        assert_eq!(s.eligible().len(), 2, "both branch heads eligible");
        assert!(s.fire_event(sym("a")));
        // After committing, only b remains.
        let names: Vec<_> = s
            .eligible()
            .iter()
            .filter_map(|c| p.event(c.node).and_then(Atom::as_event))
            .collect();
        assert_eq!(names, vec![sym("b")]);
    }

    #[test]
    fn fire_event_returns_false_for_ineligible() {
        let p = compile(&seq(vec![g("a"), g("b")]));
        let mut s = Scheduler::new(&p);
        assert!(!s.fire_event(sym("b")), "b is not eligible before a");
        assert!(s.fire_event(sym("a")));
        assert!(s.fire_event(sym("b")));
        assert!(s.is_complete());
    }

    #[test]
    fn channels_gate_eligibility() {
        let xi = Channel(0);
        // Compiled form (4): (a ⊗ send ξ) | (receive ξ ⊗ b).
        let goal = conc(vec![
            seq(vec![g("a"), Goal::Send(xi)]),
            seq(vec![Goal::Receive(xi), g("b")]),
        ]);
        let p = compile(&goal);
        let mut s = Scheduler::new(&p);
        let names: Vec<_> = s
            .eligible()
            .iter()
            .filter_map(|c| p.event(c.node).and_then(Atom::as_event))
            .collect();
        assert_eq!(names, vec![sym("a")], "b is gated by the channel");
        s.fire_event(sym("a"));
        assert!(s.fire_event(sym("b")), "send/receive drained silently");
        assert!(s.is_complete());
    }

    #[test]
    fn knotted_program_deadlocks() {
        let xi = Channel(0);
        let goal = seq(vec![Goal::Receive(xi), g("a"), Goal::Send(xi)]);
        let p = compile(&goal);
        let s = Scheduler::new(&p);
        assert!(s.is_deadlocked());
        assert_eq!(s.clone().run_first(), None);
    }

    #[test]
    fn isolation_locks_the_scheduler() {
        let goal = conc(vec![isolated(seq(vec![g("a"), g("b")])), g("c")]);
        let p = compile(&goal);
        let mut s = Scheduler::new(&p);
        s.fire_event(sym("a"));
        let names: Vec<_> = s
            .eligible()
            .iter()
            .filter_map(|c| p.event(c.node).and_then(Atom::as_event))
            .collect();
        assert_eq!(names, vec![sym("b")], "c is locked out while ⊙ is active");
        s.fire_event(sym("b"));
        assert!(s.fire_event(sym("c")));
        assert!(s.is_complete());
    }

    #[test]
    fn enumeration_agrees_with_trace_semantics() {
        let mut checked = 0;
        for seed in 0..15 {
            let (goal, _) = ctr::gen::random_goal(
                seed,
                ctr::gen::GoalShape {
                    depth: 3,
                    width: 3,
                    or_bias: 0.3,
                },
                "s",
            );
            // Skip seeds whose interleaving space exceeds the oracle budget.
            let Ok(semantic) = ctr::semantics::event_traces(&goal, 100_000) else {
                continue;
            };
            let p = compile(&goal);
            let scheduled = Scheduler::new(&p).enumerate_traces(1_000_000);
            assert_eq!(scheduled, semantic, "seed {seed} goal {goal}");
            checked += 1;
        }
        assert!(checked >= 8, "enough seeds fit the budget ({checked})");
    }

    #[test]
    fn enumeration_of_compiled_workflow_respects_constraints() {
        use ctr::analysis::compile as ctr_compile;
        use ctr::constraints::Constraint;
        let goal = conc(vec![g("a"), g("b"), g("c")]);
        let compiled = ctr_compile(&goal, &[Constraint::order("a", "b")]).unwrap();
        let p = compile(&compiled.goal);
        let traces = Scheduler::new(&p).enumerate_traces(1000);
        assert!(!traces.is_empty());
        for t in &traces {
            let pa = t.iter().position(|&x| x == sym("a")).unwrap();
            let pb = t.iter().position(|&x| x == sym("b")).unwrap();
            assert!(pa < pb, "trace {t:?}");
        }
        // c is unconstrained: 3 positions for c relative to a<b.
        assert_eq!(traces.len(), 3);
    }

    #[test]
    fn empty_program_is_immediately_complete() {
        let p = compile(&Goal::Empty);
        assert!(p.is_empty());
        let s = Scheduler::new(&p);
        assert!(s.is_complete());
        assert!(s.trace().is_empty());
    }

    #[test]
    fn or_with_silent_branch_can_finish_silently() {
        // a ⊗ (send ξ ∨ b): after a, the scheduler may finish by taking
        // the silent branch or by firing b.
        let xi = Channel(3);
        let goal = seq(vec![g("a"), or(vec![Goal::Send(xi), g("b")])]);
        let p = compile(&goal);
        let mut s = Scheduler::new(&p);
        s.fire_event(sym("a"));
        let eligible = s.eligible();
        assert_eq!(eligible.len(), 2);
        assert_eq!(eligible.iter().filter(|c| c.observable).count(), 1);
        // Take the silent branch.
        let silent = eligible.iter().find(|c| !c.observable).unwrap();
        s.fire(silent.node);
        assert!(s.is_complete());
        assert_eq!(s.trace_names(), vec![sym("a")]);
    }

    #[test]
    fn empty_or_branches_are_choosable() {
        // a ⊗ (ε ∨ b): after a, the schedule may finish silently (taking
        // the empty branch) or fire b — both must be offered.
        let goal = seq(vec![g("a"), or(vec![Goal::Empty, g("b")])]);
        let p = compile(&goal);
        let traces = Scheduler::new(&p).enumerate_traces(100);
        assert_eq!(
            traces,
            [vec![sym("a")], vec![sym("a"), sym("b")]]
                .into_iter()
                .collect()
        );
        // And the semantics oracle agrees.
        assert_eq!(traces, ctr::semantics::event_traces(&goal, 10_000).unwrap());
    }

    #[test]
    fn run_random_respects_constraints_and_varies() {
        use ctr::analysis::compile as ctr_compile;
        use ctr::constraints::Constraint;
        let goal = conc((0..6).map(|i| g(&format!("r{i}"))).collect());
        let compiled = ctr_compile(&goal, &[Constraint::order("r0", "r5")]).unwrap();
        let p = compile(&compiled.goal);
        let mut distinct = std::collections::BTreeSet::new();
        for seed in 0..32u64 {
            let trace = Scheduler::new(&p).run_random(seed).expect("knot-free");
            let names: Vec<_> = trace.iter().filter_map(Atom::as_event).collect();
            let p0 = names.iter().position(|&x| x == sym("r0")).unwrap();
            let p5 = names.iter().position(|&x| x == sym("r5")).unwrap();
            assert!(p0 < p5, "constraint respected in {names:?}");
            distinct.insert(names);
        }
        assert!(distinct.len() > 4, "random policy explores many schedules");
    }

    #[test]
    fn run_first_is_linear_walk() {
        // A long pipeline completes with exactly one eligible step each
        // time.
        let goal = ctr::gen::pipeline_workflow(64);
        let p = compile(&goal);
        let trace = Scheduler::new(&p).run_first().unwrap();
        assert_eq!(trace.len(), 64);
    }
}
