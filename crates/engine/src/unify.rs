//! Unification and substitutions.
//!
//! The SLD-style proof procedure of CTR resolves rule heads against goal
//! atoms exactly like Datalog/Prolog resolution, so it needs first-order
//! unification. Bindings live in a single growing [`Subst`] shared by the
//! whole resolvent (variables bind across concurrent conjuncts), with an
//! undo trail so backtracking restores earlier binding states cheaply.

use ctr::term::{Atom, Term, Var};
use std::collections::BTreeMap;

/// A substitution: bindings from variables to terms, with a trail for
/// backtracking.
#[derive(Clone, Debug, Default)]
pub struct Subst {
    bindings: BTreeMap<Var, Term>,
    trail: Vec<Var>,
    next_var: u32,
}

impl Subst {
    /// An empty substitution whose fresh variables start above `floor` —
    /// pass the highest variable index used by the query.
    pub fn with_floor(floor: u32) -> Subst {
        Subst {
            bindings: BTreeMap::new(),
            trail: Vec::new(),
            next_var: floor,
        }
    }

    /// Allocates a fresh, unbound variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var(self.next_var);
        self.next_var += 1;
        v
    }

    /// Current trail position; pass to [`Subst::undo_to`] to roll back.
    pub fn mark(&self) -> usize {
        self.trail.len()
    }

    /// Undoes every binding made since `mark`.
    pub fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let v = self.trail.pop().expect("trail length checked");
            self.bindings.remove(&v);
        }
    }

    fn bind(&mut self, v: Var, t: Term) {
        self.bindings.insert(v, t);
        self.trail.push(v);
    }

    /// Follows variable bindings until a non-variable or unbound variable.
    pub fn walk(&self, term: &Term) -> Term {
        let mut current = term.clone();
        while let Term::Var(v) = current {
            match self.bindings.get(&v) {
                Some(next) => current = next.clone(),
                None => break,
            }
        }
        current
    }

    /// Fully applies the substitution to a term.
    pub fn resolve(&self, term: &Term) -> Term {
        let walked = self.walk(term);
        match walked {
            Term::Compound(f, args) => {
                Term::Compound(f, args.iter().map(|a| self.resolve(a)).collect())
            }
            other => other,
        }
    }

    /// Fully applies the substitution to an atom's arguments.
    pub fn resolve_atom(&self, atom: &Atom) -> Atom {
        Atom {
            pred: atom.pred,
            args: atom.args.iter().map(|a| self.resolve(a)).collect(),
            negated: atom.negated,
        }
    }

    /// Occurs check: does `v` occur in (the walked form of) `t`?
    fn occurs(&self, v: Var, t: &Term) -> bool {
        match self.walk(t) {
            Term::Var(w) => w == v,
            Term::Compound(_, args) => args.iter().any(|a| self.occurs(v, a)),
            _ => false,
        }
    }

    /// Unifies two terms, extending the substitution. On failure the
    /// substitution is left with partial bindings — callers must roll back
    /// with [`Subst::undo_to`] (the engine always brackets unification
    /// in a mark/undo pair).
    pub fn unify(&mut self, a: &Term, b: &Term) -> bool {
        let (wa, wb) = (self.walk(a), self.walk(b));
        match (wa, wb) {
            (Term::Var(v), Term::Var(w)) if v == w => true,
            (Term::Var(v), t) | (t, Term::Var(v)) => {
                if self.occurs(v, &t) {
                    false
                } else {
                    self.bind(v, t);
                    true
                }
            }
            (Term::Const(x), Term::Const(y)) => x == y,
            (Term::Int(x), Term::Int(y)) => x == y,
            (Term::Compound(f, xs), Term::Compound(g, ys)) => {
                f == g && xs.len() == ys.len() && xs.iter().zip(&ys).all(|(x, y)| self.unify(x, y))
            }
            _ => false,
        }
    }

    /// Unifies two atoms (same predicate, same polarity, unifiable
    /// arguments).
    pub fn unify_atoms(&mut self, a: &Atom, b: &Atom) -> bool {
        a.pred == b.pred
            && a.negated == b.negated
            && a.args.len() == b.args.len()
            && a.args.iter().zip(&b.args).all(|(x, y)| self.unify(x, y))
    }

    /// True if the term is ground under the current bindings.
    pub fn is_ground(&self, term: &Term) -> bool {
        self.resolve(term).is_ground()
    }
}

/// Renames every variable of a term apart, using the provided mapping and
/// allocating fresh variables from `subst`.
pub fn rename_term(term: &Term, mapping: &mut BTreeMap<Var, Var>, subst: &mut Subst) -> Term {
    match term {
        Term::Var(v) => {
            let fresh = *mapping.entry(*v).or_insert_with(|| subst.fresh_var());
            Term::Var(fresh)
        }
        Term::Const(_) | Term::Int(_) => term.clone(),
        Term::Compound(f, args) => Term::Compound(
            *f,
            args.iter()
                .map(|a| rename_term(a, mapping, subst))
                .collect(),
        ),
    }
}

/// Renames an atom apart.
pub fn rename_atom(atom: &Atom, mapping: &mut BTreeMap<Var, Var>, subst: &mut Subst) -> Atom {
    Atom {
        pred: atom.pred,
        args: atom
            .args
            .iter()
            .map(|a| rename_term(a, mapping, subst))
            .collect(),
        negated: atom.negated,
    }
}

/// Highest variable index occurring in an atom, plus one. Used to seed
/// [`Subst::with_floor`].
pub fn var_floor(atoms: impl Iterator<Item = Atom>) -> u32 {
    let mut floor = 0;
    for atom in atoms {
        let mut vars = Vec::new();
        for arg in &atom.args {
            arg.collect_vars(&mut vars);
        }
        for Var(i) in vars {
            floor = floor.max(i + 1);
        }
    }
    floor
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }
    fn c(name: &str) -> Term {
        Term::constant(name)
    }

    #[test]
    fn unify_var_with_constant() {
        let mut s = Subst::default();
        assert!(s.unify(&v(0), &c("paris")));
        assert_eq!(s.resolve(&v(0)), c("paris"));
    }

    #[test]
    fn unify_compounds() {
        let mut s = Subst::default();
        let a = Term::compound("f", vec![v(0), c("b")]);
        let b = Term::compound("f", vec![c("a"), v(1)]);
        assert!(s.unify(&a, &b));
        assert_eq!(s.resolve(&v(0)), c("a"));
        assert_eq!(s.resolve(&v(1)), c("b"));
    }

    #[test]
    fn unify_mismatched_functors_fails() {
        let mut s = Subst::default();
        assert!(!s.unify(
            &Term::compound("f", vec![c("a")]),
            &Term::compound("g", vec![c("a")])
        ));
    }

    #[test]
    fn occurs_check_rejects_cyclic_binding() {
        let mut s = Subst::default();
        let cyclic = Term::compound("f", vec![v(0)]);
        assert!(!s.unify(&v(0), &cyclic));
    }

    #[test]
    fn chained_bindings_walk() {
        let mut s = Subst::default();
        assert!(s.unify(&v(0), &v(1)));
        assert!(s.unify(&v(1), &c("x")));
        assert_eq!(s.resolve(&v(0)), c("x"));
    }

    #[test]
    fn undo_rolls_back_bindings() {
        let mut s = Subst::default();
        assert!(s.unify(&v(0), &c("a")));
        let mark = s.mark();
        assert!(s.unify(&v(1), &c("b")));
        s.undo_to(mark);
        assert_eq!(s.resolve(&v(0)), c("a"), "earlier binding survives");
        assert_eq!(s.resolve(&v(1)), v(1), "later binding undone");
    }

    #[test]
    fn unify_atoms_respects_polarity() {
        let mut s = Subst::default();
        let pos = Atom::new("p", vec![c("a")]);
        let neg = pos.negate();
        assert!(!s.unify_atoms(&pos, &neg));
        assert!(s.unify_atoms(&pos, &Atom::new("p", vec![v(0)])));
    }

    #[test]
    fn rename_apart_is_consistent() {
        let mut s = Subst::with_floor(10);
        let mut mapping = BTreeMap::new();
        let t = Term::compound("f", vec![v(0), v(0), v(1)]);
        let renamed = rename_term(&t, &mut mapping, &mut s);
        let Term::Compound(_, args) = renamed else {
            panic!("compound expected")
        };
        assert_eq!(args[0], args[1], "same source var maps to same fresh var");
        assert_ne!(args[0], args[2]);
        assert_eq!(args[0], Term::Var(Var(10)));
    }

    #[test]
    fn var_floor_scans_atoms() {
        let atoms = vec![
            Atom::new("p", vec![v(3)]),
            Atom::new("q", vec![Term::compound("f", vec![v(7)])]),
        ];
        assert_eq!(var_floor(atoms.into_iter()), 8);
    }

    #[test]
    fn fresh_vars_start_at_floor() {
        let mut s = Subst::with_floor(5);
        assert_eq!(s.fresh_var(), Var(5));
        assert_eq!(s.fresh_var(), Var(6));
    }
}
