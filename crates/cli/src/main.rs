//! The `ctr` command-line entry point; all logic lives in the library so
//! it can be unit-tested.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ctr_cli::run(&args) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprint!("{}", e.message);
            if !e.message.ends_with('\n') {
                eprintln!();
            }
            std::process::exit(e.code);
        }
    }
}
