#![warn(missing_docs)]

//! # ctr-cli — command-line workflow analysis
//!
//! A thin, dependency-free driver over the library: parse a `.ctr`
//! specification and run the paper's decision procedures on it.
//!
//! ```text
//! ctr check <file>                     consistency (Thm 5.8) + knot report
//! ctr compile <file>                   print the compiled, executable goal
//! ctr verify <file> -p '<c>' [-p ...]  property verification (Thm 5.9),
//!                                      one tabled session for all -p flags
//! ctr minimize <file>                  drop redundant constraints (Thm 5.10)
//! ctr schedule <file>                  print one constraint-respecting schedule
//! ctr enumerate <file> [-n LIMIT]      list allowed executions
//! ctr simulate <file> [-n RUNS]        Monte-Carlo schedule statistics
//! ctr report <file>                    mandatory/optional/dead activities
//! ctr dot <file>                       Graphviz rendering
//! ```
//!
//! Every command is a pure function from the specification text to a
//! report string, so the whole surface is unit-testable without spawning
//! processes.

use ctr::analysis::Verification;
use ctr::constraints::Constraint;
use ctr_engine::scheduler::{Program, Scheduler};
use ctr_parser::{parse_constraint, parse_spec};
use ctr_workflow::WorkflowSpec;
use std::fmt::Write as _;

/// A CLI-level error: message intended for stderr, exit code 1 or 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code (1 = analysis says "no", 2 = usage/parse error).
    pub code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    fn analysis(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: 1,
        }
    }
}

fn load(input: &str) -> Result<WorkflowSpec, CliError> {
    parse_spec(input).map_err(|e| CliError::usage(format!("parse error: {e}")))
}

fn compile_spec(spec: &WorkflowSpec) -> Result<ctr::analysis::Compiled, CliError> {
    spec.compile().map_err(|e| CliError::usage(e.to_string()))
}

/// `ctr check`: consistency verdict with knot diagnostics.
pub fn cmd_check(input: &str) -> Result<String, CliError> {
    let spec = load(input)?;
    let compiled = compile_spec(&spec)?;
    let mut out = String::new();
    let _ = writeln!(out, "workflow `{}`", spec.name);
    let _ = writeln!(
        out,
        "  graph: {} nodes, {} constraints, {} sub-workflows, {} triggers",
        spec.to_goal().size(),
        spec.constraints.len(),
        spec.subworkflows.len(),
        spec.triggers.len()
    );
    for report in &compiled.knots {
        let _ = writeln!(out, "  knot excised: {report}");
    }
    if compiled.has_conditions {
        let _ = writeln!(
            out,
            "  note: the graph queries state (transition conditions); consistency is \
             sound but not complete (paper §7) — confirm by execution"
        );
    }
    if compiled.is_consistent() {
        let _ = writeln!(
            out,
            "  CONSISTENT ({} compiled nodes)",
            compiled.goal.size()
        );
        Ok(out)
    } else {
        let _ = writeln!(
            out,
            "  INCONSISTENT: no execution satisfies all constraints"
        );
        Err(CliError::analysis(out))
    }
}

/// `ctr compile`: print the executable compiled goal.
pub fn cmd_compile(input: &str) -> Result<String, CliError> {
    let spec = load(input)?;
    let compiled = compile_spec(&spec)?;
    if compiled.is_consistent() {
        Ok(format!("{}\n", compiled.goal))
    } else {
        Err(CliError::analysis(
            "nopath (inconsistent specification)\n".to_owned(),
        ))
    }
}

/// `ctr report`: classify every activity (mandatory/optional/dead) and
/// flag dead ones — the §5 "eliminates the parts of the control graph"
/// effect as designer feedback.
pub fn cmd_report(input: &str) -> Result<String, CliError> {
    let spec = load(input)?;
    let goal = spec.to_goal();
    let report = ctr::analysis::activity_report(&goal, &spec.constraints)
        .map_err(|e| CliError::usage(e.to_string()))?;
    let mut out = String::new();
    let mut dead = 0usize;
    for (event, status) in report {
        let label = match status {
            ctr::analysis::ActivityStatus::Mandatory => "mandatory",
            ctr::analysis::ActivityStatus::Optional => "optional ",
            ctr::analysis::ActivityStatus::Dead => {
                dead += 1;
                "DEAD     "
            }
        };
        let _ = writeln!(out, "  [{label}] {event}");
    }
    if dead > 0 {
        let _ = writeln!(
            out,
            "{dead} activit{} can never execute under the constraints — check the spec",
            if dead == 1 { "y" } else { "ies" }
        );
    }
    Ok(out)
}

/// `ctr simulate -n <runs>`: Monte-Carlo sampling of the allowed
/// schedules — activity frequencies and path-length statistics.
pub fn cmd_simulate(input: &str, runs: usize) -> Result<String, CliError> {
    let spec = load(input)?;
    let compiled = compile_spec(&spec)?;
    if !compiled.is_consistent() {
        return Err(CliError::analysis(
            "inconsistent specification: nothing to simulate\n",
        ));
    }
    let program =
        Program::compile(&compiled.goal).map_err(|e| CliError::analysis(format!("{e}\n")))?;
    let sim = ctr_runtime::simulate(&program, runs, 0xC7A0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} runs, {} completed, path length {}..{} (mean {:.1}), {} distinct traces seen",
        sim.runs,
        sim.completed,
        sim.min_len,
        sim.max_len,
        sim.mean_len(),
        sim.distinct_traces
    );
    for (event, count) in &sim.event_frequency {
        let pct = 100.0 * *count as f64 / sim.completed.max(1) as f64;
        let _ = writeln!(out, "  {pct:5.1}%  {event}");
    }
    Ok(out)
}

/// Parameters for [`cmd_enact`], all optional on the command line.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EnactOptions {
    /// Seed for the branching policy, fault plan, and retry jitter.
    pub seed: u64,
    /// Retry budget applied to every activity (total attempts; min 1).
    pub attempts: u32,
    /// Per-attempt timeout in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Fault-injection spec: comma-separated `event=kind:arg` items with
    /// kinds `fail:N`, `panic:K`, `delay:MS`, `vanish:N`.
    pub faults: String,
    /// Saga compensators: comma-separated `event=undo` items; an
    /// aborted run's report lists the undos of the committed prefix in
    /// reverse commit order.
    pub compensate: String,
}

/// Parses the `--faults` grammar into a [`ctr_runtime::FaultPlan`]:
/// `boom=fail:2,slow=delay:50,ghost=vanish:1,bad=panic:1` injects two
/// failures into `boom`'s first attempts, delays every `slow` attempt by
/// 50ms, makes `ghost`'s first worker vanish, and panics `bad`'s first
/// attempt.
fn parse_fault_plan(spec: &str, seed: u64) -> Result<ctr_runtime::FaultPlan, CliError> {
    use ctr_runtime::Fault;
    let mut plan = ctr_runtime::FaultPlan::new(seed);
    for item in spec.split(',').filter(|s| !s.trim().is_empty()) {
        let bad = || CliError::usage(format!("bad fault `{item}` (want event=kind:arg)"));
        let (event, kind_arg) = item.trim().split_once('=').ok_or_else(bad)?;
        let (kind, arg) = kind_arg.split_once(':').ok_or_else(bad)?;
        let n: u64 = arg.parse().map_err(|_| bad())?;
        let fault = match kind {
            "fail" => Fault::FailTimes(u32::try_from(n).map_err(|_| bad())?),
            "panic" => Fault::PanicOnAttempt(u32::try_from(n).map_err(|_| bad())?),
            "vanish" => Fault::Vanish(u32::try_from(n).map_err(|_| bad())?),
            "delay" => Fault::Delay(std::time::Duration::from_millis(n)),
            _ => return Err(bad()),
        };
        plan = plan.inject(event, fault);
    }
    Ok(plan)
}

/// `ctr enact`: run the compiled schedule through the fault-tolerant
/// dispatcher — activities complete instantly unless the `--faults` plan
/// injects failures — and print the per-attempt log, committed trace,
/// and (on abort) the typed error with the compensation-relevant prefix.
/// Deterministic for a fixed `(spec, options)` pair.
pub fn cmd_enact(input: &str, opts: &EnactOptions) -> Result<String, CliError> {
    use ctr_runtime::{AttemptOutcome, ChoicePolicy, RetryPolicy};
    let spec = load(input)?;
    let compiled = compile_spec(&spec)?;
    if !compiled.is_consistent() {
        return Err(CliError::analysis(
            "inconsistent specification: nothing to enact\n",
        ));
    }
    let program =
        Program::compile(&compiled.goal).map_err(|e| CliError::analysis(format!("{e}\n")))?;
    let mut policy = RetryPolicy::attempts(opts.attempts.max(1));
    if let Some(ms) = opts.timeout_ms {
        policy = policy.with_timeout(std::time::Duration::from_millis(ms));
    }
    let mut enactor = ctr_runtime::Enactor::new()
        .with_policy(ChoicePolicy::Random(opts.seed))
        .with_default_retry(policy)
        .with_faults(parse_fault_plan(&opts.faults, opts.seed)?)
        .with_seed(opts.seed);
    for item in opts.compensate.split(',').filter(|s| !s.trim().is_empty()) {
        let (event, undo) = item.trim().split_once('=').ok_or_else(|| {
            CliError::usage(format!("bad compensator `{item}` (want event=undo)"))
        })?;
        enactor.compensate(event, undo);
    }
    let report = enactor.run_report(&program);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "enacting `{}` (seed {}, attempts {}{})",
        spec.name,
        opts.seed,
        opts.attempts.max(1),
        match opts.timeout_ms {
            Some(ms) => format!(", timeout {ms}ms"),
            None => String::new(),
        }
    );
    for a in &report.attempts {
        let verdict = match &a.outcome {
            AttemptOutcome::Success => "ok".to_owned(),
            AttemptOutcome::Failed(reason) => format!("failed: {reason}"),
            AttemptOutcome::Panicked(msg) => format!("panicked: {msg}"),
            AttemptOutcome::TimedOut => "timed out".to_owned(),
            AttemptOutcome::Lost => "worker lost".to_owned(),
        };
        let _ = writeln!(
            out,
            "  attempt {} of `{}`: {verdict} ({:?})",
            a.attempt, a.event, a.latency
        );
    }
    let committed: Vec<&str> = report.completed.iter().map(|s| s.as_str()).collect();
    let _ = writeln!(out, "committed: {}", committed.join(" -> "));
    match &report.error {
        None => {
            let _ = writeln!(
                out,
                "COMPLETED: {} events, {} retries, {:?}",
                report.completed.len(),
                report.total_retries(),
                report.elapsed
            );
            Ok(out)
        }
        Some(err) => {
            let _ = writeln!(out, "FAILED: {err}");
            if !report.compensation.is_empty() {
                let undo: Vec<&str> = report.compensation.iter().map(|s| s.as_str()).collect();
                let _ = writeln!(out, "compensation: {}", undo.join(" -> "));
            }
            Err(CliError::analysis(out))
        }
    }
}

/// `ctr dot`: render the (compiled) workflow as a Graphviz digraph, with
/// injected channels shown as dotted cross edges.
pub fn cmd_dot(input: &str) -> Result<String, CliError> {
    let spec = load(input)?;
    let compiled = compile_spec(&spec)?;
    if !compiled.is_consistent() {
        return Err(CliError::analysis(
            "inconsistent specification: nothing to draw\n",
        ));
    }
    Ok(ctr_workflow::goal_to_dot(&spec.name, &compiled.goal))
}

/// `ctr verify -p <constraint> [-p <constraint> ...] [--stats]`: does
/// every execution satisfy each property?
///
/// All properties are answered through one [`ctr::memo::Analyzer`]
/// session, so the compiled `G ∧ C` prefix is shared across them instead
/// of being recompiled per property (the verification path is
/// NP-complete — the sharing is the point). Exit code 1 if any property
/// is violated; `--stats` appends the session's memo-table counters.
pub fn cmd_verify(input: &str, properties: &[String], stats: bool) -> Result<String, CliError> {
    if properties.is_empty() {
        return Err(CliError::usage(USAGE));
    }
    let spec = load(input)?;
    let parsed: Vec<Constraint> = properties
        .iter()
        .map(|p| parse_constraint(p).map_err(|e| CliError::usage(format!("property: {e}"))))
        .collect::<Result<_, _>>()?;
    let goal = spec.to_goal();
    let mut analyzer = ctr::memo::Analyzer::new(&goal, &spec.constraints)
        .map_err(|e| CliError::usage(e.to_string()))?;
    let mut out = String::new();
    let mut violated = 0usize;
    for property in &parsed {
        match analyzer.verify(property) {
            Verification::Holds => {
                let _ = writeln!(out, "HOLDS: every execution satisfies {property}");
            }
            Verification::CounterExample(ce) => {
                violated += 1;
                let _ = writeln!(
                    out,
                    "VIOLATED: {property}\nmost general counterexample:\n  {ce}"
                );
            }
        }
    }
    if parsed.len() > 1 {
        let _ = writeln!(
            out,
            "{} of {} properties hold",
            parsed.len() - violated,
            parsed.len()
        );
    }
    if stats {
        let _ = writeln!(out, "memo: {}", analyzer.stats());
    }
    if violated == 0 {
        Ok(out)
    } else {
        Err(CliError::analysis(out))
    }
}

/// `ctr minimize`: report which constraints are redundant (Thm 5.10).
pub fn cmd_minimize(input: &str) -> Result<String, CliError> {
    let spec = load(input)?;
    let goal = spec.to_goal();
    let kept = ctr::analysis::minimize_constraints(&goal, &spec.constraints)
        .map_err(|e| CliError::usage(e.to_string()))?;
    let mut out = String::new();
    for (i, c) in spec.constraints.iter().enumerate() {
        let verdict = if kept.contains(&i) {
            "kept     "
        } else {
            "redundant"
        };
        let _ = writeln!(out, "  [{verdict}] {c}");
    }
    let _ = writeln!(
        out,
        "{} of {} constraints retained",
        kept.len(),
        spec.constraints.len()
    );
    Ok(out)
}

/// `ctr schedule`: one complete, constraint-respecting schedule.
pub fn cmd_schedule(input: &str) -> Result<String, CliError> {
    let spec = load(input)?;
    let compiled = compile_spec(&spec)?;
    if !compiled.is_consistent() {
        return Err(CliError::analysis(
            "inconsistent specification: nothing to schedule\n",
        ));
    }
    let program =
        Program::compile(&compiled.goal).map_err(|e| CliError::analysis(format!("{e}\n")))?;
    let mut scheduler = Scheduler::new(&program);
    let mut out = String::new();
    while !scheduler.is_complete() {
        let eligible = scheduler.eligible();
        let Some(step) = eligible.first().copied() else {
            return Err(CliError::analysis(
                "deadlock while scheduling (knot at run time)\n",
            ));
        };
        let shown: Vec<String> = eligible
            .iter()
            .filter_map(|c| program.event(c.node))
            .map(ToString::to_string)
            .collect();
        if let Some(atom) = program.event(step.node) {
            let _ = writeln!(out, "  fire {atom:<24} (eligible: {})", shown.join(", "));
        }
        scheduler.fire(step.node);
    }
    let path: Vec<String> = scheduler.trace().iter().map(ToString::to_string).collect();
    let _ = writeln!(out, "schedule: {}", path.join(" -> "));
    Ok(out)
}

/// `ctr enumerate -n <limit>`: the allowed executions.
pub fn cmd_enumerate(input: &str, limit: usize) -> Result<String, CliError> {
    let spec = load(input)?;
    let compiled = compile_spec(&spec)?;
    if !compiled.is_consistent() {
        return Err(CliError::analysis(
            "inconsistent specification: no executions\n",
        ));
    }
    let program =
        Program::compile(&compiled.goal).map_err(|e| CliError::analysis(format!("{e}\n")))?;
    let traces = Scheduler::new(&program).enumerate_traces(limit);
    let mut out = String::new();
    for t in &traces {
        let names: Vec<&str> = t.iter().map(|s| s.as_str()).collect();
        let _ = writeln!(out, "  {}", names.join(" -> "));
    }
    let _ = writeln!(
        out,
        "{} execution(s){}",
        traces.len(),
        if traces.len() >= limit {
            " (limit reached)"
        } else {
            ""
        }
    );
    Ok(out)
}

/// Parses a `--durability` value: `strict` (one fsync per append),
/// `coalesced` (cross-thread group commit, still durable-on-return), or
/// `periodic` (acknowledge at staging; background sync bounds the loss
/// window — relaxed, documented as such).
pub fn parse_durability(value: &str) -> Result<ctr_runtime::Durability, CliError> {
    use ctr_runtime::Durability;
    match value {
        "strict" => Ok(Durability::Strict),
        "coalesced" => Ok(Durability::coalesced()),
        "periodic" => Ok(Durability::periodic()),
        other => Err(CliError::usage(format!(
            "--durability must be strict, coalesced, or periodic (got `{other}`)"
        ))),
    }
}

/// `ctr run --store <dir> [--durability <policy>] <verb>`: one step of
/// a durable workflow session. Every invocation opens the write-ahead
/// store at `dir` (creating it on first use), replays it into a fresh
/// runtime — recovery failure is a nonzero exit — applies the verb, and
/// returns. All mutations (`deploy`, `start`, `fire`, `pump`) are
/// durable before the command prints anything (under `periodic`:
/// durable within one sync interval or on clean exit, whichever comes
/// first), so the session survives `kill -9` between (or during)
/// invocations.
pub fn cmd_run(
    dir: &str,
    durability: ctr_runtime::Durability,
    verb: &str,
    rest: &[String],
) -> Result<String, CliError> {
    use ctr_runtime::{Runtime, Store, WalOptions, WalStore};
    use std::sync::Arc;

    let options = WalOptions {
        durability,
        ..WalOptions::default()
    };
    let store: Arc<dyn Store> = Arc::new(
        WalStore::open_with(dir, options)
            .map_err(|e| CliError::analysis(format!("store `{dir}`: {e}\n")))?,
    );
    let mut rt = Runtime::open(Arc::clone(&store))
        .map_err(|e| CliError::analysis(format!("recovery from `{dir}` failed: {e}\n")))?;
    let step = |e: ctr_runtime::RuntimeError| CliError::analysis(format!("{e}\n"));

    let mut out = String::new();
    match (verb, rest) {
        ("deploy", [path]) => {
            let source = std::fs::read_to_string(path)
                .map_err(|e| CliError::usage(format!("cannot read `{path}`: {e}")))?;
            let name = rt.deploy_source(&source).map_err(step)?;
            let _ = writeln!(out, "deployed `{name}`");
        }
        ("start", [workflow]) => {
            let id = rt.start(workflow).map_err(step)?;
            let _ = writeln!(out, "started instance {id} of `{workflow}`");
        }
        ("fire", [id, events @ ..]) if !events.is_empty() => {
            let id: u64 = id
                .parse()
                .map_err(|_| CliError::usage("fire needs a numeric instance id"))?;
            for event in events {
                rt.fire(id, event).map_err(step)?;
            }
            let status = rt.try_complete(id).map_err(step)?;
            let journal = rt.journal(id).map_err(step)?;
            let _ = writeln!(out, "instance {id} [{status}]: {}", journal.join(" "));
        }
        ("status", []) => out = rt.snapshot(),
        ("status", [id]) => {
            let id: u64 = id
                .parse()
                .map_err(|_| CliError::usage("status needs a numeric instance id"))?;
            let status = rt.status(id).map_err(step)?;
            let _ = writeln!(out, "instance {id} [{status}]");
            let _ = writeln!(
                out,
                "  journal: {}",
                rt.journal(id).map_err(step)?.join(" ")
            );
            let _ = writeln!(
                out,
                "  eligible: {}",
                rt.eligible(id).map_err(step)?.join(" ")
            );
            let timers = rt.pending_timers(id).map_err(step)?;
            if !timers.is_empty() {
                let pending: Vec<String> = timers
                    .iter()
                    .map(|(tick, due)| format!("{tick} due {due}ms"))
                    .collect();
                let _ = writeln!(out, "  timers: {}", pending.join(", "));
            }
        }
        ("timers", [id]) => {
            let id: u64 = id
                .parse()
                .map_err(|_| CliError::usage("timers needs a numeric instance id"))?;
            let timers = rt.pending_timers(id).map_err(step)?;
            let _ = writeln!(
                out,
                "instance {id}: {} pending (clock {}ms)",
                timers.len(),
                rt.clock_ms()
            );
            for (tick, due) in timers {
                let _ = writeln!(out, "  {tick} due {due}ms");
            }
        }
        ("advance", [to_ms]) => {
            let to_ms: u64 = to_ms
                .parse()
                .map_err(|_| CliError::usage("advance needs a millisecond clock target"))?;
            let fired = rt.advance(to_ms).map_err(step)?;
            let _ = writeln!(
                out,
                "clock {}ms, {} timer(s) fired",
                rt.clock_ms(),
                fired.len()
            );
            for (id, tick) in fired {
                let _ = writeln!(out, "  instance {id}: {tick}");
            }
        }
        ("cancel-timer", [id, event]) => {
            let id: u64 = id
                .parse()
                .map_err(|_| CliError::usage("cancel-timer needs a numeric instance id"))?;
            rt.cancel_timer(id, event).map_err(step)?;
            let _ = writeln!(out, "cancelled timer on `{event}` for instance {id}");
        }
        ("snapshot", []) => {
            rt.checkpoint().map_err(step)?;
            out = rt.snapshot();
        }
        ("recover", []) => {
            let _ = writeln!(
                out,
                "recovered `{dir}`: {} workflows, {} instances, {} replayed steps",
                rt.workflows().len(),
                rt.instances().len(),
                rt.replayed_steps()
            );
            if let Some(stats) = rt.store_stats() {
                let _ = writeln!(out, "store: {stats}");
            }
        }
        ("pump", [workflow, count]) => {
            let count: u64 = count
                .parse()
                .map_err(|_| CliError::usage("pump needs a numeric instance count"))?;
            for _ in 0..count {
                let id = rt.start(workflow).map_err(step)?;
                while let Some(event) = rt.eligible(id).map_err(step)?.first().cloned() {
                    rt.fire(id, &event).map_err(step)?;
                }
                rt.try_complete(id).map_err(step)?;
            }
            let _ = writeln!(out, "pumped {count} instances of `{workflow}`");
        }
        _ => return Err(CliError::usage(USAGE)),
    }
    Ok(out)
}

/// `ctr serve [--addr HOST:PORT] [--store <dir> [--durability <p>]]
/// [--burst N]`: serve the shared runtime over TCP until a client
/// sends the `shutdown` verb. Prints the bound address on its own
/// line and flushes *before* blocking, so scripts binding port 0 can
/// read the ephemeral port from the first line of output.
pub fn cmd_serve(rest: &[String]) -> Result<String, CliError> {
    use ctr_runtime::{SharedRuntime, Store, WalOptions, WalStore};
    use std::sync::Arc;

    let mut addr = "127.0.0.1:7171".to_owned();
    let mut store_dir: Option<String> = None;
    let mut durability = ctr_runtime::Durability::Strict;
    let mut opts = ctr_serve::ServeOptions::default();
    let mut i = 0;
    while i < rest.len() {
        let flag = rest[i].as_str();
        let mut value = || -> Result<&String, CliError> {
            i += 1;
            rest.get(i)
                .ok_or_else(|| CliError::usage(format!("{flag} needs a value\n\n{USAGE}")))
        };
        match flag {
            "--addr" => addr = value()?.clone(),
            "--store" => store_dir = Some(value()?.clone()),
            "--durability" => durability = parse_durability(value()?)?,
            "--burst" => {
                opts.max_burst_requests = value()?
                    .parse()
                    .map_err(|_| CliError::usage("--burst must be a number"))?;
            }
            _ => return Err(CliError::usage(USAGE)),
        }
        i += 1;
    }
    let runtime = match &store_dir {
        Some(dir) => {
            let options = WalOptions {
                durability,
                ..WalOptions::default()
            };
            let store: Arc<dyn Store> = Arc::new(
                WalStore::open_with(dir, options)
                    .map_err(|e| CliError::analysis(format!("store `{dir}`: {e}\n")))?,
            );
            SharedRuntime::open(store)
                .map_err(|e| CliError::analysis(format!("recovery from `{dir}` failed: {e}\n")))?
        }
        None => SharedRuntime::new(),
    };
    let server = ctr_serve::Server::bind(runtime, &addr, opts)
        .map_err(|e| CliError::analysis(format!("cannot bind `{addr}`: {e}\n")))?;
    println!("serving on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server
        .run()
        .map_err(|e| CliError::analysis(format!("server failed: {e}\n")))?;
    Ok("server exited\n".to_owned())
}

/// Usage text.
pub const USAGE: &str = "\
ctr — logic-based workflow analysis (PODS'98 CTR)

USAGE:
    ctr check     <spec.ctr>
    ctr compile   <spec.ctr>
    ctr verify    <spec.ctr> -p '<constraint>' [-p '<constraint>' ...] [--stats]
    ctr minimize  <spec.ctr>
    ctr schedule  <spec.ctr>
    ctr dot       <spec.ctr>
    ctr report    <spec.ctr>
    ctr enumerate <spec.ctr> [-n LIMIT]
    ctr simulate  <spec.ctr> [-n RUNS]
    ctr enact     <spec.ctr> [--seed N] [--attempts N] [--timeout-ms N]
                             [--faults 'e=fail:2,f=panic:1,g=delay:5,h=vanish:1']
                             [--compensate 'e=undo_e,f=undo_f']
    ctr run --store <dir> [--durability strict|coalesced|periodic] <verb> ...
        deploy <spec.ctr>     durable session over a WAL store:
        start <workflow>      each verb recovers the runtime
        fire <id> <event>...  from <dir>, applies, and persists
        status [<id>]
        snapshot              print + compact to a checkpoint
        recover               recovery report (exit 1 on corruption)
        pump <workflow> <n>   start+drive n instances to completion
        timers <id>           pending timers of one instance
        advance <ms>          move the logical clock, firing due timers
        cancel-timer <id> <tick>    disarm a pending timer by tick name
        (--durability: strict = fsync per append; coalesced = group
         commit, still durable-on-return; periodic = ack at staging,
         synced within ~5ms — a crash may lose that window)
    ctr serve [--addr HOST:PORT] [--store <dir> [--durability <p>]]
              [--burst N]
        serve the runtime over TCP (binary wire protocol; see
        DESIGN.md sec. 16). Prints the bound address first, then
        blocks until a client sends `shutdown`. --addr defaults to
        127.0.0.1:7171; port 0 binds an ephemeral port. --burst caps
        admitted requests per read burst (excess answer Busy).
    ctr load <bench|ADDR> [flags]
        load-test a serving endpoint, or regenerate BENCH_serve.json
        (`ctr load --help` for flags and examples)

CONSTRAINT SYNTAX:
    exists(e)  absent(e)  before(a,b)  serial(a,b,c)
    klein_order(a,b)  klein_exists(a,b)  causes(a,b)  requires(a,b)
    not(C)  C and C  C or C  C implies C
";

/// Parses argv (past the program name) and runs the command over the
/// file contents read here. Returns the report or an error.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let command = args.first().map(String::as_str).unwrap_or("");
    let read = |path: &str| -> Result<String, CliError> {
        std::fs::read_to_string(path)
            .map_err(|e| CliError::usage(format!("cannot read `{path}`: {e}")))
    };
    match command {
        "check" | "compile" | "minimize" | "schedule" | "dot" | "report" => {
            let [_, path] = args else {
                return Err(CliError::usage(USAGE));
            };
            let input = read(path)?;
            match command {
                "check" => cmd_check(&input),
                "compile" => cmd_compile(&input),
                "minimize" => cmd_minimize(&input),
                "dot" => cmd_dot(&input),
                "report" => cmd_report(&input),
                _ => cmd_schedule(&input),
            }
        }
        "verify" => {
            let [_, path, rest @ ..] = args else {
                return Err(CliError::usage(USAGE));
            };
            let mut properties: Vec<String> = Vec::new();
            let mut stats = false;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "-p" | "--property" => {
                        let value = it.next().ok_or_else(|| {
                            CliError::usage(format!("{flag} needs a value\n\n{USAGE}"))
                        })?;
                        properties.push(value.clone());
                    }
                    "--stats" => stats = true,
                    _ => return Err(CliError::usage(USAGE)),
                }
            }
            cmd_verify(&read(path)?, &properties, stats)
        }
        "simulate" => match args {
            [_, path] => cmd_simulate(&read(path)?, 1000),
            [_, path, flag, n] if flag == "-n" || flag == "--runs" => {
                let runs: usize = n
                    .parse()
                    .map_err(|_| CliError::usage("RUNS must be a number"))?;
                cmd_simulate(&read(path)?, runs)
            }
            _ => Err(CliError::usage(USAGE)),
        },
        "enumerate" => match args {
            [_, path] => cmd_enumerate(&read(path)?, 50),
            [_, path, flag, n] if flag == "-n" || flag == "--limit" => {
                let limit: usize = n
                    .parse()
                    .map_err(|_| CliError::usage("LIMIT must be a number"))?;
                cmd_enumerate(&read(path)?, limit)
            }
            _ => Err(CliError::usage(USAGE)),
        },
        "enact" => {
            let [_, path, rest @ ..] = args else {
                return Err(CliError::usage(USAGE));
            };
            let mut opts = EnactOptions {
                attempts: 1,
                ..EnactOptions::default()
            };
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::usage(format!("{flag} needs a value\n\n{USAGE}")))?;
                let number = || {
                    value
                        .parse::<u64>()
                        .map_err(|_| CliError::usage(format!("{flag} must be a number")))
                };
                match flag.as_str() {
                    "--seed" => opts.seed = number()?,
                    "--attempts" => {
                        opts.attempts = u32::try_from(number()?)
                            .map_err(|_| CliError::usage("--attempts out of range"))?;
                    }
                    "--timeout-ms" => opts.timeout_ms = Some(number()?),
                    "--faults" => opts.faults = value.clone(),
                    "--compensate" => opts.compensate = value.clone(),
                    _ => return Err(CliError::usage(USAGE)),
                }
            }
            cmd_enact(&read(path)?, &opts)
        }
        "run" => {
            let [_, flag, dir, rest @ ..] = args else {
                return Err(CliError::usage(USAGE));
            };
            if flag != "--store" {
                return Err(CliError::usage(USAGE));
            }
            let (durability, rest) = match rest {
                [flag, value, rest @ ..] if flag == "--durability" => {
                    (parse_durability(value)?, rest)
                }
                _ => (ctr_runtime::Durability::Strict, rest),
            };
            let [verb, rest @ ..] = rest else {
                return Err(CliError::usage(USAGE));
            };
            cmd_run(dir, durability, verb, rest)
        }
        "serve" => cmd_serve(&args[1..]),
        "load" => {
            let rest = &args[1..];
            if rest.is_empty() {
                return Ok(format!("{}\n", ctr_serve::loadgen::LOAD_USAGE));
            }
            ctr_serve::loadgen::cli_main(rest)
                .map(|text| format!("{text}\n"))
                .map_err(CliError::usage)
        }
        "help" | "--help" | "-h" | "" => Ok(USAGE.to_owned()),
        other => Err(CliError::usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r"
        workflow demo {
            graph a * (b # c) * d;
            constraint before(b, c);
        }
    ";

    const INCONSISTENT: &str = r"
        workflow broken {
            graph b * a;
            constraint before(a, b);
        }
    ";

    #[test]
    fn check_reports_consistency() {
        let out = cmd_check(SPEC).unwrap();
        assert!(out.contains("CONSISTENT"));
        assert!(out.contains("workflow `demo`"));
    }

    #[test]
    fn check_rejects_inconsistent_spec_with_code_1() {
        let err = cmd_check(INCONSISTENT).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("INCONSISTENT"));
    }

    #[test]
    fn check_flags_parse_errors_with_code_2() {
        let err = cmd_check("workflow oops {").unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("parse error"));
    }

    #[test]
    fn compile_prints_a_goal() {
        let out = cmd_compile(SPEC).unwrap();
        assert!(out.contains("send(") && out.contains("receive("));
    }

    #[test]
    fn verify_holds_and_violated() {
        assert!(cmd_verify(SPEC, &["klein_order(b, c)".into()], false)
            .unwrap()
            .contains("HOLDS"));
        let err = cmd_verify(SPEC, &["before(c, b)".into()], false).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("counterexample"));
    }

    #[test]
    fn verify_rejects_bad_property_syntax() {
        let err = cmd_verify(SPEC, &["sometime(b)".into()], false).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn verify_answers_many_properties_in_one_session() {
        let props: Vec<String> = vec![
            "klein_order(b, c)".into(),
            "exists(a)".into(),
            "exists(d)".into(),
        ];
        let out = cmd_verify(SPEC, &props, true).unwrap();
        assert_eq!(out.matches("HOLDS").count(), 3);
        assert!(out.contains("3 of 3 properties hold"));
        assert!(
            out.contains("memo:") && out.contains("hits"),
            "--stats line"
        );

        // A mixed batch reports every verdict and exits 1.
        let mixed: Vec<String> = vec!["exists(a)".into(), "before(c, b)".into()];
        let err = cmd_verify(SPEC, &mixed, false).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err
            .message
            .contains("HOLDS: every execution satisfies exists(a)"));
        assert!(err.message.contains("VIOLATED"));
        assert!(err.message.contains("1 of 2 properties hold"));

        // No properties at all is a usage error.
        assert_eq!(cmd_verify(SPEC, &[], false).unwrap_err().code, 2);
    }

    #[test]
    fn run_parses_repeated_verify_properties() {
        let path = std::env::temp_dir().join("ctr_cli_verify_spec.ctr");
        std::fs::write(&path, SPEC).unwrap();
        let out = run(&[
            "verify".into(),
            path.display().to_string(),
            "-p".into(),
            "klein_order(b, c)".into(),
            "--property".into(),
            "exists(d)".into(),
            "--stats".into(),
        ])
        .unwrap();
        assert!(out.contains("2 of 2 properties hold"));
        assert!(out.contains("memo:"));
        let err = run(&["verify".into(), path.display().to_string(), "-p".into()]).unwrap_err();
        assert!(err.message.contains("-p needs a value"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn minimize_marks_redundant_constraints() {
        let spec = r"
            workflow m {
                graph a * b * c;
                constraint before(a, c);
                constraint exists(b);
            }
        ";
        let out = cmd_minimize(spec).unwrap();
        assert!(out.contains("[redundant] serial(a, c)"));
        assert!(out.contains("[redundant] exists(b)"));
        assert!(out.contains("0 of 2 constraints retained"));
    }

    #[test]
    fn schedule_produces_a_valid_path() {
        let out = cmd_schedule(SPEC).unwrap();
        assert!(out.contains("schedule: a -> b -> c -> d"));
    }

    #[test]
    fn enumerate_lists_allowed_executions() {
        let out = cmd_enumerate(SPEC, 50).unwrap();
        // b before c in every listed execution; d closes each.
        assert!(out.contains("a -> b -> c -> d"));
        assert!(!out.contains("c -> b"));
    }

    #[test]
    fn report_flags_dead_activities() {
        let spec = r"
            workflow r {
                graph a * (b + c) * d;
                constraint absent(c);
            }
        ";
        let out = cmd_report(spec).unwrap();
        assert!(out.contains("[DEAD     ] c"));
        assert!(
            out.contains("[mandatory] b"),
            "with c dead, b becomes mandatory"
        );
        assert!(out.contains("1 activity can never execute"));
    }

    #[test]
    fn simulate_reports_frequencies() {
        let out = cmd_simulate(SPEC, 100).unwrap();
        assert!(out.contains("100 runs, 100 completed"));
        assert!(out.contains("100.0%  a"));
    }

    #[test]
    fn dot_renders_a_digraph() {
        let out = cmd_dot(SPEC).unwrap();
        assert!(out.starts_with("digraph \"demo\""));
        assert!(
            out.contains("send xi"),
            "compiled channel appears in the drawing"
        );
        let err = cmd_dot(INCONSISTENT).unwrap_err();
        assert_eq!(err.code, 1);
    }

    #[test]
    fn enact_clean_run_completes() {
        let opts = EnactOptions {
            attempts: 1,
            ..EnactOptions::default()
        };
        let out = cmd_enact(SPEC, &opts).unwrap();
        assert!(out.contains("enacting `demo` (seed 0, attempts 1)"));
        assert!(out.contains("COMPLETED: 4 events, 0 retries"));
        assert!(out.contains("committed: a -> b -> c -> d"));
    }

    #[test]
    fn enact_recovers_injected_faults_with_retries() {
        let opts = EnactOptions {
            attempts: 3,
            faults: "b=fail:2".to_owned(),
            ..EnactOptions::default()
        };
        let out = cmd_enact(SPEC, &opts).unwrap();
        assert!(out.contains("attempt 1 of `b`: failed: injected failure (1/2)"));
        assert!(out.contains("attempt 2 of `b`: failed: injected failure (2/2)"));
        assert!(out.contains("attempt 3 of `b`: ok"));
        assert!(out.contains("COMPLETED: 4 events, 2 retries"));
    }

    #[test]
    fn enact_reports_typed_failure_with_exit_code_1() {
        let opts = EnactOptions {
            attempts: 2,
            faults: "c=fail:99".to_owned(),
            ..EnactOptions::default()
        };
        let err = cmd_enact(SPEC, &opts).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("FAILED: activity `c` failed"));
        assert!(err.message.contains("committed: a -> b"));
    }

    #[test]
    fn enact_expired_deadline_compensates_the_committed_prefix() {
        const TIMED: &str = r"
            workflow sla {
                graph a * b;
                deadline(b, 40ms);
            }
        ";
        let opts = EnactOptions {
            attempts: 1,
            faults: "b=delay:5000".to_owned(),
            compensate: "a=undo_a".to_owned(),
            ..EnactOptions::default()
        };
        let err = cmd_enact(TIMED, &opts).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(
            err.message
                .contains("FAILED: deadline on `b` expired after 40ms"),
            "{}",
            err.message
        );
        assert!(
            err.message.contains("compensation: undo_a"),
            "{}",
            err.message
        );
        // Bad compensator grammar is a usage error, not a run.
        let opts = EnactOptions {
            compensate: "a".to_owned(),
            ..EnactOptions::default()
        };
        assert_eq!(cmd_enact(TIMED, &opts).unwrap_err().code, 2);
    }

    #[test]
    fn enact_rejects_bad_fault_specs() {
        let opts = EnactOptions {
            faults: "b=explode:1".to_owned(),
            ..EnactOptions::default()
        };
        let err = cmd_enact(SPEC, &opts).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("bad fault `b=explode:1`"));
        let opts = EnactOptions {
            faults: "nonsense".to_owned(),
            ..EnactOptions::default()
        };
        assert_eq!(cmd_enact(SPEC, &opts).unwrap_err().code, 2);
    }

    #[test]
    fn run_parses_enact_flags() {
        let path = std::env::temp_dir().join("ctr_cli_enact_spec.ctr");
        std::fs::write(&path, SPEC).unwrap();
        let out = run(&[
            "enact".into(),
            path.display().to_string(),
            "--seed".into(),
            "7".into(),
            "--attempts".into(),
            "2".into(),
            "--faults".into(),
            "a=fail:1".into(),
        ])
        .unwrap();
        assert!(out.contains("enacting `demo` (seed 7, attempts 2)"));
        assert!(out.contains("attempt 2 of `a`: ok"));
        let err = run(&["enact".into(), path.display().to_string(), "--seed".into()]).unwrap_err();
        assert!(err.message.contains("--seed needs a value"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_dispatches_and_reports_usage() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&["help".into()]).unwrap().contains("USAGE"));
        let err = run(&["frobnicate".into()]).unwrap_err();
        assert_eq!(err.code, 2);
        let err = run(&["check".into(), "/nonexistent/x.ctr".into()]).unwrap_err();
        assert!(err.message.contains("cannot read"));
    }

    /// Drives one `ctr run --store` invocation; every call is a fresh
    /// process as far as the runtime is concerned (full reopen+replay).
    fn session(dir: &std::path::Path, verb: &[&str]) -> Result<String, CliError> {
        let mut args = vec![
            "run".to_owned(),
            "--store".to_owned(),
            dir.display().to_string(),
        ];
        args.extend(verb.iter().map(|s| (*s).to_owned()));
        run(&args)
    }

    #[test]
    fn run_store_session_survives_reopen_between_every_verb() {
        let dir = std::env::temp_dir().join(format!("ctr_cli_store_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let spec = std::env::temp_dir().join("ctr_cli_store_spec.ctr");
        std::fs::write(&spec, SPEC).unwrap();
        let spec = spec.display().to_string();

        assert!(session(&dir, &["deploy", &spec])
            .unwrap()
            .contains("deployed `demo`"));
        assert!(session(&dir, &["start", "demo"])
            .unwrap()
            .contains("started instance 0 of `demo`"));
        assert!(session(&dir, &["fire", "0", "a", "b"])
            .unwrap()
            .contains("instance 0 [running]: a b"));
        let out = session(&dir, &["status"]).unwrap();
        assert!(out.contains("instance 0 of demo [running]: a b"), "{out}");
        let out = session(&dir, &["status", "0"]).unwrap();
        assert!(out.contains("eligible: c"), "{out}");
        // Compact, then keep going: the checkpoint must carry the state.
        assert!(session(&dir, &["snapshot"])
            .unwrap()
            .contains("[running]: a b"));
        assert!(session(&dir, &["fire", "0", "c", "d"])
            .unwrap()
            .contains("instance 0 [completed]: a b c d"));
        let out = session(&dir, &["recover"]).unwrap();
        assert!(out.contains("1 workflows, 1 instances"), "{out}");
        assert!(out.contains("store:"), "{out}");
        // A rejected event is an analysis error, not a panic — and the
        // store still reopens cleanly afterwards (nothing half-written).
        assert_eq!(session(&dir, &["fire", "0", "z"]).unwrap_err().code, 1);
        assert!(session(&dir, &["status"]).unwrap().contains("[completed]"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_store_timer_verbs_survive_reopen() {
        let dir = std::env::temp_dir().join(format!("ctr_cli_timer_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let spec = std::env::temp_dir().join("ctr_cli_timer_spec.ctr");
        std::fs::write(
            &spec,
            "workflow timed { graph a * b * c; after(b, 30s); deadline(c, 1h); }",
        )
        .unwrap();

        session(&dir, &["deploy", &spec.display().to_string()]).unwrap();
        session(&dir, &["start", "timed"]).unwrap();
        // Each verb reopens the store: the armed timers must come back
        // from the WAL every time.
        let out = session(&dir, &["timers", "0"]).unwrap();
        assert!(out.contains("2 pending (clock 0ms)"), "{out}");
        assert!(out.contains("b@after30000 due 30000ms"), "{out}");
        assert!(out.contains("c@deadline3600000 due 3600000ms"), "{out}");
        let out = session(&dir, &["advance", "30000"]).unwrap();
        assert!(out.contains("clock 30000ms, 1 timer(s) fired"), "{out}");
        assert!(out.contains("instance 0: b@after30000"), "{out}");
        let out = session(&dir, &["status", "0"]).unwrap();
        assert!(
            out.contains("timers: c@deadline3600000 due 3600000ms"),
            "{out}"
        );
        let out = session(&dir, &["cancel-timer", "0", "c@deadline3600000"]).unwrap();
        assert!(
            out.contains("cancelled timer on `c@deadline3600000`"),
            "{out}"
        );
        let out = session(&dir, &["timers", "0"]).unwrap();
        assert!(out.contains("0 pending (clock 30000ms)"), "{out}");
        // Cancelling a timer that is not pending is a typed error.
        let err = session(&dir, &["cancel-timer", "0", "c@deadline3600000"]).unwrap_err();
        assert_eq!(err.code, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_store_pump_drives_instances_to_completion() {
        let dir = std::env::temp_dir().join(format!("ctr_cli_pump_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let spec = std::env::temp_dir().join("ctr_cli_pump_spec.ctr");
        std::fs::write(&spec, SPEC).unwrap();

        session(&dir, &["deploy", &spec.display().to_string()]).unwrap();
        let out = session(&dir, &["pump", "demo", "3"]).unwrap();
        assert!(out.contains("pumped 3 instances of `demo`"), "{out}");
        let out = session(&dir, &["recover"]).unwrap();
        assert!(out.contains("3 instances"), "{out}");
        assert_eq!(
            session(&dir, &["status"])
                .unwrap()
                .matches("[completed]")
                .count(),
            3
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_store_durability_flag_round_trips_a_session() {
        let dir = std::env::temp_dir().join(format!("ctr_cli_coalesced_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let spec = std::env::temp_dir().join("ctr_cli_coalesced_spec.ctr");
        std::fs::write(&spec, SPEC).unwrap();
        let spec = spec.display().to_string();

        // Mixed policies over the same store are fine — durability is a
        // per-open choice, the on-disk format is identical.
        assert!(
            session(&dir, &["--durability", "coalesced", "deploy", &spec])
                .unwrap()
                .contains("deployed `demo`")
        );
        assert!(
            session(&dir, &["--durability", "periodic", "pump", "demo", "2"])
                .unwrap()
                .contains("pumped 2 instances")
        );
        let out = session(&dir, &["--durability", "strict", "recover"]).unwrap();
        assert!(out.contains("2 instances"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_store_rejects_a_bad_durability_value() {
        let dir = std::env::temp_dir().join(format!("ctr_cli_baddur_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let err = session(&dir, &["--durability", "eventual", "status"]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--durability"), "{}", err.message);
        // Flag without a verb is a usage error too.
        let err = session(&dir, &["--durability", "strict"]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(!dir.exists(), "usage errors must not create the store");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_store_recovery_failure_is_exit_code_1() {
        let dir = std::env::temp_dir().join(format!("ctr_cli_corrupt_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("checkpoint.snap"), "not a checkpoint\nbody").unwrap();
        let err = session(&dir, &["status"]).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("checkpoint"), "{}", err.message);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_store_usage_errors_are_exit_code_2() {
        let dir = std::env::temp_dir().join(format!("ctr_cli_usage_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let err = session(&dir, &["warble"]).unwrap_err();
        assert_eq!(err.code, 2);
        let err = session(&dir, &["fire", "zero", "a"]).unwrap_err();
        assert_eq!(err.code, 2);
        let err = run(&["run".into(), "--shop".into(), "x".into(), "status".into()]).unwrap_err();
        assert_eq!(err.code, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_end_to_end_via_tempfile() {
        let path = std::env::temp_dir().join("ctr_cli_test_spec.ctr");
        std::fs::write(&path, SPEC).unwrap();
        let out = run(&["check".into(), path.display().to_string()]).unwrap();
        assert!(out.contains("CONSISTENT"));
        let out = run(&[
            "enumerate".into(),
            path.display().to_string(),
            "-n".into(),
            "3".into(),
        ])
        .unwrap();
        assert!(out.contains("execution"));
        std::fs::remove_file(&path).ok();
    }
}
