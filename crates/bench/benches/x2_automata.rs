//! X2 — §6 related-work claim: the automata-product approach to
//! scheduling is exponential in the constraint set; building and running
//! the product is the dominating cost the compiled approach avoids.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctr::constraints::Constraint;
use ctr::sym;
use ctr_baselines::ProductScheduler;
use std::time::Duration;

fn bench_automata(c: &mut Criterion) {
    let mut group = c.benchmark_group("x2_product_construction");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [2usize, 4, 6] {
        let constraints: Vec<Constraint> = (0..n)
            .map(|i| Constraint::order(sym(&format!("p{i}")), sym(&format!("q{i}"))))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &constraints, |b, cs| {
            b.iter(|| ProductScheduler::new(cs).product_state_count(5_000_000))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_automata);
criterion_main!(benches);
