//! A1 — ablation of the compiler's design choices (DESIGN.md §3):
//! eager ¬path pruning in `Apply(∇α, ·)` and ∨-idempotence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctr::apply::apply_must;
use ctr::gen;
use ctr::sym;
use ctr_bench::ablation::{apply_must_naive, apply_no_dedup};
use std::time::Duration;

fn bench_ablation(c: &mut Criterion) {
    // Eager vs naive positive-primitive compilation.
    let mut group = c.benchmark_group("a1_pruning");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for layers in [16usize, 32, 64] {
        let goal = gen::layered_workflow(layers, 2);
        let target = sym(&format!("l{}_0", layers - 1));
        group.bench_with_input(BenchmarkId::new("eager", goal.size()), &goal, |b, g| {
            b.iter(|| apply_must(target, g))
        });
        group.bench_with_input(BenchmarkId::new("naive", goal.size()), &goal, |b, g| {
            b.iter(|| apply_must_naive(target, g))
        });
    }
    group.finish();

    // With vs without ∨-idempotence on the SAT family.
    let mut group = c.benchmark_group("a1_idempotence");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for vars in [4usize, 5, 6] {
        let inst = gen::random_3sat(7, vars, (vars as f64 * 4.3) as usize);
        let (goal, constraints) = gen::sat_to_workflow(&inst);
        group.bench_with_input(BenchmarkId::new("dedup", vars), &vars, |b, _| {
            b.iter(|| ctr::apply::apply(&constraints, &goal))
        });
        group.bench_with_input(BenchmarkId::new("no_dedup", vars), &vars, |b, _| {
            b.iter(|| apply_no_dedup(&constraints, &goal))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
