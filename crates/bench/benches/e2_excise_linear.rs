//! E2 — Theorem 5.11: `Excise` time is proportional to `|Apply(C, G)|`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ctr::apply::apply;
use ctr::excise::excise;
use ctr::gen;
use std::time::Duration;

fn bench_excise(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_excise");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for (layers, n) in [(8usize, 2usize), (16, 3), (32, 4)] {
        let goal = gen::layered_workflow(layers, 2);
        let applied = apply(&gen::klein_chain(n), &goal);
        group.throughput(Throughput::Elements(applied.size() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(applied.size()),
            &applied,
            |b, applied| b.iter(|| excise(applied)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_excise);
criterion_main!(benches);
