//! E6 — §6: compilation-based verification is linear in `|G|`; explicit
//! model checking of the marking graph explodes with concurrent width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctr::analysis::compile;
use ctr::constraints::Constraint;
use ctr::gen;
use ctr_baselines::explore;
use std::time::Duration;

fn bench_vs_mc(c: &mut Criterion) {
    let property = Constraint::klein_order("t0", "t1");

    let mut apply_group = c.benchmark_group("e6_apply_verification");
    apply_group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    for w in [4usize, 8, 12] {
        let goal = gen::parallel_workflow(w);
        apply_group.bench_with_input(BenchmarkId::from_parameter(w), &goal, |b, goal| {
            b.iter(|| compile(goal, std::slice::from_ref(&property)).unwrap())
        });
    }
    apply_group.finish();

    let mut tabled_group = c.benchmark_group("e6_apply_verification_tabled");
    tabled_group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    for w in [4usize, 8, 12] {
        let goal = gen::parallel_workflow(w);
        let mut analyzer = ctr::memo::Analyzer::new(&goal, &[]).unwrap();
        analyzer.verify(&property); // warm the session tables
        tabled_group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, _| {
            b.iter(|| analyzer.verify(&property))
        });
    }
    tabled_group.finish();

    let mut mc_group = c.benchmark_group("e6_explicit_modelcheck");
    mc_group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for w in [4usize, 8, 12] {
        let goal = gen::parallel_workflow(w);
        mc_group.bench_with_input(BenchmarkId::from_parameter(w), &goal, |b, goal| {
            b.iter(|| explore(goal, 10_000_000).unwrap())
        });
    }
    mc_group.finish();
}

criterion_group!(benches, bench_vs_mc);
criterion_main!(benches);
