//! E8 — §1/[7]: triggers compile into the control flow graph; the cost of
//! the rewriting is linear in the graph per trigger.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctr::apply::ChannelAlloc;
use ctr::gen;
use ctr::goal::Goal;
use ctr::sym;
use ctr_workflow::{compile_triggers, Trigger, TriggerSemantics};
use std::time::Duration;

fn bench_triggers(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_trigger_compilation");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for t in [4usize, 16, 64] {
        let goal = gen::pipeline_workflow(t + 4);
        for semantics in [TriggerSemantics::Immediate, TriggerSemantics::Eventual] {
            let triggers: Vec<Trigger> = (0..t)
                .map(|i| Trigger {
                    on: sym(&format!("t{i}")),
                    condition: None,
                    action: Goal::atom(format!("audit{i}")),
                    semantics,
                })
                .collect();
            let label = match semantics {
                TriggerSemantics::Immediate => "immediate",
                TriggerSemantics::Eventual => "eventual",
            };
            group.bench_with_input(BenchmarkId::new(label, t), &triggers, |b, triggers| {
                b.iter(|| compile_triggers(&goal, triggers, &mut ChannelAlloc::new()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_triggers);
criterion_main!(benches);
