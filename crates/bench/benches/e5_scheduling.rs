//! E5 — §4: after compilation, constructing a schedule is linear in the
//! original graph per path, vs. the (at least) quadratic per-sequence
//! validation of passive schedulers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctr::analysis::compile;
use ctr::constraints::Constraint;
use ctr::gen;
use ctr::sym;
use ctr_baselines::PassiveValidator;
use ctr_engine::scheduler::{Program, Scheduler};
use std::time::Duration;

fn stage_orders(n: usize) -> Vec<Constraint> {
    (0..n)
        .map(|i| Constraint::order(sym(&format!("l{i}_0")), sym(&format!("l{}_0", i + 1))))
        .collect()
}

fn bench_scheduling(c: &mut Criterion) {
    let mut pro = c.benchmark_group("e5_proactive_schedule");
    pro.sample_size(20).measurement_time(Duration::from_secs(2));
    for layers in [16usize, 32, 64, 128] {
        let goal = gen::layered_workflow(layers, 2);
        let compiled = compile(&goal, &stage_orders(layers - 1)).unwrap();
        let program = Program::compile(&compiled.goal).unwrap();
        pro.bench_with_input(BenchmarkId::from_parameter(layers * 2), &program, |b, p| {
            b.iter(|| Scheduler::new(p).run_first().unwrap())
        });
    }
    pro.finish();

    let mut passive = c.benchmark_group("e5_passive_validate");
    passive
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    for layers in [16usize, 32, 64, 128] {
        let goal = gen::layered_workflow(layers, 2);
        let constraints = stage_orders(layers - 1);
        let compiled = compile(&goal, &constraints).unwrap();
        let program = Program::compile(&compiled.goal).unwrap();
        let trace: Vec<ctr::Symbol> = Scheduler::new(&program)
            .run_first()
            .unwrap()
            .iter()
            .filter_map(ctr::term::Atom::as_event)
            .collect();
        let validator = PassiveValidator::new(&constraints);
        passive.bench_with_input(
            BenchmarkId::from_parameter(trace.len()),
            &trace,
            |b, trace| b.iter(|| validator.validate(trace)),
        );
    }
    passive.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
