//! E7 — §7: modular compilation keeps the exponent at the per-sub-workflow
//! constraint count `M` rather than the global count `N`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctr::constraints::Constraint;
use ctr::goal::{conc, or, seq, Goal};
use ctr::sym;
use ctr_workflow::{compile_modular, WorkflowSpec};
use std::collections::BTreeMap;
use std::time::Duration;

fn build(k: usize) -> (WorkflowSpec, BTreeMap<ctr::Symbol, Vec<Constraint>>) {
    let mut spec = WorkflowSpec::new(
        "e7",
        seq((0..k).map(|i| Goal::atom(format!("sub{i}"))).collect()),
    );
    let mut local = BTreeMap::new();
    for i in 0..k {
        spec.subworkflows
            .define(
                format!("sub{i}").as_str(),
                conc(vec![
                    or(vec![
                        Goal::atom(format!("a{i}")),
                        Goal::atom(format!("x{i}")),
                    ]),
                    Goal::atom(format!("b{i}")),
                ]),
            )
            .unwrap();
        local.insert(
            sym(&format!("sub{i}")),
            vec![Constraint::klein_order(
                format!("a{i}").as_str(),
                format!("b{i}").as_str(),
            )],
        );
    }
    (spec, local)
}

fn bench_modular(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_modular_vs_flat");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for k in [3usize, 4, 5] {
        let (spec, local) = build(k);
        group.bench_with_input(BenchmarkId::new("modular", k), &spec, |b, spec| {
            b.iter(|| compile_modular(spec, &local).unwrap())
        });
        let mut flat = spec.clone();
        flat.constraints = (0..k)
            .map(|i| Constraint::klein_order(format!("a{i}").as_str(), format!("b{i}").as_str()))
            .collect();
        group.bench_with_input(BenchmarkId::new("flat", k), &flat, |b, flat| {
            b.iter(|| flat.compile().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modular);
criterion_main!(benches);
