//! E3 — corollary of Theorem 5.11: with serial (d = 1) constraints only,
//! compilation stays linear in `|G|` for any constraint count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctr::analysis::compile;
use ctr::gen;
use std::time::Duration;

fn bench_serial(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_serial_only");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    for n in [4usize, 8, 16, 32] {
        let goal = gen::pipeline_workflow(2 * n + 4);
        let constraints = gen::order_chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| compile(&goal, &constraints).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serial);
criterion_main!(benches);
