//! E4 — Proposition 4.1: consistency is NP-complete already for existence
//! constraints (3-SAT encoding), but polynomial for order constraints.
//!
//! The `*_tabled` variants run the same workloads through a warm
//! `ctr::memo::Memo` — repeated compiles of one instance are the
//! amortized regime the cross-query `Analyzer` session lives in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctr::analysis::compile;
use ctr::gen;
use ctr::memo::Memo;
use std::time::Duration;

fn bench_np(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_sat_family");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for vars in [4usize, 6, 8, 10] {
        let inst = gen::random_3sat(7, vars, (vars as f64 * 4.3) as usize);
        let (goal, constraints) = gen::sat_to_workflow(&inst);
        group.bench_with_input(BenchmarkId::from_parameter(vars), &vars, |b, _| {
            b.iter(|| compile(&goal, &constraints).unwrap().is_consistent())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e4_sat_family_tabled");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for vars in [4usize, 6, 8, 10] {
        let inst = gen::random_3sat(7, vars, (vars as f64 * 4.3) as usize);
        let (goal, constraints) = gen::sat_to_workflow(&inst);
        let mut memo = Memo::new();
        memo.compile_unchecked(&goal, &constraints); // warm the tables
        group.bench_with_input(BenchmarkId::from_parameter(vars), &vars, |b, _| {
            b.iter(|| memo.compile_unchecked(&goal, &constraints).is_consistent())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e4_order_family");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for n in [8usize, 16, 32, 64] {
        let goal = gen::pipeline_workflow(2 * n + 2);
        let constraints = gen::order_chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| compile(&goal, &constraints).unwrap().is_consistent())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e4_order_family_tabled");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for n in [8usize, 16, 32, 64] {
        let goal = gen::pipeline_workflow(2 * n + 2);
        let constraints = gen::order_chain(n);
        let mut memo = Memo::new();
        memo.compile_unchecked(&goal, &constraints);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| memo.compile_unchecked(&goal, &constraints).is_consistent())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_np);
criterion_main!(benches);
