//! E1 — Theorem 5.11: `Apply` is linear in `|G|` and exponential (base d)
//! only in the constraint count. Times the transformation across both
//! axes; the companion size tables come from the `experiments` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctr::analysis::compile;
use ctr::gen;
use std::time::Duration;

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_apply");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    // Axis 1: graph size, constraints fixed (expected: linear).
    let constraints = gen::klein_chain(3);
    for layers in [8usize, 16, 32, 64] {
        let goal = gen::layered_workflow(layers, 2);
        group.bench_with_input(
            BenchmarkId::new("vs_graph_size", goal.size()),
            &goal,
            |b, goal| b.iter(|| compile(goal, &constraints).unwrap()),
        );
    }

    // Axis 2: constraint count at d = 3 (expected: ~3× per constraint).
    let goal = gen::layered_workflow(8, 2);
    for n in [1usize, 2, 3, 4, 5] {
        let constraints = gen::klein_chain(n);
        group.bench_with_input(BenchmarkId::new("vs_klein_count", n), &n, |b, _| {
            b.iter(|| compile(&goal, &constraints).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apply);
criterion_main!(benches);
