//! Regenerates every experiment table of EXPERIMENTS.md (one section per
//! experiment in DESIGN.md's index) with deterministic workloads.
//!
//! Run with: `cargo run --release -p ctr-bench --bin experiments`
//!
//! `--smoke` skips the (slow) tables and regenerates only the
//! machine-readable `BENCH_*.json` records on tiny workloads — CI runs
//! this so the JSON generation paths cannot silently rot.

use ctr::analysis::compile;
use ctr::apply::apply;
use ctr::constraints::Constraint;
use ctr::excise::excise;
use ctr::gen;
use ctr::goal::Goal;
use ctr::sym;
use ctr_baselines::{explore, PassiveValidator, ProductScheduler};
use ctr_bench::{fmt_ns, log_growth_factor, power_law_exponent, time_mean, Table};
use ctr_engine::scheduler::{Program, Scheduler};
use ctr_runtime::{
    CoarseRuntime, InstanceId, InstanceStatus, Runtime, RuntimeError, SharedRuntime,
};
use ctr_workflow::{compile_modular, compile_triggers, Trigger, WorkflowSpec};
use std::collections::BTreeMap;
use std::time::Instant;

/// The host-facts row every `BENCH_*.json` table leads with: core
/// count, hostname hash, build flags. A number without the box it was
/// measured on is not a benchmark result.
fn host_row(smoke: bool) -> String {
    ctr_serve::host_json_row(if smoke { &["smoke"] } else { &[] })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let store_only = std::env::args().any(|a| a == "--store-only");
    let exec_only = std::env::args().any(|a| a == "--exec-only");
    let t0 = Instant::now();
    if store_only {
        // Regenerate only BENCH_store.json at full size — the store
        // bench depends on real fsync latency, so it is the one table
        // worth re-measuring in isolation on a quiet machine.
        bench_store_json(smoke);
        eprintln!("\n(total {:.1?})", t0.elapsed());
        return;
    }
    if exec_only {
        // Regenerate only BENCH_exec.json at full size — handy when a
        // runtime hot-path change needs a before/after on the batch and
        // fleet families without re-running the whole suite.
        bench_exec_json(smoke);
        eprintln!("\n(total {:.1?})", t0.elapsed());
        return;
    }
    if std::env::args().any(|a| a == "--timer-only") {
        // Regenerate only BENCH_timer.json at full size (a million
        // pending timers) without re-running the whole suite.
        bench_timer_json(smoke);
        eprintln!("\n(total {:.1?})", t0.elapsed());
        return;
    }
    if !smoke {
        e1_apply_size();
        e2_excise_linear();
        e3_serial_linear();
        e4_np_hardness();
        e5_scheduling();
        e6_vs_modelcheck();
        e7_subworkflows();
        e8_triggers();
        x2_automata();
        a1_ablation();
    }
    bench_compile_json(smoke);
    bench_exec_json(smoke);
    bench_verify_json(smoke);
    bench_store_json(smoke);
    bench_timer_json(smoke);
    eprintln!("\n(total {:.1?})", t0.elapsed());
}

/// `BENCH_timer.json` — the hierarchical timer wheel in isolation plus
/// one fleet advance through the shared runtime.
///
/// `timer_wheel/churn_{small,medium,large}` arm N timers with
/// pseudo-random dues across a 24h horizon, then drain them through
/// `advance_to` in 1024 clock steps; per-op nanoseconds staying flat as
/// N grows by 100x is the O(1) claim, measured rather than asserted.
/// `timer_wheel/arm_cancel_1m` holds one million pending timers at once
/// and cancels every token (`pending_peak` records the high-water
/// mark). `timer_wheel/fleet_advance` fires one `after` timer per
/// instance through `SharedRuntime::advance` — wheel pop, journal
/// append, and frontier dispatch on the same row.
fn bench_timer_json(smoke: bool) {
    use ctr_runtime::TimerWheel;

    struct Record {
        name: String,
        timers: u64,
        pending_peak: u64,
        arm_ns_per_op: f64,
        drain_ns_per_op: f64,
        cancel_ns_per_op: f64,
    }
    let mut records: Vec<Record> = Vec::new();

    const HORIZON_MS: u64 = 86_400_000;
    let mut rng: u64 = 0x7137_BEEF;
    let mut next_due = |now: u64| -> u64 {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        now + 1 + (rng >> 33) % HORIZON_MS
    };

    // Churn: arm N, then drain the full horizon in 1024 advances.
    let churn_sizes: &[(&str, usize)] = if smoke {
        &[("small", 1_000), ("medium", 10_000), ("large", 50_000)]
    } else {
        &[("small", 10_000), ("medium", 100_000), ("large", 1_000_000)]
    };
    for &(label, n) in churn_sizes {
        let mut wheel: TimerWheel<u32> = TimerWheel::new();
        let now = wheel.now();
        let t0 = Instant::now();
        for i in 0..n {
            wheel.arm(next_due(now), i as u32);
        }
        let arm_ns = t0.elapsed().as_nanos() as f64 / n as f64;
        let pending_peak = wheel.len() as u64;
        let t0 = Instant::now();
        let mut fired = 0usize;
        for step in 1..=1024u64 {
            fired += wheel.advance_to(now + step * (HORIZON_MS / 1024 + 1)).len();
        }
        assert_eq!(fired, n, "every armed timer fires exactly once");
        records.push(Record {
            name: format!("timer_wheel/churn_{label}"),
            timers: n as u64,
            pending_peak,
            arm_ns_per_op: arm_ns,
            drain_ns_per_op: t0.elapsed().as_nanos() as f64 / n as f64,
            cancel_ns_per_op: 0.0,
        });
    }

    // A million timers pending at once, then every token cancelled.
    let n = if smoke { 50_000 } else { 1_000_000 };
    let mut wheel: TimerWheel<u32> = TimerWheel::new();
    let now = wheel.now();
    let t0 = Instant::now();
    let tokens: Vec<_> = (0..n).map(|i| wheel.arm(next_due(now), i as u32)).collect();
    let arm_ns = t0.elapsed().as_nanos() as f64 / n as f64;
    let pending_peak = wheel.len() as u64;
    let t0 = Instant::now();
    for token in tokens {
        wheel.cancel(token).expect("armed and never fired");
    }
    assert_eq!(wheel.len(), 0, "every pending timer cancelled");
    records.push(Record {
        name: "timer_wheel/arm_cancel_1m".to_owned(),
        timers: n as u64,
        pending_peak,
        arm_ns_per_op: arm_ns,
        drain_ns_per_op: 0.0,
        cancel_ns_per_op: t0.elapsed().as_nanos() as f64 / n as f64,
    });

    // Fleet advance: one `after` gate per instance, fired through the
    // shared runtime (wheel pop + journal + frontier dispatch).
    let fleet = if smoke { 64 } else { 4_096 };
    let rt = SharedRuntime::new();
    rt.deploy_source("workflow timed { graph a * b; after(b, 30s); }")
        .expect("deploy timed");
    for _ in 0..fleet {
        rt.start("timed").expect("start");
    }
    let pending_peak = rt.pending_timer_count() as u64;
    let t0 = Instant::now();
    let fired = rt.advance(30_000).expect("advance fires every gate");
    let drain_ns = t0.elapsed().as_nanos() as f64 / fleet as f64;
    assert_eq!(fired.len(), fleet, "one firing per instance");
    records.push(Record {
        name: "timer_wheel/fleet_advance".to_owned(),
        timers: fleet as u64,
        pending_peak,
        arm_ns_per_op: 0.0,
        drain_ns_per_op: drain_ns,
        cancel_ns_per_op: 0.0,
    });

    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "  {{\"name\": \"{}\", \"timers\": {}, \"pending_peak\": {}, \
                 \"arm_ns_per_op\": {:.1}, \"drain_ns_per_op\": {:.1}, \
                 \"cancel_ns_per_op\": {:.1}}}",
                r.name,
                r.timers,
                r.pending_peak,
                r.arm_ns_per_op,
                r.drain_ns_per_op,
                r.cancel_ns_per_op
            )
        })
        .collect();
    let json = format!("[\n{},\n{}\n]\n", host_row(smoke), rows.join(",\n"));
    std::fs::write("BENCH_timer.json", &json).expect("write BENCH_timer.json");
    eprintln!("wrote BENCH_timer.json ({} workloads)", records.len());
}

/// Order-constraint chain over stage leaders of a layered workflow (d=1).
fn stage_orders(n: usize) -> Vec<Constraint> {
    (0..n)
        .map(|i| Constraint::order(sym(&format!("l{i}_0")), sym(&format!("l{}_0", i + 1))))
        .collect()
}

/// `causes_later` chain (d = 2 in normal form).
fn causes_chain(n: usize) -> Vec<Constraint> {
    (0..n)
        .map(|i| Constraint::causes_later(sym(&format!("l{i}_0")), sym(&format!("l{}_0", i + 1))))
        .collect()
}

// ---------------------------------------------------------------------------

fn e1_apply_size() {
    println!("## E1 — Theorem 5.11: |Apply(C, G)| = O(d^N · |G|)\n");

    // Growth in N for each d.
    let goal = gen::layered_workflow(8, 2);
    println!("Workload: layered workflow, |G| = {} nodes.\n", goal.size());
    let mut table = Table::new(&["N", "d=1 size", "d=2 size", "d=3 size"]);
    let mut pts_by_d: [Vec<(f64, f64)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for n in 1..=6usize {
        let sizes: Vec<usize> = [stage_orders(n), causes_chain(n), gen::klein_chain(n)]
            .iter()
            .map(|cs| compile(&goal, cs).unwrap().applied_size)
            .collect();
        for (d, &s) in sizes.iter().enumerate() {
            pts_by_d[d].push((n as f64, s as f64));
        }
        table.row(vec![
            n.to_string(),
            sizes[0].to_string(),
            sizes[1].to_string(),
            sizes[2].to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nFitted growth factor per added constraint: d=1 → {:.2}, d=2 → {:.2}, d=3 → {:.2}",
        log_growth_factor(&pts_by_d[0]),
        log_growth_factor(&pts_by_d[1]),
        log_growth_factor(&pts_by_d[2]),
    );

    // Linearity in |G| at fixed constraints.
    let constraints = gen::klein_chain(3);
    let mut table = Table::new(&["|G|", "|Apply| (N=3, d=3)", "ratio"]);
    let mut pts = Vec::new();
    for layers in [4usize, 8, 16, 32, 64] {
        let goal = gen::layered_workflow(layers, 2);
        let size = compile(&goal, &constraints).unwrap().applied_size;
        pts.push((goal.size() as f64, size as f64));
        table.row(vec![
            goal.size().to_string(),
            size.to_string(),
            format!("{:.1}", size as f64 / goal.size() as f64),
        ]);
    }
    print!("\n{}", table.render());
    println!(
        "\nPower-law exponent of |Apply| vs |G|: {:.2} (paper: 1.0 — linear in the graph)\n",
        power_law_exponent(&pts)
    );
}

fn e2_excise_linear() {
    println!("## E2 — Theorem 5.11: Excise runs in time linear in |Apply(C, G)|\n");
    let mut table = Table::new(&["|Apply|", "Excise time"]);
    let mut pts = Vec::new();
    for (layers, n) in [
        (4usize, 2usize),
        (8, 2),
        (8, 3),
        (16, 3),
        (16, 4),
        (32, 4),
        (32, 5),
    ] {
        let goal = gen::layered_workflow(layers, 2);
        let applied = apply(&gen::klein_chain(n), &goal);
        let size = applied.size();
        let t = time_mean(5, || excise(&applied));
        pts.push((size as f64, t.as_nanos() as f64));
        table.row(vec![size.to_string(), fmt_ns(t)]);
    }
    print!("{}", table.render());
    println!(
        "\nPower-law exponent of Excise time vs |Apply|: {:.2} (paper: 1.0 — proportional)\n",
        power_law_exponent(&pts)
    );
}

fn e3_serial_linear() {
    println!("## E3 — Corollary of 5.11: serial constraints only (d = 1) ⇒ |Apply| ∝ |G|\n");
    let mut table = Table::new(&[
        "N (order constraints)",
        "|G|",
        "|Apply|",
        "overhead/constraint",
    ]);
    for n in [1usize, 2, 4, 8, 16, 32] {
        let goal = gen::pipeline_workflow(2 * n + 4);
        let constraints = gen::order_chain(n);
        let compiled = compile(&goal, &constraints).unwrap();
        let overhead = compiled.applied_size.saturating_sub(goal.size());
        table.row(vec![
            n.to_string(),
            goal.size().to_string(),
            compiled.applied_size.to_string(),
            format!("{:.1}", overhead as f64 / n as f64),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nOverhead is a constant ~2 nodes (send+receive) per order constraint: no blow-up.\n"
    );
}

fn e4_np_hardness() {
    println!(
        "## E4 — Proposition 4.1: NP-hard with existence constraints, polynomial for orders\n"
    );

    println!("3-SAT encoded as workflow consistency (clause ratio 4.3, mean of 3 seeds):\n");
    let mut table = Table::new(&["vars", "clauses", "consistency time"]);
    let mut pts = Vec::new();
    for vars in [4usize, 6, 8, 10, 12] {
        let clauses = (vars as f64 * 4.3) as usize;
        let mut total = std::time::Duration::ZERO;
        for seed in 0..3u64 {
            let inst = gen::random_3sat(seed, vars, clauses);
            let (goal, constraints) = gen::sat_to_workflow(&inst);
            total += time_mean(1, || compile(&goal, &constraints).unwrap().is_consistent());
        }
        let mean = total / 3;
        pts.push((vars as f64, mean.as_nanos() as f64));
        table.row(vec![vars.to_string(), clauses.to_string(), fmt_ns(mean)]);
    }
    print!("{}", table.render());
    println!(
        "\nGrowth factor per added variable: {:.2}× (exponential family)\n",
        log_growth_factor(&pts)
    );

    println!("Order constraints only (the polynomial fragment):\n");
    let mut table = Table::new(&["N (order constraints)", "|G|", "consistency time"]);
    let mut pts = Vec::new();
    for n in [4usize, 8, 16, 32, 64] {
        let goal = gen::pipeline_workflow(2 * n + 2);
        let constraints = gen::order_chain(n);
        let t = time_mean(5, || compile(&goal, &constraints).unwrap().is_consistent());
        pts.push((n as f64, t.as_nanos() as f64));
        table.row(vec![n.to_string(), goal.size().to_string(), fmt_ns(t)]);
    }
    print!("{}", table.render());
    println!(
        "\nPower-law exponent vs N: {:.2} (low-degree polynomial, no blow-up)\n",
        power_law_exponent(&pts)
    );
}

fn e5_scheduling() {
    println!(
        "## E5 — §4: compiled scheduling is linear per path; passive validation is quadratic\n"
    );

    let mut table = Table::new(&[
        "events/path",
        "pro-active schedule",
        "passive validate (Singh)",
        "passive validate (Attie product)",
    ]);
    let mut active_pts = Vec::new();
    let mut singh_pts = Vec::new();
    let mut attie_pts = Vec::new();
    for layers in [8usize, 16, 32, 64, 128] {
        // Constraint count grows with the workflow, as it does in practice.
        let goal = gen::layered_workflow(layers, 2);
        let constraints = stage_orders(layers - 1);
        let compiled = compile(&goal, &constraints).unwrap();
        let program = Program::compile(&compiled.goal).unwrap();

        let t_active = time_mean(5, || Scheduler::new(&program).run_first().unwrap());
        let trace: Vec<ctr::Symbol> = Scheduler::new(&program)
            .run_first()
            .unwrap()
            .iter()
            .filter_map(ctr::term::Atom::as_event)
            .collect();

        let validator = PassiveValidator::new(&constraints);
        let t_singh = time_mean(20, || validator.validate(&trace));
        let product = ProductScheduler::new(&constraints);
        let t_attie = time_mean(20, || product.validate(&trace));

        let n = trace.len() as f64;
        active_pts.push((n, t_active.as_nanos() as f64));
        singh_pts.push((n, t_singh.as_nanos() as f64));
        attie_pts.push((n, t_attie.as_nanos() as f64));
        table.row(vec![
            trace.len().to_string(),
            fmt_ns(t_active),
            fmt_ns(t_singh),
            fmt_ns(t_attie),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nScaling exponents vs path length: pro-active {:.2} (paper: linear), \
         Singh {:.2} (paper: ≥ quadratic), Attie {:.2}\n",
        power_law_exponent(&active_pts),
        power_law_exponent(&singh_pts),
        power_law_exponent(&attie_pts),
    );
}

fn e6_vs_modelcheck() {
    println!("## E6 — §6: Apply is linear in |G|; model checking explodes with concurrency\n");
    let property = Constraint::klein_order("t0", "t1");
    let mut table = Table::new(&[
        "width w",
        "|G|",
        "Apply time",
        "|Apply|",
        "MC states",
        "MC time",
    ]);
    let mut apply_pts = Vec::new();
    let mut mc_pts = Vec::new();
    for w in [4usize, 6, 8, 10, 12, 14] {
        let goal = gen::parallel_workflow(w);
        let t_apply = time_mean(10, || {
            compile(&goal, std::slice::from_ref(&property)).unwrap()
        });
        let size = compile(&goal, std::slice::from_ref(&property))
            .unwrap()
            .applied_size;
        let t0 = Instant::now();
        let states = explore(&goal, 10_000_000).unwrap().states;
        let t_mc = t0.elapsed();
        apply_pts.push((w as f64, t_apply.as_nanos() as f64));
        mc_pts.push((w as f64, states as f64));
        table.row(vec![
            w.to_string(),
            goal.size().to_string(),
            fmt_ns(t_apply),
            size.to_string(),
            states.to_string(),
            fmt_ns(t_mc),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nMC state growth per unit width: {:.2}× (state explosion); Apply growth: {:.2}×\n",
        log_growth_factor(&mc_pts),
        log_growth_factor(&apply_pts),
    );
}

fn e7_subworkflows() {
    println!("## E7 — §7: modular constraints keep the exponent at M (local), not N (global)\n");
    let mut table = Table::new(&[
        "K sub-workflows",
        "N = K (d=3)",
        "flat |Apply|",
        "modular |Apply|",
        "ratio",
    ]);
    for k in [2usize, 3, 4, 5, 6] {
        let mut spec = WorkflowSpec::new(
            "e7",
            ctr::goal::seq((0..k).map(|i| Goal::atom(format!("sub{i}"))).collect()),
        );
        let mut local: BTreeMap<ctr::Symbol, Vec<Constraint>> = BTreeMap::new();
        for i in 0..k {
            spec.subworkflows
                .define(
                    format!("sub{i}").as_str(),
                    ctr::goal::conc(vec![
                        ctr::goal::or(vec![
                            Goal::atom(format!("a{i}")),
                            Goal::atom(format!("x{i}")),
                        ]),
                        Goal::atom(format!("b{i}")),
                    ]),
                )
                .unwrap();
            local.insert(
                sym(&format!("sub{i}")),
                vec![Constraint::klein_order(
                    format!("a{i}").as_str(),
                    format!("b{i}").as_str(),
                )],
            );
        }
        let modular = compile_modular(&spec, &local).unwrap();
        let mut flat = spec.clone();
        flat.constraints = (0..k)
            .map(|i| Constraint::klein_order(format!("a{i}").as_str(), format!("b{i}").as_str()))
            .collect();
        let flat_compiled = flat.compile().unwrap();
        table.row(vec![
            k.to_string(),
            k.to_string(),
            flat_compiled.applied_size.to_string(),
            modular.applied_size.to_string(),
            format!(
                "{:.1}×",
                flat_compiled.applied_size as f64 / modular.applied_size as f64
            ),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nFlat grows ~3^K; modular grows linearly in K (M = 1 constraint per sub-workflow).\n"
    );
}

fn e8_triggers() {
    println!("## E8 — §1/[7]: triggers compile into the control flow graph at linear cost\n");
    let mut table = Table::new(&["triggers", "|G| before", "|G| after", "compile time"]);
    let mut pts = Vec::new();
    for t in [1usize, 2, 4, 8, 16, 32, 64] {
        let goal = gen::pipeline_workflow(t + 4);
        let triggers: Vec<Trigger> = (0..t)
            .map(|i| Trigger::immediate(sym(&format!("t{i}")), Goal::atom(format!("audit{i}"))))
            .collect();
        let mut channels = ctr::apply::ChannelAlloc::new();
        let time = time_mean(10, || compile_triggers(&goal, &triggers, &mut channels));
        let after = compile_triggers(&goal, &triggers, &mut ctr::apply::ChannelAlloc::new());
        pts.push((t as f64, time.as_nanos() as f64));
        table.row(vec![
            t.to_string(),
            goal.size().to_string(),
            after.size().to_string(),
            fmt_ns(time),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nPower-law exponent of compile time vs trigger count: {:.2} (≈ linear–quadratic \
         in the trigger list, each pass linear in |G|)\n",
        power_law_exponent(&pts)
    );
}

fn a1_ablation() {
    println!("## A1 — Ablation: eager ¬path pruning and ∨-idempotence (DESIGN.md §3)\n");

    println!("Eager vs naive `Apply(∇α, ·)` (same output, different intermediate work):\n");
    let mut table = Table::new(&["|G|", "eager", "naive (post-hoc simplify)"]);
    let mut eager_pts = Vec::new();
    let mut naive_pts = Vec::new();
    for layers in [16usize, 32, 64, 128] {
        let goal = gen::layered_workflow(layers, 2);
        let target = sym(&format!("l{}_0", layers - 1));
        let t_eager = time_mean(20, || ctr::apply::apply_must(target, &goal));
        let t_naive = time_mean(5, || ctr_bench::ablation::apply_must_naive(target, &goal));
        eager_pts.push((goal.size() as f64, t_eager.as_nanos() as f64));
        naive_pts.push((goal.size() as f64, t_naive.as_nanos() as f64));
        table.row(vec![
            goal.size().to_string(),
            fmt_ns(t_eager),
            fmt_ns(t_naive),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nScaling exponents: eager {:.2} (linear, as Theorem 5.11 needs), naive {:.2} \
         (the Θ(n²) intermediate term)\n",
        power_law_exponent(&eager_pts),
        power_law_exponent(&naive_pts),
    );

    println!("∨-idempotence on the 3-SAT family (existence constraints):\n");
    let mut table = Table::new(&["vars", "|Apply| dedup", "|Apply| no-dedup", "ratio"]);
    for vars in [3usize, 4, 5, 6] {
        let inst = gen::random_3sat(7, vars, (vars as f64 * 4.3) as usize);
        let (goal, constraints) = gen::sat_to_workflow(&inst);
        let with = apply(&constraints, &goal).size();
        let without = ctr_bench::ablation::apply_no_dedup(&constraints, &goal).size();
        table.row(vec![
            vars.to_string(),
            with.to_string(),
            without.to_string(),
            format!("{:.0}×", without as f64 / with as f64),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nWithout idempotence the term repeats identical pruned variants; with it, the \
         term is bounded by the distinct partial assignments. Both respect the d^N \
         worst case — idempotence only removes literal duplicates.\n"
    );
}

/// Machine-readable record of the hot compile path, written next to the
/// experiment tables so perf changes can be compared across commits.
///
/// One record per workload: the E1 linearity family (layered workflow,
/// klein_chain(3)) and the E2 excise family, with apply and excise wall
/// times measured separately.
fn bench_compile_json(smoke: bool) {
    struct Record {
        name: String,
        goal_size: usize,
        constraint_count: usize,
        apply_ns: u128,
        excise_ns: u128,
        output_size: usize,
    }

    let mut records = Vec::new();
    let mut measure = |name: String, goal: &Goal, constraints: &[Constraint]| {
        let reps = if goal.size() > 2_000 { 3 } else { 10 };
        let t_apply = time_mean(reps, || apply(constraints, goal));
        let applied = apply(constraints, goal);
        let t_excise = time_mean(reps, || excise(&applied));
        records.push(Record {
            name,
            goal_size: goal.size(),
            constraint_count: constraints.len(),
            apply_ns: t_apply.as_nanos(),
            excise_ns: t_excise.as_nanos(),
            output_size: excise(&applied).size(),
        });
    };

    let e1_layers: &[usize] = if smoke { &[4] } else { &[4, 8, 16, 32, 64] };
    for &layers in e1_layers {
        let goal = gen::layered_workflow(layers, 2);
        measure(
            format!("e1_apply_size/layers{layers}_klein3"),
            &goal,
            &gen::klein_chain(3),
        );
    }
    let e2_shapes: &[(usize, usize)] = if smoke {
        &[(8, 3)]
    } else {
        &[(8, 3), (16, 4), (32, 4), (32, 5)]
    };
    for &(layers, n) in e2_shapes {
        let goal = gen::layered_workflow(layers, 2);
        measure(
            format!("e2_excise_linear/layers{layers}_klein{n}"),
            &goal,
            &gen::klein_chain(n),
        );
    }

    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "  {{\"name\": \"{}\", \"goal_size\": {}, \"constraint_count\": {}, \
                 \"apply_ns\": {}, \"excise_ns\": {}, \"output_size\": {}}}",
                r.name, r.goal_size, r.constraint_count, r.apply_ns, r.excise_ns, r.output_size
            )
        })
        .collect();
    let json = format!("[\n{},\n{}\n]\n", host_row(smoke), rows.join(",\n"));
    std::fs::write("BENCH_compile.json", &json).expect("write BENCH_compile.json");
    eprintln!("\nwrote BENCH_compile.json ({} workloads)", records.len());
}

/// Machine-readable record of the execution hot path (`Runtime::fire` /
/// `Runtime::eligible`), written alongside `BENCH_compile.json` so the
/// run-time layer's perf can be compared across commits.
///
/// One record per workload: a long single instance (per-fire cost must be
/// flat in the journal length), an `eligible()` probe at the end of a long
/// journal, a fleet of instances sharing one deployment, the
/// `fleet_mt/<workload>x<threads>` family — the same fleet driven by
/// concurrent client threads on the sharded runtime, with
/// `fleet_mt_coarse/*` pinning the coarse-lock baseline it replaced —
/// plus the engine-level `sched_hot/{eligible,fire_event,deadlock_probe}`
/// hot paths of the incremental frontier and the `batch/<workload>xB`
/// family driving `fire_batch`/`fire_many` in chunks of B.
fn bench_exec_json(smoke: bool) {
    struct Record {
        name: String,
        instances: usize,
        total_fires: usize,
        wall_ns: u128,
        fires_per_sec: u64,
        replayed_steps: u64,
    }
    let mut records = Vec::new();

    // Drives `fires` pipeline events through one instance.
    let mut single = |name: &str, fires: usize| {
        let mut rt = Runtime::new();
        rt.deploy_compiled("pipe", gen::pipeline_workflow(fires))
            .expect("pipeline compiles");
        let id = rt.start("pipe").expect("deployed");
        let events: Vec<String> = (0..fires).map(|i| format!("t{i}")).collect();
        let t0 = Instant::now();
        for e in &events {
            rt.fire(id, e).expect("pipeline order");
        }
        let wall = t0.elapsed();
        records.push(Record {
            name: name.to_owned(),
            instances: 1,
            total_fires: fires,
            wall_ns: wall.as_nanos(),
            fires_per_sec: (fires as f64 / wall.as_secs_f64()) as u64,
            replayed_steps: rt.replayed_steps(),
        });
    };
    if smoke {
        single("single/pipeline_200", 200);
    } else {
        single("single/pipeline_1000", 1_000);
        single("single/pipeline_10000", 10_000);
    }

    // `eligible()` probes at the end of a long journal: the cursor-cache
    // case the passive replay design paid O(journal) for.
    {
        let fires = if smoke { 200 } else { 10_000 };
        let probes = if smoke { 50 } else { 1_000 };
        let mut rt = Runtime::new();
        rt.deploy_compiled("pipe", gen::pipeline_workflow(fires))
            .expect("pipeline compiles");
        let id = rt.start("pipe").expect("deployed");
        for i in 0..fires - 1 {
            rt.fire(id, &format!("t{i}")).expect("pipeline order");
        }
        let before = rt.replayed_steps();
        let t0 = Instant::now();
        for _ in 0..probes {
            assert_eq!(rt.eligible(id).expect("live instance").len(), 1);
        }
        let wall = t0.elapsed();
        records.push(Record {
            name: format!("eligible_tail/pipeline_{fires}x{probes}"),
            instances: 1,
            total_fires: probes,
            wall_ns: wall.as_nanos(),
            fires_per_sec: (probes as f64 / wall.as_secs_f64()) as u64,
            replayed_steps: rt.replayed_steps() - before,
        });
    }

    // A fleet of instances sharing one deployment (one Arc'd program).
    {
        let fleet = if smoke { 10 } else { 200 };
        let goal = gen::layered_workflow(16, 2);
        let compiled = compile(&goal, &stage_orders(15)).expect("consistent");
        let program = Program::compile(&compiled.goal).expect("knot-free");
        let trace: Vec<String> = Scheduler::new(&program)
            .run_first()
            .expect("knot-free")
            .iter()
            .filter_map(ctr::term::Atom::as_event)
            .map(|s| s.as_str().to_owned())
            .collect();
        let mut rt = Runtime::new();
        rt.deploy_compiled("layered", compiled.goal.clone())
            .expect("compiles");
        let ids: Vec<_> = (0..fleet)
            .map(|_| rt.start("layered").expect("deployed"))
            .collect();
        let t0 = Instant::now();
        for &id in &ids {
            for e in &trace {
                rt.fire(id, e).expect("trace replays");
            }
            rt.try_complete(id).expect("live instance");
        }
        let wall = t0.elapsed();
        let fires = fleet * trace.len();
        records.push(Record {
            name: format!("fleet/layered16x2_orders_{fleet}inst"),
            instances: fleet,
            total_fires: fires,
            wall_ns: wall.as_nanos(),
            fires_per_sec: (fires as f64 / wall.as_secs_f64()) as u64,
            replayed_steps: rt.replayed_steps(),
        });
    }

    // Multi-threaded fleets: T client threads fire disjoint instance
    // sets against one shared handle. `fleet_mt/*` uses the sharded
    // runtime (per-instance locks — threads should not contend);
    // `fleet_mt_coarse/*` is the same workload on the retired
    // single-mutex design, recorded as the scaling baseline.
    {
        let fleet = if smoke { 8 } else { 64 };
        let goal = gen::layered_workflow(16, 2);
        let compiled = compile(&goal, &stage_orders(15)).expect("consistent");
        let program = Program::compile(&compiled.goal).expect("knot-free");
        let trace: Vec<String> = Scheduler::new(&program)
            .run_first()
            .expect("knot-free")
            .iter()
            .filter_map(ctr::term::Atom::as_event)
            .map(|s| s.as_str().to_owned())
            .collect();
        let workload = format!("layered16x2_orders_{fleet}inst");

        let threads_list: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 8] };
        for &threads in threads_list {
            for coarse in [false, true] {
                let handle: Box<dyn FleetHandle> = if coarse {
                    let rt = CoarseRuntime::new();
                    rt.deploy_compiled("layered", compiled.goal.clone())
                        .expect("compiles");
                    Box::new(rt)
                } else {
                    let rt = SharedRuntime::new();
                    rt.deploy_compiled("layered", compiled.goal.clone())
                        .expect("compiles");
                    Box::new(rt)
                };
                let family = if coarse {
                    "fleet_mt_coarse"
                } else {
                    "fleet_mt"
                };
                let (wall, fires) = run_fleet_mt(&*handle, fleet, threads, &trace);
                records.push(Record {
                    name: format!("{family}/{workload}x{threads}"),
                    instances: fleet,
                    total_fires: fires,
                    wall_ns: wall.as_nanos(),
                    fires_per_sec: (fires as f64 / wall.as_secs_f64()) as u64,
                    replayed_steps: 0,
                });
            }
        }
    }

    // Engine-level scheduler hot paths, measured without any runtime
    // wrapper: cached-frontier `eligible()` probes, indexed `fire_event`
    // dispatch, and O(1) `is_deadlocked()` — the operations the
    // incremental frontier makes walk-free.
    {
        let fires = if smoke { 200 } else { 10_000 };
        let probes = if smoke { 10_000 } else { 1_000_000 };

        // Pure fire_event dispatch down a long pipeline: one hash lookup
        // and a path-local delta per fire, no frontier walk.
        let program = Program::compile(&gen::pipeline_workflow(fires)).expect("compiles");
        let events: Vec<ctr::Symbol> = (0..fires).map(|i| sym(&format!("t{i}"))).collect();
        let mut s = Scheduler::new(&program);
        let t0 = Instant::now();
        for &e in &events {
            assert!(s.fire_event(e), "pipeline order");
        }
        let wall = t0.elapsed();
        records.push(Record {
            name: format!("sched_hot/fire_event/pipeline_{fires}"),
            instances: 1,
            total_fires: fires,
            wall_ns: wall.as_nanos(),
            fires_per_sec: (fires as f64 / wall.as_secs_f64()) as u64,
            replayed_steps: 0,
        });

        // eligible()/is_deadlocked() probes on a mid-flight layered
        // schedule (non-trivial frontier, several live branches).
        let goal = gen::layered_workflow(16, 2);
        let compiled = compile(&goal, &stage_orders(15)).expect("consistent");
        let program = Program::compile(&compiled.goal).expect("knot-free");
        let steps = Scheduler::new(&program)
            .run_first()
            .expect("knot-free")
            .len();
        let mut s = Scheduler::new(&program);
        for _ in 0..steps / 2 {
            let pick = s.eligible()[0];
            s.fire(pick.node);
        }
        // black_box the scheduler each round: both probes are O(1) field
        // reads, and without it LLVM hoists them out of the loop entirely
        // (the run then reports a meaningless ~10^13 probes/sec).
        let t0 = Instant::now();
        let mut seen = 0usize;
        for _ in 0..probes {
            seen += std::hint::black_box(&s).eligible().len();
        }
        let wall = t0.elapsed();
        assert!(seen >= probes, "mid-flight frontier is non-empty");
        records.push(Record {
            name: format!("sched_hot/eligible/layered16x2_midx{probes}"),
            instances: 1,
            total_fires: probes,
            wall_ns: wall.as_nanos(),
            fires_per_sec: (probes as f64 / wall.as_secs_f64()) as u64,
            replayed_steps: 0,
        });
        let t0 = Instant::now();
        let mut dead = 0usize;
        for _ in 0..probes {
            dead += std::hint::black_box(&s).is_deadlocked() as usize;
        }
        let wall = t0.elapsed();
        assert_eq!(dead, 0, "mid-flight schedule is live");
        records.push(Record {
            name: format!("sched_hot/deadlock_probe/layered16x2_midx{probes}"),
            instances: 1,
            total_fires: probes,
            wall_ns: wall.as_nanos(),
            fires_per_sec: (probes as f64 / wall.as_secs_f64()) as u64,
            replayed_steps: 0,
        });
    }

    // Batched firing through the runtimes: whole chunks commit under one
    // instance resolution (and, for `fire_many`, one shard-lock pass).
    {
        use ctr_runtime::FireOutcome;

        // Single-instance chunks through Runtime::fire_batch.
        let fires = if smoke { 200 } else { 10_000 };
        let chunk = if smoke { 16 } else { 64 };
        let mut rt = Runtime::new();
        rt.deploy_compiled("pipe", gen::pipeline_workflow(fires))
            .expect("pipeline compiles");
        let id = rt.start("pipe").expect("deployed");
        let events: Vec<String> = (0..fires).map(|i| format!("t{i}")).collect();
        let t0 = Instant::now();
        for c in events.chunks(chunk) {
            for outcome in rt.fire_batch(id, c).expect("live instance") {
                assert!(matches!(outcome, FireOutcome::Fired(_)), "pipeline order");
            }
        }
        let wall = t0.elapsed();
        records.push(Record {
            name: format!("batch/pipeline_{fires}x{chunk}"),
            instances: 1,
            total_fires: fires,
            wall_ns: wall.as_nanos(),
            fires_per_sec: (fires as f64 / wall.as_secs_f64()) as u64,
            replayed_steps: rt.replayed_steps(),
        });

        // Cross-instance mixed chunks through SharedRuntime::fire_many:
        // the fleet advances in lockstep, each chunk grouped by shard.
        let fleet = if smoke { 8 } else { 64 };
        let goal = gen::layered_workflow(16, 2);
        let compiled = compile(&goal, &stage_orders(15)).expect("consistent");
        let program = Program::compile(&compiled.goal).expect("knot-free");
        let trace: Vec<String> = Scheduler::new(&program)
            .run_first()
            .expect("knot-free")
            .iter()
            .filter_map(ctr::term::Atom::as_event)
            .map(|s| s.as_str().to_owned())
            .collect();
        let rt = SharedRuntime::new();
        rt.deploy_compiled("layered", compiled.goal.clone())
            .expect("compiles");
        let ids: Vec<InstanceId> = (0..fleet)
            .map(|_| rt.start("layered").expect("deployed"))
            .collect();
        let pairs: Vec<(InstanceId, &str)> = trace
            .iter()
            .flat_map(|e| ids.iter().map(move |&id| (id, e.as_str())))
            .collect();
        let t0 = Instant::now();
        for c in pairs.chunks(chunk) {
            for outcome in rt.fire_many(c) {
                assert!(matches!(outcome, FireOutcome::Fired(_)), "trace replays");
            }
        }
        for &id in &ids {
            rt.try_complete(id).expect("live instance");
        }
        let wall = t0.elapsed();
        records.push(Record {
            name: format!("batch/fleet_layered16x2_orders_{fleet}instx{chunk}"),
            instances: fleet,
            total_fires: pairs.len(),
            wall_ns: wall.as_nanos(),
            fires_per_sec: (pairs.len() as f64 / wall.as_secs_f64()) as u64,
            replayed_steps: 0,
        });
    }

    // Enactment overhead: the fault-tolerant dispatcher driving a
    // pipeline of instant activities, clean vs under an injected fault
    // plan (every 8th activity fails twice and is retried under a
    // 3-attempt budget). `total_fires` counts attempts — the work the
    // dispatcher actually performed — and `replayed_steps` counts the
    // retry attempts, so the two records separate scheduling overhead
    // from recovery overhead.
    {
        use ctr_runtime::{Enactor, FaultPlan, RetryPolicy};
        let activities = if smoke { 32 } else { 256 };
        let mut rt = Runtime::new();
        rt.deploy_compiled("pipe", gen::pipeline_workflow(activities))
            .expect("pipeline compiles");

        let mut run = |name: String, enactor: &Enactor| {
            let t0 = Instant::now();
            let report = rt.enact("pipe", enactor).expect("deployed");
            let wall = t0.elapsed();
            assert!(report.is_success(), "bench plan is recoverable");
            assert_eq!(report.completed.len(), activities);
            let attempts = report.attempts.len();
            records.push(Record {
                name,
                instances: 1,
                total_fires: attempts,
                wall_ns: wall.as_nanos(),
                fires_per_sec: (attempts as f64 / wall.as_secs_f64()) as u64,
                replayed_steps: u64::from(report.total_retries()),
            });
        };

        run(
            format!("enact/pipeline_{activities}_clean"),
            &Enactor::new(),
        );
        let mut plan = FaultPlan::new(0xFA117);
        for i in (0..activities).step_by(8) {
            plan = plan.fail(format!("t{i}").as_str(), 2);
        }
        run(
            format!("enact/pipeline_{activities}_faults"),
            &Enactor::new()
                .with_default_retry(RetryPolicy::attempts(3))
                .with_faults(plan),
        );
    }

    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "  {{\"name\": \"{}\", \"instances\": {}, \"total_fires\": {}, \
                 \"wall_ns\": {}, \"fires_per_sec\": {}, \"replayed_steps\": {}}}",
                r.name, r.instances, r.total_fires, r.wall_ns, r.fires_per_sec, r.replayed_steps
            )
        })
        .collect();
    let json = format!("[\n{},\n{}\n]\n", host_row(smoke), rows.join(",\n"));
    std::fs::write("BENCH_exec.json", &json).expect("write BENCH_exec.json");
    eprintln!("wrote BENCH_exec.json ({} workloads)", records.len());
}

/// Machine-readable record of the tabled verification path
/// (`ctr::memo::Analyzer`), written alongside the other `BENCH_*.json`
/// files.
///
/// Two families, each comparing the same queries untabled vs through a
/// warm session — results are asserted identical before timing:
///
/// * `verify_incr/<workload>` — incremental re-verification after a
///   single-constraint edit (remove the last constraint, check
///   consistency, add it back, check again) against from-scratch
///   recompiles of both edit states. The e4 NP-hardness workloads are the
///   ones where the avoided recompile matters most.
/// * `verify_repeat/<workload>` — repeated-query workloads: a batch of
///   properties answered through one session (the compiled `G ∧ C`
///   prefix replays as table hits per property), and
///   `minimize_constraints`, whose probe sets share almost all of their
///   structure across iterations.
fn bench_verify_json(smoke: bool) {
    use ctr::memo::Analyzer;

    struct Record {
        name: String,
        goal_size: usize,
        constraint_count: usize,
        queries: usize,
        scratch_ns: u128,
        tabled_ns: u128,
        speedup: f64,
        hits: u64,
        misses: u64,
    }
    let mut records = Vec::new();
    let reps = if smoke { 3 } else { 10 };
    let push = |records: &mut Vec<Record>,
                name: String,
                goal: &Goal,
                constraints: &[Constraint],
                queries: usize,
                scratch: std::time::Duration,
                tabled: std::time::Duration,
                stats: ctr::memo::MemoStats| {
        records.push(Record {
            name,
            goal_size: goal.size(),
            constraint_count: constraints.len(),
            queries,
            scratch_ns: scratch.as_nanos(),
            tabled_ns: tabled.as_nanos(),
            speedup: scratch.as_nanos() as f64 / tabled.as_nanos().max(1) as f64,
            hits: stats.hits,
            misses: stats.misses,
        });
    };

    // --- verify_incr: one-constraint edit, warm session vs recompile.
    let mut incr = |name: String, goal: &Goal, constraints: &[Constraint]| {
        assert!(!constraints.is_empty(), "need a constraint to edit");
        let head = &constraints[..constraints.len() - 1];

        // The tabled path must be bit-identical on both edit states.
        let mut check = Analyzer::new(goal, constraints).expect("unique-event");
        assert_eq!(
            check.compiled().goal,
            compile(goal, constraints).unwrap().goal
        );
        check.remove_constraint(constraints.len() - 1);
        assert_eq!(check.compiled().goal, compile(goal, head).unwrap().goal);

        let t_scratch = time_mean(reps, || {
            let without = compile(goal, head).unwrap().is_consistent();
            let with = compile(goal, constraints).unwrap().is_consistent();
            (without, with)
        });

        let mut an = Analyzer::new(goal, constraints).expect("unique-event");
        // Warm the tables on both edit states once, then measure the
        // steady-state edit loop.
        an.compiled();
        let last = an.remove_constraint(constraints.len() - 1);
        an.compiled();
        an.add_constraint(last);
        an.reset_counters();
        let t_tabled = time_mean(reps, || {
            let removed = an.remove_constraint(an.constraints().len() - 1);
            let without = an.is_consistent();
            an.add_constraint(removed);
            let with = an.is_consistent();
            (without, with)
        });
        let stats = an.stats();
        push(
            &mut records,
            name,
            goal,
            constraints,
            2 * reps,
            t_scratch,
            t_tabled,
            stats,
        );
    };

    let sat_vars: &[usize] = if smoke { &[4] } else { &[6, 10] };
    for &vars in sat_vars {
        let inst = gen::random_3sat(7, vars, (vars as f64 * 4.3) as usize);
        let (goal, constraints) = gen::sat_to_workflow(&inst);
        incr(format!("verify_incr/sat{vars}"), &goal, &constraints);
    }
    let order_ns: &[usize] = if smoke { &[8] } else { &[16, 64] };
    for &n in order_ns {
        let goal = gen::pipeline_workflow(2 * n + 2);
        let constraints = gen::order_chain(n);
        incr(format!("verify_incr/orders{n}"), &goal, &constraints);
    }

    // --- verify_repeat: property batches through one session.
    {
        let widths: &[usize] = if smoke { &[4] } else { &[8, 12] };
        for &w in widths {
            let goal = gen::parallel_workflow(w);
            let constraints = vec![Constraint::order("t0", "t1"), Constraint::order("t1", "t2")];
            let properties: Vec<Constraint> = (0..w - 1)
                .map(|i| {
                    Constraint::klein_order(
                        format!("t{i}").as_str(),
                        format!("t{}", i + 1).as_str(),
                    )
                })
                .collect();

            let one_shot: Vec<_> = properties
                .iter()
                .map(|p| ctr::analysis::verify(&goal, &constraints, p).unwrap())
                .collect();
            let mut check = Analyzer::new(&goal, &constraints).expect("unique-event");
            assert_eq!(
                check.verify_all(&properties),
                one_shot,
                "verdicts identical"
            );

            let t_scratch = time_mean(reps, || {
                properties
                    .iter()
                    .map(|p| {
                        ctr::analysis::verify(&goal, &constraints, p)
                            .unwrap()
                            .holds()
                    })
                    .collect::<Vec<bool>>()
            });
            let mut an = Analyzer::new(&goal, &constraints).expect("unique-event");
            an.verify_all(&properties); // warm
            an.reset_counters();
            let t_tabled = time_mean(reps, || an.verify_all(&properties));
            let stats = an.stats();
            push(
                &mut records,
                format!("verify_repeat/multiprop_parallel{w}"),
                &goal,
                &constraints,
                properties.len() * reps,
                t_scratch,
                t_tabled,
                stats,
            );
        }
    }
    {
        let order_ns: &[usize] = if smoke { &[6] } else { &[16, 32] };
        for &n in order_ns {
            let goal = gen::pipeline_workflow(2 * n + 2);
            let constraints = gen::order_chain(n);

            let one_shot = ctr::analysis::minimize_constraints(&goal, &constraints).unwrap();
            let mut check = Analyzer::new(&goal, &constraints).expect("unique-event");
            assert_eq!(
                check.minimize_constraints(),
                one_shot,
                "kept sets identical"
            );

            let t_scratch = time_mean(reps, || {
                ctr::analysis::minimize_constraints(&goal, &constraints).unwrap()
            });
            let mut an = Analyzer::new(&goal, &constraints).expect("unique-event");
            an.minimize_constraints(); // warm
            an.reset_counters();
            let t_tabled = time_mean(reps, || an.minimize_constraints());
            let stats = an.stats();
            push(
                &mut records,
                format!("verify_repeat/minimize_orders{n}"),
                &goal,
                &constraints,
                constraints.len() * reps,
                t_scratch,
                t_tabled,
                stats,
            );
        }
    }

    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "  {{\"name\": \"{}\", \"goal_size\": {}, \"constraint_count\": {}, \
                 \"queries\": {}, \"scratch_ns\": {}, \"tabled_ns\": {}, \
                 \"speedup\": {:.2}, \"hits\": {}, \"misses\": {}}}",
                r.name,
                r.goal_size,
                r.constraint_count,
                r.queries,
                r.scratch_ns,
                r.tabled_ns,
                r.speedup,
                r.hits,
                r.misses
            )
        })
        .collect();
    let json = format!("[\n{},\n{}\n]\n", host_row(smoke), rows.join(",\n"));
    std::fs::write("BENCH_verify.json", &json).expect("write BENCH_verify.json");
    eprintln!("wrote BENCH_verify.json ({} workloads)", records.len());
}

/// Machine-readable record of the durability cost spectrum.
///
/// Single-threaded rows, the same instance-driving loop over three
/// store configurations: `durability/mem` (in-memory journal, the
/// ceiling), `durability/wal` (write-ahead log, one fsync per fired
/// event), and `durability/wal_group` (whole trace per `fire_batch`,
/// i.e. batch-level group commit: one fsync per instance).
///
/// Multi-threaded rows, `durability_mt/{strict,coalesced}xT`: T client
/// threads fire per-event appends into a *one-stripe* WAL through a
/// `SharedRuntime` — one stripe on purpose, so every append contends on
/// the same commit pipeline and the rows measure cross-thread commit
/// coalescing itself, not stripe spreading. Under `strict` the threads
/// serialize behind each other's fsyncs (throughput stays flat as T
/// grows); under `coalesced` concurrent appends share one fsync, so
/// `fires_per_sec` scales with T while `fsyncs_per_fire` falls.
/// `commit_p50_us`/`commit_p99_us` are client-observed per-fire commit
/// latencies (single-threaded rows report the store's own fsync
/// histogram percentiles instead).
fn bench_store_json(smoke: bool) {
    use ctr_runtime::{Durability, MemStore, Store, WalOptions, WalStore};
    use std::sync::Arc;

    const EVENTS: usize = 16;
    let trace: Vec<String> = (0..EVENTS).map(|i| format!("e{i}")).collect();
    let source = format!("workflow chain {{ graph {}; }}", trace.join(" * "));
    let instances = if smoke { 16 } else { 128 };

    struct Record {
        name: String,
        instances: usize,
        threads: usize,
        events: u64,
        elapsed_ns: u128,
        appends: u64,
        fsyncs: u64,
        rotation_syncs: u64,
        commit_p50_us: u64,
        commit_p99_us: u64,
    }
    let mut records: Vec<Record> = Vec::new();

    let mut measure = |name: &str, store: Arc<dyn Store>, grouped: bool| {
        let mut rt = Runtime::with_store(store);
        rt.deploy_source(&source).expect("deploy chain");
        let t0 = Instant::now();
        for _ in 0..instances {
            let id = rt.start("chain").expect("start");
            if grouped {
                rt.fire_batch(id, &trace).expect("fire_batch");
            } else {
                for event in &trace {
                    rt.fire(id, event).expect("fire");
                }
            }
            rt.try_complete(id).expect("complete");
        }
        let elapsed_ns = t0.elapsed().as_nanos();
        let stats = rt.store_stats().expect("store attached");
        records.push(Record {
            name: name.to_owned(),
            instances,
            threads: 1,
            events: stats.events,
            elapsed_ns,
            appends: stats.appends,
            fsyncs: stats.fsyncs,
            rotation_syncs: stats.rotation_syncs,
            commit_p50_us: stats.fsync_p50_micros(),
            commit_p99_us: stats.fsync_p99_micros(),
        });
    };

    measure("durability/mem", Arc::new(MemStore::new()), false);
    let wal_dir = std::env::temp_dir().join(format!("ctr_bench_wal_{}", std::process::id()));
    for (name, grouped) in [("durability/wal", false), ("durability/wal_group", true)] {
        std::fs::remove_dir_all(&wal_dir).ok();
        measure(
            name,
            Arc::new(WalStore::open(&wal_dir).expect("open wal")),
            grouped,
        );
    }

    // Cross-thread group commit, measured on one stripe so every append
    // rides the same commit pipeline.
    let per_thread = if smoke { 2 } else { 16 };
    let warmup = if smoke { 1 } else { 2 };
    let mt_threads: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };

    /// Drives every instance of `ids[t]` through `trace` on thread `t`
    /// (one append per fire), returning each fire's client-observed
    /// commit latency in microseconds.
    fn drive_mt(rt: &SharedRuntime, ids: &[Vec<InstanceId>], trace: &[String]) -> Vec<u64> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = ids
                .iter()
                .map(|mine| {
                    scope.spawn(move || {
                        let mut lat = Vec::with_capacity(mine.len() * trace.len());
                        for &id in mine {
                            for event in trace {
                                let f0 = Instant::now();
                                rt.fire(id, event).expect("fire");
                                lat.push(f0.elapsed().as_micros() as u64);
                            }
                            rt.try_complete(id).expect("complete");
                        }
                        lat
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        })
    }

    for (mode, durability) in [
        ("strict", Durability::Strict),
        ("coalesced", Durability::coalesced()),
    ] {
        for &threads in mt_threads {
            std::fs::remove_dir_all(&wal_dir).ok();
            let options = WalOptions {
                shards: 1,
                durability,
                ..WalOptions::default()
            };
            let store = Arc::new(WalStore::open_with(&wal_dir, options).expect("open wal"));
            let rt = SharedRuntime::with_store(store);
            rt.deploy_source(&source).expect("deploy chain");
            let start_fleet = |count: usize| -> Vec<Vec<InstanceId>> {
                (0..threads)
                    .map(|_| {
                        (0..count)
                            .map(|_| rt.start("chain").expect("start"))
                            .collect()
                    })
                    .collect()
            };
            // Warm the page cache, the segment files, and the
            // pipeline's concurrency estimate before the timer starts.
            let warm_ids = start_fleet(warmup);
            drive_mt(&rt, &warm_ids, &trace);
            let ids = start_fleet(per_thread);
            let before = rt.store_stats().expect("store attached");
            let t0 = Instant::now();
            let mut latencies = drive_mt(&rt, &ids, &trace);
            let elapsed_ns = t0.elapsed().as_nanos();
            let after = rt.store_stats().expect("store attached");
            latencies.sort_unstable();
            let pct = |p: usize| latencies[(latencies.len() * p / 100).min(latencies.len() - 1)];
            records.push(Record {
                name: format!("durability_mt/{mode}x{threads}"),
                instances: threads * per_thread,
                threads,
                events: after.events - before.events,
                elapsed_ns,
                appends: after.appends - before.appends,
                fsyncs: after.fsyncs - before.fsyncs,
                rotation_syncs: after.rotation_syncs,
                commit_p50_us: pct(50),
                commit_p99_us: pct(99),
            });
        }
    }
    std::fs::remove_dir_all(&wal_dir).ok();

    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            let secs = (r.elapsed_ns as f64 / 1e9).max(1e-9);
            format!(
                "  {{\"name\": \"{}\", \"instances\": {}, \"threads\": {}, \
                 \"events\": {}, \"elapsed_ns\": {}, \"appends\": {}, \"fsyncs\": {}, \
                 \"rotation_syncs\": {}, \"fires_per_sec\": {:.0}, \
                 \"fsyncs_per_fire\": {:.4}, \"commit_p50_us\": {}, \"commit_p99_us\": {}}}",
                r.name,
                r.instances,
                r.threads,
                r.events,
                r.elapsed_ns,
                r.appends,
                r.fsyncs,
                r.rotation_syncs,
                r.events as f64 / secs,
                r.fsyncs as f64 / r.events.max(1) as f64,
                r.commit_p50_us,
                r.commit_p99_us
            )
        })
        .collect();
    let json = format!("[\n{},\n{}\n]\n", host_row(smoke), rows.join(",\n"));
    std::fs::write("BENCH_store.json", &json).expect("write BENCH_store.json");
    eprintln!("wrote BENCH_store.json ({} workloads)", records.len());
}

/// The method surface the fleet benchmark drives, implemented by both the
/// sharded runtime and the coarse-lock baseline so one driver measures
/// both.
trait FleetHandle: Sync {
    fn start(&self, workflow: &str) -> Result<InstanceId, RuntimeError>;
    fn fire(&self, id: InstanceId, event: &str) -> Result<InstanceStatus, RuntimeError>;
    fn try_complete(&self, id: InstanceId) -> Result<InstanceStatus, RuntimeError>;
    fn journal(&self, id: InstanceId) -> Result<Vec<String>, RuntimeError>;
}

macro_rules! impl_fleet_handle {
    ($ty:ty) => {
        impl FleetHandle for $ty {
            fn start(&self, workflow: &str) -> Result<InstanceId, RuntimeError> {
                <$ty>::start(self, workflow)
            }
            fn fire(&self, id: InstanceId, event: &str) -> Result<InstanceStatus, RuntimeError> {
                <$ty>::fire(self, id, event)
            }
            fn try_complete(&self, id: InstanceId) -> Result<InstanceStatus, RuntimeError> {
                <$ty>::try_complete(self, id)
            }
            fn journal(&self, id: InstanceId) -> Result<Vec<String>, RuntimeError> {
                <$ty>::journal(self, id)
            }
        }
    };
}
impl_fleet_handle!(SharedRuntime);
impl_fleet_handle!(CoarseRuntime);

/// Starts `fleet` instances, splits them over `threads` client threads,
/// and drives each through `trace`. Returns (wall time, total fires).
/// Every journal is checked against the single-threaded trace afterwards:
/// concurrency must not change per-instance executions.
fn run_fleet_mt(
    rt: &dyn FleetHandle,
    fleet: usize,
    threads: usize,
    trace: &[String],
) -> (std::time::Duration, usize) {
    let ids: Vec<InstanceId> = (0..fleet)
        .map(|_| rt.start("layered").expect("deployed"))
        .collect();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for chunk in ids.chunks(fleet.div_ceil(threads)) {
            scope.spawn(move || {
                for &id in chunk {
                    for e in trace {
                        rt.fire(id, e).expect("trace replays");
                    }
                    rt.try_complete(id).expect("live instance");
                }
            });
        }
    });
    let wall = t0.elapsed();
    for &id in &ids {
        assert_eq!(
            rt.journal(id).expect("live instance"),
            trace,
            "per-instance journal identical to single-threaded execution"
        );
    }
    (wall, fleet * trace.len())
}

fn x2_automata() {
    println!("## X2 — §6: the automata-product baseline is exponential in the constraint count\n");
    let mut table = Table::new(&["N constraints", "product states", "vs compiled |Apply|"]);
    let mut pts = Vec::new();
    for n in [1usize, 2, 3, 4, 5, 6] {
        let constraints: Vec<Constraint> = (0..n)
            .map(|i| Constraint::order(sym(&format!("p{i}")), sym(&format!("q{i}"))))
            .collect();
        let product = ProductScheduler::new(&constraints);
        let states = product.product_state_count(5_000_000);
        // The same dependencies compiled into a matching workflow stay
        // linear (d = 1).
        let goal = ctr::goal::conc(
            (0..n)
                .flat_map(|i| [Goal::atom(format!("p{i}")), Goal::atom(format!("q{i}"))])
                .collect(),
        );
        let compiled = compile(&goal, &constraints).unwrap();
        pts.push((n as f64, states as f64));
        table.row(vec![
            n.to_string(),
            states.to_string(),
            compiled.applied_size.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nProduct growth per constraint: {:.2}× (exponential); compiled form stays linear.\n",
        log_growth_factor(&pts)
    );
}
