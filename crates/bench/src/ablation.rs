//! Ablation: what the `Apply` implementation's eager `¬path` pruning buys.
//!
//! DESIGN.md calls out two implementation choices in the compiler:
//!
//! 1. **Eager pruning** — `Apply(∇α, ·)` positions are built through the
//!    smart constructors, so subtrees without `α` collapse to `¬path`
//!    *during* construction and never materialize. The naive reading of
//!    Definition 5.1 builds every positional disjunct first and
//!    simplifies afterwards; this module implements that naive variant.
//!    Without eager pruning the intermediate term for one positive
//!    primitive is `Θ(n²)` (n disjuncts of size n), and the linear-in-|G|
//!    clause of Theorem 5.11 is lost in time even though the final sizes
//!    agree.
//! 2. **`∨`-idempotence** — duplicated disjuncts from sequential
//!    constraint application are merged. [`apply_no_dedup`] replays the
//!    compilation with raw constructors (flattening and `¬path`
//!    absorption, but no duplicate merging) to expose the difference on
//!    the SAT workloads.
//!
//! Measured in the `a1_ablation` experiment section and bench.

use ctr::constraints::{Basic, Constraint};
use ctr::goal::Goal;
use ctr::symbol::Symbol;

/// `or` with flattening and `¬path` dropping but **no** idempotence.
fn or_no_dedup(goals: Vec<Goal>) -> Goal {
    let mut out = Vec::with_capacity(goals.len());
    for g in goals {
        match g {
            Goal::NoPath => {}
            Goal::Or(inner) => out.extend(inner.to_vec()),
            other => out.push(other),
        }
    }
    match out.len() {
        0 => Goal::NoPath,
        1 => out.pop().expect("len checked"),
        _ => Goal::raw_or(out),
    }
}

/// The naive positive-primitive compilation: every positional disjunct is
/// constructed (cloning the whole conjunction each time) before
/// simplification removes the dead ones.
pub fn apply_must_naive(alpha: Symbol, goal: &Goal) -> Goal {
    fn raw(alpha: Symbol, goal: &Goal) -> Goal {
        match goal {
            Goal::Atom(a) if a.as_event() == Some(alpha) => goal.clone(),
            Goal::Atom(_) => Goal::NoPath,
            Goal::Seq(gs) => Goal::raw_or(
                (0..gs.len())
                    .map(|i| {
                        let mut children = gs.to_vec();
                        children[i] = raw(alpha, &gs[i]);
                        Goal::raw_seq(children)
                    })
                    .collect(),
            ),
            Goal::Conc(gs) => Goal::raw_or(
                (0..gs.len())
                    .map(|i| {
                        let mut children = gs.to_vec();
                        children[i] = raw(alpha, &gs[i]);
                        Goal::raw_conc(children)
                    })
                    .collect(),
            ),
            Goal::Or(gs) => Goal::raw_or(gs.iter().map(|g| raw(alpha, g)).collect()),
            Goal::Isolated(g) => Goal::raw_isolated(raw(alpha, g)),
            Goal::Possible(_) | Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => {
                Goal::NoPath
            }
        }
    }
    // Post-hoc simplification restores the canonical result.
    raw(alpha, goal).simplify()
}

/// Whole-constraint-set compilation without `∨`-idempotence (still with
/// eager pruning). Order constraints are not supported — the ablation
/// targets the existence-constraint blow-up.
pub fn apply_no_dedup(constraints: &[Constraint], goal: &Goal) -> Goal {
    let mut current = goal.clone();
    for c in constraints {
        let nf = c.normalize();
        let disjuncts: Vec<Goal> = nf
            .disjuncts
            .iter()
            .map(|conj| {
                let mut g = current.clone();
                for b in conj {
                    g = match *b {
                        Basic::Must(e) => must_nd(e, &g),
                        Basic::MustNot(e) => must_not_nd(e, &g),
                        Basic::Order(..) => {
                            unimplemented!("ablation covers existence constraints only")
                        }
                    };
                    if g.is_nopath() {
                        break;
                    }
                }
                g
            })
            .collect();
        current = or_no_dedup(disjuncts);
        if current.is_nopath() {
            return current;
        }
    }
    current
}

/// Eagerly-pruned `Apply(∇α, ·)` built on the dedup-free `∨`.
fn must_nd(alpha: Symbol, goal: &Goal) -> Goal {
    match goal {
        Goal::Atom(a) if a.as_event() == Some(alpha) => goal.clone(),
        Goal::Atom(_) => Goal::NoPath,
        Goal::Seq(gs) => or_no_dedup(
            (0..gs.len())
                .map(|i| {
                    let rewritten = must_nd(alpha, &gs[i]);
                    if rewritten.is_nopath() {
                        return Goal::NoPath;
                    }
                    let mut children = gs.to_vec();
                    children[i] = rewritten;
                    ctr::goal::seq(children)
                })
                .collect(),
        ),
        Goal::Conc(gs) => or_no_dedup(
            (0..gs.len())
                .map(|i| {
                    let rewritten = must_nd(alpha, &gs[i]);
                    if rewritten.is_nopath() {
                        return Goal::NoPath;
                    }
                    let mut children = gs.to_vec();
                    children[i] = rewritten;
                    ctr::goal::conc(children)
                })
                .collect(),
        ),
        Goal::Or(gs) => or_no_dedup(gs.iter().map(|g| must_nd(alpha, g)).collect()),
        Goal::Isolated(g) => ctr::goal::isolated(must_nd(alpha, g)),
        _ => Goal::NoPath,
    }
}

fn must_not_nd(alpha: Symbol, goal: &Goal) -> Goal {
    match goal {
        Goal::Atom(a) if a.as_event() == Some(alpha) => Goal::NoPath,
        Goal::Atom(_) => goal.clone(),
        Goal::Seq(gs) => ctr::goal::seq(gs.iter().map(|g| must_not_nd(alpha, g)).collect()),
        Goal::Conc(gs) => ctr::goal::conc(gs.iter().map(|g| must_not_nd(alpha, g)).collect()),
        Goal::Or(gs) => or_no_dedup(gs.iter().map(|g| must_not_nd(alpha, g)).collect()),
        Goal::Isolated(g) => ctr::goal::isolated(must_not_nd(alpha, g)),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::apply::apply_must;
    use ctr::gen;
    use ctr::sym;

    #[test]
    fn naive_apply_agrees_with_eager() {
        for seed in 0..10 {
            let (goal, events) = gen::random_goal(seed, gen::GoalShape::default(), "abl");
            for &e in events.iter().take(3) {
                assert_eq!(
                    apply_must_naive(e, &goal),
                    apply_must(e, &goal),
                    "seed {seed} event {e}"
                );
            }
            // And for an event that never occurs.
            assert_eq!(apply_must_naive(sym("never_there"), &goal), Goal::NoPath);
        }
    }

    #[test]
    fn no_dedup_apply_is_semantically_equal_but_larger() {
        let inst = gen::random_3sat(3, 5, 18);
        let (goal, constraints) = gen::sat_to_workflow(&inst);
        let with = ctr::apply::apply(&constraints, &goal);
        let without = apply_no_dedup(&constraints, &goal);
        assert!(without.size() >= with.size());
        let a = ctr::semantics::event_traces(&with, 2_000_000).unwrap();
        let b = ctr::semantics::event_traces(&without, 2_000_000).unwrap();
        assert_eq!(a, b);
    }
}
