//! # ctr-bench — the experiment harness
//!
//! Workload construction and measurement utilities shared by the
//! Criterion benches (`benches/e*.rs`, one per experiment of DESIGN.md)
//! and the deterministic table generator
//! (`cargo run -p ctr-bench --bin experiments`), which regenerates every
//! table of EXPERIMENTS.md.

pub mod ablation;

use std::time::{Duration, Instant};

/// Times `f` over `iters` runs and returns the mean duration.
pub fn time_mean<T>(iters: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(iters > 0);
    // One warmup.
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed() / iters as u32
}

/// Nanoseconds as a human-readable string.
pub fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A printed markdown table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        assert!(!header.is_empty());
        Table {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
        self
    }

    /// Renders the table as markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let sep: Vec<String> = widths
            .iter()
            .map(|w| format!("{:->w$}", "", w = w))
            .collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Least-squares slope of `y` against `x`.
pub fn slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    assert!(n >= 2.0);
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Least-squares growth factor of `y` per unit of `x`, from a log-linear
/// fit. Used to confirm exponential families (`≈ d` for Theorem 5.11).
pub fn log_growth_factor(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(_, y)| *y > 0.0)
        .map(|&(x, y)| (x, y.ln()))
        .collect();
    slope(&pts).exp()
}

/// The exponent `k` in a power-law fit `y = c · x^k` — slope of log-log.
/// ≈1 confirms linear scaling, ≈2 quadratic.
pub fn power_law_exponent(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    slope(&pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["n", "size"]);
        t.row(vec!["1".into(), "10".into()]);
        t.row(vec!["2".into(), "100".into()]);
        let text = t.render();
        assert!(text.starts_with('|'));
        assert!(text.contains("size"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn growth_factor_recovers_base() {
        let pts: Vec<(f64, f64)> = (1..8).map(|i| (f64::from(i), 3f64.powi(i))).collect();
        let factor = log_growth_factor(&pts);
        assert!((factor - 3.0).abs() < 1e-9, "{factor}");
    }

    #[test]
    fn power_law_recovers_exponent() {
        let pts: Vec<(f64, f64)> = (1..10)
            .map(|i| (f64::from(i), f64::from(i * i) * 7.0))
            .collect();
        let k = power_law_exponent(&pts);
        assert!((k - 2.0).abs() < 1e-9, "{k}");
    }

    #[test]
    fn fmt_ns_ranges() {
        assert_eq!(fmt_ns(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_ns(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_ns(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_ns(Duration::from_secs(50)).ends_with("s"));
    }

    #[test]
    fn time_mean_is_positive() {
        let d = time_mean(3, || (0..1000).sum::<u64>());
        assert!(d.as_nanos() > 0);
    }
}
