#![warn(missing_docs)]

//! # ctr-store — the durability layer under the workflow runtime
//!
//! The paper's enactment model makes the event history the *entire*
//! execution state: a configuration is the initial goal plus the fired
//! prefix. So durability is journal durability and nothing else — the
//! runtime never needs to persist cursors, frontiers, or any derived
//! state, only the ordered stream of control records:
//!
//! * [`Record::Deploy`] — a workflow name bound to its compiled goal
//!   (the concrete syntax the snapshot format already uses);
//! * [`Record::Start`] — an instance id bound to a workflow name;
//! * [`Record::Events`] — a batch of events fired by one instance
//!   (one record per `fire_batch` extend: the group-commit unit);
//! * [`Record::Complete`] — a silent completion (the one status change
//!   journal replay alone cannot reproduce);
//! * [`Record::TimerArm`] / [`Record::TimerFire`] /
//!   [`Record::TimerCancel`] — the timer wheel's journal: arms are
//!   written *before* the instance's `Start` (arm-before-visible),
//!   fires carry the runtime clock so recovery re-arms with the
//!   remaining delay, cancels record explicit API cancellations.
//!
//! A [`Store`] appends records, reads them back for recovery
//! ([`Store::replay`]), and compacts the log behind a text snapshot
//! ([`Store::checkpoint`]). Two backends ship:
//!
//! * [`MemStore`] — records in a `Vec`, no I/O. Attaching it to a
//!   runtime reproduces today's purely in-memory behavior byte for
//!   byte; it is also the honest baseline the `durability/*` benches
//!   compare the WAL against.
//! * [`wal::WalStore`] — an append-only segmented log per shard with
//!   length-prefixed, CRC-checked records, a cross-thread group-commit
//!   pipeline (N concurrent appends on a stripe cost one fsync — see
//!   [`commit`]), tunable [`Durability`], snapshot compaction, and
//!   torn-tail crash recovery.
//!
//! The crate is deliberately independent of the runtime: records carry
//! plain strings, so the store can be tested, fuzzed, and benchmarked
//! without compiling a single workflow.

pub mod commit;
pub mod wal;

pub use commit::Durability;
pub use wal::{WalOptions, WalStore};

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Errors from a [`Store`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O operation failed (the store may be partially written but
    /// never inconsistently: appends are all-or-nothing at recovery).
    Io(String),
    /// Durable data failed validation beyond what torn-tail repair is
    /// allowed to discard (e.g. a checkpoint with a mangled header).
    Corrupt(String),
    /// The record cannot be represented in the backend's wire format —
    /// an oversized payload, or a name the text encoding cannot
    /// round-trip (see [`Record::validate_encodable`]). Rejected
    /// *before* any byte is written, so the log is untouched.
    Unencodable(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt(e) => write!(f, "store corruption: {e}"),
            StoreError::Unencodable(e) => write!(f, "store cannot encode record: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One durable control record. The journal of a workflow fleet is an
/// ordered stream of these; replaying them against an empty runtime
/// reproduces the fleet exactly (silent completions included, via
/// [`Record::Complete`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// A workflow deployed under `name` with compiled goal text `goal`.
    Deploy {
        /// Workflow name.
        name: String,
        /// The compiled goal in concrete syntax (what `parse_goal` reads).
        goal: String,
    },
    /// Instance `instance` started as workflow `workflow`.
    Start {
        /// Instance id.
        instance: u64,
        /// Workflow name.
        workflow: String,
    },
    /// Instance `instance` fired `events` in order — one record per
    /// journal extend, which is the group-commit unit.
    Events {
        /// Instance id.
        instance: u64,
        /// Event names, in fire order.
        events: Vec<String>,
    },
    /// Instance `instance` completed silently (no event to replay).
    Complete {
        /// Instance id.
        instance: u64,
    },
    /// Timers armed for `instance` — one record for the whole set, so
    /// arming is a single append written *before* the instance's
    /// [`Record::Start`] ("arm-before-visible": a crash can leave an
    /// orphan arm, which recovery drops, but never a visible instance
    /// whose timers were lost).
    TimerArm {
        /// Instance id.
        instance: u64,
        /// `(tick event name, absolute due on the runtime clock in
        /// ms)` per armed timer.
        timers: Vec<(String, u64)>,
    },
    /// The timer wheel fired tick `event` on `instance` at clock
    /// `at_ms`. Replays like a one-event [`Record::Events`], but the
    /// distinct tag lets recovery (and audits) tell wheel expirations
    /// from client fires, and restores the runtime clock watermark.
    TimerFire {
        /// Instance id.
        instance: u64,
        /// The tick event that fired.
        event: String,
        /// Runtime clock at expiry, in ms.
        at_ms: u64,
    },
    /// Pending timer `event` on `instance` was explicitly cancelled
    /// (API cancel — the structural cancel when a deadline's base
    /// event fires is *derived* from [`Record::Events`] replay and
    /// never journaled separately).
    TimerCancel {
        /// Instance id.
        instance: u64,
        /// The tick event whose timer was cancelled.
        event: String,
    },
}

impl Record {
    /// Which of `shards` log stripes this record belongs to. Instance
    /// records ride their instance's stripe (`id % shards` — the same
    /// striping the sharded runtime uses), so all records of one
    /// instance live in one shard and keep their relative order without
    /// any cross-shard coordination. Deploys go to stripe 0.
    pub fn shard(&self, shards: usize) -> usize {
        match self {
            Record::Deploy { .. } => 0,
            Record::Start { instance, .. }
            | Record::Events { instance, .. }
            | Record::Complete { instance }
            | Record::TimerArm { instance, .. }
            | Record::TimerFire { instance, .. }
            | Record::TimerCancel { instance, .. } => (*instance % shards as u64) as usize,
        }
    }

    /// Number of journal events this record carries (its group size).
    pub fn event_count(&self) -> u64 {
        match self {
            Record::Events { events, .. } => events.len() as u64,
            // A wheel expiry appends its tick to the instance journal.
            Record::TimerFire { .. } => 1,
            _ => 0,
        }
    }

    /// Checks that the text wire format can round-trip this record:
    /// workflow and event names must be non-empty and whitespace-free.
    /// The encoding separates fields with tabs and event lists with
    /// spaces, so a name containing either would decode into different
    /// fields or a different event list than was appended — silent
    /// replay divergence. (Such names never come out of the parser, but
    /// `deploy_compiled` accepts hand-built goals, so the encoding
    /// backend rejects them with a typed error instead.) Goal text is
    /// exempt: it is always the final field of its record, so the
    /// decoder takes it verbatim to end of payload.
    pub fn validate_encodable(&self) -> Result<(), StoreError> {
        fn name_ok(kind: &str, name: &str) -> Result<(), StoreError> {
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(StoreError::Unencodable(format!(
                    "{kind} name {name:?} is empty or contains whitespace and cannot round-trip the wire format"
                )));
            }
            Ok(())
        }
        match self {
            Record::Deploy { name, .. } => name_ok("workflow", name),
            Record::Start { workflow, .. } => name_ok("workflow", workflow),
            Record::Events { events, .. } => events.iter().try_for_each(|e| name_ok("event", e)),
            Record::Complete { .. } => Ok(()),
            Record::TimerArm { timers, .. } => {
                timers.iter().try_for_each(|(e, _)| name_ok("event", e))
            }
            Record::TimerFire { event, .. } | Record::TimerCancel { event, .. } => {
                name_ok("event", event)
            }
        }
    }
}

/// Everything a [`Store`] has retained, in replay order: the latest
/// checkpoint snapshot (if any) plus every record appended after it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Replay {
    /// The compaction snapshot to restore first, if one was taken.
    pub snapshot: Option<String>,
    /// Records appended after the snapshot, in append order.
    pub records: Vec<Record>,
}

/// Number of power-of-two buckets in [`StoreStats::group_size_hist`]:
/// bucket `i` counts groups of `[2^i, 2^(i+1))` frames, the last
/// bucket absorbs everything larger.
pub const GROUP_SIZE_BUCKETS: usize = 8;

/// Number of power-of-two buckets in [`StoreStats::fsync_micros_hist`]:
/// bucket `i` counts syncs that took `[2^i, 2^(i+1))` microseconds, the
/// last bucket absorbs everything slower (≥ ~0.5 s).
pub const FSYNC_MICROS_BUCKETS: usize = 20;

/// Counters a [`Store`] keeps about its own traffic. All monotonic;
/// [`MemStore`] leaves the fsync-related ones at zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Durable appends ([`Store::append`] calls that succeeded).
    pub appends: u64,
    /// Journal events carried by those appends (≥ `appends` under
    /// group commit, == for one-event fires).
    pub events: u64,
    /// Commit-path data syncs — one per group commit, however many
    /// frames the group carried. Rotation and checkpoint syncs are
    /// attributed separately so `fsyncs / appends` measures commit
    /// coalescing cleanly.
    pub fsyncs: u64,
    /// Directory syncs from segment creation and stripe repair.
    pub rotation_syncs: u64,
    /// File and directory syncs issued by checkpoint compaction.
    pub checkpoint_syncs: u64,
    /// Largest event group committed by a single append.
    pub max_group: u64,
    /// Checkpoint compactions taken.
    pub compactions: u64,
    /// Bytes of valid log scanned back at open.
    pub recovered_bytes: u64,
    /// Bytes discarded at open as a torn tail (truncated at the first
    /// record that failed its length or checksum).
    pub torn_bytes: u64,
    /// How many *frames* each group commit carried, in power-of-two
    /// buckets (see [`GROUP_SIZE_BUCKETS`]). Strict appends always land
    /// in bucket 0; cross-thread coalescing shows up as mass in the
    /// higher buckets.
    pub group_size_hist: [u64; GROUP_SIZE_BUCKETS],
    /// Commit write+sync latency in power-of-two microsecond buckets
    /// (see [`FSYNC_MICROS_BUCKETS`]).
    pub fsync_micros_hist: [u64; FSYNC_MICROS_BUCKETS],
}

/// The value at percentile `pct` of a power-of-two histogram, reported
/// as the (inclusive) upper bound of the bucket it lands in.
fn hist_percentile(hist: &[u64], pct: u64) -> u64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = (total * pct).div_ceil(100);
    let mut cum = 0u64;
    for (i, &count) in hist.iter().enumerate() {
        cum += count;
        if cum >= target {
            return (1u64 << (i + 1)) - 1;
        }
    }
    unreachable!("percentile target exceeds histogram total")
}

impl StoreStats {
    /// Median commit write+sync latency in microseconds (upper bound of
    /// the histogram bucket the median lands in; 0 with no commits).
    pub fn fsync_p50_micros(&self) -> u64 {
        hist_percentile(&self.fsync_micros_hist, 50)
    }

    /// 99th-percentile commit write+sync latency in microseconds (upper
    /// bound of its histogram bucket; 0 with no commits).
    pub fn fsync_p99_micros(&self) -> u64 {
        hist_percentile(&self.fsync_micros_hist, 99)
    }
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "appends={} events={} fsyncs={} rotation_syncs={} checkpoint_syncs={} \
             max_group={} compactions={} recovered_bytes={} torn_bytes={} \
             fsync_p50_us={} fsync_p99_us={}",
            self.appends,
            self.events,
            self.fsyncs,
            self.rotation_syncs,
            self.checkpoint_syncs,
            self.max_group,
            self.compactions,
            self.recovered_bytes,
            self.torn_bytes,
            self.fsync_p50_micros(),
            self.fsync_p99_micros()
        )
    }
}

/// Which power-of-two bucket `value` lands in, clamped to the
/// histogram's last bucket. Zero counts as one (bucket 0).
fn hist_bucket(value: u64, buckets: usize) -> usize {
    (63 - value.max(1).leading_zeros() as usize).min(buckets - 1)
}

/// Shared counter block; backends bump these as traffic flows.
#[derive(Default)]
pub(crate) struct Counters {
    appends: AtomicU64,
    events: AtomicU64,
    fsyncs: AtomicU64,
    rotation_syncs: AtomicU64,
    checkpoint_syncs: AtomicU64,
    max_group: AtomicU64,
    compactions: AtomicU64,
    recovered_bytes: AtomicU64,
    torn_bytes: AtomicU64,
    group_size_hist: [AtomicU64; GROUP_SIZE_BUCKETS],
    fsync_micros_hist: [AtomicU64; FSYNC_MICROS_BUCKETS],
}

impl Counters {
    pub(crate) fn on_append(&self, group: u64) {
        self.appends.fetch_add(1, Ordering::Relaxed);
        if group > 0 {
            self.events.fetch_add(group, Ordering::Relaxed);
            self.max_group.fetch_max(group, Ordering::Relaxed);
        }
    }

    /// One group commit: `frames` whole records made durable by a
    /// single write+sync that took `latency`.
    pub(crate) fn on_commit(&self, frames: u64, latency: Duration) {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.group_size_hist[hist_bucket(frames, GROUP_SIZE_BUCKETS)]
            .fetch_add(1, Ordering::Relaxed);
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.fsync_micros_hist[hist_bucket(micros, FSYNC_MICROS_BUCKETS)]
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_rotation_sync(&self) {
        self.rotation_syncs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_checkpoint_sync(&self) {
        self.checkpoint_syncs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_compaction(&self) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_recovered(&self, good: u64, torn: u64) {
        self.recovered_bytes.fetch_add(good, Ordering::Relaxed);
        self.torn_bytes.fetch_add(torn, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> StoreStats {
        let load_hist = |hist: &[AtomicU64]| {
            let mut out = Vec::with_capacity(hist.len());
            out.extend(hist.iter().map(|b| b.load(Ordering::Relaxed)));
            out
        };
        let mut stats = StoreStats {
            appends: self.appends.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            rotation_syncs: self.rotation_syncs.load(Ordering::Relaxed),
            checkpoint_syncs: self.checkpoint_syncs.load(Ordering::Relaxed),
            max_group: self.max_group.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            recovered_bytes: self.recovered_bytes.load(Ordering::Relaxed),
            torn_bytes: self.torn_bytes.load(Ordering::Relaxed),
            group_size_hist: [0; GROUP_SIZE_BUCKETS],
            fsync_micros_hist: [0; FSYNC_MICROS_BUCKETS],
        };
        stats
            .group_size_hist
            .copy_from_slice(&load_hist(&self.group_size_hist));
        stats
            .fsync_micros_hist
            .copy_from_slice(&load_hist(&self.fsync_micros_hist));
        stats
    }
}

/// The journal/store abstraction every runtime persistence path flows
/// through: append control records, read them back for recovery, and
/// compact the log behind a snapshot.
///
/// ## Contract
///
/// * [`Store::append`] is durable on return (for backends that promise
///   durability at all): a record either survives a crash in full or —
///   if the crash tears its tail — is discarded in full at the next
///   open. Records never survive partially.
/// * [`Store::replay`] returns the snapshot (if any) plus appended
///   records in append order; replaying both reproduces the fleet.
/// * [`Store::checkpoint`] atomically replaces the log with `snapshot`:
///   callers must guarantee no concurrent [`Store::append`] covers state
///   *not* captured by `snapshot` (the runtime freezes the fleet across
///   the call, exactly as it already does for consistent snapshots).
pub trait Store: Send + Sync {
    /// Durably appends one record.
    fn append(&self, record: &Record) -> Result<(), StoreError>;

    /// Reads everything back: latest snapshot plus post-snapshot
    /// records, in replay order.
    fn replay(&self) -> Result<Replay, StoreError>;

    /// Compacts: atomically installs `snapshot` as the recovery
    /// baseline and truncates every record it covers.
    fn checkpoint(&self, snapshot: &str) -> Result<(), StoreError>;

    /// Traffic counters (monotonic since open).
    fn stats(&self) -> StoreStats;
}

// --- MemStore --------------------------------------------------------------

#[derive(Default)]
struct MemInner {
    snapshot: Option<String>,
    records: Vec<Record>,
}

/// The in-memory backend: a `Vec` of records behind a mutex. Survives
/// nothing, costs nothing — attaching it to a runtime reproduces the
/// store-less behavior byte for byte (pinned by tests) while exercising
/// the exact same append/replay/checkpoint code paths as the WAL.
#[derive(Default)]
pub struct MemStore {
    inner: Mutex<MemInner>,
    counters: Counters,
}

impl MemStore {
    /// An empty in-memory store.
    pub fn new() -> MemStore {
        MemStore::default()
    }
}

impl Store for MemStore {
    fn append(&self, record: &Record) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.records.push(record.clone());
        self.counters.on_append(record.event_count());
        Ok(())
    }

    fn replay(&self) -> Result<Replay, StoreError> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Ok(Replay {
            snapshot: inner.snapshot.clone(),
            records: inner.records.clone(),
        })
    }

    fn checkpoint(&self, snapshot: &str) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.snapshot = Some(snapshot.to_owned());
        inner.records.clear();
        self.counters.on_compaction();
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        self.counters.snapshot()
    }
}

// --- Record wire format ----------------------------------------------------

/// Serializes a record payload: tab-separated fields, one line, with
/// the global sequence number as the second field. Event lists are
/// space-separated — whitespace-free names are *enforced* by
/// [`Record::validate_encodable`] on the write path, not assumed.
pub(crate) fn encode_payload(seq: u64, record: &Record) -> Vec<u8> {
    let text = match record {
        Record::Deploy { name, goal } => format!("d\t{seq}\t{name}\t{goal}"),
        Record::Start { instance, workflow } => format!("s\t{seq}\t{instance}\t{workflow}"),
        Record::Events { instance, events } => {
            format!("e\t{seq}\t{instance}\t{}", events.join(" "))
        }
        Record::Complete { instance } => format!("c\t{seq}\t{instance}"),
        Record::TimerArm { instance, timers } => {
            // Space-packed `event due` pairs: timer records must fit in
            // the decoder's four tab-separated fields.
            let pairs: Vec<String> = timers.iter().map(|(e, due)| format!("{e} {due}")).collect();
            format!("ta\t{seq}\t{instance}\t{}", pairs.join(" "))
        }
        Record::TimerFire {
            instance,
            event,
            at_ms,
        } => format!("tf\t{seq}\t{instance}\t{event} {at_ms}"),
        Record::TimerCancel { instance, event } => format!("tc\t{seq}\t{instance}\t{event}"),
    };
    text.into_bytes()
}

/// Decodes a record payload; inverse of [`encode_payload`].
pub(crate) fn decode_payload(payload: &[u8]) -> Result<(u64, Record), StoreError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| StoreError::Corrupt("record payload is not utf-8".to_owned()))?;
    let mut fields = text.splitn(4, '\t');
    let (tag, seq) = match (fields.next(), fields.next()) {
        (Some(tag), Some(seq)) => (tag, seq),
        _ => return Err(StoreError::Corrupt(format!("truncated record: {text:?}"))),
    };
    let seq: u64 = seq
        .parse()
        .map_err(|_| StoreError::Corrupt(format!("bad sequence number: {text:?}")))?;
    let record = match (tag, fields.next(), fields.next()) {
        ("d", Some(name), Some(goal)) => Record::Deploy {
            name: name.to_owned(),
            goal: goal.to_owned(),
        },
        ("s", Some(instance), Some(workflow)) => Record::Start {
            instance: parse_id(instance, text)?,
            workflow: workflow.to_owned(),
        },
        ("e", Some(instance), Some(events)) => Record::Events {
            instance: parse_id(instance, text)?,
            events: events.split_whitespace().map(str::to_owned).collect(),
        },
        ("c", Some(instance), None) => Record::Complete {
            instance: parse_id(instance, text)?,
        },
        ("ta", Some(instance), Some(pairs)) => {
            let fields: Vec<&str> = pairs.split_whitespace().collect();
            if !fields.len().is_multiple_of(2) {
                return Err(StoreError::Corrupt(format!(
                    "odd timer-arm pair list: {text:?}"
                )));
            }
            let timers = fields
                .chunks_exact(2)
                .map(|pair| Ok((pair[0].to_owned(), parse_id(pair[1], text)?)))
                .collect::<Result<Vec<_>, StoreError>>()?;
            Record::TimerArm {
                instance: parse_id(instance, text)?,
                timers,
            }
        }
        ("tf", Some(instance), Some(rest)) => match rest.split_once(' ') {
            Some((event, at)) => Record::TimerFire {
                instance: parse_id(instance, text)?,
                event: event.to_owned(),
                at_ms: parse_id(at, text)?,
            },
            None => {
                return Err(StoreError::Corrupt(format!(
                    "timer-fire record missing clock: {text:?}"
                )))
            }
        },
        ("tc", Some(instance), Some(event)) => Record::TimerCancel {
            instance: parse_id(instance, text)?,
            event: event.to_owned(),
        },
        _ => {
            return Err(StoreError::Corrupt(format!(
                "unrecognized record: {text:?}"
            )))
        }
    };
    Ok((seq, record))
}

fn parse_id(field: &str, text: &str) -> Result<u64, StoreError> {
    field
        .parse()
        .map_err(|_| StoreError::Corrupt(format!("bad instance id: {text:?}")))
}

/// Merges per-shard record streams back into one global append order by
/// sequence number. Within a shard the scan already yields ascending
/// seqs; across shards the global `AtomicU64` allocator makes them
/// unique, so a stable sort restores the exact interleaving.
pub(crate) fn merge_by_seq(per_shard: Vec<Vec<(u64, Record)>>) -> Vec<Record> {
    let mut merged: BTreeMap<u64, Record> = BTreeMap::new();
    for shard in per_shard {
        for (seq, record) in shard {
            merged.insert(seq, record);
        }
    }
    merged.into_values().collect()
}

// --- CRC32 (IEEE) ----------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3, the zlib polynomial) of `data`. Hand-rolled:
/// the build environment has no registry access, and eight table
/// lookups per byte is plenty for records this size.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn payload_round_trips_every_record_shape() {
        let records = [
            Record::Deploy {
                name: "pay".to_owned(),
                goal: "invoice * (approve + reject) * file".to_owned(),
            },
            Record::Start {
                instance: 17,
                workflow: "pay".to_owned(),
            },
            Record::Events {
                instance: 17,
                events: vec!["invoice".to_owned(), "approve".to_owned()],
            },
            Record::Complete { instance: 17 },
            Record::TimerArm {
                instance: 17,
                timers: vec![
                    ("approve@deadline3600000".to_owned(), 3_600_000),
                    ("file@after30000".to_owned(), 30_000),
                ],
            },
            Record::TimerArm {
                instance: 3,
                timers: Vec::new(),
            },
            Record::TimerFire {
                instance: 17,
                event: "approve@deadline3600000".to_owned(),
                at_ms: 3_600_017,
            },
            Record::TimerCancel {
                instance: 17,
                event: "file@after30000".to_owned(),
            },
        ];
        for (seq, record) in records.iter().enumerate() {
            let bytes = encode_payload(seq as u64, record);
            let (got_seq, got) = decode_payload(&bytes).unwrap();
            assert_eq!(got_seq, seq as u64);
            assert_eq!(&got, record);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_payload(b"").is_err());
        assert!(decode_payload(b"x\t1\t2\t3").is_err());
        assert!(decode_payload(b"e\tnotanumber\t0\ta").is_err());
        assert!(decode_payload(b"s\t1\tnotanid\tpay").is_err());
        assert!(decode_payload(&[0xFF, 0xFE, 0x00]).is_err());
        // Timer records with mangled pair lists or clocks.
        assert!(decode_payload(b"ta\t1\t0\tev 5 orphan").is_err());
        assert!(decode_payload(b"ta\t1\t0\tev notadue").is_err());
        assert!(decode_payload(b"tf\t1\t0\tev").is_err());
        assert!(decode_payload(b"tf\t1\t0\tev notaclock").is_err());
    }

    #[test]
    fn validate_encodable_rejects_names_the_wire_format_cannot_round_trip() {
        let bad_events = |names: &[&str]| Record::Events {
            instance: 0,
            events: names.iter().map(|s| (*s).to_owned()).collect(),
        };
        assert!(bad_events(&["ok", "two words"])
            .validate_encodable()
            .is_err());
        assert!(bad_events(&["tab\there"]).validate_encodable().is_err());
        assert!(bad_events(&[""]).validate_encodable().is_err());
        assert!(bad_events(&["ok", "also_ok"]).validate_encodable().is_ok());
        assert!(Record::Deploy {
            name: "spaced out".to_owned(),
            goal: "a * b".to_owned(),
        }
        .validate_encodable()
        .is_err());
        // Goal text is the final field of its record: spaces are fine.
        assert!(Record::Deploy {
            name: "pay".to_owned(),
            goal: "invoice * (approve + reject) * file".to_owned(),
        }
        .validate_encodable()
        .is_ok());
        assert!(Record::Start {
            instance: 1,
            workflow: "w f".to_owned(),
        }
        .validate_encodable()
        .is_err());
        assert!(Record::Complete { instance: 1 }
            .validate_encodable()
            .is_ok());
    }

    #[test]
    fn records_stripe_by_instance_and_deploys_pin_to_zero() {
        let deploy = Record::Deploy {
            name: "w".to_owned(),
            goal: "a".to_owned(),
        };
        assert_eq!(deploy.shard(16), 0);
        for id in [0u64, 1, 15, 16, 17, 255] {
            let start = Record::Start {
                instance: id,
                workflow: "w".to_owned(),
            };
            assert_eq!(start.shard(16), (id % 16) as usize);
            // Timer records ride their instance's stripe, so an arm and
            // its start share a segment and tear together.
            let arm = Record::TimerArm {
                instance: id,
                timers: vec![("t@after5".to_owned(), 5)],
            };
            assert_eq!(arm.shard(16), (id % 16) as usize);
            let fire = Record::TimerFire {
                instance: id,
                event: "t@after5".to_owned(),
                at_ms: 5,
            };
            assert_eq!(fire.shard(16), (id % 16) as usize);
        }
    }

    #[test]
    fn timer_records_validate_like_event_records() {
        assert!(Record::TimerArm {
            instance: 0,
            timers: vec![("ok@after5".to_owned(), 5), ("bad name".to_owned(), 9)],
        }
        .validate_encodable()
        .is_err());
        assert!(Record::TimerFire {
            instance: 0,
            event: String::new(),
            at_ms: 1,
        }
        .validate_encodable()
        .is_err());
        assert!(Record::TimerCancel {
            instance: 0,
            event: "ok@deadline7".to_owned(),
        }
        .validate_encodable()
        .is_ok());
        assert_eq!(
            Record::TimerFire {
                instance: 0,
                event: "t@after5".to_owned(),
                at_ms: 5,
            }
            .event_count(),
            1,
            "a wheel expiry appends one journal event"
        );
    }

    #[test]
    fn mem_store_replays_appends_and_truncates_on_checkpoint() {
        let store = MemStore::new();
        let r1 = Record::Start {
            instance: 0,
            workflow: "w".to_owned(),
        };
        let r2 = Record::Events {
            instance: 0,
            events: vec!["a".to_owned(), "b".to_owned()],
        };
        store.append(&r1).unwrap();
        store.append(&r2).unwrap();
        let replay = store.replay().unwrap();
        assert_eq!(replay.snapshot, None);
        assert_eq!(replay.records, vec![r1, r2.clone()]);

        store.checkpoint("snap-text").unwrap();
        let replay = store.replay().unwrap();
        assert_eq!(replay.snapshot.as_deref(), Some("snap-text"));
        assert!(replay.records.is_empty());

        store.append(&r2).unwrap();
        let replay = store.replay().unwrap();
        assert_eq!(replay.records, vec![r2]);

        let stats = store.stats();
        assert_eq!(stats.appends, 3);
        assert_eq!(stats.events, 4);
        assert_eq!(stats.max_group, 2);
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.fsyncs, 0, "memory is not durable and says so");
    }

    #[test]
    fn merge_by_seq_restores_global_order() {
        let e = |seq: u64| (seq, Record::Complete { instance: seq * 10 });
        let merged = merge_by_seq(vec![vec![e(0), e(3)], vec![e(1), e(4)], vec![e(2)]]);
        let ids: Vec<u64> = merged
            .iter()
            .map(|r| match r {
                Record::Complete { instance } => *instance,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![0, 10, 20, 30, 40]);
    }
}
