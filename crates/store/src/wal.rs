//! The segmented write-ahead log backend.
//!
//! ## Layout
//!
//! ```text
//! <root>/
//!   checkpoint.snap          latest compaction snapshot (atomic rename)
//!   shard-00/ 00000001.seg   append-only segments, rotated by size
//!   shard-01/ ...
//! ```
//!
//! One log stripe per shard, matching the sharded runtime's instance
//! striping: every record of one instance lands in one stripe (see
//! [`Record::shard`]), so per-instance order needs no cross-shard
//! coordination. A global `AtomicU64` sequence number — allocated
//! *under the destination stripe's staging lock* — stamps every record,
//! and recovery merges the stripes back into the exact global append
//! order.
//!
//! ## Record frame
//!
//! `[len: u32 LE] [crc32(payload): u32 LE] [payload]` — the payload is
//! the tab-separated text of `encode_payload`. A record either reads
//! back whole (length sane, checksum matches, payload parses) or the
//! scan stops there: everything from the first bad byte on is a **torn
//! tail**, truncated at open and counted in
//! [`StoreStats::torn_bytes`]. Only a tail can legitimately tear —
//! appends are sequential and synced — so any later segments of that
//! stripe are discarded with it rather than replayed out of order.
//!
//! The write path defends that invariant: payloads over `MAX_PAYLOAD`
//! and records the text format cannot round-trip (see
//! [`Record::validate_encodable`]) are rejected with
//! [`StoreError::Unencodable`] before any byte lands, and a failed
//! write or fsync truncates the segment back to its last acknowledged
//! byte (poisoning the stripe until the truncation succeeds) — so a
//! mid-segment frame that fails the scan can only mean external
//! corruption, never a write the store itself acknowledged past.
//!
//! ## The commit pipeline
//!
//! Appending is a two-lock pipeline per stripe (see [`crate::commit`]
//! for the full protocol): frames *stage* into a commit queue under a
//! short **staging** lock, and a per-stripe **leader** drains every
//! staged frame into one `write_all` + one `sync_data` under the
//! separate **I/O** lock — so N concurrent appends on a stripe cost
//! one fsync, not N, while each `append()` still returns only after
//! its record is durable. [`WalOptions::durability`] picks the policy:
//!
//! | [`Durability`]        | acknowledged when…        | crash may lose |
//! |-----------------------|---------------------------|----------------|
//! | `Strict` (default)    | its own fsync returns     | nothing acknowledged |
//! | `Coalesced{max_wait}` | its *group's* fsync returns | nothing acknowledged |
//! | `Periodic{interval}`  | staged (fsync in ≤ interval) | up to one interval, always a contiguous per-stripe suffix |
//!
//! On top of cross-thread coalescing, the runtime's `fire_batch` path
//! still funnels a whole batch into a single record: one frame per
//! batch, however many events it carries ([`StoreStats::max_group`]
//! records how well that is exploited; the group-size and
//! fsync-latency histograms in [`StoreStats`] record how well the
//! pipeline coalesces across threads).
//!
//! ## Checkpoint compaction
//!
//! [`WalStore::checkpoint`] quiesces every stripe's pipeline (staged
//! frames flush, leaders drain) and then freezes all stripes — taking
//! every staging and I/O lock in ascending order, which also blocks the
//! sequence allocator — writes `checkpoint.tmp` — a one-line header
//! `ctr-store checkpoint v1 <cut>` followed by the runtime's ordinary
//! text snapshot — syncs it, renames it over `checkpoint.snap`, syncs
//! the directory, and only then deletes the covered segments. A crash
//! anywhere in that sequence is safe: before the rename the old
//! baseline still rules; after it, leftover segments only contain
//! records with `seq < cut`, which replay skips. Recovery can therefore
//! never land *behind* a committed snapshot.

use crate::commit::{CommitQueue, Durability};
use crate::{
    crc32, decode_payload, encode_payload, merge_by_seq, Counters, Record, Replay, Store,
    StoreError, StoreStats,
};
use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// First line of `checkpoint.snap`, followed by the cut sequence: every
/// record with `seq < cut` is covered by the snapshot body.
const CHECKPOINT_HEADER: &str = "ctr-store checkpoint v1";

/// Frames larger than this are rejected as corrupt rather than
/// allocated — a torn length prefix must not ask for gigabytes.
const MAX_PAYLOAD: u32 = 1 << 28;

/// Tuning knobs for [`WalStore`].
#[derive(Clone, Copy, Debug)]
pub struct WalOptions {
    /// Number of log stripes. Match the runtime's shard count (16) so
    /// instance striping and log striping agree.
    pub shards: usize,
    /// Rotate a segment once it holds at least this many bytes.
    pub segment_bytes: u64,
    /// When an append is acknowledged and what a crash may lose; see
    /// [`Durability`]. Defaults to [`Durability::Strict`].
    pub durability: Durability,
}

impl Default for WalOptions {
    fn default() -> WalOptions {
        WalOptions {
            shards: 16,
            segment_bytes: 4 << 20,
            durability: Durability::Strict,
        }
    }
}

/// Mutable per-stripe file state: the open segment and its write
/// position. Lives behind the stripe's I/O lock.
pub(crate) struct StripeLog {
    pub(crate) dir: PathBuf,
    /// Open segment file, if any writes happened since open/rotation.
    pub(crate) file: Option<File>,
    /// Index of the current (or, if `file` is `None`, next) segment.
    pub(crate) seg_index: u64,
    /// Bytes written to the current segment.
    pub(crate) seg_bytes: u64,
    /// A failed append may have left a partial frame after `seg_bytes`.
    /// While set, no further append may land — the next write after
    /// garbage would be unreachable at recovery (the scan truncates at
    /// the first bad frame). [`WalInner::repair`] truncates the segment
    /// back to `seg_bytes` and clears the flag.
    pub(crate) dirty: bool,
}

impl StripeLog {
    pub(crate) fn segment_path(&self, index: u64) -> PathBuf {
        self.dir.join(format!("{index:08}.seg"))
    }
}

/// One log stripe: the commit queue (staging side) and the segment
/// file state (I/O side), each behind its own lock so appenders can
/// stage the next group while the leader blocks in `sync_data`.
///
/// Lock order within a stripe: staging before I/O; the I/O lock is
/// never held while (re)acquiring the staging lock.
pub(crate) struct Stripe {
    pub(crate) staging: Mutex<CommitQueue>,
    /// Wakes waiters when the durable watermark advances, a group
    /// fails, or leadership frees up (the wait loop is also the leader
    /// election).
    pub(crate) durable_cv: Condvar,
    /// Wakes a leader lingering in its grow-the-group window when a
    /// new frame stages.
    pub(crate) staged_cv: Condvar,
    pub(crate) io: Mutex<StripeLog>,
}

/// The shared guts of a [`WalStore`], behind an `Arc` so the periodic
/// background syncer thread can hold them too.
pub(crate) struct WalInner {
    pub(crate) root: PathBuf,
    pub(crate) options: WalOptions,
    /// Next global sequence number. Allocated while holding the
    /// destination stripe's staging lock, so `checkpoint` (which holds
    /// *all* staging locks) observes a frontier no in-flight append can
    /// cross.
    seq: AtomicU64,
    pub(crate) stripes: Vec<Stripe>,
    pub(crate) counters: Counters,
    /// Scan result from [`WalStore::open`], handed out by the first
    /// [`WalStore::replay`] so recovery does not re-read the disk.
    recovered: Mutex<Option<Replay>>,
    /// Test hook: fail the next N group writes (after writing half the
    /// group's bytes, so a real partial frame exercises the repair
    /// path). Zero in production; one relaxed load per group commit.
    pub(crate) fail_writes: AtomicU32,
    /// Shutdown flag for the periodic syncer thread.
    stop: Mutex<bool>,
    stop_cv: Condvar,
}

/// The durable backend: an append-only segmented log per stripe with a
/// cross-thread group-commit pipeline. See the module docs for the
/// on-disk contract and [`crate::commit`] for the pipeline protocol.
pub struct WalStore {
    inner: Arc<WalInner>,
    /// Background syncer under [`Durability::Periodic`].
    syncer: Option<JoinHandle<()>>,
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io(format!("{context} {}: {e}", path.display()))
}

pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> MutexGuard<'a, T> {
    cv.wait_timeout(guard, timeout)
        .map(|(guard, _)| guard)
        .unwrap_or_else(|e| e.into_inner().0)
}

/// Wraps an encoded payload in the on-disk frame:
/// `[len: u32 LE] [crc32: u32 LE] [payload]`.
pub(crate) fn build_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Syncs a directory so renames/creates/unlinks in it are durable.
fn sync_dir(path: &Path) -> Result<(), StoreError> {
    File::open(path)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err("syncing directory", path, e))
}

/// Result of scanning one stripe directory.
struct StripeScan {
    records: Vec<(u64, Record)>,
    /// Index of the last existing segment (next writes continue there).
    seg_index: u64,
    /// Size of that segment after any torn-tail truncation.
    seg_bytes: u64,
    good_bytes: u64,
    torn_bytes: u64,
}

impl WalStore {
    /// Opens (creating if absent) a WAL rooted at `root` with default
    /// options, repairing any torn tail left by a crash.
    pub fn open(root: impl Into<PathBuf>) -> Result<WalStore, StoreError> {
        WalStore::open_with(root, WalOptions::default())
    }

    /// [`WalStore::open`] with explicit tuning options.
    pub fn open_with(
        root: impl Into<PathBuf>,
        options: WalOptions,
    ) -> Result<WalStore, StoreError> {
        let root = root.into();
        assert!(options.shards > 0, "need at least one stripe");
        fs::create_dir_all(&root).map_err(|e| io_err("creating", &root, e))?;

        let (snapshot, cut) = read_checkpoint(&root)?;

        let counters = Counters::default();
        let mut stripes = Vec::with_capacity(options.shards);
        let mut per_shard = Vec::with_capacity(options.shards);
        let mut max_seq = cut; // next seq must be ≥ the checkpoint cut
        for s in 0..options.shards {
            let dir = root.join(format!("shard-{s:02}"));
            fs::create_dir_all(&dir).map_err(|e| io_err("creating", &dir, e))?;
            let scan = scan_stripe(&dir, cut)?;
            counters.on_recovered(scan.good_bytes, scan.torn_bytes);
            if let Some(&(seq, _)) = scan.records.last() {
                max_seq = max_seq.max(seq + 1);
            }
            per_shard.push(scan.records);
            stripes.push(Stripe {
                staging: Mutex::new(CommitQueue::new()),
                durable_cv: Condvar::new(),
                staged_cv: Condvar::new(),
                io: Mutex::new(StripeLog {
                    dir,
                    file: None,
                    seg_index: scan.seg_index,
                    seg_bytes: scan.seg_bytes,
                    dirty: false,
                }),
            });
        }

        let replay = Replay {
            snapshot,
            records: merge_by_seq(per_shard),
        };
        let inner = Arc::new(WalInner {
            root,
            options,
            seq: AtomicU64::new(max_seq),
            stripes,
            counters,
            recovered: Mutex::new(Some(replay)),
            fail_writes: AtomicU32::new(0),
            stop: Mutex::new(false),
            stop_cv: Condvar::new(),
        });

        let syncer = match options.durability {
            Durability::Periodic { interval } => {
                let inner = Arc::clone(&inner);
                let handle = std::thread::Builder::new()
                    .name("ctr-wal-syncer".to_owned())
                    .spawn(move || {
                        let mut stop = lock(&inner.stop);
                        loop {
                            stop = wait_timeout(&inner.stop_cv, stop, interval);
                            if *stop {
                                return;
                            }
                            drop(stop);
                            for s in 0..inner.options.shards {
                                inner.sync_stripe_once(s);
                            }
                            stop = lock(&inner.stop);
                        }
                    })
                    .map_err(|e| StoreError::Io(format!("spawning wal syncer: {e}")))?;
                Some(handle)
            }
            _ => None,
        };
        Ok(WalStore { inner, syncer })
    }

    /// The store's root directory.
    pub fn path(&self) -> &Path {
        &self.inner.root
    }

    /// The shared internals — for in-crate tests (fault injection,
    /// direct stripe inspection).
    #[cfg(test)]
    pub(crate) fn inner(&self) -> &WalInner {
        &self.inner
    }
}

impl Drop for WalStore {
    fn drop(&mut self) {
        *lock(&self.inner.stop) = true;
        self.inner.stop_cv.notify_all();
        if let Some(handle) = self.syncer.take() {
            let _ = handle.join();
        }
        // Flush any staged-but-unsynced tail (the Periodic window) —
        // best effort: a failure here is exactly the bounded loss the
        // relaxed policy documents. Strict/Coalesced queues are empty
        // by construction (their appends return only after the sync).
        for s in 0..self.inner.options.shards {
            drop(self.inner.quiesce_stripe(s));
        }
    }
}

/// Reads `checkpoint.snap`: returns the snapshot body and the cut
/// sequence, or `(None, 0)` if no checkpoint was ever taken.
fn read_checkpoint(root: &Path) -> Result<(Option<String>, u64), StoreError> {
    let path = root.join("checkpoint.snap");
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((None, 0)),
        Err(e) => return Err(io_err("reading", &path, e)),
    };
    let Some((header, body)) = text.split_once('\n') else {
        return Err(StoreError::Corrupt(
            "checkpoint has no header line".to_owned(),
        ));
    };
    let cut = header
        .strip_prefix(CHECKPOINT_HEADER)
        .map(str::trim)
        .and_then(|cut| cut.parse::<u64>().ok())
        .ok_or_else(|| StoreError::Corrupt(format!("bad checkpoint header: {header:?}")))?;
    Ok((Some(body.to_owned()), cut))
}

/// Numeric index of a `NNNNNNNN.seg` file name, if it is one.
fn segment_index(name: &std::ffi::OsStr) -> Option<u64> {
    let name = name.to_str()?;
    name.strip_suffix(".seg")?.parse().ok()
}

/// Scans one stripe directory: walks its segments in order, collecting
/// every whole record with `seq ≥ cut`. The first bad frame marks a
/// torn tail — the segment is truncated there and any later segments of
/// the stripe are deleted (they would replay records out of order past
/// a hole). Returns where the stripe's writer should resume.
fn scan_stripe(dir: &Path, cut: u64) -> Result<StripeScan, StoreError> {
    let mut segments: Vec<u64> = fs::read_dir(dir)
        .map_err(|e| io_err("listing", dir, e))?
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| segment_index(&entry.file_name()))
        .collect();
    segments.sort_unstable();

    let mut scan = StripeScan {
        records: Vec::new(),
        seg_index: *segments.last().unwrap_or(&0),
        seg_bytes: 0,
        good_bytes: 0,
        torn_bytes: 0,
    };
    let mut torn_at: Option<u64> = None; // segment where the tail tore
    for (i, &index) in segments.iter().enumerate() {
        let path = dir.join(format!("{index:08}.seg"));
        if let Some(first_torn) = torn_at {
            // Everything after a tear is unreachable history; drop it.
            let len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            scan.torn_bytes += len;
            fs::remove_file(&path).map_err(|e| io_err("removing", &path, e))?;
            debug_assert!(index > first_torn);
            continue;
        }
        let mut bytes = Vec::new();
        File::open(&path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| io_err("reading", &path, e))?;
        let (good_end, records) = scan_segment(&bytes, cut);
        scan.records.extend(records);
        scan.good_bytes += good_end;
        if (good_end as usize) < bytes.len() {
            // Torn tail: truncate the segment to its valid prefix.
            scan.torn_bytes += bytes.len() as u64 - good_end;
            let file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| io_err("opening for repair", &path, e))?;
            file.set_len(good_end)
                .and_then(|()| file.sync_all())
                .map_err(|e| io_err("truncating torn tail of", &path, e))?;
            sync_dir(dir)?;
            torn_at = Some(index);
            scan.seg_index = index;
            scan.seg_bytes = good_end;
        } else if i == segments.len() - 1 {
            scan.seg_index = index;
            scan.seg_bytes = good_end;
        }
    }
    Ok(scan)
}

/// Walks frames in one segment's bytes. Returns the byte offset of the
/// end of the last whole, checksum-valid, parseable record (everything
/// before it decoded) — the scan's truncation point on a torn tail.
fn scan_segment(bytes: &[u8], cut: u64) -> (u64, Vec<(u64, Record)>) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while let Some(header) = bytes.get(offset..offset + 8) {
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_PAYLOAD {
            break;
        }
        let start = offset + 8;
        let Some(payload) = bytes.get(start..start + len as usize) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        let Ok((seq, record)) = decode_payload(payload) else {
            break;
        };
        offset = start + len as usize;
        if seq >= cut {
            records.push((seq, record));
        }
    }
    (offset as u64, records)
}

impl Store for WalStore {
    fn append(&self, record: &Record) -> Result<(), StoreError> {
        record.validate_encodable()?;
        let s = record.shard(self.inner.options.shards);
        match self.inner.options.durability {
            Durability::Strict => self.inner.append_strict(s, record),
            Durability::Coalesced { .. } | Durability::Periodic { .. } => {
                self.inner.append_queued(s, record)
            }
        }
    }

    fn replay(&self) -> Result<Replay, StoreError> {
        self.inner.replay()
    }

    fn checkpoint(&self, snapshot: &str) -> Result<(), StoreError> {
        self.inner.checkpoint(snapshot)
    }

    fn stats(&self) -> StoreStats {
        self.inner.counters.snapshot()
    }
}

impl WalInner {
    /// Allocates the next global sequence number. Must be called with
    /// the destination stripe's staging lock held (see `seq`).
    pub(crate) fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Rejects payloads the frame scan would refuse on read — a frame
    /// written past [`MAX_PAYLOAD`] would be discarded at recovery as a
    /// torn tail, taking every later record of the stripe with it. (A
    /// burned seq is a harmless gap — recovery merges by seq and never
    /// requires contiguity.)
    pub(crate) fn check_payload_size(&self, len: usize) -> Result<(), StoreError> {
        if len > MAX_PAYLOAD as usize {
            return Err(StoreError::Unencodable(format!(
                "record payload of {len} bytes exceeds the {MAX_PAYLOAD} byte frame limit"
            )));
        }
        Ok(())
    }

    /// The [`Durability::Strict`] append path: one critical section per
    /// append — the staging lock is held across the whole write, so
    /// strict appends on a stripe serialize and each pays its own fsync,
    /// exactly the pre-pipeline behavior.
    fn append_strict(&self, s: usize, record: &Record) -> Result<(), StoreError> {
        let stripe = &self.stripes[s];
        let _q = lock(&stripe.staging);
        let seq = self.next_seq();
        let payload = encode_payload(seq, record);
        self.check_payload_size(payload.len())?;
        let frame = build_frame(&payload);
        let latency = {
            let mut io = lock(&stripe.io);
            self.write_group(&mut io, &frame)?
        };
        self.counters.on_append(record.event_count());
        self.counters.on_commit(1, latency);
        Ok(())
    }

    /// Writes one group (one or more whole frames) to a stripe's open
    /// segment and syncs it: repair-if-poisoned, rotate-if-full, one
    /// `write_all`, one `sync_data`. On failure the stripe is poisoned
    /// and immediately truncated back to its last acknowledged byte —
    /// a handle whose write or fsync failed cannot be trusted about
    /// what is durable, and writing after a partial frame would strand
    /// every later record behind an unreadable frame at recovery.
    /// Returns the write+sync latency. Called with the I/O lock held.
    pub(crate) fn write_group(
        &self,
        log: &mut StripeLog,
        buf: &[u8],
    ) -> Result<Duration, StoreError> {
        if log.dirty {
            // A previous write failed mid-frame and its immediate
            // repair failed too; retry before writing anything new.
            self.repair(log)?;
        }
        if log.file.is_none() || log.seg_bytes >= self.options.segment_bytes {
            self.rotate(log)?;
        }
        let path = log.segment_path(log.seg_index);
        let file = log.file.as_mut().expect("rotate opened a segment");
        let inject = {
            let mut injected = false;
            let _ = self
                .fail_writes
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                    injected = n > 0;
                    n.checked_sub(1)
                });
            injected
        };
        let start = Instant::now();
        let outcome = if inject {
            let _ = file.write_all(&buf[..buf.len() / 2]);
            Err(std::io::Error::other("injected write failure"))
        } else {
            file.write_all(buf).and_then(|()| file.sync_data())
        };
        match outcome {
            Ok(()) => {
                log.seg_bytes += buf.len() as u64;
                Ok(start.elapsed())
            }
            Err(e) => {
                log.dirty = true;
                let _ = self.repair(log);
                Err(io_err("appending to", &path, e))
            }
        }
    }

    /// Reads everything back; see [`Store::replay`]. Re-scans after the
    /// first call quiesce every stripe's pipeline (so a relaxed
    /// policy's staged-but-unsynced tail is flushed and visible) and
    /// hold all staging + I/O locks for the whole scan — the same
    /// freeze checkpoint takes, in the same ascending order — so
    /// concurrent appends and checkpoints cannot interleave mid-scan
    /// and the merged result is a single point in time across stripes.
    fn replay(&self) -> Result<Replay, StoreError> {
        if let Some(replay) = lock(&self.recovered).take() {
            return Ok(replay);
        }
        let mut queues = Vec::with_capacity(self.options.shards);
        let mut logs = Vec::with_capacity(self.options.shards);
        for s in 0..self.options.shards {
            queues.push(self.quiesce_stripe(s));
            logs.push(lock(&self.stripes[s].io));
        }
        let (snapshot, cut) = read_checkpoint(&self.root)?;
        let mut per_shard = Vec::with_capacity(self.options.shards);
        for log in &logs {
            let mut segments: Vec<u64> = fs::read_dir(&log.dir)
                .map_err(|e| io_err("listing", &log.dir, e))?
                .filter_map(|entry| entry.ok())
                .filter_map(|entry| segment_index(&entry.file_name()))
                .collect();
            segments.sort_unstable();
            let mut records = Vec::new();
            for index in segments {
                let path = log.segment_path(index);
                let mut bytes = Vec::new();
                File::open(&path)
                    .and_then(|mut f| f.read_to_end(&mut bytes))
                    .map_err(|e| io_err("reading", &path, e))?;
                let (_, segment_records) = scan_segment(&bytes, cut);
                records.extend(segment_records);
            }
            per_shard.push(records);
        }
        Ok(Replay {
            snapshot,
            records: merge_by_seq(per_shard),
        })
    }

    /// Compacts; see [`Store::checkpoint`]. Quiesces and freezes every
    /// stripe (ascending order — the only multi-stripe path, so no
    /// ordering conflicts). Quiescing first flushes any staged frames:
    /// under [`Durability::Periodic`] those are acknowledged records
    /// whose effects the caller's snapshot already covers, and they
    /// must not evaporate with the deleted segments. With all staging
    /// locks held no append can allocate a sequence number, so `cut`
    /// cleanly splits history: everything below is in `snapshot`,
    /// everything at or above will be appended after we release.
    fn checkpoint(&self, snapshot: &str) -> Result<(), StoreError> {
        let mut queues = Vec::with_capacity(self.options.shards);
        let mut logs = Vec::with_capacity(self.options.shards);
        for s in 0..self.options.shards {
            queues.push(self.quiesce_stripe(s));
            logs.push(lock(&self.stripes[s].io));
        }
        let cut = self.seq.load(Ordering::Relaxed);

        let tmp = self.root.join("checkpoint.tmp");
        let path = self.root.join("checkpoint.snap");
        let mut file = File::create(&tmp).map_err(|e| io_err("creating", &tmp, e))?;
        file.write_all(format!("{CHECKPOINT_HEADER} {cut}\n").as_bytes())
            .and_then(|()| file.write_all(snapshot.as_bytes()))
            .and_then(|()| file.sync_all())
            .map_err(|e| io_err("writing", &tmp, e))?;
        self.counters.on_checkpoint_sync();
        fs::rename(&tmp, &path).map_err(|e| io_err("installing", &path, e))?;
        sync_dir(&self.root)?;
        self.counters.on_checkpoint_sync();

        // The snapshot is the durable baseline now; covered segments
        // (every record they hold has seq < cut) are dead weight. A
        // crash before these deletes finish is harmless: replay skips
        // records below the cut.
        for log in logs.iter_mut() {
            let entries = fs::read_dir(&log.dir).map_err(|e| io_err("listing", &log.dir, e))?;
            for entry in entries.filter_map(|e| e.ok()) {
                if segment_index(&entry.file_name()).is_none() {
                    continue;
                }
                let path = entry.path();
                match fs::remove_file(&path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(io_err("removing", &path, e)),
                }
            }
            sync_dir(&log.dir)?;
            self.counters.on_checkpoint_sync();
            log.file = None;
            log.seg_index += 1;
            log.seg_bytes = 0;
            // Any partial frame a failed write left behind was deleted
            // with its segment; the stripe starts clean.
            log.dirty = false;
        }
        drop(queues);
        self.counters.on_compaction();
        Ok(())
    }

    /// Truncates a stripe's open segment back to its last acknowledged
    /// byte after a failed write (possibly) left a partial frame past
    /// `seg_bytes` — writing after that garbage would strand every
    /// later record behind an unreadable frame at recovery. The failed
    /// handle is discarded (after a failed write or fsync its state is
    /// untrustworthy); the next write reopens the segment fresh.
    /// Called with the I/O lock held.
    fn repair(&self, log: &mut StripeLog) -> Result<(), StoreError> {
        log.file = None;
        let path = log.segment_path(log.seg_index);
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| io_err("reopening to repair", &path, e))?;
        file.set_len(log.seg_bytes)
            .and_then(|()| file.sync_all())
            .map_err(|e| io_err("truncating failed append in", &path, e))?;
        self.counters.on_rotation_sync();
        log.dirty = false;
        Ok(())
    }

    /// Opens the next segment file for a stripe (called with the I/O
    /// lock held).
    fn rotate(&self, log: &mut StripeLog) -> Result<(), StoreError> {
        if log.file.is_some() {
            log.seg_index += 1;
        } else if log.seg_bytes > 0 {
            // Resuming after open(): continue the existing segment.
            let path = log.segment_path(log.seg_index);
            let file = OpenOptions::new()
                .append(true)
                .open(&path)
                .map_err(|e| io_err("reopening", &path, e))?;
            log.file = Some(file);
            return Ok(());
        }
        let path = log.segment_path(log.seg_index);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("creating", &path, e))?;
        // Make the new directory entry durable before its records are.
        sync_dir(&log.dir)?;
        self.counters.on_rotation_sync();
        log.file = Some(file);
        log.seg_bytes = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unique scratch directory under the target dir (no external
    /// tempdir crate in this environment).
    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ctr-store-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn ev(instance: u64, events: &[&str]) -> Record {
        Record::Events {
            instance,
            events: events.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    #[test]
    fn default_durability_is_strict() {
        assert_eq!(WalOptions::default().durability, Durability::Strict);
    }

    #[test]
    fn wal_round_trips_across_reopen() {
        let dir = scratch("roundtrip");
        let records = vec![
            Record::Deploy {
                name: "pay".to_owned(),
                goal: "a * b".to_owned(),
            },
            Record::Start {
                instance: 0,
                workflow: "pay".to_owned(),
            },
            ev(0, &["a"]),
            Record::Start {
                instance: 17,
                workflow: "pay".to_owned(),
            },
            ev(17, &["a", "b"]),
            Record::Complete { instance: 17 },
        ];
        {
            let store = WalStore::open(&dir).unwrap();
            for r in &records {
                store.append(r).unwrap();
            }
            let stats = store.stats();
            assert_eq!(stats.appends, 6);
            assert_eq!(stats.events, 3);
            assert_eq!(stats.max_group, 2);
            assert_eq!(stats.fsyncs, 6, "strict: every append pays its own sync");
            assert!(
                stats.rotation_syncs >= 1,
                "segment-creation dir syncs are attributed separately"
            );
            assert_eq!(stats.group_size_hist[0], 6, "all groups of one");
        }
        let store = WalStore::open(&dir).unwrap();
        let replay = store.replay().unwrap();
        assert_eq!(replay.snapshot, None);
        assert_eq!(replay.records, records);
        assert!(store.stats().recovered_bytes > 0);
        assert_eq!(store.stats().torn_bytes, 0);
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let dir = scratch("torn");
        {
            let store = WalStore::open(&dir).unwrap();
            store
                .append(&Record::Start {
                    instance: 1,
                    workflow: "w".to_owned(),
                })
                .unwrap();
            store.append(&ev(1, &["a"])).unwrap();
        }
        // Tear the last record: chop bytes off the stripe-01 segment.
        let seg = dir.join("shard-01").join("00000000.seg");
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();

        let store = WalStore::open(&dir).unwrap();
        let replay = store.replay().unwrap();
        assert_eq!(
            replay.records,
            vec![Record::Start {
                instance: 1,
                workflow: "w".to_owned(),
            }]
        );
        assert!(store.stats().torn_bytes > 0);
        // The truncated file holds exactly the surviving record.
        let repaired = fs::read(&seg).unwrap();
        assert!(repaired.len() < bytes.len());

        // New appends continue cleanly after the repair.
        store.append(&ev(1, &["a"])).unwrap();
        drop(store);
        let store = WalStore::open(&dir).unwrap();
        assert_eq!(store.replay().unwrap().records.len(), 2);
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_mid_segment_discards_the_suffix_not_the_prefix() {
        let dir = scratch("bitflip");
        {
            let store = WalStore::open(&dir).unwrap();
            for i in 0..5 {
                store.append(&ev(32, &[&format!("e{i}")])).unwrap();
            }
        }
        let seg = dir.join("shard-00").join("00000000.seg");
        let mut bytes = fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();

        let store = WalStore::open(&dir).unwrap();
        let replay = store.replay().unwrap();
        assert!(replay.records.len() < 5, "suffix after the flip is gone");
        for (i, r) in replay.records.iter().enumerate() {
            assert_eq!(r, &ev(32, &[&format!("e{i}")]), "prefix intact");
        }
        assert!(store.stats().torn_bytes > 0);
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_recovery_never_lands_behind_it() {
        let dir = scratch("checkpoint");
        {
            let store = WalStore::open(&dir).unwrap();
            store.append(&ev(3, &["a"])).unwrap();
            store.append(&ev(3, &["b"])).unwrap();
            store.checkpoint("the-snapshot").unwrap();
            // Segments covered by the checkpoint are gone.
            let survivors: Vec<_> = fs::read_dir(dir.join("shard-03"))
                .unwrap()
                .filter_map(|e| e.ok())
                .collect();
            assert!(survivors.is_empty(), "compaction removed segments");
            store.append(&ev(3, &["c"])).unwrap();
            assert_eq!(store.stats().compactions, 1);
            assert!(
                store.stats().checkpoint_syncs >= 2,
                "checkpoint syncs are attributed separately from commits"
            );
            assert_eq!(store.stats().fsyncs, 3, "one commit sync per append");
        }
        let store = WalStore::open(&dir).unwrap();
        let replay = store.replay().unwrap();
        assert_eq!(replay.snapshot.as_deref(), Some("the-snapshot"));
        assert_eq!(replay.records, vec![ev(3, &["c"])]);
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_segments_below_the_cut_are_skipped() {
        // Simulate a crash between checkpoint rename and segment
        // deletion: put a pre-cut segment back and reopen.
        let dir = scratch("stale");
        let seg = dir.join("shard-05").join("00000000.seg");
        {
            let store = WalStore::open(&dir).unwrap();
            store.append(&ev(5, &["old"])).unwrap();
            let stale = fs::read(&seg).unwrap();
            store.checkpoint("snap").unwrap();
            store.append(&ev(5, &["new"])).unwrap();
            // Resurrect the pre-checkpoint segment alongside the live one.
            fs::write(&seg, stale).unwrap();
        }
        let store = WalStore::open(&dir).unwrap();
        let replay = store.replay().unwrap();
        assert_eq!(replay.snapshot.as_deref(), Some("snap"));
        assert_eq!(
            replay.records,
            vec![ev(5, &["new"])],
            "pre-cut record skipped"
        );
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_rotate_by_size_and_replay_in_order() {
        let dir = scratch("rotate");
        let options = WalOptions {
            shards: 4,
            segment_bytes: 64,
            ..WalOptions::default()
        };
        {
            let store = WalStore::open_with(&dir, options).unwrap();
            for i in 0..40u64 {
                store.append(&ev(i % 4, &[&format!("e{i}")])).unwrap();
            }
        }
        let segs = fs::read_dir(dir.join("shard-00")).unwrap().count();
        assert!(
            segs > 1,
            "size limit forces rotation, got {segs} segment(s)"
        );
        let store = WalStore::open_with(&dir, options).unwrap();
        let replay = store.replay().unwrap();
        assert_eq!(replay.records.len(), 40);
        for (i, r) in replay.records.iter().enumerate() {
            assert_eq!(r, &ev(i as u64 % 4, &[&format!("e{i}")]), "global order");
        }
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_frame_from_a_failed_append_is_repaired_before_the_next() {
        use std::io::Write as _;
        // Simulate a failed append that left a partial frame behind the
        // acknowledged tail: write garbage through the open handle and
        // mark the stripe dirty, exactly the state the write error
        // path leaves when its immediate repair also fails. The next
        // append must truncate back to the last acknowledged byte
        // before writing — otherwise its record (and everything after)
        // would sit behind an unreadable frame and be discarded as a
        // torn tail at recovery.
        let dir = scratch("failedappend");
        let store = WalStore::open(&dir).unwrap();
        store.append(&ev(1, &["a"])).unwrap();
        {
            let mut log = lock(&store.inner().stripes[1].io);
            let good = log.seg_bytes;
            let path = log.segment_path(log.seg_index);
            log.file
                .as_mut()
                .unwrap()
                .write_all(&[0xDE, 0xAD, 0xBE])
                .unwrap();
            assert!(fs::metadata(&path).unwrap().len() > good);
            log.dirty = true;
        }
        store.append(&ev(1, &["b"])).unwrap();
        drop(store);
        let store = WalStore::open(&dir).unwrap();
        assert_eq!(store.stats().torn_bytes, 0, "no garbage survived");
        assert_eq!(
            store.replay().unwrap().records,
            vec![ev(1, &["a"]), ev(1, &["b"])]
        );
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unencodable_records_are_rejected_before_any_write() {
        let dir = scratch("unencodable");
        let store = WalStore::open(&dir).unwrap();
        // An event name with whitespace would round-trip into multiple
        // events (`split_whitespace` on read) — replay divergence.
        let err = store.append(&ev(2, &["two words"])).unwrap_err();
        assert!(matches!(err, StoreError::Unencodable(_)), "got {err:?}");
        let err = store
            .append(&Record::Start {
                instance: 2,
                workflow: "tab\tbed".to_owned(),
            })
            .unwrap_err();
        assert!(matches!(err, StoreError::Unencodable(_)), "got {err:?}");
        // Nothing landed; the stripe still accepts normal traffic.
        assert_eq!(store.stats().appends, 0);
        store.append(&ev(2, &["fine"])).unwrap();
        drop(store);
        let store = WalStore::open(&dir).unwrap();
        assert_eq!(store.replay().unwrap().records, vec![ev(2, &["fine"])]);
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_payloads_are_rejected_before_any_write() {
        // The scan rejects frames over MAX_PAYLOAD on read; writing one
        // anyway would strand it (and every later record of the stripe)
        // as a torn tail at recovery. The write path must refuse first.
        let dir = scratch("toolarge");
        let store = WalStore::open(&dir).unwrap();
        let err = store
            .append(&Record::Deploy {
                name: "big".to_owned(),
                goal: "g".repeat(MAX_PAYLOAD as usize + 1),
            })
            .unwrap_err();
        assert!(matches!(err, StoreError::Unencodable(_)), "got {err:?}");
        assert_eq!(store.stats().appends, 0);
        store.append(&ev(0, &["a"])).unwrap();
        drop(store);
        let store = WalStore::open(&dir).unwrap();
        assert_eq!(store.replay().unwrap().records, vec![ev(0, &["a"])]);
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_header_is_a_typed_error() {
        let dir = scratch("badckpt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("checkpoint.snap"), "not a checkpoint\nbody").unwrap();
        assert!(matches!(WalStore::open(&dir), Err(StoreError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }
}
