//! Cross-thread group commit: the WAL commit pipeline.
//!
//! PR 7's append path held the stripe lock across `write_all` +
//! `sync_data`, so N concurrent appenders on one stripe paid N serial
//! fsyncs — the ~400× throughput cliff `BENCH_store.json` records
//! between the in-memory and per-fire-fsync configurations. This module
//! replaces that with the classic leader/follower group commit of
//! production databases:
//!
//! 1. **Stage.** An appender encodes its frame *under a short staging
//!    lock* (where the global sequence number is also allocated, so the
//!    checkpoint-cut invariant is unchanged), pushes the bytes onto the
//!    stripe's commit queue, takes a monotonically increasing *ticket*,
//!    and — under [`Durability::Coalesced`] — waits on the stripe's
//!    durable-watermark condvar.
//! 2. **Lead.** The first waiter to observe no active leader becomes
//!    the **leader**: it may wait up to `max_wait` for the group to
//!    grow, then drains *every* staged frame, releases the staging lock,
//!    and commits the whole group with **one** `write_all` and **one**
//!    `sync_data` under the stripe's separate I/O lock.
//! 3. **Publish.** Back under the staging lock the leader advances the
//!    durable watermark past the group's tickets, steps down, and wakes
//!    the group. Waiters whose ticket is at or below the watermark
//!    return `Ok` — each `append()` still returns only after its record
//!    is durable, so the write-ahead contract is unchanged. Any waiter
//!    may itself become the next leader (the wait loop doubles as
//!    leader election), so frames staged while the previous leader was
//!    inside `sync_data` form the next group: coalescing emerges from
//!    fsync latency itself, no timer required — which is also why the
//!    win shows up even on a single-CPU host (fsync is I/O-bound; the
//!    kernel runs the other appenders while the leader blocks).
//!
//! **Failure discipline.** A failed group write poisons the stripe
//! (`dirty`), truncates the segment back to the last *acknowledged*
//! byte, and fails **every** waiter in the group with the typed
//! [`StoreError`] — the durable watermark never advances past a
//! truncation point, so no waiter can be told "durable" for bytes that
//! were cut. Under [`Durability::Periodic`] there are no waiters; the
//! error is *latched* as a sticky per-stripe error that fails every
//! subsequent `append` on that stripe until the store is reopened —
//! one observer is not enough, because acknowledged-but-unsynced
//! records were already dropped and later appenders would otherwise
//! stage into a silently lossy stripe.
//!
//! **Lock order.** Within a stripe: staging before I/O, and the I/O
//! lock is never held while (re)acquiring the staging lock — the leader
//! drops staging for the write and drops I/O before publishing. Across
//! stripes only `checkpoint`/`replay` lock more than one, always in
//! ascending index order, quiescing each stripe's pipeline
//! (`WalInner::quiesce_stripe`) before freezing its I/O state.

use crate::wal::{Stripe, WalInner};
use crate::{encode_payload, Record, StoreError};
use std::collections::BTreeMap;
use std::mem;
use std::sync::MutexGuard;
use std::time::{Duration, Instant};

/// When a [`crate::wal::WalStore`] append is acknowledged, and what a
/// crash may therefore lose. Set via [`crate::WalOptions::durability`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Durability {
    /// One fsync per append, serialized under the stripe lock — exactly
    /// the pre-pipeline behavior. Strongest latency ordering, slowest
    /// under concurrency (N appenders pay N serial fsyncs).
    #[default]
    Strict,
    /// Leader/follower group commit: concurrent appends on a stripe
    /// coalesce into one `write_all` + one `sync_data`, and every
    /// `append` still returns only after its record is durable — a
    /// crash can never lose an acknowledged record. Before writing, the
    /// leader lingers in short slices *while the group keeps growing*,
    /// up to `max_wait` total — enough for followers woken by the
    /// previous commit to join this group instead of forcing the next
    /// one, at a bounded latency cost ([`Duration::ZERO`] disables the
    /// linger and relies purely on the batching that fsync latency
    /// itself provides). See [`Durability::coalesced`] for the default.
    Coalesced {
        /// Upper bound on the leader's grow-the-group linger.
        max_wait: Duration,
    },
    /// Relaxed: `append` acknowledges after *staging*; a background
    /// syncer thread commits staged frames every `interval`. A crash
    /// may lose up to one interval of acknowledged records (always a
    /// contiguous per-stripe suffix, never a gap). For workloads where
    /// the journal is a log, not a ledger.
    Periodic {
        /// How often the background syncer drains the commit queues.
        interval: Duration,
    },
}

impl Durability {
    /// [`Durability::Coalesced`] with a 100 µs grow-the-group linger —
    /// well under one fsync, enough to gather the followers the
    /// previous commit just woke. The recommended non-strict policy.
    pub const fn coalesced() -> Durability {
        Durability::Coalesced {
            max_wait: Duration::from_micros(100),
        }
    }

    /// [`Durability::Periodic`] with a 5 ms loss window.
    pub const fn periodic() -> Durability {
        Durability::Periodic {
            interval: Duration::from_millis(5),
        }
    }
}

/// A stripe's commit queue: staged frames awaiting the next group
/// write, plus the ticket bookkeeping that orders acknowledgements.
/// Lives behind the stripe's staging mutex.
pub(crate) struct CommitQueue {
    /// Next ticket to hand out (the first staged frame gets ticket 1).
    next_ticket: u64,
    /// Highest ticket already drained into a group (written or failed).
    drained: u64,
    /// Highest ticket durably synced; waiters at or below return `Ok`.
    durable: u64,
    /// A leader is currently committing a group.
    leader: bool,
    /// Size of the group the last leader drained — the linger's
    /// concurrency signal: a stripe whose groups are singletons has no
    /// followers worth waiting for.
    last_group: u64,
    /// Concatenated frames awaiting the next group write.
    buf: Vec<u8>,
    /// Journal event count per staged frame, in ticket order.
    frame_events: Vec<u64>,
    /// Per-ticket failure verdicts from a failed group write; each
    /// waiter removes (and returns) its own entry, so the map stays
    /// bounded by the number of concurrently failed appends.
    failures: BTreeMap<u64, StoreError>,
    /// Background-sync failure under [`Durability::Periodic`] (no
    /// waiter to deliver it to); latched — every subsequent append on
    /// the stripe fails with a clone until the store is reopened.
    sticky_error: Option<StoreError>,
}

impl CommitQueue {
    pub(crate) fn new() -> CommitQueue {
        CommitQueue {
            next_ticket: 1,
            drained: 0,
            durable: 0,
            leader: false,
            last_group: 0,
            buf: Vec::new(),
            frame_events: Vec::new(),
            failures: BTreeMap::new(),
            sticky_error: None,
        }
    }

    /// Frames currently staged and not yet drained into a group.
    fn staged_frames(&self) -> usize {
        self.frame_events.len()
    }
}

impl WalInner {
    /// The queued append path ([`Durability::Coalesced`] and
    /// [`Durability::Periodic`]): stage the frame under the staging
    /// lock, then either wait for the durable watermark (coalesced) or
    /// acknowledge immediately (periodic).
    pub(crate) fn append_queued(&self, s: usize, record: &Record) -> Result<(), StoreError> {
        let stripe = &self.stripes[s];
        let mut q = crate::wal::lock(&stripe.staging);

        let (wait, window) = match self.options.durability {
            Durability::Coalesced { max_wait } => (true, max_wait),
            Durability::Periodic { .. } => (false, Duration::ZERO),
            Durability::Strict => unreachable!("strict appends use append_strict"),
        };
        if !wait {
            // A background sync failed since the last append: the
            // staged window it covered is gone (truncated back to the
            // acknowledged tail). The error is *latched*, not consumed:
            // a Periodic appender that saw one `Ok` has no later chance
            // to learn the stripe is broken, so every subsequent append
            // on the stripe must keep failing until the store is
            // reopened (which rescans and repairs the segment). Taking
            // the error here would acknowledge new records into a
            // stripe whose acknowledged window was already cut.
            if let Some(err) = &q.sticky_error {
                return Err(err.clone());
            }
        }

        // Sequence allocation stays under the staging lock on purpose:
        // checkpoint quiesces and holds every staging lock while the
        // cut is chosen, so no append can hold an unwritten seq.
        let seq = self.next_seq();
        let payload = encode_payload(seq, record);
        self.check_payload_size(payload.len())?;
        let frame = crate::wal::build_frame(&payload);

        let ticket = q.next_ticket;
        q.next_ticket += 1;
        q.buf.extend_from_slice(&frame);
        q.frame_events.push(record.event_count());
        // Wake a leader lingering in its grow-the-group window.
        stripe.staged_cv.notify_all();

        if !wait {
            // Periodic: acknowledged now, durable within one interval.
            self.counters.on_append(record.event_count());
            return Ok(());
        }

        loop {
            // Failure check first: after a failed group the watermark
            // of a *later* successful group jumps past the failed
            // tickets, so `durable >= ticket` alone would lie to them.
            // Only the owning waiter removes its entry, so no race.
            if let Some(err) = q.failures.remove(&ticket) {
                return Err(err);
            }
            if q.durable >= ticket {
                return Ok(());
            }
            if q.leader {
                q = crate::wal::wait(&stripe.durable_cv, q);
            } else {
                // Leader election is the wait loop itself: the first
                // waiter to observe no leader commits everyone staged
                // so far (its own frame included), then re-checks.
                q.leader = true;
                q = self.lead(stripe, q, window);
            }
        }
    }

    /// Commits one group as the stripe's leader. Called with the
    /// staging lock held and `leader` already set; returns with the
    /// staging lock re-held, `leader` cleared, and the group's verdict
    /// published (watermark advanced or per-ticket failures recorded).
    fn lead<'a>(
        &self,
        stripe: &'a Stripe,
        q: MutexGuard<'a, CommitQueue>,
        window: Duration,
    ) -> MutexGuard<'a, CommitQueue> {
        drop(q);
        // Take the I/O lock *before* draining: if the previous group's
        // fsync is still in flight we wait here with the staging lock
        // free, so frames staged meanwhile join *this* group instead of
        // the one after — group size tracks concurrency, not luck. Safe
        // against the staging→I/O order used by strict appends and
        // checkpoint/replay: only a leader takes the locks in this
        // order, at most one leader runs per stripe (the `leader`
        // flag), strict mode never has leaders at all, and
        // checkpoint/replay only take a stripe's I/O lock while holding
        // its staging lock *after* quiescing it — with `leader` false
        // and staging held, no new leader can exist to hold the I/O
        // side. So the inverted acquisition can never form a cycle.
        let mut io = crate::wal::lock(&stripe.io);
        let mut q = crate::wal::lock(&stripe.staging);

        // Linger up to `window` for the group to reach the size of the
        // *previous* group — the stripe's observed concurrency: the
        // followers the last commit woke are re-appending right now,
        // and waiting a fraction of an fsync lets them stage into this
        // group instead of forcing the next one. Every stage notifies
        // `staged_cv`, so the wait ends the moment the target is met —
        // in steady state the linger costs nothing — and the drain
        // below takes *everything* staged, so groups can always grow
        // past the target and the target adapts upward for free (and
        // downward after one timed-out window). An uncontended stripe
        // (no company staged, last group a singleton) skips the linger
        // entirely and pays nothing over a strict append.
        if !window.is_zero() && (q.staged_frames() > 1 || q.last_group > 1) {
            let target = q.last_group.max(2) as usize;
            let deadline = Instant::now() + window;
            while q.staged_frames() < target {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                q = crate::wal::wait_timeout(&stripe.staged_cv, q, deadline - now);
            }
        }
        let buf = mem::take(&mut q.buf);
        let frame_events = mem::take(&mut q.frame_events);
        let frames = frame_events.len() as u64;
        debug_assert!(frames > 0, "a leader always has at least its own frame");
        q.last_group = frames;
        let first = q.drained + 1;
        let last = q.drained + frames;
        q.drained = last;
        drop(q);

        // The write itself runs under the I/O lock only — appenders
        // keep staging into the next group while we block in fsync.
        let outcome = self.write_group(&mut io, &buf);
        drop(io);

        let mut q = crate::wal::lock(&stripe.staging);
        match outcome {
            Ok(latency) => {
                // `max`, not assignment: the next leader can race ahead
                // and publish a higher watermark before we re-acquire
                // the staging lock; the watermark must never regress.
                q.durable = q.durable.max(last);
                if matches!(self.options.durability, Durability::Coalesced { .. }) {
                    // Periodic already counted at acknowledgement time.
                    for &events in &frame_events {
                        self.counters.on_append(events);
                    }
                }
                self.counters.on_commit(frames, latency);
            }
            Err(err) => {
                // The stripe was poisoned and truncated back to the
                // last acknowledged byte inside `write_group`; no
                // waiter may be told "durable" past that point, so the
                // watermark stays put and every ticket in the group
                // gets the typed error.
                if matches!(self.options.durability, Durability::Coalesced { .. }) {
                    for ticket in first..=last {
                        q.failures.insert(ticket, err.clone());
                    }
                } else {
                    q.sticky_error = Some(err);
                }
            }
        }
        q.leader = false;
        stripe.durable_cv.notify_all();
        q
    }

    /// Drains a stripe's commit queue until it is empty and no leader
    /// is active, then returns the staging guard — with it held, no new
    /// frame can stage and no leader can start, so the caller
    /// (`checkpoint`, `replay`, `Drop`) sees a fully quiesced stripe.
    pub(crate) fn quiesce_stripe(&self, s: usize) -> MutexGuard<'_, CommitQueue> {
        let stripe = &self.stripes[s];
        let mut q = crate::wal::lock(&stripe.staging);
        loop {
            if q.leader {
                q = crate::wal::wait(&stripe.durable_cv, q);
            } else if q.staged_frames() > 0 {
                q.leader = true;
                q = self.lead(stripe, q, Duration::ZERO);
            } else {
                return q;
            }
        }
    }

    /// One background-syncer pass over a stripe: commit whatever is
    /// staged, without waiting for an idle pipeline.
    pub(crate) fn sync_stripe_once(&self, s: usize) {
        let stripe = &self.stripes[s];
        let q = crate::wal::lock(&stripe.staging);
        if !q.leader && q.staged_frames() > 0 {
            let mut q = q;
            q.leader = true;
            drop(self.lead(stripe, q, Duration::ZERO));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{WalOptions, WalStore};
    use crate::{Store, StoreError};
    use std::fs;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ctr-commit-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn ev(instance: u64, name: &str) -> Record {
        Record::Events {
            instance,
            events: vec![name.to_owned()],
        }
    }

    fn one_stripe(durability: Durability) -> WalOptions {
        WalOptions {
            shards: 1,
            durability,
            ..WalOptions::default()
        }
    }

    #[test]
    fn coalesced_appends_share_fsyncs_across_threads() {
        let dir = scratch("coalesce");
        let options = one_stripe(Durability::Coalesced {
            max_wait: Duration::from_millis(250),
        });
        let store = Arc::new(WalStore::open_with(&dir, options).unwrap());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let store = &store;
                scope.spawn(move || store.append(&ev(t, &format!("e{t}"))).unwrap());
            }
        });
        let stats = store.stats();
        assert_eq!(stats.appends, 4);
        assert!(
            stats.fsyncs < 4,
            "4 concurrent appends must coalesce into fewer than 4 fsyncs, got {}",
            stats.fsyncs
        );
        assert!(stats.fsyncs >= 1);
        drop(store);
        let store = WalStore::open_with(&dir, options).unwrap();
        assert_eq!(store.replay().unwrap().records.len(), 4);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn periodic_acknowledges_before_durable_and_flushes_on_drop() {
        let dir = scratch("periodic-drop");
        // An interval far beyond the test: only the Drop flush syncs.
        let options = one_stripe(Durability::Periodic {
            interval: Duration::from_secs(3600),
        });
        let store = WalStore::open_with(&dir, options).unwrap();
        store.append(&ev(0, "a")).unwrap();
        store.append(&ev(0, "b")).unwrap();
        assert_eq!(store.stats().appends, 2, "acknowledged at staging time");
        assert_eq!(store.stats().fsyncs, 0, "nothing synced yet");
        drop(store);
        let store = WalStore::open_with(&dir, options).unwrap();
        assert_eq!(
            store.replay().unwrap().records,
            vec![ev(0, "a"), ev(0, "b")],
            "drop flushed the staged window"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn periodic_background_syncer_drains_within_the_interval() {
        let dir = scratch("periodic-sync");
        let options = one_stripe(Durability::Periodic {
            interval: Duration::from_millis(2),
        });
        let store = WalStore::open_with(&dir, options).unwrap();
        store.append(&ev(0, "a")).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while store.stats().fsyncs == 0 {
            assert!(Instant::now() < deadline, "syncer never drained the queue");
            std::thread::sleep(Duration::from_millis(1));
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn one_group_write_records_its_size_in_the_histogram() {
        let dir = scratch("grouphist");
        let options = one_stripe(Durability::Periodic {
            interval: Duration::from_secs(3600),
        });
        let store = WalStore::open_with(&dir, options).unwrap();
        for i in 0..4u64 {
            store.append(&ev(0, &format!("e{i}"))).unwrap();
        }
        // The first replay hands back the open-time scan (empty dir);
        // a re-scan quiesces the pipeline, so the four staged frames
        // commit as exactly one group write.
        assert_eq!(store.replay().unwrap().records.len(), 0);
        assert_eq!(store.replay().unwrap().records.len(), 4);
        let stats = store.stats();
        assert_eq!(stats.fsyncs, 1, "one fsync for the whole group");
        // Bucket 2 covers group sizes 4..8.
        assert_eq!(stats.group_size_hist[2], 1, "{:?}", stats.group_size_hist);
        assert!(stats.fsync_p50_micros() <= stats.fsync_p99_micros());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leader_failure_fails_every_waiter_then_the_stripe_repairs() {
        let dir = scratch("leaderfail");
        let options = one_stripe(Durability::Coalesced {
            max_wait: Duration::from_millis(100),
        });
        let store = Arc::new(WalStore::open_with(&dir, options).unwrap());
        store.append(&ev(0, "durable")).unwrap();

        // Every group write fails (with a real partial frame written)
        // until the hook is cleared — however the racing appends below
        // group themselves, each one's group fails and each waiter must
        // get the typed error.
        store.inner().fail_writes.store(u32::MAX, Ordering::Relaxed);
        let failures: Vec<StoreError> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3u64)
                .map(|t| {
                    let store = &store;
                    scope.spawn(move || store.append(&ev(t, &format!("doomed{t}"))))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap().unwrap_err())
                .collect()
        });
        assert_eq!(failures.len(), 3, "every waiter in the group errored");
        for err in &failures {
            assert!(matches!(err, StoreError::Io(_)), "typed i/o error: {err:?}");
        }

        // The stripe repaired itself: the next append lands with no
        // partial frame ahead of it, and recovery sees no torn bytes.
        store.inner().fail_writes.store(0, Ordering::Relaxed);
        store.append(&ev(0, "after")).unwrap();
        drop(store);
        let store = WalStore::open_with(&dir, options).unwrap();
        assert_eq!(store.stats().torn_bytes, 0, "no injected garbage survived");
        assert_eq!(
            store.replay().unwrap().records,
            vec![ev(0, "durable"), ev(0, "after")]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn periodic_sync_failure_latches_until_reopen() {
        let dir = scratch("stickylatch");
        // Huge interval: the background syncer never runs, so the only
        // sync points are the deterministic quiesces below.
        let options = one_stripe(Durability::Periodic {
            interval: Duration::from_secs(3600),
        });
        let store = WalStore::open_with(&dir, options).unwrap();
        store.append(&ev(0, "durable")).unwrap();
        // The first replay hands back the open-time scan without
        // touching the pipeline; the second quiesces, committing
        // "durable" before the fault is armed.
        let _ = store.replay().unwrap();
        assert_eq!(store.replay().unwrap().records, vec![ev(0, "durable")]);

        // The next sync fails: "doomed" is acknowledged at staging
        // time, then the quiesce inside replay hits the injected write
        // error, truncates the stripe back to the acknowledged tail,
        // and latches the sticky error.
        store.inner().fail_writes.store(u32::MAX, Ordering::Relaxed);
        store.append(&ev(0, "doomed")).unwrap();
        assert_eq!(store.replay().unwrap().records, vec![ev(0, "durable")]);

        // Even with the fault gone, the stripe must stay failed: the
        // acknowledged "doomed" record is already lost, and a Periodic
        // appender that got one `Ok` never looks back. Pre-fix, the
        // `take()` meant only the first of these three observed the
        // error and the other two were silently acknowledged.
        store.inner().fail_writes.store(0, Ordering::Relaxed);
        for i in 0..3 {
            let err = store.append(&ev(0, &format!("latched{i}"))).unwrap_err();
            assert!(matches!(err, StoreError::Io(_)), "append {i}: {err:?}");
        }

        // Explicit reopen is the repair: it rescans the segments and
        // starts a fresh pipeline, and appends flow again.
        drop(store);
        let store = WalStore::open_with(&dir, options).unwrap();
        store.append(&ev(0, "after")).unwrap();
        let _ = store.replay().unwrap();
        assert_eq!(
            store.replay().unwrap().records,
            vec![ev(0, "durable"), ev(0, "after")]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_quiesces_a_relaxed_pipeline_before_cutting() {
        let dir = scratch("ckptflush");
        let options = one_stripe(Durability::Periodic {
            interval: Duration::from_secs(3600),
        });
        let store = WalStore::open_with(&dir, options).unwrap();
        store.append(&ev(0, "staged")).unwrap();
        // The staged frame is acknowledged but not yet durable; the
        // checkpoint must flush it before choosing the cut, or its
        // acknowledged effect would be lost with the deleted segments.
        store.checkpoint("snap").unwrap();
        store.append(&ev(0, "after")).unwrap();
        drop(store);
        let store = WalStore::open_with(&dir, options).unwrap();
        let replay = store.replay().unwrap();
        assert_eq!(replay.snapshot.as_deref(), Some("snap"));
        assert_eq!(replay.records, vec![ev(0, "after")]);
        fs::remove_dir_all(&dir).ok();
    }
}
