//! Relational database states.
//!
//! The paper's model theory ranges over an abstract set of states; "for
//! the purpose of this paper, the reader can think of the states as just a
//! set of relational databases" (§2). This module is that substrate: a
//! [`Database`] maps predicate names to sets of ground tuples, with
//! invertible elementary [`Change`]s so the execution engine can backtrack
//! by undoing a trail rather than copying states.
//!
//! Everything is kept in `BTree` collections for deterministic iteration —
//! nondeterminism in executions must come from the logic, never from hash
//! ordering.

use ctr::symbol::Symbol;
use ctr::term::Term;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A ground tuple.
pub type Tuple = Vec<Term>;

/// A relational database state.
#[derive(Clone, Default)]
pub struct Database {
    relations: BTreeMap<Symbol, BTreeSet<Tuple>>,
}

impl PartialEq for Database {
    // States compare by *content*: a declared-but-empty relation is the
    // same state as an undeclared one, so undoing a trail restores
    // equality even when it leaves empty schema entries behind.
    fn eq(&self, other: &Database) -> bool {
        let mine = self.relations.iter().filter(|(_, ts)| !ts.is_empty());
        let theirs = other.relations.iter().filter(|(_, ts)| !ts.is_empty());
        mine.eq(theirs)
    }
}

impl Eq for Database {}

/// An elementary, invertible state change.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Change {
    /// Insert `tuple` into `rel`.
    Insert {
        /// Target relation.
        rel: Symbol,
        /// The ground tuple to insert.
        tuple: Tuple,
    },
    /// Delete `tuple` from `rel`.
    Delete {
        /// Target relation.
        rel: Symbol,
        /// The ground tuple to delete.
        tuple: Tuple,
    },
}

impl Change {
    /// The relation this change touches.
    pub fn relation(&self) -> Symbol {
        match self {
            Change::Insert { rel, .. } | Change::Delete { rel, .. } => *rel,
        }
    }
}

/// A state transition: zero or more changes applied atomically. The
/// transition oracle of the paper maps an elementary update to the *set*
/// of possible deltas — updates may be nondeterministic.
pub type Delta = Vec<Change>;

impl Database {
    /// The empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Declares an (initially empty) relation, making its name known to
    /// the engine's query resolution even before any tuple is inserted.
    pub fn declare(&mut self, rel: impl Into<Symbol>) -> &mut Self {
        self.relations.entry(rel.into()).or_default();
        self
    }

    /// True if the relation name has been declared or populated.
    pub fn has_relation(&self, rel: Symbol) -> bool {
        self.relations.contains_key(&rel)
    }

    /// Inserts a tuple directly (used for setup; execution goes through
    /// [`Database::apply`]).
    pub fn insert(&mut self, rel: impl Into<Symbol>, tuple: Tuple) -> &mut Self {
        debug_assert!(
            tuple.iter().all(Term::is_ground),
            "database tuples must be ground"
        );
        self.relations.entry(rel.into()).or_default().insert(tuple);
        self
    }

    /// Inserts a zero-ary fact.
    pub fn insert_fact(&mut self, rel: impl Into<Symbol>) -> &mut Self {
        self.insert(rel, Vec::new())
    }

    /// True if the tuple is present.
    pub fn contains(&self, rel: Symbol, tuple: &[Term]) -> bool {
        self.relations
            .get(&rel)
            .is_some_and(|set| set.contains(tuple))
    }

    /// Iterates the tuples of a relation (empty iterator if undeclared).
    pub fn tuples(&self, rel: Symbol) -> impl Iterator<Item = &Tuple> + '_ {
        self.relations.get(&rel).into_iter().flatten()
    }

    /// Number of tuples in a relation.
    pub fn cardinality(&self, rel: Symbol) -> usize {
        self.relations.get(&rel).map_or(0, BTreeSet::len)
    }

    /// The declared relation names.
    pub fn relation_names(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.relations.keys().copied()
    }

    /// Applies a change, returning its inverse if the state actually
    /// changed, or `None` for a no-op (inserting a present tuple /
    /// deleting an absent one). Elementary updates are *always true over
    /// some arc* — a no-op corresponds to the arc `⟨s, s⟩` (footnote 3 of
    /// the paper), so it is not an error.
    pub fn apply(&mut self, change: &Change) -> Option<Change> {
        match change {
            Change::Insert { rel, tuple } => {
                let added = self
                    .relations
                    .entry(*rel)
                    .or_default()
                    .insert(tuple.clone());
                added.then(|| Change::Delete {
                    rel: *rel,
                    tuple: tuple.clone(),
                })
            }
            Change::Delete { rel, tuple } => {
                let removed = self
                    .relations
                    .get_mut(rel)
                    .is_some_and(|set| set.remove(tuple));
                removed.then(|| Change::Insert {
                    rel: *rel,
                    tuple: tuple.clone(),
                })
            }
        }
    }

    /// Applies a whole delta, returning the inverse trail (to be replayed
    /// in reverse order on undo).
    pub fn apply_delta(&mut self, delta: &Delta) -> Vec<Change> {
        delta.iter().filter_map(|c| self.apply(c)).collect()
    }

    /// Undoes an inverse trail produced by [`Database::apply_delta`].
    pub fn undo(&mut self, inverse: &[Change]) {
        for change in inverse.iter().rev() {
            self.apply(change);
        }
    }

    /// Total number of tuples across all relations.
    pub fn len(&self) -> usize {
        self.relations.values().map(BTreeSet::len).sum()
    }

    /// True if no relation holds any tuple.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Database {{")?;
        for (rel, tuples) in &self.relations {
            for t in tuples {
                write!(f, "  {rel}(")?;
                for (i, v) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                writeln!(f, ")")?;
            }
            if tuples.is_empty() {
                writeln!(f, "  {rel}/∅")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::symbol::sym;

    fn t(names: &[&str]) -> Tuple {
        names.iter().map(|n| Term::constant(n)).collect()
    }

    #[test]
    fn insert_and_contains() {
        let mut db = Database::new();
        db.insert("likes", t(&["ann", "logic"]));
        assert!(db.contains(sym("likes"), &t(&["ann", "logic"])));
        assert!(!db.contains(sym("likes"), &t(&["bob", "logic"])));
        assert_eq!(db.cardinality(sym("likes")), 1);
    }

    #[test]
    fn apply_insert_returns_inverse() {
        let mut db = Database::new();
        let change = Change::Insert {
            rel: sym("p"),
            tuple: t(&["a"]),
        };
        let inv = db.apply(&change).expect("state changed");
        assert_eq!(
            inv,
            Change::Delete {
                rel: sym("p"),
                tuple: t(&["a"])
            }
        );
        db.apply(&inv);
        assert!(db.is_empty());
    }

    #[test]
    fn noop_changes_return_none() {
        let mut db = Database::new();
        // Delete from empty relation: the ⟨s, s⟩ arc.
        assert_eq!(
            db.apply(&Change::Delete {
                rel: sym("p"),
                tuple: t(&["a"])
            }),
            None
        );
        db.insert("p", t(&["a"]));
        assert_eq!(
            db.apply(&Change::Insert {
                rel: sym("p"),
                tuple: t(&["a"])
            }),
            None
        );
        assert_eq!(db.cardinality(sym("p")), 1);
    }

    #[test]
    fn delta_round_trip() {
        let mut db = Database::new();
        db.insert("p", t(&["x"]));
        let before = db.clone();
        let delta = vec![
            Change::Delete {
                rel: sym("p"),
                tuple: t(&["x"]),
            },
            Change::Insert {
                rel: sym("q"),
                tuple: t(&["y"]),
            },
            Change::Insert {
                rel: sym("q"),
                tuple: t(&["y"]),
            }, // no-op
        ];
        let inverse = db.apply_delta(&delta);
        assert!(!db.contains(sym("p"), &t(&["x"])));
        assert!(db.contains(sym("q"), &t(&["y"])));
        assert_eq!(inverse.len(), 2, "no-op contributes no undo entry");
        db.undo(&inverse);
        assert_eq!(db, before);
    }

    #[test]
    fn declare_registers_schema() {
        let mut db = Database::new();
        db.declare("inventory");
        assert!(db.has_relation(sym("inventory")));
        assert!(!db.has_relation(sym("orders")));
        assert_eq!(
            db.relation_names().collect::<Vec<_>>(),
            vec![sym("inventory")]
        );
    }

    #[test]
    fn facts_are_zero_ary_tuples() {
        let mut db = Database::new();
        db.insert_fact("open");
        assert!(db.contains(sym("open"), &[]));
    }

    #[test]
    fn undo_reverses_in_reverse_order() {
        // Insert then delete the same tuple: undo must restore exactly.
        let mut db = Database::new();
        let before = db.clone();
        let delta = vec![
            Change::Insert {
                rel: sym("p"),
                tuple: t(&["a"]),
            },
            Change::Delete {
                rel: sym("p"),
                tuple: t(&["a"]),
            },
        ];
        let inverse = db.apply_delta(&delta);
        db.undo(&inverse);
        assert_eq!(db, before);
    }

    #[test]
    fn debug_rendering_is_stable() {
        let mut db = Database::new();
        db.insert("p", t(&["a"])).declare("q");
        let text = format!("{db:?}");
        assert!(text.contains("p(a)"));
        assert!(text.contains("q/∅"));
    }
}
