#![warn(missing_docs)]

//! # ctr-state — database states and transition oracles
//!
//! The state substrate beneath the CTR execution engine: relational
//! [`Database`] states with invertible [`Change`]s (so the SLD-style proof
//! procedure can backtrack by undoing a trail), and the
//! [`TransitionOracle`] abstraction that gives elementary updates their
//! semantics (paper, §2).
//!
//! The paper treats states abstractly; this crate is the concrete
//! instantiation it suggests ("think of the states as just a set of
//! relational databases") plus the naming-convention oracle
//! (`ins_p`/`del_p`) it uses as a running example.

pub mod db;
pub mod oracle;

pub use db::{Change, Database, Delta, Tuple};
pub use oracle::{choose_any, NullOracle, StandardOracle, TransitionOracle, UpdateFn};
