//! The transition oracle (paper, §2, "Elementary updates").
//!
//! CTR does not fix the nature of elementary updates. Instead, a
//! *transition oracle* decides which arcs `⟨s₁, s₂⟩` each update is true
//! over — "from simple tuple insertions and deletions, to relational
//! assignments, to updates performed by legacy programs". An update may be
//! nondeterministic (several possible target states) and may be
//! inapplicable in some states.
//!
//! [`StandardOracle`] implements the conventional syntactic convention the
//! paper suggests: `ins_p(t…)` inserts into `p`, `del_p(t…)` deletes, and
//! `clr_p` clears a relation (a simple relational assignment). Custom
//! black-box updates — the "legacy program" case — register as closures.
//! Significant events intentionally do *not* resolve here: per assumption
//! (2) of the paper they are updates that apply in every state (a record
//! forced into the system log), which the engine handles uniformly.

use crate::db::{Change, Database, Delta};
use ctr::symbol::Symbol;
use ctr::term::Atom;
use std::collections::BTreeMap;
use std::fmt;

/// Decides the possible state transitions of elementary updates.
pub trait TransitionOracle {
    /// If `atom` is an elementary update this oracle understands, returns
    /// the alternative deltas it may cause at `db` (empty = recognized but
    /// inapplicable in this state, so the execution branch fails).
    /// `None` means the atom is not an update — the engine will try query
    /// and event resolution instead.
    fn transitions(&self, atom: &Atom, db: &Database) -> Option<Vec<Delta>>;
}

/// Signature of a registered black-box update.
pub type UpdateFn = Box<dyn Fn(&Atom, &Database) -> Vec<Delta> + Send + Sync>;

/// The conventional oracle: `ins_*` / `del_*` / `clr_*` prefixes plus
/// registered custom updates.
#[derive(Default)]
pub struct StandardOracle {
    custom: BTreeMap<Symbol, UpdateFn>,
}

impl StandardOracle {
    /// A fresh oracle with only the naming-convention updates.
    pub fn new() -> StandardOracle {
        StandardOracle::default()
    }

    /// Registers a custom (black-box) update for `pred`. The closure
    /// returns the alternative deltas; returning an empty vector makes the
    /// update inapplicable at that state.
    pub fn register(&mut self, pred: impl Into<Symbol>, f: UpdateFn) -> &mut Self {
        self.custom.insert(pred.into(), f);
        self
    }

    /// True if `pred` has a registered custom update.
    pub fn is_registered(&self, pred: Symbol) -> bool {
        self.custom.contains_key(&pred)
    }
}

impl fmt::Debug for StandardOracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StandardOracle")
            .field("custom", &self.custom.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Splits `name` at a known update prefix, returning the verb and target
/// relation.
fn split_prefix(name: &str) -> Option<(&'static str, &str)> {
    for verb in ["ins_", "del_", "clr_"] {
        if let Some(rest) = name.strip_prefix(verb) {
            if !rest.is_empty() {
                return Some((verb, rest));
            }
        }
    }
    None
}

impl TransitionOracle for StandardOracle {
    fn transitions(&self, atom: &Atom, db: &Database) -> Option<Vec<Delta>> {
        if atom.negated {
            return None;
        }
        if let Some(f) = self.custom.get(&atom.pred) {
            return Some(f(atom, db));
        }
        let (verb, rel) = split_prefix(atom.pred.as_str())?;
        let rel = Symbol::intern(rel);
        if !atom.is_ground() {
            // Updates with unbound variables have no defined transition.
            return Some(Vec::new());
        }
        match verb {
            "ins_" => Some(vec![vec![Change::Insert {
                rel,
                tuple: atom.args.clone(),
            }]]),
            // Unconditional deletion: true over ⟨s, s⟩ when the tuple is
            // absent (footnote 3) — a no-op delta, still one alternative.
            "del_" => Some(vec![vec![Change::Delete {
                rel,
                tuple: atom.args.clone(),
            }]]),
            "clr_" => {
                let wipe: Delta = db
                    .tuples(rel)
                    .cloned()
                    .map(|tuple| Change::Delete { rel, tuple })
                    .collect();
                Some(vec![wipe])
            }
            _ => unreachable!("split_prefix only yields known verbs"),
        }
    }
}

/// An oracle that recognizes nothing — for purely propositional workflows
/// where every atom is a significant event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullOracle;

impl TransitionOracle for NullOracle {
    fn transitions(&self, _atom: &Atom, _db: &Database) -> Option<Vec<Delta>> {
        None
    }
}

/// A nondeterministic choice update for tests and examples: picks any
/// tuple of `rel` and records it in `chosen_rel`. Demonstrates oracle
/// nondeterminism (the paper: "any one of a number of alternative state
/// transitions might be possible").
pub fn choose_any(rel: impl Into<Symbol>, chosen_rel: impl Into<Symbol>) -> UpdateFn {
    let rel = rel.into();
    let chosen_rel = chosen_rel.into();
    Box::new(move |_atom: &Atom, db: &Database| {
        db.tuples(rel)
            .map(|t| {
                vec![Change::Insert {
                    rel: chosen_rel,
                    tuple: t.clone(),
                }]
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::symbol::sym;
    use ctr::term::Term;

    fn ground(name: &str, args: &[&str]) -> Atom {
        Atom::new(name, args.iter().map(|a| Term::constant(a)).collect())
    }

    #[test]
    fn ins_prefix_inserts() {
        let oracle = StandardOracle::new();
        let db = Database::new();
        let alts = oracle
            .transitions(&ground("ins_cart", &["book"]), &db)
            .unwrap();
        assert_eq!(
            alts,
            vec![vec![Change::Insert {
                rel: sym("cart"),
                tuple: vec![Term::constant("book")]
            }]]
        );
    }

    #[test]
    fn del_prefix_deletes_even_when_absent() {
        let oracle = StandardOracle::new();
        let db = Database::new();
        let alts = oracle
            .transitions(&ground("del_cart", &["book"]), &db)
            .unwrap();
        assert_eq!(alts.len(), 1, "still true, over the ⟨s,s⟩ arc");
    }

    #[test]
    fn clr_prefix_wipes_relation() {
        let oracle = StandardOracle::new();
        let mut db = Database::new();
        db.insert("cart", vec![Term::constant("a")])
            .insert("cart", vec![Term::constant("b")]);
        let alts = oracle.transitions(&ground("clr_cart", &[]), &db).unwrap();
        assert_eq!(alts.len(), 1);
        assert_eq!(alts[0].len(), 2);
        db.apply_delta(&alts[0]);
        assert_eq!(db.cardinality(sym("cart")), 0);
    }

    #[test]
    fn unknown_atoms_are_not_updates() {
        let oracle = StandardOracle::new();
        let db = Database::new();
        assert_eq!(oracle.transitions(&Atom::prop("approve"), &db), None);
        assert_eq!(oracle.transitions(&ground("insert", &["x"]), &db), None);
        // `ins_` with empty relation name is not an update either.
        assert_eq!(oracle.transitions(&Atom::prop("ins_"), &db), None);
    }

    #[test]
    fn negated_atoms_are_never_updates() {
        let oracle = StandardOracle::new();
        let db = Database::new();
        assert_eq!(
            oracle.transitions(&ground("ins_p", &["x"]).negate(), &db),
            None
        );
    }

    #[test]
    fn non_ground_update_is_inapplicable() {
        let oracle = StandardOracle::new();
        let db = Database::new();
        let atom = Atom::new("ins_p", vec![Term::Var(ctr::term::Var(0))]);
        assert_eq!(oracle.transitions(&atom, &db), Some(Vec::new()));
    }

    #[test]
    fn custom_update_takes_precedence() {
        let mut oracle = StandardOracle::new();
        oracle.register(
            "ins_special",
            Box::new(|_, _| {
                vec![vec![Change::Insert {
                    rel: sym("marker"),
                    tuple: vec![],
                }]]
            }),
        );
        let db = Database::new();
        let alts = oracle.transitions(&Atom::prop("ins_special"), &db).unwrap();
        assert_eq!(alts[0][0].relation(), sym("marker"));
        assert!(oracle.is_registered(sym("ins_special")));
    }

    #[test]
    fn choose_any_is_nondeterministic() {
        let mut oracle = StandardOracle::new();
        oracle.register("pick_flight", choose_any("flights", "booked"));
        let mut db = Database::new();
        db.insert("flights", vec![Term::constant("aa100")])
            .insert("flights", vec![Term::constant("ba200")]);
        let alts = oracle.transitions(&Atom::prop("pick_flight"), &db).unwrap();
        assert_eq!(alts.len(), 2, "one alternative per candidate tuple");
    }

    #[test]
    fn choose_any_with_no_candidates_fails() {
        let mut oracle = StandardOracle::new();
        oracle.register("pick_flight", choose_any("flights", "booked"));
        let db = Database::new();
        assert_eq!(
            oracle.transitions(&Atom::prop("pick_flight"), &db),
            Some(Vec::new())
        );
    }
}
