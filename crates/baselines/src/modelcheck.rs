//! Explicit-state model checking over the workflow marking graph — the
//! "standard model checking techniques \[9\]" baseline of §6.
//!
//! The paper's comparison: model checking is worst-case exponential in the
//! size of the control flow graph (the state-explosion problem), while
//! `Apply` is linear in the graph and exponential only in the (much
//! smaller) constraint set. This module makes that comparison measurable:
//! it builds the reachable marking graph of a workflow — every scheduler
//! cursor state — optionally in product with the constraint automata, and
//! verifies properties by exhaustive exploration.

use crate::attie::{AutoState, ConstraintAutomaton};
use ctr::constraints::Constraint;
use ctr::goal::Goal;
use ctr_engine::scheduler::{Program, ScheduleError, Scheduler};
use std::collections::{BTreeSet, VecDeque};

/// Result of an explicit-state exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Exploration {
    /// Number of distinct reachable markings (× automaton states when a
    /// property is attached).
    pub states: usize,
    /// Number of complete executions encountered (capped runs may
    /// undercount).
    pub complete_paths: usize,
    /// Whether exploration hit the state cap before exhausting the space.
    pub truncated: bool,
    /// A violating trace, if the property check failed.
    pub counterexample: Option<Vec<ctr::symbol::Symbol>>,
}

/// Explores the reachable marking graph of `goal`, up to `cap` states.
pub fn explore(goal: &Goal, cap: usize) -> Result<Exploration, ScheduleError> {
    explore_with_property(goal, None, cap)
}

/// Model-checks `property` over every execution of `goal` by exploring
/// the product of the marking graph with the property automaton. Returns
/// the exploration statistics and a counterexample trace if the property
/// can be violated.
pub fn check(goal: &Goal, property: &Constraint, cap: usize) -> Result<Exploration, ScheduleError> {
    explore_with_property(goal, Some(property), cap)
}

fn explore_with_property(
    goal: &Goal,
    property: Option<&Constraint>,
    cap: usize,
) -> Result<Exploration, ScheduleError> {
    let program = Program::compile(goal)?;
    let automaton = property.map(ConstraintAutomaton::new);

    struct Node<'p> {
        scheduler: Scheduler<&'p Program>,
        auto: AutoState,
    }

    let initial = Node {
        scheduler: Scheduler::new(&program),
        auto: AutoState::default(),
    };
    let key = |n: &Node| -> (Vec<u8>, AutoState) { (n.scheduler.state_key(), n.auto.clone()) };

    let mut seen: BTreeSet<(Vec<u8>, AutoState)> = BTreeSet::from([key(&initial)]);
    let mut queue = VecDeque::from([initial]);
    let mut complete_paths = 0usize;
    let mut truncated = false;
    let mut counterexample = None;

    while let Some(node) = queue.pop_front() {
        if node.scheduler.is_complete() {
            complete_paths += 1;
            if let Some(auto) = &automaton {
                if !auto.accepts(&node.auto) && counterexample.is_none() {
                    counterexample = Some(node.scheduler.trace_names());
                }
            }
            continue;
        }
        if seen.len() >= cap {
            truncated = true;
            continue;
        }
        for choice in node.scheduler.eligible() {
            let mut scheduler = node.scheduler.clone();
            scheduler.fire(choice.node);
            let auto = match (&automaton, program.event(choice.node)) {
                (Some(a), Some(atom)) => match atom.as_event() {
                    Some(e) => a.step(&node.auto, e),
                    None => node.auto.clone(),
                },
                _ => node.auto.clone(),
            };
            let next = Node { scheduler, auto };
            if seen.insert(key(&next)) {
                queue.push_back(next);
            }
        }
    }

    Ok(Exploration {
        states: seen.len(),
        complete_paths,
        truncated,
        counterexample,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::goal::{conc, or, seq};
    use ctr::symbol::sym;

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    #[test]
    fn pipeline_has_linear_state_space() {
        let e = explore(&ctr::gen::pipeline_workflow(10), 1_000_000).unwrap();
        assert!(!e.truncated);
        assert_eq!(e.complete_paths, 1);
        // One marking per prefix (plus completion bookkeeping).
        assert!(e.states <= 12, "states = {}", e.states);
    }

    #[test]
    fn concurrent_width_explodes_the_state_space() {
        let w4 = explore(&ctr::gen::parallel_workflow(4), 1_000_000)
            .unwrap()
            .states;
        let w8 = explore(&ctr::gen::parallel_workflow(8), 1_000_000)
            .unwrap()
            .states;
        // Markings of n concurrent tasks = 2^n.
        assert!(w8 > 10 * w4, "w4 = {w4}, w8 = {w8}");
    }

    #[test]
    fn cap_truncates_exploration() {
        let e = explore(&ctr::gen::parallel_workflow(12), 100).unwrap();
        assert!(e.truncated);
    }

    #[test]
    fn check_confirms_structural_property() {
        let goal = seq(vec![g("a"), g("b")]);
        let e = check(&goal, &Constraint::order("a", "b"), 1_000_000).unwrap();
        assert_eq!(e.counterexample, None);
    }

    #[test]
    fn check_finds_counterexample() {
        let goal = conc(vec![g("a"), g("b")]);
        let e = check(&goal, &Constraint::order("a", "b"), 1_000_000).unwrap();
        let ce = e.counterexample.expect("a|b admits b before a");
        assert_eq!(ce, vec![sym("b"), sym("a")]);
    }

    #[test]
    fn check_agrees_with_ctr_verification() {
        use ctr::analysis::verify;
        let goals = [
            conc(vec![g("a"), or(vec![g("b"), g("c")])]),
            seq(vec![g("a"), or(vec![g("b"), g("c")]), g("d")]),
            or(vec![seq(vec![g("a"), g("b")]), seq(vec![g("b"), g("a")])]),
        ];
        let properties = [
            Constraint::klein_order("a", "b"),
            Constraint::klein_exists("a", "d"),
            Constraint::order("a", "b"),
        ];
        for goal in &goals {
            for prop in &properties {
                let mc = check(goal, prop, 1_000_000).unwrap();
                let logical = verify(goal, &[], prop).unwrap().holds();
                assert_eq!(
                    mc.counterexample.is_none(),
                    logical,
                    "goal {goal} property {prop}"
                );
            }
        }
    }

    #[test]
    fn counterexamples_violate_the_property() {
        use ctr::semantics::satisfies;
        let goal = conc(vec![g("a"), g("b"), g("c")]);
        let prop = Constraint::serial(vec![sym("a"), sym("b"), sym("c")]);
        let e = check(&goal, &prop, 1_000_000).unwrap();
        let ce = e
            .counterexample
            .expect("interleavings violate the serial constraint");
        assert!(!satisfies(&ce, &prop));
    }
}
