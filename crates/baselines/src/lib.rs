#![warn(missing_docs)]

//! # ctr-baselines — the related-work systems the paper compares against
//!
//! Re-implementations of the passive/standard approaches that the PODS'98
//! paper positions itself against, built to exhibit the complexity
//! profiles reported in §4 and §6:
//!
//! * [`singh`] — passive event-sequence validation and run-time
//!   reordering after Singh \[26, 27\]: `O(n²)` per sequence, no
//!   consistency checking.
//! * [`attie`] — dependency automata and their explicit product after
//!   Attie et al. \[3\]: exponential in the number of constraints.
//! * [`modelcheck`] — explicit-state exploration of the workflow marking
//!   graph ("standard model checking \[9\]"): exponential in the
//!   control-flow graph's concurrent width (the state-explosion problem).
//!
//! These are honest baselines: each follows its published algorithmic
//! description, and their unit tests verify agreement with the reference
//! `ctr::semantics` on the traces both sides can decide.

pub mod attie;
pub mod modelcheck;
pub mod singh;

pub use attie::{AutoState, ConstraintAutomaton, ProductScheduler};
pub use modelcheck::{check, explore, Exploration};
pub use singh::{Admission, PassiveValidator, ReorderingScheduler};
