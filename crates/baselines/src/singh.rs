//! The passive event-algebra scheduler, after Singh \[26, 27\].
//!
//! The paper contrasts its pro-active, compile-time approach with
//! *passive* schedulers that "receive sequences of events from an external
//! source … and validate that these sequences satisfy all global
//! constraints (possibly after reordering some events)". Validating one
//! sequence takes at least quadratic time in the number of events, and
//! consistency/liveness are left to an external (worst-case exponential)
//! system.
//!
//! This module re-implements that baseline: a [`PassiveValidator`] that
//! checks an event sequence against a normalized constraint set in
//! `O(n² · |C|)`, and a [`ReorderingScheduler`] that admits events one at
//! a time, buffering those whose order constraints are not yet enabled —
//! the run-time counterpart used in experiment E5.

use ctr::constraints::{Basic, Constraint, NormalForm};
use ctr::symbol::Symbol;

/// A run-time validator for complete event sequences.
#[derive(Clone, Debug)]
pub struct PassiveValidator {
    normalized: Vec<NormalForm>,
}

impl PassiveValidator {
    /// Normalizes the constraint set once, up front (the part Singh's
    /// framework also precomputes).
    pub fn new(constraints: &[Constraint]) -> PassiveValidator {
        PassiveValidator {
            normalized: constraints.iter().map(Constraint::normalize).collect(),
        }
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.normalized.len()
    }

    /// True when no constraints are installed.
    pub fn is_empty(&self) -> bool {
        self.normalized.is_empty()
    }

    /// Validates a complete event sequence: every constraint must have a
    /// satisfied disjunct. Deliberately the textbook algorithm — each
    /// order basic scans the trace for its two events, so a validation is
    /// `Θ(n · k)` per constraint with `k` basics, i.e. quadratic-ish in
    /// the trace for constraint sets that grow with the workflow.
    pub fn validate(&self, trace: &[Symbol]) -> bool {
        self.normalized.iter().all(|nf| {
            nf.disjuncts.iter().any(|conj| {
                conj.iter().all(|b| match *b {
                    Basic::Must(e) => trace.contains(&e),
                    Basic::MustNot(e) => !trace.contains(&e),
                    Basic::Order(a, bb) => {
                        let pa = trace.iter().position(|&x| x == a);
                        let pb = trace.iter().position(|&x| x == bb);
                        matches!((pa, pb), (Some(pa), Some(pb)) if pa < pb)
                    }
                })
            })
        })
    }
}

/// Outcome of submitting one event to the [`ReorderingScheduler`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The event was emitted immediately (possibly followed by previously
    /// buffered events it unblocked).
    Emitted(Vec<Symbol>),
    /// The event was buffered awaiting its predecessors.
    Buffered,
    /// The event can never be admitted (it violates a `MustNot` or a
    /// committed order).
    Rejected,
}

/// A passive scheduler that reorders an incoming event stream so the
/// emitted sequence satisfies every **order** constraint of the set:
/// an event with an unsatisfied `before(a, e)` (where `a` is still
/// outstanding) is buffered until `a` arrives. Existence constraints are
/// checked at [`ReorderingScheduler::finish`].
///
/// Every admission rescans the buffer, so processing an `n`-event stream
/// is `O(n²)` — the run-time cost profile the paper attributes to passive
/// scheduling.
#[derive(Clone, Debug)]
pub struct ReorderingScheduler {
    /// `(a, b)` pairs: `a` must precede `b` (from order basics of
    /// single-disjunct constraints — the committed orders).
    orders: Vec<(Symbol, Symbol)>,
    /// Events that must never occur.
    forbidden: Vec<Symbol>,
    validator: PassiveValidator,
    emitted: Vec<Symbol>,
    buffer: Vec<Symbol>,
}

impl ReorderingScheduler {
    /// Builds the scheduler from a constraint set. Order basics from
    /// unconditional (single-disjunct) constraints become hard
    /// reorderings; everything else is validated at the end.
    pub fn new(constraints: &[Constraint]) -> ReorderingScheduler {
        let mut orders = Vec::new();
        let mut forbidden = Vec::new();
        for c in constraints {
            let nf = c.normalize();
            if let [conj] = nf.disjuncts.as_slice() {
                for b in conj {
                    match *b {
                        Basic::Order(a, bb) => orders.push((a, bb)),
                        Basic::MustNot(e) => forbidden.push(e),
                        Basic::Must(_) => {}
                    }
                }
            }
        }
        ReorderingScheduler {
            orders,
            forbidden,
            validator: PassiveValidator::new(constraints),
            emitted: Vec::new(),
            buffer: Vec::new(),
        }
    }

    /// The sequence emitted so far.
    pub fn emitted(&self) -> &[Symbol] {
        &self.emitted
    }

    /// Events currently buffered.
    pub fn buffered(&self) -> &[Symbol] {
        &self.buffer
    }

    /// True if `event` still awaits an unemitted predecessor.
    fn blocked(&self, event: Symbol) -> bool {
        self.orders
            .iter()
            .any(|&(a, b)| b == event && !self.emitted.contains(&a))
    }

    /// Submits the next event from the external source.
    pub fn admit(&mut self, event: Symbol) -> Admission {
        if self.forbidden.contains(&event) {
            return Admission::Rejected;
        }
        if self.blocked(event) {
            self.buffer.push(event);
            return Admission::Buffered;
        }
        self.emitted.push(event);
        let mut released = Vec::new();
        // Drain newly unblocked buffered events, rescanning after each
        // release (the quadratic inner loop).
        while let Some(idx) = self.buffer.iter().position(|&e| !self.blocked(e)) {
            let e = self.buffer.remove(idx);
            self.emitted.push(e);
            released.push(e);
        }
        Admission::Emitted(released)
    }

    /// Ends the stream: fails if events remain buffered (their
    /// predecessors never arrived) or the emitted sequence violates any
    /// constraint.
    pub fn finish(self) -> Result<Vec<Symbol>, Vec<Symbol>> {
        if !self.buffer.is_empty() {
            return Err(self.buffer);
        }
        if self.validator.validate(&self.emitted) {
            Ok(self.emitted)
        } else {
            Err(Vec::new())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::symbol::sym;

    fn tr(names: &[&str]) -> Vec<Symbol> {
        names.iter().map(|n| sym(n)).collect()
    }

    #[test]
    fn validator_accepts_satisfying_traces() {
        let v = PassiveValidator::new(&[
            Constraint::order("a", "b"),
            Constraint::klein_exists("b", "c"),
        ]);
        assert!(v.validate(&tr(&["a", "c", "b"])));
        assert!(!v.validate(&tr(&["b", "a", "c"])), "order violated");
        assert!(!v.validate(&tr(&["a", "b"])), "existence violated");
    }

    #[test]
    fn validator_matches_reference_semantics() {
        use ctr::semantics::satisfies;
        let constraints = [
            Constraint::klein_order("a", "b"),
            Constraint::causes_later("b", "c"),
            Constraint::must_not("z"),
        ];
        let v = PassiveValidator::new(&constraints);
        let universe = ["a", "b", "c", "z"];
        // All traces of length ≤ 3 over the universe (without repeats).
        for i in 0..universe.len() {
            for j in 0..universe.len() {
                for k in 0..universe.len() {
                    if i == j || j == k || i == k {
                        continue;
                    }
                    let t = tr(&[universe[i], universe[j], universe[k]]);
                    assert_eq!(
                        v.validate(&t),
                        constraints.iter().all(|c| satisfies(&t, c)),
                        "trace {t:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_validator_accepts_everything() {
        let v = PassiveValidator::new(&[]);
        assert!(v.is_empty());
        assert!(v.validate(&tr(&["x", "y"])));
    }

    #[test]
    fn scheduler_reorders_out_of_order_events() {
        let mut s = ReorderingScheduler::new(&[Constraint::order("a", "b")]);
        assert_eq!(s.admit(sym("b")), Admission::Buffered);
        assert_eq!(s.admit(sym("a")), Admission::Emitted(vec![sym("b")]));
        assert_eq!(s.finish().unwrap(), tr(&["a", "b"]));
    }

    #[test]
    fn scheduler_rejects_forbidden_events() {
        let mut s = ReorderingScheduler::new(&[Constraint::must_not("abort")]);
        assert_eq!(s.admit(sym("abort")), Admission::Rejected);
        assert_eq!(s.admit(sym("commit")), Admission::Emitted(vec![]));
    }

    #[test]
    fn chained_releases_cascade() {
        let mut s =
            ReorderingScheduler::new(&[Constraint::order("a", "b"), Constraint::order("b", "c")]);
        assert_eq!(s.admit(sym("c")), Admission::Buffered);
        assert_eq!(s.admit(sym("b")), Admission::Buffered);
        assert_eq!(
            s.admit(sym("a")),
            Admission::Emitted(vec![sym("b"), sym("c")])
        );
    }

    #[test]
    fn finish_fails_on_stranded_buffer() {
        let mut s = ReorderingScheduler::new(&[Constraint::order("a", "b")]);
        s.admit(sym("b"));
        let stranded = s.finish().unwrap_err();
        assert_eq!(stranded, tr(&["b"]));
    }

    #[test]
    fn finish_checks_existence_constraints() {
        let mut s = ReorderingScheduler::new(&[Constraint::both("a", "b")]);
        s.admit(sym("a"));
        assert!(s.finish().is_err(), "b never arrived");
    }
}
