//! The automata-based dependency scheduler, after Attie, Singh, Sheth &
//! Rusinkiewicz \[3\].
//!
//! In that line of work every intertask dependency becomes a finite
//! automaton over the event alphabet, and the scheduler runs the *product*
//! of all dependency automata, admitting an event only when every
//! automaton has a transition for it. The paper's §6 points out the cost:
//! automata-based process scheduling is exponential — the product has up
//! to `∏ᵢ |Aᵢ|` states.
//!
//! [`ConstraintAutomaton`] builds the minimal-ish DFA of one `CONSTR`
//! constraint: a state is the pair (set of relevant events seen, set of
//! order basics already violated); acceptance re-evaluates the normal
//! form. [`ProductScheduler`] materializes the reachable product
//! explicitly — the state-count measurements of experiment X2 come from
//! here.

use ctr::constraints::{Basic, Constraint, NormalForm};
use ctr::symbol::Symbol;
use std::collections::{BTreeSet, VecDeque};

/// The DFA of a single constraint.
#[derive(Clone, Debug)]
pub struct ConstraintAutomaton {
    /// Relevant events (the alphabet slice this automaton observes).
    alphabet: Vec<Symbol>,
    /// Order basics appearing anywhere in the normal form.
    orders: Vec<(Symbol, Symbol)>,
    nf: NormalForm,
}

/// A state of one constraint automaton: which relevant events have been
/// seen, and which order basics are already unsatisfiable.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct AutoState {
    seen: BTreeSet<Symbol>,
    violated: BTreeSet<usize>,
}

impl ConstraintAutomaton {
    /// Builds the automaton for a constraint.
    pub fn new(constraint: &Constraint) -> ConstraintAutomaton {
        let nf = constraint.normalize();
        let mut alphabet: BTreeSet<Symbol> = BTreeSet::new();
        let mut orders: Vec<(Symbol, Symbol)> = Vec::new();
        for conj in &nf.disjuncts {
            for b in conj {
                match *b {
                    Basic::Must(e) | Basic::MustNot(e) => {
                        alphabet.insert(e);
                    }
                    Basic::Order(a, bb) => {
                        alphabet.insert(a);
                        alphabet.insert(bb);
                        if !orders.contains(&(a, bb)) {
                            orders.push((a, bb));
                        }
                    }
                }
            }
        }
        ConstraintAutomaton {
            alphabet: alphabet.into_iter().collect(),
            orders,
            nf,
        }
    }

    /// The initial state.
    pub fn initial(&self) -> AutoState {
        AutoState::default()
    }

    /// The relevant alphabet.
    pub fn alphabet(&self) -> &[Symbol] {
        &self.alphabet
    }

    /// Steps the automaton on `event`. Irrelevant events self-loop.
    pub fn step(&self, state: &AutoState, event: Symbol) -> AutoState {
        if !self.alphabet.contains(&event) {
            return state.clone();
        }
        let mut next = state.clone();
        // Any order (a, b) where b has NOT been seen but `event == b`
        // before `a` was seen becomes violated.
        for (i, &(a, b)) in self.orders.iter().enumerate() {
            if event == b && !state.seen.contains(&a) {
                next.violated.insert(i);
            }
            // Re-occurrence of `a` after `b` does not repair anything: on
            // unique-event traces this cannot happen anyway.
            let _ = a;
        }
        next.seen.insert(event);
        next
    }

    /// Is the state accepting, assuming the trace has ended?
    pub fn accepts(&self, state: &AutoState) -> bool {
        self.nf.disjuncts.iter().any(|conj| {
            conj.iter().all(|b| match *b {
                Basic::Must(e) => state.seen.contains(&e),
                Basic::MustNot(e) => !state.seen.contains(&e),
                Basic::Order(a, bb) => {
                    let idx = self
                        .orders
                        .iter()
                        .position(|&o| o == (a, bb))
                        .expect("order registered during construction");
                    state.seen.contains(&a)
                        && state.seen.contains(&bb)
                        && !state.violated.contains(&idx)
                }
            })
        })
    }

    /// Can some suffix still lead to acceptance? (Used by the scheduler to
    /// refuse events that doom the run.) An over-approximation restricted
    /// to unique-event suffixes: a disjunct is *live* if none of its
    /// `MustNot` events were seen and none of its orders are violated or
    /// half-violated-in-reverse.
    pub fn live(&self, state: &AutoState) -> bool {
        self.nf.disjuncts.iter().any(|conj| {
            conj.iter().all(|b| match *b {
                Basic::Must(_) => true, // can still arrive
                Basic::MustNot(e) => !state.seen.contains(&e),
                Basic::Order(a, bb) => {
                    let idx = self
                        .orders
                        .iter()
                        .position(|&o| o == (a, bb))
                        .expect("order registered during construction");
                    // Violated, or b already seen without a (unique events
                    // ⇒ b cannot recur): dead.
                    !state.violated.contains(&idx)
                        && (!state.seen.contains(&bb) || state.seen.contains(&a))
                }
            })
        })
    }

    /// Number of *reachable* states over the automaton's own alphabet —
    /// up to `2^|alphabet|` times order-violation flags.
    pub fn state_count(&self) -> usize {
        let mut seen: BTreeSet<AutoState> = BTreeSet::new();
        let mut queue = VecDeque::from([self.initial()]);
        seen.insert(self.initial());
        while let Some(s) = queue.pop_front() {
            for &e in &self.alphabet {
                let next = self.step(&s, e);
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
        seen.len()
    }
}

/// The product of all constraint automata, materialized explicitly.
#[derive(Debug)]
pub struct ProductScheduler {
    automata: Vec<ConstraintAutomaton>,
    state: Vec<AutoState>,
}

impl ProductScheduler {
    /// Builds the scheduler (one automaton per constraint).
    pub fn new(constraints: &[Constraint]) -> ProductScheduler {
        let automata: Vec<_> = constraints.iter().map(ConstraintAutomaton::new).collect();
        let state = automata.iter().map(ConstraintAutomaton::initial).collect();
        ProductScheduler { automata, state }
    }

    /// Admits `event` if no automaton becomes dead; returns whether it was
    /// admitted.
    pub fn admit(&mut self, event: Symbol) -> bool {
        let next: Vec<AutoState> = self
            .automata
            .iter()
            .zip(&self.state)
            .map(|(a, s)| a.step(s, event))
            .collect();
        if self.automata.iter().zip(&next).all(|(a, s)| a.live(s)) {
            self.state = next;
            true
        } else {
            false
        }
    }

    /// Would the run accept if the trace ended now?
    pub fn accepts(&self) -> bool {
        self.automata
            .iter()
            .zip(&self.state)
            .all(|(a, s)| a.accepts(s))
    }

    /// Validates a complete trace from scratch.
    pub fn validate(&self, trace: &[Symbol]) -> bool {
        let mut state: Vec<AutoState> = self
            .automata
            .iter()
            .map(ConstraintAutomaton::initial)
            .collect();
        for &e in trace {
            state = self
                .automata
                .iter()
                .zip(&state)
                .map(|(a, s)| a.step(s, e))
                .collect();
        }
        self.automata.iter().zip(&state).all(|(a, s)| a.accepts(s))
    }

    /// Size of the reachable product state space over the union alphabet —
    /// the exponential object of §6 and experiment X2.
    pub fn product_state_count(&self, cap: usize) -> usize {
        let alphabet: BTreeSet<Symbol> = self
            .automata
            .iter()
            .flat_map(|a| a.alphabet().iter().copied())
            .collect();
        let initial: Vec<AutoState> = self
            .automata
            .iter()
            .map(ConstraintAutomaton::initial)
            .collect();
        let mut seen: BTreeSet<Vec<AutoState>> = BTreeSet::from([initial.clone()]);
        let mut queue = VecDeque::from([initial]);
        while let Some(s) = queue.pop_front() {
            if seen.len() >= cap {
                return seen.len();
            }
            for &e in &alphabet {
                let next: Vec<AutoState> = self
                    .automata
                    .iter()
                    .zip(&s)
                    .map(|(a, st)| a.step(st, e))
                    .collect();
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctr::semantics::satisfies;
    use ctr::symbol::sym;

    fn tr(names: &[&str]) -> Vec<Symbol> {
        names.iter().map(|n| sym(n)).collect()
    }

    #[test]
    fn automaton_accepts_exactly_satisfying_traces() {
        for c in [
            Constraint::klein_order("a", "b"),
            Constraint::order("a", "b"),
            Constraint::klein_exists("a", "b"),
            Constraint::must_not("a"),
            Constraint::serial(vec![sym("a"), sym("b"), sym("c")]),
        ] {
            let auto = ConstraintAutomaton::new(&c);
            for t in [
                tr(&[]),
                tr(&["a"]),
                tr(&["b"]),
                tr(&["a", "b"]),
                tr(&["b", "a"]),
                tr(&["a", "b", "c"]),
                tr(&["a", "c", "b"]),
                tr(&["c", "a", "b"]),
                tr(&["b", "a", "c"]),
            ] {
                let mut s = auto.initial();
                for &e in &t {
                    s = auto.step(&s, e);
                }
                assert_eq!(
                    auto.accepts(&s),
                    satisfies(&t, &c),
                    "constraint {c} trace {t:?}"
                );
            }
        }
    }

    #[test]
    fn liveness_detects_doomed_runs() {
        let auto = ConstraintAutomaton::new(&Constraint::order("a", "b"));
        let mut s = auto.initial();
        s = auto.step(&s, sym("b"));
        assert!(!auto.live(&s), "b before a can never satisfy a<b");
        let mut ok = auto.initial();
        ok = auto.step(&ok, sym("a"));
        assert!(auto.live(&ok));
    }

    #[test]
    fn irrelevant_events_self_loop() {
        let auto = ConstraintAutomaton::new(&Constraint::order("a", "b"));
        let s = auto.step(&auto.initial(), sym("unrelated"));
        assert_eq!(s, auto.initial());
    }

    #[test]
    fn product_scheduler_blocks_violations() {
        let mut p =
            ProductScheduler::new(&[Constraint::order("a", "b"), Constraint::must_not("z")]);
        assert!(!p.admit(sym("b")), "b before a is refused");
        assert!(p.admit(sym("a")));
        assert!(p.admit(sym("b")));
        assert!(!p.admit(sym("z")));
        assert!(p.accepts());
    }

    #[test]
    fn product_validate_agrees_with_singh_validator() {
        use crate::singh::PassiveValidator;
        let constraints = [
            Constraint::klein_order("a", "b"),
            Constraint::causes_later("b", "c"),
        ];
        let p = ProductScheduler::new(&constraints);
        let v = PassiveValidator::new(&constraints);
        for t in [
            tr(&["a", "b", "c"]),
            tr(&["b", "c", "a"]),
            tr(&["c", "b", "a"]),
            tr(&["a", "c"]),
            tr(&[]),
        ] {
            assert_eq!(p.validate(&t), v.validate(&t), "trace {t:?}");
        }
    }

    #[test]
    fn state_count_grows_with_alphabet() {
        let small = ConstraintAutomaton::new(&Constraint::must("a")).state_count();
        let large = ConstraintAutomaton::new(&Constraint::serial(vec![
            sym("a"),
            sym("b"),
            sym("c"),
            sym("d"),
        ]))
        .state_count();
        assert!(small < large, "{small} vs {large}");
    }

    #[test]
    fn product_state_space_is_multiplicative() {
        let one =
            ProductScheduler::new(&[Constraint::order("a1", "b1")]).product_state_count(1_000_000);
        let three = ProductScheduler::new(&[
            Constraint::order("a1", "b1"),
            Constraint::order("a2", "b2"),
            Constraint::order("a3", "b3"),
        ])
        .product_state_count(1_000_000);
        // Independent alphabets: the product multiplies.
        assert_eq!(three, one * one * one);
    }

    #[test]
    fn product_state_count_respects_cap() {
        let p = ProductScheduler::new(&[
            Constraint::order("a1", "b1"),
            Constraint::order("a2", "b2"),
            Constraint::order("a3", "b3"),
            Constraint::order("a4", "b4"),
        ]);
        assert!(p.product_state_count(10) >= 10);
    }
}
