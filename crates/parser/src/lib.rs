#![warn(missing_docs)]

//! # ctr-parser — surface syntax for workflow specifications
//!
//! A small language mirroring the paper's notation in ASCII: `*` = `⊗`,
//! `#` = `|`, `+` = `∨`, `iso(…)` = `⊙`, `poss(…)` = `◇`, plus the
//! `CONSTR` constraint forms (`exists`, `absent`, `before`, `serial`,
//! Klein helpers) and a `workflow name { … }` container for complete
//! specifications with sub-workflows and triggers.
//!
//! ```
//! let spec = ctr_parser::parse_spec(r"
//!     workflow trip {
//!         graph plan * (book_flight # book_hotel) * pay;
//!         constraint before(book_hotel, book_flight);
//!     }
//! ").unwrap();
//! assert!(spec.compile().unwrap().is_consistent());
//! ```

pub mod lexer;
pub mod parser;

pub use lexer::{lex, LexError, Token, TokenKind};
pub use parser::{parse_constraint, parse_goal, parse_spec, ParseError};
