//! Recursive-descent parser for goals, constraints, and whole workflow
//! specifications.
//!
//! # Goal grammar
//!
//! ```text
//! goal    := conc ('+' conc)*                 // ∨, loosest
//! conc    := serial ('#' serial)*             // |
//! serial  := unary ('*' unary)*               // ⊗, tightest connective
//! unary   := 'iso' '(' goal ')' | 'poss' '(' goal ')'
//!          | 'empty' | 'nopath' | '(' goal ')' | atom
//! atom    := ['!'] ident [ '(' term (',' term)* ')' ]
//! term    := INT | ident [ '(' term (',' term)* ')' ]    // Capitalized ident = variable
//! ```
//!
//! # Constraint grammar (the algebra `CONSTR` of §3)
//!
//! ```text
//! constr  := cand ('or' cand)* [ 'implies' constr ]
//! cand    := cprim ('and' cprim)*
//! cprim   := 'exists' '(' e ')' | 'absent' '(' e ')'
//!          | 'serial' '(' e (',' e)+ ')' | 'before' '(' a ',' b ')'
//!          | 'klein_order' '(' a ',' b ')' | 'klein_exists' '(' a ',' b ')'
//!          | 'causes' '(' a ',' b ')' | 'requires' '(' a ',' b ')'
//!          | 'not' '(' constr ')' | '(' constr ')'
//! ```
//!
//! # Specification grammar
//!
//! ```text
//! spec    := 'workflow' ident '{' item* '}'
//! item    := 'graph' goal ';'
//!          | 'define' ident ':=' goal ';'
//!          | 'constraint' constr ';'
//!          | 'trigger' 'on' ident ['if' atom] 'do' goal ['eventually'] ';'
//!          | ('after' | 'deadline' | 'every') '(' ident ',' duration ')' ';'
//! duration := INT ('ms' | 's' | 'm' | 'h')
//! ```

use crate::lexer::{lex, LexError, Token, TokenKind};
use ctr::constraints::Constraint;
use ctr::goal::{conc, isolated, or, possible, seq, Goal};
use ctr::symbol::{sym, Symbol};
use ctr::term::{Atom, Term, Var};
use ctr_workflow::{TimerSpec, Trigger, TriggerSemantics, WorkflowSpec};
use std::collections::BTreeMap;
use std::fmt;

/// A parse error with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}:{}", self.message, self.line, self.col)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: format!("unexpected character `{}`", e.found),
            line: e.line,
            col: e.col,
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Variable-name → index mapping, scoped per top-level parse.
    vars: BTreeMap<String, Var>,
}

/// Which timer item keyword introduced the declaration.
#[derive(Clone, Copy)]
enum TimerForm {
    After,
    Deadline,
    Every,
}

impl Parser {
    fn new(input: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            tokens: lex(input)?,
            pos: 0,
            vars: BTreeMap::new(),
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError {
            message: message.into(),
            line: t.line,
            col: t.col,
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if &self.peek().kind == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek().kind)))
        }
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.advance();
                Ok(name)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    /// Consumes the identifier `word` if it is next; returns whether it was.
    fn eat_keyword(&mut self, word: &str) -> bool {
        if matches!(&self.peek().kind, TokenKind::Ident(name) if name == word) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    // --- Goals -----------------------------------------------------------

    fn goal(&mut self) -> Result<Goal, ParseError> {
        let mut parts = vec![self.conc_expr()?];
        while self.peek().kind == TokenKind::Plus {
            self.advance();
            parts.push(self.conc_expr()?);
        }
        Ok(or(parts))
    }

    fn conc_expr(&mut self) -> Result<Goal, ParseError> {
        let mut parts = vec![self.serial_expr()?];
        while self.peek().kind == TokenKind::Hash {
            self.advance();
            parts.push(self.serial_expr()?);
        }
        Ok(conc(parts))
    }

    fn serial_expr(&mut self) -> Result<Goal, ParseError> {
        let mut parts = vec![self.unary_expr()?];
        while self.peek().kind == TokenKind::Star {
            self.advance();
            parts.push(self.unary_expr()?);
        }
        Ok(seq(parts))
    }

    fn unary_expr(&mut self) -> Result<Goal, ParseError> {
        match &self.peek().kind {
            TokenKind::LParen => {
                self.advance();
                let g = self.goal()?;
                self.expect(&TokenKind::RParen)?;
                Ok(g)
            }
            TokenKind::Bang => {
                self.advance();
                let atom = self.atom()?;
                Ok(Goal::Atom(atom.negate()))
            }
            TokenKind::Ident(name) => match name.as_str() {
                "iso" | "poss" => {
                    let wrapper = name.clone();
                    self.advance();
                    self.expect(&TokenKind::LParen)?;
                    let g = self.goal()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(if wrapper == "iso" {
                        isolated(g)
                    } else {
                        possible(g)
                    })
                }
                // §7 iteration: `repeat(body, min, max)` unrolls the body
                // with per-iteration event renaming (see
                // `ctr_workflow::loops`). Constraints must reference the
                // renamed `event@i` occurrences or be lifted manually.
                "repeat" => {
                    self.advance();
                    self.expect(&TokenKind::LParen)?;
                    let body = self.goal()?;
                    self.expect(&TokenKind::Comma)?;
                    let min = self.eat_bound()?;
                    self.expect(&TokenKind::Comma)?;
                    let max = self.eat_bound()?;
                    self.expect(&TokenKind::RParen)?;
                    if min > max || max == 0 {
                        return Err(self.error(format!(
                            "repeat bounds must satisfy 0 <= min <= max and max > 0, got ({min}, {max})"
                        )));
                    }
                    Ok(ctr_workflow::unroll(&body, min, max).goal)
                }
                // §7 failure semantics: `guarded(s₁ * s₂ * …)` inserts a
                // ◇-pre-flight check before every step.
                "guarded" => {
                    self.advance();
                    self.expect(&TokenKind::LParen)?;
                    let body = self.goal()?;
                    self.expect(&TokenKind::RParen)?;
                    let steps: Vec<Goal> = match body {
                        Goal::Seq(gs) => gs.to_vec(),
                        other => vec![other],
                    };
                    Ok(ctr_workflow::guarded_seq(&steps))
                }
                "empty" => {
                    self.advance();
                    Ok(Goal::Empty)
                }
                "nopath" => {
                    self.advance();
                    Ok(Goal::NoPath)
                }
                // Channel primitives in their Display form, so compiled
                // goals round-trip through text: `send(xi3)`,
                // `receive(xi3)`.
                "send" | "receive" => {
                    let which = name.clone();
                    self.advance();
                    self.expect(&TokenKind::LParen)?;
                    let channel = match &self.peek().kind {
                        TokenKind::Ident(arg) if arg.starts_with("xi") => {
                            arg["xi".len()..].parse::<u32>().ok()
                        }
                        _ => None,
                    };
                    let Some(n) = channel else {
                        return Err(self.error("expected a channel `xiN` in send/receive"));
                    };
                    self.advance();
                    self.expect(&TokenKind::RParen)?;
                    let ch = ctr::goal::Channel(n);
                    Ok(if which == "send" {
                        Goal::Send(ch)
                    } else {
                        Goal::Receive(ch)
                    })
                }
                _ => Ok(Goal::Atom(self.atom()?)),
            },
            other => Err(self.error(format!("expected a goal, found {other}"))),
        }
    }

    fn eat_bound(&mut self) -> Result<usize, ParseError> {
        match &self.peek().kind {
            TokenKind::Int(n) if *n >= 0 => {
                let n = *n as usize;
                self.advance();
                Ok(n)
            }
            other => Err(self.error(format!("expected a non-negative bound, found {other}"))),
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let name = self.eat_ident()?;
        if name.starts_with(|c: char| c.is_ascii_uppercase()) {
            return Err(self.error(format!(
                "`{name}` is a variable; predicate names must start lowercase"
            )));
        }
        let mut args = Vec::new();
        if self.peek().kind == TokenKind::LParen {
            self.advance();
            loop {
                args.push(self.term()?);
                if self.peek().kind == TokenKind::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        Ok(Atom::new(name.as_str(), args))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match &self.peek().kind {
            TokenKind::Int(n) => {
                let n = *n;
                self.advance();
                Ok(Term::Int(n))
            }
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.advance();
                if name.starts_with(|c: char| c.is_ascii_uppercase()) {
                    let next = Var(self.vars.len() as u32);
                    let v = *self.vars.entry(name).or_insert(next);
                    return Ok(Term::Var(v));
                }
                if self.peek().kind == TokenKind::LParen {
                    self.advance();
                    let mut args = Vec::new();
                    loop {
                        args.push(self.term()?);
                        if self.peek().kind == TokenKind::Comma {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Term::compound(&name, args))
                } else {
                    Ok(Term::constant(&name))
                }
            }
            other => Err(self.error(format!("expected a term, found {other}"))),
        }
    }

    // --- Constraints -------------------------------------------------------

    fn constraint(&mut self) -> Result<Constraint, ParseError> {
        let mut parts = vec![self.constraint_and()?];
        while self.eat_keyword("or") {
            parts.push(self.constraint_and()?);
        }
        let left = Constraint::or(parts);
        if self.eat_keyword("implies") {
            let right = self.constraint()?;
            Ok(Constraint::implies(left, right))
        } else {
            Ok(left)
        }
    }

    fn constraint_and(&mut self) -> Result<Constraint, ParseError> {
        let mut parts = vec![self.constraint_prim()?];
        while self.eat_keyword("and") {
            parts.push(self.constraint_prim()?);
        }
        Ok(Constraint::and(parts))
    }

    fn event_args(&mut self, arity: usize) -> Result<Vec<Symbol>, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut events = Vec::new();
        loop {
            events.push(sym(&self.eat_ident()?));
            if self.peek().kind == TokenKind::Comma {
                self.advance();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        if arity != 0 && events.len() != arity {
            return Err(self.error(format!("expected {arity} event(s), found {}", events.len())));
        }
        Ok(events)
    }

    fn constraint_prim(&mut self) -> Result<Constraint, ParseError> {
        if self.peek().kind == TokenKind::LParen {
            self.advance();
            let c = self.constraint()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(c);
        }
        let name = self.eat_ident()?;
        match name.as_str() {
            "exists" => Ok(Constraint::Must(self.event_args(1)?[0])),
            "absent" => Ok(Constraint::MustNot(self.event_args(1)?[0])),
            "serial" => {
                let events = self.event_args(0)?;
                if events.len() < 2 {
                    return Err(self.error("serial(…) needs at least two events"));
                }
                Ok(Constraint::serial(events))
            }
            "before" => {
                let events = self.event_args(2)?;
                Ok(Constraint::order(events[0], events[1]))
            }
            "klein_order" => {
                let events = self.event_args(2)?;
                Ok(Constraint::klein_order(events[0], events[1]))
            }
            "klein_exists" => {
                let events = self.event_args(2)?;
                Ok(Constraint::klein_exists(events[0], events[1]))
            }
            "causes" => {
                let events = self.event_args(2)?;
                Ok(Constraint::causes_later(events[0], events[1]))
            }
            "requires" => {
                let events = self.event_args(2)?;
                Ok(Constraint::requires_earlier(events[0], events[1]))
            }
            "not" => {
                self.expect(&TokenKind::LParen)?;
                let c = self.constraint()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Constraint::not(c))
            }
            other => Err(self.error(format!(
                "unknown constraint form `{other}` (expected exists/absent/serial/before/\
                 klein_order/klein_exists/causes/requires/not)"
            ))),
        }
    }

    // --- Specifications ----------------------------------------------------

    /// Parses the parenthesized tail of a timer item: `(ev, 30s)`.
    fn timer_spec(&mut self, form: TimerForm) -> Result<TimerSpec, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let event = self.eat_ident()?;
        self.expect(&TokenKind::Comma)?;
        let ms = self.eat_duration()?;
        self.expect(&TokenKind::RParen)?;
        Ok(match form {
            TimerForm::After => TimerSpec::after(event.as_str(), ms),
            TimerForm::Deadline => TimerSpec::deadline(event.as_str(), ms),
            TimerForm::Every => TimerSpec::every(event.as_str(), ms),
        })
    }

    /// Parses a duration `INT unit` (`150ms`, `30s`, `5m`, `24h`) into
    /// milliseconds. The lexer splits `30s` into an integer and an
    /// identifier, so the unit arrives as a separate token.
    fn eat_duration(&mut self) -> Result<u64, ParseError> {
        let n = match &self.peek().kind {
            TokenKind::Int(n) if *n >= 0 => {
                let n = *n as u64;
                self.advance();
                n
            }
            other => {
                return Err(self.error(format!(
                    "expected a duration like `30s` or `150ms`, found {other}"
                )))
            }
        };
        let unit = self.eat_ident()?;
        let scale: u64 = match unit.as_str() {
            "ms" => 1,
            "s" => 1_000,
            "m" => 60_000,
            "h" => 3_600_000,
            other => {
                return Err(self.error(format!(
                    "unknown duration unit `{other}` (expected ms, s, m, or h)"
                )))
            }
        };
        n.checked_mul(scale)
            .ok_or_else(|| self.error(format!("duration `{n}{unit}` overflows milliseconds")))
    }

    fn spec(&mut self) -> Result<WorkflowSpec, ParseError> {
        if !self.eat_keyword("workflow") {
            return Err(self.error("expected `workflow <name> { … }`"));
        }
        let name = self.eat_ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut spec = WorkflowSpec::new(&name, Goal::Empty);
        let mut saw_graph = false;
        while self.peek().kind != TokenKind::RBrace {
            if self.eat_keyword("graph") {
                if saw_graph {
                    return Err(self.error("duplicate `graph` section"));
                }
                spec.graph = self.goal()?;
                saw_graph = true;
            } else if self.eat_keyword("define") {
                let sub = self.eat_ident()?;
                self.expect(&TokenKind::Define)?;
                let body = self.goal()?;
                spec.subworkflows
                    .define(sub.as_str(), body)
                    .map_err(|e| self.error(e.to_string()))?;
            } else if self.eat_keyword("constraint") {
                spec.constraints.push(self.constraint()?);
            } else if self.eat_keyword("trigger") {
                if !self.eat_keyword("on") {
                    return Err(self.error("expected `on <event>` after `trigger`"));
                }
                let on = self.eat_ident()?;
                let condition = if self.eat_keyword("if") {
                    Some(self.atom()?)
                } else {
                    None
                };
                if !self.eat_keyword("do") {
                    return Err(self.error("expected `do <goal>` in trigger"));
                }
                let action = self.goal()?;
                let semantics = if self.eat_keyword("eventually") {
                    TriggerSemantics::Eventual
                } else {
                    TriggerSemantics::Immediate
                };
                spec.triggers.push(Trigger {
                    on: sym(&on),
                    condition,
                    action,
                    semantics,
                });
            } else if self.eat_keyword("after") {
                spec.timers.push(self.timer_spec(TimerForm::After)?);
            } else if self.eat_keyword("deadline") {
                spec.timers.push(self.timer_spec(TimerForm::Deadline)?);
            } else if self.eat_keyword("every") {
                spec.timers.push(self.timer_spec(TimerForm::Every)?);
            } else {
                return Err(self.error(format!(
                    "expected `graph`, `define`, `constraint`, `trigger`, `after`, \
                     `deadline`, or `every`, found {}",
                    self.peek().kind
                )));
            }
            self.expect(&TokenKind::Semi)?;
        }
        self.expect(&TokenKind::RBrace)?;
        if !saw_graph {
            return Err(self.error(format!("workflow `{name}` has no `graph` section")));
        }
        Ok(spec)
    }
}

/// Parses a concurrent-Horn goal.
pub fn parse_goal(input: &str) -> Result<Goal, ParseError> {
    let mut p = Parser::new(input)?;
    let g = p.goal()?;
    if !p.at_eof() {
        return Err(p.error(format!("unexpected trailing {}", p.peek().kind)));
    }
    Ok(g)
}

/// Parses a `CONSTR` constraint.
pub fn parse_constraint(input: &str) -> Result<Constraint, ParseError> {
    let mut p = Parser::new(input)?;
    let c = p.constraint()?;
    if !p.at_eof() {
        return Err(p.error(format!("unexpected trailing {}", p.peek().kind)));
    }
    Ok(c)
}

/// Parses a complete workflow specification.
pub fn parse_spec(input: &str) -> Result<WorkflowSpec, ParseError> {
    let mut p = Parser::new(input)?;
    let s = p.spec()?;
    if !p.at_eof() {
        return Err(p.error(format!("unexpected trailing {}", p.peek().kind)));
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    #[test]
    fn goal_precedence_matches_display() {
        let goal = parse_goal("a * (b + c) # d").unwrap();
        assert_eq!(
            goal,
            conc(vec![seq(vec![g("a"), or(vec![g("b"), g("c")])]), g("d")])
        );
        // Round trip through Display.
        assert_eq!(parse_goal(&goal.to_string()).unwrap(), goal);
    }

    #[test]
    fn or_binds_loosest() {
        let goal = parse_goal("a * b + c # d").unwrap();
        assert_eq!(
            goal,
            or(vec![seq(vec![g("a"), g("b")]), conc(vec![g("c"), g("d")])])
        );
    }

    #[test]
    fn modalities_and_units() {
        let goal = parse_goal("iso(a * b) # poss(c) * empty").unwrap();
        assert_eq!(
            goal,
            conc(vec![isolated(seq(vec![g("a"), g("b")])), possible(g("c"))])
        );
        assert_eq!(parse_goal("nopath + a").unwrap(), g("a"));
    }

    #[test]
    fn negated_and_first_order_atoms() {
        let goal = parse_goal("!frozen * pay(X, 3) * book(paris)").unwrap();
        let Goal::Seq(parts) = &goal else {
            panic!("expected seq")
        };
        assert_eq!(parts[0], Goal::Atom(Atom::prop("frozen").negate()));
        assert_eq!(
            parts[1],
            Goal::Atom(Atom::new("pay", vec![Term::Var(Var(0)), Term::Int(3)]))
        );
        assert_eq!(
            parts[2],
            Goal::Atom(Atom::new("book", vec![Term::constant("paris")]))
        );
    }

    #[test]
    fn shared_variables_unify_names() {
        let goal = parse_goal("flight(X) * ins_booked(X) * hotel(Y)").unwrap();
        let Goal::Seq(parts) = &goal else {
            panic!("expected seq")
        };
        let Goal::Atom(a1) = &parts[0] else { panic!() };
        let Goal::Atom(a2) = &parts[1] else { panic!() };
        let Goal::Atom(a3) = &parts[2] else { panic!() };
        assert_eq!(a1.args[0], a2.args[0], "same name, same variable");
        assert_ne!(a1.args[0], a3.args[0]);
    }

    #[test]
    fn compound_terms_nest() {
        let goal = parse_goal("log(entry(order, 42))").unwrap();
        assert_eq!(
            goal,
            Goal::Atom(Atom::new(
                "log",
                vec![Term::compound(
                    "entry",
                    vec![Term::constant("order"), Term::Int(42)]
                )]
            ))
        );
    }

    #[test]
    fn constraint_forms() {
        assert_eq!(
            parse_constraint("exists(e)").unwrap(),
            Constraint::must("e")
        );
        assert_eq!(
            parse_constraint("absent(e)").unwrap(),
            Constraint::must_not("e")
        );
        assert_eq!(
            parse_constraint("before(a, b)").unwrap(),
            Constraint::order("a", "b")
        );
        assert_eq!(
            parse_constraint("serial(a, b, c)").unwrap(),
            Constraint::serial(vec![sym("a"), sym("b"), sym("c")])
        );
        assert_eq!(
            parse_constraint("klein_order(a, b)").unwrap(),
            Constraint::klein_order("a", "b")
        );
        assert_eq!(
            parse_constraint("not(before(a, b))").unwrap(),
            Constraint::not(Constraint::order("a", "b"))
        );
    }

    #[test]
    fn constraint_connectives_and_implies() {
        let c = parse_constraint("exists(a) and absent(b) or exists(c)").unwrap();
        assert_eq!(
            c,
            Constraint::or(vec![
                Constraint::and(vec![Constraint::must("a"), Constraint::must_not("b")]),
                Constraint::must("c"),
            ])
        );
        let imp = parse_constraint("exists(e) implies exists(f)").unwrap();
        assert_eq!(
            imp,
            Constraint::implies(Constraint::must("e"), Constraint::must("f"))
        );
    }

    #[test]
    fn channel_primitives_round_trip() {
        use ctr::goal::Channel;
        let goal = conc(vec![
            seq(vec![g("a"), Goal::Send(Channel(3))]),
            seq(vec![Goal::Receive(Channel(3)), g("b")]),
        ]);
        let text = goal.to_string();
        assert_eq!(parse_goal(&text).unwrap(), goal, "text was `{text}`");
        // A compiled workflow round-trips whole.
        let compiled =
            ctr::apply::apply(&[Constraint::order("a", "b")], &conc(vec![g("a"), g("b")]));
        assert_eq!(parse_goal(&compiled.to_string()).unwrap(), compiled);
    }

    #[test]
    fn malformed_channels_are_rejected() {
        assert!(parse_goal("send(3)").is_err());
        assert!(parse_goal("receive(xi)").is_err());
        assert!(parse_goal("send(xix)").is_err());
    }

    #[test]
    fn repeat_unrolls_with_renaming() {
        let goal = parse_goal("start * repeat(poll, 1, 3) * done").unwrap();
        assert!(ctr::unique::is_unique_event(&goal));
        let events = goal.events();
        assert!(events.contains(&sym("poll@1")));
        assert!(events.contains(&sym("poll@3")));
        assert!(!events.contains(&sym("poll")));
    }

    #[test]
    fn repeat_rejects_bad_bounds() {
        assert!(parse_goal("repeat(a, 3, 1)").is_err());
        assert!(parse_goal("repeat(a, 0, 0)").is_err());
        assert!(parse_goal("repeat(a, -1, 2)").is_err());
    }

    #[test]
    fn guarded_inserts_possibility_checks() {
        let goal = parse_goal("guarded(a * b)").unwrap();
        let Goal::Seq(parts) = &goal else {
            panic!("expected sequence")
        };
        assert_eq!(parts.len(), 4);
        assert!(matches!(parts[0], Goal::Possible(_)));
        // Single-step form.
        let single = parse_goal("guarded(x)").unwrap();
        assert!(matches!(&single, Goal::Seq(ps) if ps.len() == 2));
    }

    #[test]
    fn full_spec_parses() {
        let input = r"
            workflow orders {
                graph order * fulfil * close;
                define fulfil := pick # invoice;
                constraint before(pick, invoice);
                trigger on order if priority do expedite;
                trigger on close do archive eventually;
            }
        ";
        let spec = parse_spec(input).unwrap();
        assert_eq!(spec.name, "orders");
        assert_eq!(spec.graph, seq(vec![g("order"), g("fulfil"), g("close")]));
        assert!(spec.subworkflows.defines(sym("fulfil")));
        assert_eq!(spec.constraints, vec![Constraint::order("pick", "invoice")]);
        assert_eq!(spec.triggers.len(), 2);
        assert_eq!(spec.triggers[0].condition, Some(Atom::prop("priority")));
        assert_eq!(spec.triggers[1].semantics, TriggerSemantics::Eventual);
        // And the whole thing compiles.
        assert!(spec.compile().unwrap().is_consistent());
    }

    #[test]
    fn timer_items_parse_with_units() {
        let input = r"
            workflow sla {
                graph submit * review * publish;
                after(review, 30s);
                deadline(publish, 24h);
                every(review, 5m);
                after(submit, 150ms);
            }
        ";
        let spec = parse_spec(input).unwrap();
        assert_eq!(
            spec.timers,
            vec![
                ctr_workflow::TimerSpec::after("review", 30_000),
                ctr_workflow::TimerSpec::deadline("publish", 86_400_000),
                ctr_workflow::TimerSpec::every("review", 300_000),
                ctr_workflow::TimerSpec::after("submit", 150),
            ]
        );
        // The compiled goal carries the ticks as ordinary events.
        let compiled = spec.compile().unwrap();
        assert!(compiled.is_consistent());
        let events = compiled.goal.events();
        assert!(
            events.contains(&sym("publish@deadline86400000")),
            "{events:?}"
        );
        assert!(events.contains(&sym("review@after30000")));
    }

    #[test]
    fn timer_durations_are_validated() {
        let spec = |body: &str| format!("workflow w {{ graph a; {body} }}");
        assert!(parse_spec(&spec("after(a, 30s);")).is_ok());
        let err = parse_spec(&spec("after(a, 30);")).unwrap_err();
        assert!(err.message.contains("expected identifier"), "{err}");
        let err = parse_spec(&spec("after(a, 30w);")).unwrap_err();
        assert!(err.message.contains("unknown duration unit"), "{err}");
        let err = parse_spec(&spec("after(a, x);")).unwrap_err();
        assert!(err.message.contains("expected a duration"), "{err}");
        let err = parse_spec(&spec("after(a, 9999999999999999h);")).unwrap_err();
        assert!(
            err.message.contains("overflow") || err.message.contains("expected a duration"),
            "{err}"
        );
    }

    #[test]
    fn spec_requires_graph() {
        let err = parse_spec("workflow empty { constraint exists(a); }").unwrap_err();
        assert!(err.message.contains("no `graph`"));
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_goal("a *\n  *").unwrap_err();
        assert_eq!((err.line, err.col), (2, 3));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(parse_goal("a b").is_err());
        assert!(parse_constraint("exists(a) exists(b)").is_err());
    }

    #[test]
    fn unknown_constraint_form_is_helpful() {
        let err = parse_constraint("happens(a)").unwrap_err();
        assert!(err.message.contains("unknown constraint form"));
    }

    #[test]
    fn uppercase_predicate_is_rejected() {
        assert!(parse_goal("Approve").is_err());
    }

    #[test]
    fn figure1_goal_parses() {
        // Equation (1) in the surface syntax.
        let input = "a * ((cond1 * b * ((d * cond3 * h) + e) * j) \
                     # (cond2 * c * ((f * i * cond4) + (g * cond5)))) * k";
        let goal = parse_goal(input).unwrap();
        assert!(ctr::unique::is_unique_event(&goal));
        assert_eq!(goal.events().len(), 16);
    }
}
