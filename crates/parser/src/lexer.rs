//! Tokenizer for the workflow specification language.
//!
//! The surface syntax mirrors the paper's notation in ASCII:
//! `*` for `⊗`, `#` for `|`, `+` for `∨`, `iso(…)` for `⊙`, `poss(…)` for
//! `◇`, and `\+` (or `!`) for negated query atoms. Keywords are plain
//! identifiers recognized by the parser, so activity names like `exists`
//! are still usable in goal position.

use std::fmt;

/// A token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier: `[A-Za-z_][A-Za-z0-9_]*`.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `*`
    Star,
    /// `#`
    Hash,
    /// `+`
    Plus,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:=`
    Define,
    /// `!` or `\+` — negation of a query atom.
    Bang,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(n) => write!(f, "integer `{n}`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Hash => write!(f, "`#`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Define => write!(f, "`:=`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexical error with position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Offending character.
    pub found: char,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected character `{}` at {}:{}",
            self.found, self.line, self.col
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `input`. `//` comments run to end of line.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    let (mut line, mut col) = (1usize, 1usize);

    macro_rules! push {
        ($kind:expr, $len:expr) => {{
            tokens.push(Token {
                kind: $kind,
                line,
                col,
            });
            col += $len;
        }};
    }

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                col += 1;
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for nc in chars.by_ref() {
                        if nc == '\n' {
                            line += 1;
                            col = 1;
                            break;
                        }
                    }
                } else {
                    return Err(LexError {
                        found: '/',
                        line,
                        col,
                    });
                }
            }
            '*' => {
                chars.next();
                push!(TokenKind::Star, 1);
            }
            '#' => {
                chars.next();
                push!(TokenKind::Hash, 1);
            }
            '+' => {
                chars.next();
                push!(TokenKind::Plus, 1);
            }
            '(' => {
                chars.next();
                push!(TokenKind::LParen, 1);
            }
            ')' => {
                chars.next();
                push!(TokenKind::RParen, 1);
            }
            '{' => {
                chars.next();
                push!(TokenKind::LBrace, 1);
            }
            '}' => {
                chars.next();
                push!(TokenKind::RBrace, 1);
            }
            ',' => {
                chars.next();
                push!(TokenKind::Comma, 1);
            }
            ';' => {
                chars.next();
                push!(TokenKind::Semi, 1);
            }
            '!' => {
                chars.next();
                push!(TokenKind::Bang, 1);
            }
            '\\' => {
                chars.next();
                if chars.peek() == Some(&'+') {
                    chars.next();
                    push!(TokenKind::Bang, 2);
                } else {
                    return Err(LexError {
                        found: '\\',
                        line,
                        col,
                    });
                }
            }
            ':' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(TokenKind::Define, 2);
                } else {
                    return Err(LexError {
                        found: ':',
                        line,
                        col,
                    });
                }
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut text = String::new();
                if c == '-' {
                    text.push(c);
                    chars.next();
                    if !chars.peek().is_some_and(char::is_ascii_digit) {
                        return Err(LexError {
                            found: '-',
                            line,
                            col,
                        });
                    }
                }
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        text.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let value: i64 = text.parse().map_err(|_| LexError {
                    found: c,
                    line,
                    col,
                })?;
                let len = text.len();
                push!(TokenKind::Int(value), len);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut text = String::new();
                // `@` continues an identifier: loop unrolling renames
                // occurrences to `event@iteration` (ctr-workflow::loops).
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' || d == '@' {
                        text.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let len = text.len();
                push!(TokenKind::Ident(text), len);
            }
            other => {
                return Err(LexError {
                    found: other,
                    line,
                    col,
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("a * b # c + d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Star,
                TokenKind::Ident("b".into()),
                TokenKind::Hash,
                TokenKind::Ident("c".into()),
                TokenKind::Plus,
                TokenKind::Ident("d".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn punctuation_and_define() {
        assert_eq!(
            kinds("ship := pack; { }"),
            vec![
                TokenKind::Ident("ship".into()),
                TokenKind::Define,
                TokenKind::Ident("pack".into()),
                TokenKind::Semi,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn negation_forms() {
        assert_eq!(
            kinds("!frozen \\+frozen"),
            vec![
                TokenKind::Bang,
                TokenKind::Ident("frozen".into()),
                TokenKind::Bang,
                TokenKind::Ident("frozen".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn integers_including_negative() {
        assert_eq!(
            kinds("f(3, -12)"),
            vec![
                TokenKind::Ident("f".into()),
                TokenKind::LParen,
                TokenKind::Int(3),
                TokenKind::Comma,
                TokenKind::Int(-12),
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // this is a comment\n b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!((tokens[0].line, tokens[0].col), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].col), (2, 3));
    }

    #[test]
    fn bad_character_is_reported_with_position() {
        let err = lex("a @ b").unwrap_err();
        assert_eq!(
            err,
            LexError {
                found: '@',
                line: 1,
                col: 3
            }
        );
    }

    #[test]
    fn at_continues_identifiers() {
        // Renamed loop occurrences like `poll@2` are single identifiers;
        // a leading `@` is still an error.
        assert_eq!(
            kinds("poll@2"),
            vec![TokenKind::Ident("poll@2".into()), TokenKind::Eof]
        );
        assert!(lex("@poll").is_err());
    }

    #[test]
    fn lone_colon_is_an_error() {
        assert!(lex("a : b").is_err());
    }

    #[test]
    fn lone_minus_is_an_error() {
        assert!(lex("a - b").is_err());
    }
}
