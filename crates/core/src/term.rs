//! First-order terms and atoms.
//!
//! CTR is a conservative extension of classical predicate logic (paper, §2):
//! its atomic formulas are `p(t₁, …, tₙ)` over ordinary function terms. The
//! workflow fragment used for constraint compilation is propositional —
//! activities and events are zero-ary atoms — but rules, queries, and
//! transition conditions range over full first-order atoms, so terms carry
//! variables and nested compounds.
//!
//! Recursive structure is kept behind `Vec`s (compound argument lists), so
//! the enum itself stays word-sized plus payload and never needs a `Box`
//! cycle — the "boxing care" that recursive term types require in Rust.

use crate::symbol::Symbol;
use std::fmt;

/// A logical variable, identified by a dense index.
///
/// Variables are scoped to a clause or query; renaming-apart (freshening)
/// is performed by the engine when a rule is invoked.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub u32);

/// A first-order term.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A logical variable.
    Var(Var),
    /// An interned constant (e.g. `paris`, `approved`).
    Const(Symbol),
    /// A machine integer constant.
    Int(i64),
    /// A compound term `f(t₁, …, tₙ)` with `n ≥ 1`.
    Compound(Symbol, Vec<Term>),
}

impl Term {
    /// Constant term from a name.
    pub fn constant(name: &str) -> Term {
        Term::Const(Symbol::intern(name))
    }

    /// Compound term `functor(args…)`. An empty argument list collapses to a
    /// constant so that `f()` and `f` denote the same term.
    pub fn compound(functor: &str, args: Vec<Term>) -> Term {
        let f = Symbol::intern(functor);
        if args.is_empty() {
            Term::Const(f)
        } else {
            Term::Compound(f, args)
        }
    }

    /// True if the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Const(_) | Term::Int(_) => true,
            Term::Compound(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// Collects the variables of the term into `out` (with duplicates).
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Term::Var(v) => out.push(*v),
            Term::Const(_) | Term::Int(_) => {}
            Term::Compound(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// Number of nodes in the term tree.
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) | Term::Const(_) | Term::Int(_) => 1,
            Term::Compound(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(Var(i)) => write!(f, "_V{i}"),
            Term::Const(s) => write!(f, "{s}"),
            Term::Int(n) => write!(f, "{n}"),
            Term::Compound(functor, args) => {
                write!(f, "{functor}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An atomic formula `p(t₁, …, tₙ)`, optionally negated.
///
/// Negation is only meaningful on *query* atoms (transition conditions in
/// control flow graphs are tested with negation-as-failure by the engine);
/// events and elementary updates are always positive. A negated atom is
/// never a significant event, so the `Apply` transformation treats it like
/// any other non-matching activity.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// Predicate name.
    pub pred: Symbol,
    /// Argument terms; empty for propositional activities/events.
    pub args: Vec<Term>,
    /// True for a negation-as-failure query `¬p(t…)`.
    pub negated: bool,
}

impl Atom {
    /// A propositional (zero-ary, positive) atom — the encoding of workflow
    /// activities and significant events in the paper.
    pub fn prop(name: impl Into<Symbol>) -> Atom {
        Atom {
            pred: name.into(),
            args: Vec::new(),
            negated: false,
        }
    }

    /// A positive first-order atom.
    pub fn new(pred: impl Into<Symbol>, args: Vec<Term>) -> Atom {
        Atom {
            pred: pred.into(),
            args,
            negated: false,
        }
    }

    /// Returns the negated copy of this atom.
    pub fn negate(&self) -> Atom {
        Atom {
            pred: self.pred,
            args: self.args.clone(),
            negated: !self.negated,
        }
    }

    /// True if the atom is propositional: positive with no arguments.
    pub fn is_prop(&self) -> bool {
        self.args.is_empty() && !self.negated
    }

    /// If this atom can denote a significant event (propositional and
    /// positive), returns its symbol. Used by the constraint compiler to
    /// match events against occurrences (Definition 5.1).
    pub fn as_event(&self) -> Option<Symbol> {
        if self.is_prop() {
            Some(self.pred)
        } else {
            None
        }
    }

    /// True if all argument terms are ground.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground)
    }

    /// Node count (predicate plus argument trees).
    pub fn size(&self) -> usize {
        1 + self.args.iter().map(Term::size).sum::<usize>()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "\\+")?;
        }
        write!(f, "{}", self.pred)?;
        if !self.args.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<&str> for Atom {
    fn from(name: &str) -> Atom {
        Atom::prop(name)
    }
}

impl From<Symbol> for Atom {
    fn from(name: Symbol) -> Atom {
        Atom::prop(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    #[test]
    fn compound_with_no_args_is_constant() {
        assert_eq!(Term::compound("f", vec![]), Term::constant("f"));
    }

    #[test]
    fn groundness() {
        let t = Term::compound("f", vec![Term::constant("a"), Term::Var(Var(0))]);
        assert!(!t.is_ground());
        let g = Term::compound("f", vec![Term::constant("a"), Term::Int(3)]);
        assert!(g.is_ground());
    }

    #[test]
    fn collect_vars_finds_nested_variables() {
        let t = Term::compound(
            "f",
            vec![
                Term::Var(Var(1)),
                Term::compound("g", vec![Term::Var(Var(2))]),
            ],
        );
        let mut vars = Vec::new();
        t.collect_vars(&mut vars);
        assert_eq!(vars, vec![Var(1), Var(2)]);
    }

    #[test]
    fn prop_atom_is_event() {
        let a = Atom::prop("commit");
        assert_eq!(a.as_event(), Some(sym("commit")));
        assert!(a.is_prop());
    }

    #[test]
    fn negated_atom_is_not_event() {
        let a = Atom::prop("in_stock").negate();
        assert_eq!(a.as_event(), None);
        assert!(!a.is_prop());
        assert_eq!(a.negate(), Atom::prop("in_stock"));
    }

    #[test]
    fn first_order_atom_is_not_event() {
        let a = Atom::new("book", vec![Term::constant("paris")]);
        assert_eq!(a.as_event(), None);
        assert!(a.is_ground());
    }

    #[test]
    fn display_formats() {
        let a = Atom::new("book", vec![Term::constant("paris"), Term::Int(2)]);
        assert_eq!(a.to_string(), "book(paris, 2)");
        assert_eq!(a.negate().to_string(), "\\+book(paris, 2)");
        assert_eq!(Atom::prop("go").to_string(), "go");
    }

    #[test]
    fn term_size_counts_nodes() {
        let t = Term::compound(
            "f",
            vec![Term::constant("a"), Term::compound("g", vec![Term::Int(1)])],
        );
        assert_eq!(t.size(), 4);
    }
}
