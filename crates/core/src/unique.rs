//! The unique-event property (Definition 3.1).
//!
//! A concurrent-Horn goal has the unique-event property when every
//! significant event occurs at most once in any execution. The paper's
//! constraint compilation (§5) is only correct for unique-event goals, and
//! notes that the property is recognizable in linear time. This module is
//! that linear-time recognizer, built directly on the structural facts (3):
//!
//! * in `E₁ ⊗ E₂` and `E₁ | E₂`, an event occurring in `E₁` cannot occur in
//!   `E₂` — both conjuncts execute, so a shared event would occur twice;
//! * `E₁ ∨ E₂` is unique-event iff both disjuncts are — only one branch
//!   executes, so the branches may freely share events.
//!
//! The checker runs bottom-up, carrying the set of events *executable* in
//! each subgoal, and rejects the first overlap between `⊗`/`|` siblings.

use crate::goal::Goal;
use crate::symbol::Symbol;
use std::collections::BTreeSet;
use std::fmt;

/// A violation of the unique-event property: `event` can occur twice in a
/// single execution because it appears in two sibling conjuncts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DuplicateEvent {
    /// The offending event.
    pub event: Symbol,
    /// Rendering of the smallest conjunction in which the duplication was
    /// detected, for designer feedback.
    pub context: String,
}

impl fmt::Display for DuplicateEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event `{}` may occur twice in one execution (within `{}`)",
            self.event, self.context
        )
    }
}

impl std::error::Error for DuplicateEvent {}

/// Checks the unique-event property over *all* propositional atoms of the
/// goal, returning the goal's event set on success.
///
/// This is the conservative default: a goal unique in all its atoms is
/// certainly unique in any subset designated as significant events.
pub fn check_unique_events(goal: &Goal) -> Result<BTreeSet<Symbol>, DuplicateEvent> {
    check_unique_events_among(goal, None)
}

/// Checks the unique-event property restricted to the events in
/// `significant`. Activities outside the set may repeat freely — they are
/// not constrained events, so repetition does not affect the compilation.
pub fn check_unique_events_among(
    goal: &Goal,
    significant: Option<&BTreeSet<Symbol>>,
) -> Result<BTreeSet<Symbol>, DuplicateEvent> {
    fn walk(
        goal: &Goal,
        significant: Option<&BTreeSet<Symbol>>,
    ) -> Result<BTreeSet<Symbol>, DuplicateEvent> {
        match goal {
            Goal::Atom(a) => {
                let mut set = BTreeSet::new();
                if let Some(e) = a.as_event() {
                    if significant.is_none_or(|s| s.contains(&e)) {
                        set.insert(e);
                    }
                }
                Ok(set)
            }
            Goal::Seq(gs) | Goal::Conc(gs) => {
                let mut acc: BTreeSet<Symbol> = BTreeSet::new();
                for g in gs.iter() {
                    let child = walk(g, significant)?;
                    for e in child {
                        if !acc.insert(e) {
                            return Err(DuplicateEvent {
                                event: e,
                                context: goal.to_string(),
                            });
                        }
                    }
                }
                Ok(acc)
            }
            Goal::Or(gs) => {
                let mut acc: BTreeSet<Symbol> = BTreeSet::new();
                for g in gs.iter() {
                    acc.extend(walk(g, significant)?);
                }
                Ok(acc)
            }
            Goal::Isolated(g) => walk(g, significant),
            // ◇ bodies are hypothetical: their events never occur on the
            // execution path, so they cannot break per-path uniqueness
            // (and the Apply transformation treats them as opaque).
            Goal::Possible(_) => Ok(BTreeSet::new()),
            Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => Ok(BTreeSet::new()),
        }
    }
    walk(goal, significant)
}

/// Convenience predicate form of [`check_unique_events`].
pub fn is_unique_event(goal: &Goal) -> bool {
    check_unique_events(goal).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::{conc, or, seq};
    use crate::symbol::sym;

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    #[test]
    fn figure1_goal_is_unique_event() {
        // Equation (1) of the paper, conditions omitted.
        let goal = seq(vec![
            g("a"),
            conc(vec![
                seq(vec![
                    g("b"),
                    or(vec![seq(vec![g("d"), g("h")]), g("e")]),
                    g("j"),
                ]),
                seq(vec![g("c"), or(vec![seq(vec![g("f"), g("i")]), g("g")])]),
            ]),
            g("k"),
        ]);
        let events = check_unique_events(&goal).expect("figure 1 is unique-event");
        assert_eq!(events.len(), 11);
    }

    #[test]
    fn duplicate_in_seq_is_rejected() {
        let goal = seq(vec![g("a"), g("b"), g("a")]);
        let err = check_unique_events(&goal).unwrap_err();
        assert_eq!(err.event, sym("a"));
    }

    #[test]
    fn duplicate_in_conc_is_rejected() {
        let goal = conc(vec![g("x"), seq(vec![g("y"), g("x")])]);
        let err = check_unique_events(&goal).unwrap_err();
        assert_eq!(err.event, sym("x"));
    }

    #[test]
    fn duplicate_across_or_branches_is_allowed() {
        // η occurs in both branches of the ∨ in Example 5.7; the goal is
        // still unique-event because only one branch executes.
        let goal = seq(vec![
            g("gamma"),
            or(vec![g("eta"), conc(vec![g("alpha"), g("beta"), g("eta")])]),
        ]);
        assert!(is_unique_event(&goal));
    }

    #[test]
    fn duplicate_inside_one_or_branch_is_rejected() {
        let goal = or(vec![g("a"), seq(vec![g("b"), g("b")])]);
        assert!(!is_unique_event(&goal));
    }

    #[test]
    fn restricting_to_significant_events_ignores_other_activities() {
        // `audit` repeats, but it is not a significant event.
        let goal = seq(vec![g("audit"), g("pay"), g("audit")]);
        assert!(!is_unique_event(&goal));
        let significant: BTreeSet<Symbol> = [sym("pay")].into_iter().collect();
        assert!(check_unique_events_among(&goal, Some(&significant)).is_ok());
    }

    #[test]
    fn channels_and_units_do_not_count_as_events() {
        use crate::goal::Channel;
        let goal = seq(vec![
            Goal::Send(Channel(0)),
            Goal::Receive(Channel(0)),
            Goal::Empty,
        ]);
        assert_eq!(check_unique_events(&goal).unwrap().len(), 0);
    }

    #[test]
    fn isolation_is_transparent_but_possibility_is_opaque() {
        use crate::goal::{isolated, possible};
        // ⊙a executes a on the path: counted.
        assert!(!is_unique_event(&seq(vec![isolated(g("a")), g("a")])));
        // ◇a does not execute a on the path: a may also occur for real.
        assert!(is_unique_event(&seq(vec![possible(g("a")), g("a")])));
        // The ◇-guarded-sequence combinator relies on this: guards carry
        // copies of later steps.
        let guarded = seq(vec![
            possible(seq(vec![g("x"), g("y")])),
            g("x"),
            possible(g("y")),
            g("y"),
        ]);
        assert!(is_unique_event(&guarded));
    }

    #[test]
    fn event_set_is_returned_on_success() {
        let goal = seq(vec![g("a"), or(vec![g("b"), g("c")])]);
        let evs = check_unique_events(&goal).unwrap();
        assert_eq!(evs, [sym("a"), sym("b"), sym("c")].into_iter().collect());
    }
}
