//! Tabled analysis: hash-consed subgoal memoization and the cross-query
//! [`Analyzer`] session.
//!
//! Verification (Theorem 5.9) is NP-complete, and every entry point in
//! [`crate::analysis`] pays full price every time: `verify` recompiles
//! `G ∧ C ∧ ¬Φ` from scratch, `ordering` runs three independent compiles,
//! and `minimize_constraints` is a loop of nearly identical `is_redundant`
//! compiles. Across those queries the *same* subgoals are rewritten by the
//! *same* primitive operations over and over — the shape SLG-style tabling
//! (Swift/Warren) and mir-formality's `cosld` solver exploit: memoize
//! subgoal results, keyed on structure, with an explicit in-progress stack
//! guarding re-entry.
//!
//! Three layers:
//!
//! 1. [`GoalTable`] — a hash-consing table interning `Goal` subtrees into
//!    stable [`NodeId`]s. Buckets are keyed by the cached
//!    [`Goal::structural_hash`]; inside a bucket candidates are compared
//!    with a *real* equality check (pointer comparison first, exactly like
//!    [`crate::goal::or`]'s idempotence dedup — hash equality alone is NOT
//!    identity). Repeated subtrees across disjuncts and across queries
//!    therefore share one id, and re-encountering a cached `Arc` costs one
//!    pointer compare.
//! 2. [`Memo`] — memo tables for the **channel-free** rewrites
//!    (`apply_must`, `apply_must_not`, `sync` at a fixed channel,
//!    `simplify`, and per-region `Excise` results), keyed on
//!    `(op, event, node_id)`. `apply_order` allocates a fresh channel, so
//!    its output depends on allocator state and is not tabled as a unit;
//!    see DESIGN.md §13 for the channel-normalization decision (table the
//!    channel-free inner `apply_must ∘ apply_must` stage, plus the `sync`
//!    stage keyed on the *concrete* channel it was given — deterministic
//!    once the channel is part of the key).
//! 3. [`Analyzer`] — a session owning one `Memo` across queries:
//!    `verify_all`, `activity_report`, `ordering`, `minimize_constraints`,
//!    and incremental re-verification after adding/removing/replacing one
//!    constraint in roughly the cost of the changed region (the unchanged
//!    constraint prefix replays as top-level memo hits).
//!
//! Every tabled operation is a pure function of its key, so outputs are
//! **bit-identical** to the untabled path — pinned by the equivalence
//! proptest in `tests/tabled_analysis.rs` and asserted again by the
//! `verify_incr` benchmarks.

use crate::analysis::{
    mentions_conditions, ActivityStatus, CompileError, Compiled, Ordering, Verification,
};
use crate::apply::{map_children_shared, order_budget, ChannelAlloc};
use crate::constraints::{Basic, Conjunct, Constraint, NormalForm};
use crate::excise::{ExciseResult, KnotReport};
use crate::goal::{conc, isolated, or, seq, Channel, Goal};
use crate::symbol::Symbol;
use crate::unique::check_unique_events;
use std::collections::HashMap;

/// Stable id of an interned goal subtree. Ids are dense indices into the
/// owning [`GoalTable`]; equal goals always receive the same id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(u32);

/// Hash-consing table: interns `Goal` subtrees into stable [`NodeId`]s.
///
/// Buckets are keyed by the cached structural hash; within a bucket the
/// candidate is confirmed by real equality, pointer comparison first (the
/// [`crate::goal::or`] dedup idiom). Two structurally distinct goals that
/// collide on the hash therefore land in the same bucket but keep distinct
/// ids — see the `hash_collision_keeps_distinct_ids` test.
#[derive(Default)]
pub struct GoalTable {
    nodes: Vec<Goal>,
    buckets: HashMap<u64, Vec<u32>>,
}

impl GoalTable {
    /// An empty table.
    pub fn new() -> GoalTable {
        GoalTable::default()
    }

    /// Interns a goal, returning its stable id. Equal goals (by structural
    /// equality) always return the same id.
    pub fn intern(&mut self, goal: &Goal) -> NodeId {
        self.intern_hashed(goal, goal.structural_hash())
    }

    /// [`GoalTable::intern`] with the bucket hash supplied by the caller.
    /// Split out so the collision-safety test can force two structurally
    /// distinct goals through one bucket.
    fn intern_hashed(&mut self, goal: &Goal, hash: u64) -> NodeId {
        let ids = self.buckets.entry(hash).or_default();
        for &i in ids.iter() {
            let candidate = &self.nodes[i as usize];
            // Pointer compare first: re-encountering a cached Arc is the
            // common case on warm tables. Hash equality alone is NOT
            // identity — the deep equality check is what keeps colliding
            // goals distinct.
            if candidate.ptr_eq(goal) || candidate == goal {
                return NodeId(i);
            }
        }
        let id = u32::try_from(self.nodes.len()).expect("fewer than 2^32 interned subgoals");
        self.nodes.push(goal.clone());
        ids.push(id);
        NodeId(id)
    }

    /// The goal a node id stands for.
    pub fn resolve(&self, id: NodeId) -> &Goal {
        &self.nodes[id.0 as usize]
    }

    /// Number of interned subtrees.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Memo key: which channel-free rewrite, at which event/channel binding.
/// Paired with the [`NodeId`] of the input subtree.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Op {
    /// `Apply(∇α, ·)`.
    Must(Symbol),
    /// `Apply(¬∇α, ·)`.
    MustNot(Symbol),
    /// `sync(α<β, ·)` at a fixed, caller-supplied channel. The channel is
    /// part of the key, so the entry is deterministic even though
    /// `apply_order` allocates it freshly per compilation.
    Sync(Symbol, Symbol, u32),
    /// Canonicalizing [`Goal::simplify`].
    Simplify,
}

type Key = (Op, NodeId);

/// Cached per-region `Excise` outcome: the rewritten goal plus the exact
/// diagnostics the untabled pass would have appended.
struct ExciseEntry {
    goal: Goal,
    reports: Vec<KnotReport>,
    guaranteed: bool,
}

/// Observability counters for the memo tables.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct MemoStats {
    /// Lookups answered from a table.
    pub hits: u64,
    /// Lookups that fell through to a real computation.
    pub misses: u64,
    /// Live cached entries across all tables.
    pub entries: usize,
    /// Distinct subtrees in the hash-consing table.
    pub interned: usize,
}

impl std::fmt::Display for MemoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} entries, {} interned subgoals",
            self.hits, self.misses, self.entries, self.interned
        )
    }
}

/// Memoizing rewrite engine over one [`GoalTable`].
///
/// Each public method is bit-identical to its untabled counterpart in
/// [`mod@crate::apply`] / [`mod@crate::excise`] / [`crate::goal`]; the tables only
/// change how often the structural recursion actually runs. Tables persist
/// for the lifetime of the `Memo`, so repeated queries over overlapping
/// goals (the [`Analyzer`] pattern) replay shared regions as O(1) hits.
#[derive(Default)]
pub struct Memo {
    table: GoalTable,
    rewrites: HashMap<Key, Goal>,
    excise: HashMap<NodeId, ExciseEntry>,
    normal_forms: HashMap<Constraint, NormalForm>,
    /// Explicit in-progress stack, per the cosld shape: a key is pushed
    /// while its entry is being computed and popped before insertion. A
    /// lookup that finds its own key on the stack is a re-entrant proof
    /// attempt; goals are finite trees so this cannot happen for the
    /// structural rewrites, but the guard keeps the tabling sound if a
    /// future (co)recursive rule layer reuses these tables — re-entries
    /// fall back to the untabled computation instead of looping.
    in_progress: Vec<Key>,
    hits: u64,
    misses: u64,
    /// Re-entrant lookups resolved by the in-progress guard.
    reentries: u64,
}

impl Memo {
    /// A fresh memo with empty tables.
    pub fn new() -> Memo {
        Memo::default()
    }

    /// Current counters. `entries` sums the rewrite, excise, and
    /// normal-form tables; `interned` is the hash-consing table size.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.rewrites.len() + self.excise.len() + self.normal_forms.len(),
            interned: self.table.len(),
        }
    }

    /// Resets the hit/miss counters (entries are kept).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.reentries = 0;
    }

    /// Looks up `key`, counting the outcome. Returns the cached goal, or
    /// `None` on a miss (counted) — re-entrant lookups are reported
    /// through the second flag so callers can skip caching.
    fn probe(&mut self, key: &Key) -> (Option<Goal>, bool) {
        if let Some(hit) = self.rewrites.get(key) {
            self.hits += 1;
            return (Some(hit.clone()), false);
        }
        self.misses += 1;
        if self.in_progress.contains(key) {
            self.reentries += 1;
            return (None, true);
        }
        (None, false)
    }

    fn finish(&mut self, key: Key, out: Goal) -> Goal {
        let popped = self.in_progress.pop();
        debug_assert_eq!(popped, Some(key), "in-progress stack discipline");
        self.rewrites.insert(key, out.clone());
        out
    }

    /// Tabled `Apply(∇α, T)` — bit-identical to [`crate::apply::apply_must`].
    pub fn apply_must(&mut self, alpha: Symbol, goal: &Goal) -> Goal {
        // Same O(1) fast paths as the untabled rewrite: fingerprint
        // pruning and leaf cases never touch the tables.
        if !goal.may_mention(alpha) {
            return Goal::NoPath;
        }
        match goal {
            Goal::Seq(_) | Goal::Conc(_) | Goal::Or(_) | Goal::Isolated(_) => {}
            _ => return crate::apply::apply_must(alpha, goal),
        }
        let id = self.table.intern(goal);
        let key = (Op::Must(alpha), id);
        let (cached, reentrant) = self.probe(&key);
        if let Some(hit) = cached {
            return hit;
        }
        if reentrant {
            return crate::apply::apply_must(alpha, goal);
        }
        self.in_progress.push(key);
        let out = match goal {
            Goal::Seq(gs) => or((0..gs.len())
                .map(|i| {
                    let rewritten = self.apply_must(alpha, &gs[i]);
                    if rewritten.is_nopath() {
                        return Goal::NoPath;
                    }
                    let mut children = Vec::with_capacity(gs.len());
                    children.extend(gs[..i].iter().cloned());
                    children.push(rewritten);
                    children.extend(gs[i + 1..].iter().cloned());
                    seq(children)
                })
                .collect()),
            Goal::Conc(gs) => or((0..gs.len())
                .map(|i| {
                    let rewritten = self.apply_must(alpha, &gs[i]);
                    if rewritten.is_nopath() {
                        return Goal::NoPath;
                    }
                    let mut children = Vec::with_capacity(gs.len());
                    children.extend(gs[..i].iter().cloned());
                    children.push(rewritten);
                    children.extend(gs[i + 1..].iter().cloned());
                    conc(children)
                })
                .collect()),
            Goal::Or(gs) => or(gs.iter().map(|g| self.apply_must(alpha, g)).collect()),
            Goal::Isolated(g) => isolated(self.apply_must(alpha, g)),
            _ => unreachable!("leaves handled above"),
        };
        self.finish(key, out)
    }

    /// Tabled `Apply(¬∇α, T)` — bit-identical to
    /// [`crate::apply::apply_must_not`].
    pub fn apply_must_not(&mut self, alpha: Symbol, goal: &Goal) -> Goal {
        if !goal.may_mention(alpha) {
            return goal.clone();
        }
        match goal {
            Goal::Seq(_) | Goal::Conc(_) | Goal::Or(_) | Goal::Isolated(_) => {}
            _ => return crate::apply::apply_must_not(alpha, goal),
        }
        let id = self.table.intern(goal);
        let key = (Op::MustNot(alpha), id);
        let (cached, reentrant) = self.probe(&key);
        if let Some(hit) = cached {
            return hit;
        }
        if reentrant {
            return crate::apply::apply_must_not(alpha, goal);
        }
        self.in_progress.push(key);
        let out = match goal {
            Goal::Seq(gs) => match map_children_shared(gs, |g| self.apply_must_not(alpha, g)) {
                Some(kids) => seq(kids),
                None => goal.clone(),
            },
            Goal::Conc(gs) => match map_children_shared(gs, |g| self.apply_must_not(alpha, g)) {
                Some(kids) => conc(kids),
                None => goal.clone(),
            },
            Goal::Or(gs) => match map_children_shared(gs, |g| self.apply_must_not(alpha, g)) {
                Some(kids) => or(kids),
                None => goal.clone(),
            },
            Goal::Isolated(g) => {
                let new = self.apply_must_not(alpha, g);
                if new.ptr_eq(g) {
                    goal.clone()
                } else {
                    isolated(new)
                }
            }
            _ => unreachable!("leaves handled above"),
        };
        self.finish(key, out)
    }

    /// Tabled `sync(α<β, T)` at a fixed channel — bit-identical to
    /// [`crate::apply::sync`]. The channel is part of the key; see the
    /// module docs for why this stays deterministic.
    pub fn sync(&mut self, alpha: Symbol, beta: Symbol, xi: Channel, goal: &Goal) -> Goal {
        if !goal.may_mention(alpha) && !goal.may_mention(beta) {
            return goal.clone();
        }
        match goal {
            Goal::Seq(_) | Goal::Conc(_) | Goal::Or(_) | Goal::Isolated(_) => {}
            _ => return crate::apply::sync(alpha, beta, xi, goal),
        }
        let id = self.table.intern(goal);
        let key = (Op::Sync(alpha, beta, xi.0), id);
        let (cached, reentrant) = self.probe(&key);
        if let Some(hit) = cached {
            return hit;
        }
        if reentrant {
            return crate::apply::sync(alpha, beta, xi, goal);
        }
        self.in_progress.push(key);
        let out = match goal {
            Goal::Seq(gs) => match map_children_shared(gs, |g| self.sync(alpha, beta, xi, g)) {
                Some(kids) => seq(kids),
                None => goal.clone(),
            },
            Goal::Conc(gs) => match map_children_shared(gs, |g| self.sync(alpha, beta, xi, g)) {
                Some(kids) => conc(kids),
                None => goal.clone(),
            },
            Goal::Or(gs) => match map_children_shared(gs, |g| self.sync(alpha, beta, xi, g)) {
                Some(kids) => or(kids),
                None => goal.clone(),
            },
            Goal::Isolated(g) => {
                let new = self.sync(alpha, beta, xi, g);
                if new.ptr_eq(g) {
                    goal.clone()
                } else {
                    isolated(new)
                }
            }
            _ => unreachable!("leaves handled above"),
        };
        self.finish(key, out)
    }

    /// Tabled canonicalization — bit-identical to [`Goal::simplify`].
    /// Tabled at whole-subtree granularity: on goals built by this crate's
    /// own transformations the untabled walk is a pure check, so the win
    /// is skipping repeated whole-tree checks across queries.
    pub fn simplify(&mut self, goal: &Goal) -> Goal {
        match goal {
            Goal::Seq(_) | Goal::Conc(_) | Goal::Or(_) | Goal::Isolated(_) | Goal::Possible(_) => {}
            _ => return goal.clone(),
        }
        let id = self.table.intern(goal);
        let key = (Op::Simplify, id);
        let (cached, reentrant) = self.probe(&key);
        if let Some(hit) = cached {
            return hit;
        }
        if reentrant {
            return goal.simplify();
        }
        self.in_progress.push(key);
        let out = goal.simplify();
        self.finish(key, out)
    }

    /// Tabled `Apply(∇α ⊗ ∇β, T)` — bit-identical to
    /// [`crate::apply::apply_order`]. Only the two channel-free stages are
    /// tabled as such; the channel itself is drawn from `channels` exactly
    /// like the untabled path, then keys the `sync` entry.
    pub fn apply_order(
        &mut self,
        alpha: Symbol,
        beta: Symbol,
        goal: &Goal,
        channels: &mut ChannelAlloc,
    ) -> Goal {
        if alpha == beta {
            return Goal::NoPath;
        }
        let after_beta = self.apply_must(beta, goal);
        let inner = self.apply_must(alpha, &after_beta);
        if inner.is_nopath() {
            return Goal::NoPath;
        }
        let xi = channels.fresh();
        self.sync(alpha, beta, xi, &inner)
    }

    /// Tabled `Apply` of a single basic constraint — bit-identical to
    /// [`crate::apply::apply_basic`].
    pub fn apply_basic(&mut self, basic: &Basic, goal: &Goal, channels: &mut ChannelAlloc) -> Goal {
        match *basic {
            Basic::Must(e) => self.apply_must(e, goal),
            Basic::MustNot(e) => self.apply_must_not(e, goal),
            Basic::Order(a, b) => self.apply_order(a, b, goal, channels),
        }
    }

    /// Tabled `Apply` of a conjunction of basics — bit-identical to
    /// [`crate::apply::apply_conjunct`].
    pub fn apply_conjunct(
        &mut self,
        conj: &Conjunct,
        goal: &Goal,
        channels: &mut ChannelAlloc,
    ) -> Goal {
        let Some((first, rest)) = conj.split_first() else {
            return goal.clone();
        };
        let mut current = self.apply_basic(first, goal, channels);
        for basic in rest {
            if current.is_nopath() {
                return Goal::NoPath;
            }
            current = self.apply_basic(basic, &current, channels);
        }
        current
    }

    /// Cached [`Constraint::normalize`]: constraint sets replay verbatim
    /// across queries, so the normal form is computed once per distinct
    /// constraint.
    fn normal_form(&mut self, c: &Constraint) -> NormalForm {
        if let Some(nf) = self.normal_forms.get(c) {
            self.hits += 1;
            return nf.clone();
        }
        self.misses += 1;
        let nf = c.normalize();
        self.normal_forms.insert(c.clone(), nf.clone());
        nf
    }

    /// Tabled `Apply` of one normalized constraint — bit-identical to
    /// [`crate::apply::apply_normal_form`]. Channel ranges are reserved per
    /// disjunct exactly like the untabled compiler, so numbering matches.
    pub fn apply_normal_form(
        &mut self,
        nf: &NormalForm,
        goal: &Goal,
        channels: &mut ChannelAlloc,
    ) -> Goal {
        let disjuncts = &nf.disjuncts;
        if disjuncts.len() == 1 {
            return self.apply_conjunct(&disjuncts[0], goal, channels);
        }
        let mut allocs: Vec<ChannelAlloc> = disjuncts
            .iter()
            .map(|conj| channels.reserve(order_budget(conj)))
            .collect();
        or(disjuncts
            .iter()
            .zip(allocs.iter_mut())
            .map(|(conj, alloc)| self.apply_conjunct(conj, goal, alloc))
            .collect())
    }

    /// Tabled `Apply(C, G)` for a whole constraint set — bit-identical to
    /// [`crate::apply::apply_all`]. On a warm table, re-running an
    /// unchanged constraint prefix costs one top-level hit per basic.
    pub fn apply_all(
        &mut self,
        constraints: &[Constraint],
        goal: &Goal,
        channels: &mut ChannelAlloc,
    ) -> Goal {
        let Some((first, rest)) = constraints.split_first() else {
            return goal.clone();
        };
        let nf = self.normal_form(first);
        let mut current = self.apply_normal_form(&nf, goal, channels);
        for c in rest {
            if current.is_nopath() {
                return Goal::NoPath;
            }
            let nf = self.normal_form(c);
            current = self.apply_normal_form(&nf, &current, channels);
        }
        current
    }

    /// Tabled `Excise` with diagnostics — bit-identical to
    /// [`crate::excise::excise_with_diagnostics`]. Results are cached per
    /// choice-rooted-free region (the unit the untabled pass analyzes),
    /// including the exact `G_fail` reports it would have appended.
    pub fn excise_with_diagnostics(&mut self, goal: &Goal) -> ExciseResult {
        let mut reports = Vec::new();
        let mut guaranteed = true;
        let out = self.excise_inner(goal, &mut reports, &mut guaranteed);
        ExciseResult {
            goal: self.simplify(&out),
            reports,
            guaranteed_knot_free: guaranteed,
        }
    }

    /// Tabled `Excise` without diagnostics — bit-identical to
    /// [`crate::excise::excise`].
    pub fn excise(&mut self, goal: &Goal) -> Goal {
        self.excise_with_diagnostics(goal).goal
    }

    fn excise_inner(
        &mut self,
        goal: &Goal,
        reports: &mut Vec<KnotReport>,
        guaranteed: &mut bool,
    ) -> Goal {
        // Distribution at a disjunctive root is exact (excise step 1), so
        // each branch is its own tabling unit.
        if let Goal::Or(gs) = goal {
            return or(gs
                .iter()
                .map(|g| self.excise_inner(g, reports, guaranteed))
                .collect());
        }
        match goal {
            Goal::Seq(_) | Goal::Conc(_) | Goal::Isolated(_) | Goal::Possible(_) => {}
            // Leaves carry no channel structure worth caching.
            _ => return crate::excise::excise_inner(goal, reports, guaranteed),
        }
        let id = self.table.intern(goal);
        if let Some(entry) = self.excise.get(&id) {
            self.hits += 1;
            reports.extend(entry.reports.iter().cloned());
            *guaranteed &= entry.guaranteed;
            return entry.goal.clone();
        }
        self.misses += 1;
        let key = (Op::Simplify, id); // stack marker only; excise has its own table
        if self.in_progress.contains(&key) {
            self.reentries += 1;
            return crate::excise::excise_inner(goal, reports, guaranteed);
        }
        self.in_progress.push(key);
        let mut local_reports = Vec::new();
        let mut local_guaranteed = true;
        let out = crate::excise::excise_inner(goal, &mut local_reports, &mut local_guaranteed);
        let popped = self.in_progress.pop();
        debug_assert_eq!(popped, Some(key), "in-progress stack discipline");
        reports.extend(local_reports.iter().cloned());
        *guaranteed &= local_guaranteed;
        self.excise.insert(
            id,
            ExciseEntry {
                goal: out.clone(),
                reports: local_reports,
                guaranteed: local_guaranteed,
            },
        );
        out
    }

    /// Tabled compilation of `G ∧ C` — bit-identical to
    /// [`crate::analysis::compile_unchecked`] (the caller is responsible
    /// for the unique-event property, as there).
    pub fn compile_unchecked(&mut self, goal: &Goal, constraints: &[Constraint]) -> Compiled {
        self.compile_seeded(
            goal,
            constraints,
            ChannelAlloc::fresh_for(goal),
            mentions_conditions(goal),
        )
    }

    /// [`Memo::compile_unchecked`] with the channel scan and condition
    /// test pre-computed — the [`Analyzer`] caches both per session so a
    /// warm query never re-walks the input goal.
    fn compile_seeded(
        &mut self,
        goal: &Goal,
        constraints: &[Constraint],
        mut channels: ChannelAlloc,
        has_conditions: bool,
    ) -> Compiled {
        let applied = if constraints.is_empty() {
            goal.clone()
        } else {
            self.apply_all(constraints, goal, &mut channels)
        };
        let applied_size = applied.size();
        let excised = self.excise_with_diagnostics(&applied);
        Compiled {
            goal: excised.goal,
            knots: excised.reports,
            applied_size,
            guaranteed_knot_free: excised.guaranteed_knot_free,
            has_conditions,
        }
    }
}

/// A cross-query analysis session over one workflow goal and its
/// constraint set.
///
/// Construction checks the unique-event property once; every query after
/// that runs through the session's persistent [`Memo`], so repeated and
/// incrementally edited queries replay shared work as table hits. All
/// verdicts and compiled goals are bit-identical to the corresponding
/// one-shot functions in [`crate::analysis`].
pub struct Analyzer {
    goal: Goal,
    constraints: Vec<Constraint>,
    memo: Memo,
    /// `ChannelAlloc::fresh_for(goal)`, computed once (it walks the goal).
    base_channels: ChannelAlloc,
    /// `mentions_conditions(goal)`, computed once.
    has_conditions: bool,
    /// Compiled `G ∧ C`, invalidated by constraint edits.
    compiled: Option<Compiled>,
    /// Reusable query buffer: the constraint set plus a per-query suffix.
    scratch: Vec<Constraint>,
}

impl Analyzer {
    /// Opens a session. Fails (once) if `goal` violates the unique-event
    /// property — the same precondition [`crate::analysis::compile`]
    /// checks per call.
    pub fn new(goal: &Goal, constraints: &[Constraint]) -> Result<Analyzer, CompileError> {
        check_unique_events(goal).map_err(CompileError::NotUniqueEvent)?;
        Ok(Analyzer {
            base_channels: ChannelAlloc::fresh_for(goal),
            has_conditions: mentions_conditions(goal),
            goal: goal.clone(),
            constraints: constraints.to_vec(),
            memo: Memo::new(),
            compiled: None,
            scratch: Vec::with_capacity(constraints.len() + 1),
        })
    }

    /// The workflow goal under analysis.
    pub fn goal(&self) -> &Goal {
        &self.goal
    }

    /// The current constraint set.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Memo-table counters for this session.
    pub fn stats(&self) -> MemoStats {
        self.memo.stats()
    }

    /// Resets the hit/miss counters (tables are kept warm).
    pub fn reset_counters(&mut self) {
        self.memo.reset_counters();
    }

    /// Compiles `goal ∧ extra` through the session tables, where `extra`
    /// is the constraint set plus an optional per-query suffix.
    fn query(&mut self, suffix: Option<Constraint>) -> Compiled {
        self.scratch.clear();
        self.scratch.extend(self.constraints.iter().cloned());
        self.scratch.extend(suffix);
        self.memo.compile_seeded(
            &self.goal,
            &self.scratch,
            self.base_channels.clone(),
            self.has_conditions,
        )
    }

    /// The compiled `G ∧ C` — computed on first use, cached until a
    /// constraint edit, bit-identical to [`crate::analysis::compile`].
    pub fn compiled(&mut self) -> &Compiled {
        if self.compiled.is_none() {
            self.compiled = Some(self.query(None));
        }
        self.compiled.as_ref().expect("just computed")
    }

    /// Consistency (Theorem 5.8) of the current specification.
    pub fn is_consistent(&mut self) -> bool {
        self.compiled().is_consistent()
    }

    /// Verification (Theorem 5.9) — bit-identical to
    /// [`crate::analysis::verify`], including the most-general
    /// counterexample goal.
    pub fn verify(&mut self, property: &Constraint) -> Verification {
        let compiled = self.query(Some(Constraint::not(property.clone())));
        if compiled.is_consistent() {
            Verification::CounterExample(compiled.goal)
        } else {
            Verification::Holds
        }
    }

    /// Verifies every property through the shared tables. The compiled
    /// `G ∧ C` prefix replays as table hits from the second property on.
    pub fn verify_all(&mut self, properties: &[Constraint]) -> Vec<Verification> {
        properties.iter().map(|p| self.verify(p)).collect()
    }

    /// Activity classification — bit-identical to
    /// [`crate::analysis::activity_report`].
    pub fn activity_report(&mut self) -> Vec<(Symbol, ActivityStatus)> {
        let compiled_goal = self.compiled().goal.clone();
        let mut out = Vec::new();
        for event in self.goal.events() {
            let status = if compiled_goal.is_nopath()
                || self.memo.apply_must(event, &compiled_goal).is_nopath()
            {
                ActivityStatus::Dead
            } else {
                let without = self.memo.apply_must_not(event, &compiled_goal);
                if self.memo.excise(&without).is_nopath() {
                    ActivityStatus::Mandatory
                } else {
                    ActivityStatus::Optional
                }
            };
            out.push((event, status));
        }
        out
    }

    /// Execution-order relation between two activities — bit-identical to
    /// [`crate::analysis::ordering`].
    pub fn ordering(&mut self, a: Symbol, b: Symbol) -> Ordering {
        let together = Constraint::and(vec![Constraint::Must(a), Constraint::Must(b)]);
        if !self.query(Some(together)).is_consistent() {
            return Ordering::NeverTogether;
        }
        let before = self.verify(&Constraint::klein_order(a, b)).holds();
        let after = self.verify(&Constraint::klein_order(b, a)).holds();
        match (before, after) {
            (true, _) => Ordering::AlwaysBefore,
            (false, true) => Ordering::AlwaysAfter,
            (false, false) => Ordering::Unordered,
        }
    }

    /// Greedy redundancy elimination — the same elimination order and
    /// result as [`crate::analysis::minimize_constraints`], with every
    /// `is_redundant` probe running through the warm tables. The session's
    /// constraint set itself is left unchanged.
    pub fn minimize_constraints(&mut self) -> Vec<usize> {
        let mut retained: Vec<usize> = (0..self.constraints.len()).collect();
        let mut kept = self.constraints.clone();
        let mut i = 0;
        while i < retained.len() {
            // Probe set = kept − {i} followed by ¬φᵢ, built by moves: the
            // same sequence `verify(goal, rest, φ)` would compile.
            let phi = kept.remove(i);
            kept.push(Constraint::not(phi));
            let consistent = self
                .memo
                .compile_seeded(
                    &self.goal,
                    &kept,
                    self.base_channels.clone(),
                    self.has_conditions,
                )
                .is_consistent();
            let Some(Constraint::Not(phi)) = kept.pop() else {
                unreachable!("pushed ¬φ above");
            };
            if consistent {
                // Some execution of the rest violates φ: not redundant.
                kept.insert(i, *phi);
                i += 1;
            } else {
                retained.remove(i);
            }
        }
        retained
    }

    /// Appends a constraint, returning its index. Invalidates the cached
    /// compile; the memo tables persist, so re-verification replays the
    /// unchanged prefix as hits and only compiles the new suffix.
    pub fn add_constraint(&mut self, constraint: Constraint) -> usize {
        self.constraints.push(constraint);
        self.compiled = None;
        self.constraints.len() - 1
    }

    /// Removes and returns the constraint at `index` (panics if out of
    /// range). Invalidates the cached compile; tables persist.
    pub fn remove_constraint(&mut self, index: usize) -> Constraint {
        let removed = self.constraints.remove(index);
        self.compiled = None;
        removed
    }

    /// Replaces the constraint at `index`, returning the old one (panics
    /// if out of range). Invalidates the cached compile; tables persist,
    /// so re-verification costs roughly the changed region: the prefix
    /// before `index` replays as hits.
    pub fn replace_constraint(&mut self, index: usize, constraint: Constraint) -> Constraint {
        let old = std::mem::replace(&mut self.constraints[index], constraint);
        self.compiled = None;
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::symbol::sym;

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    fn demo() -> (Goal, Vec<Constraint>) {
        let goal = seq(vec![
            g("a"),
            conc(vec![g("b"), or(vec![g("c"), g("d")])]),
            g("e"),
        ]);
        let constraints = vec![Constraint::order("b", "c"), Constraint::must_not("d")];
        (goal, constraints)
    }

    #[test]
    fn interner_shares_ids_for_equal_goals() {
        let mut table = GoalTable::new();
        let g1 = seq(vec![g("a"), g("b")]);
        let g2 = seq(vec![g("a"), g("b")]); // equal, distinct Arc
        let g3 = seq(vec![g("b"), g("a")]);
        let id1 = table.intern(&g1);
        assert_eq!(table.intern(&g2), id1);
        assert_eq!(table.intern(&g1.clone()), id1, "Arc bump hits ptr_eq");
        assert_ne!(table.intern(&g3), id1);
        assert_eq!(table.len(), 2);
        assert_eq!(table.resolve(id1), &g1);
    }

    #[test]
    fn hash_collision_keeps_distinct_ids() {
        // Force two structurally distinct goals through one bucket: the
        // in-bucket equality check must keep them apart — hash equality
        // alone is not identity.
        let mut table = GoalTable::new();
        let g1 = seq(vec![g("a"), g("b")]);
        let g2 = conc(vec![g("x"), g("y")]);
        let forced = 0xDEAD_BEEF;
        let id1 = table.intern_hashed(&g1, forced);
        let id2 = table.intern_hashed(&g2, forced);
        assert_ne!(id1, id2);
        assert_eq!(table.len(), 2);
        // Re-interning under the same forced hash still resolves to the
        // original ids.
        assert_eq!(table.intern_hashed(&g1, forced), id1);
        assert_eq!(table.intern_hashed(&g2, forced), id2);
        assert_eq!(table.resolve(id1), &g1);
        assert_eq!(table.resolve(id2), &g2);
    }

    #[test]
    fn tabled_rewrites_match_untabled() {
        let (goal, _) = demo();
        let mut memo = Memo::new();
        for event in ["a", "b", "c", "d", "e", "zzz"] {
            let e = sym(event);
            assert_eq!(
                memo.apply_must(e, &goal),
                crate::apply::apply_must(e, &goal)
            );
            assert_eq!(
                memo.apply_must_not(e, &goal),
                crate::apply::apply_must_not(e, &goal)
            );
        }
        let xi = Channel(9);
        assert_eq!(
            memo.sync(sym("b"), sym("c"), xi, &goal),
            crate::apply::sync(sym("b"), sym("c"), xi, &goal)
        );
        // Replaying an op answers from the table at the root.
        let before = memo.stats();
        assert_eq!(
            memo.apply_must(sym("b"), &goal),
            crate::apply::apply_must(sym("b"), &goal)
        );
        let after = memo.stats();
        assert!(after.hits > before.hits, "replay hits the table");
        assert_eq!(after.entries, before.entries, "replay adds no entries");
        assert!(memo.in_progress.is_empty(), "stack fully unwound");
    }

    #[test]
    fn tabled_compile_matches_untabled() {
        let (goal, constraints) = demo();
        let mut memo = Memo::new();
        let tabled = memo.compile_unchecked(&goal, &constraints);
        let untabled = analysis::compile(&goal, &constraints).unwrap();
        assert_eq!(tabled.goal, untabled.goal);
        assert_eq!(tabled.knots, untabled.knots);
        assert_eq!(tabled.applied_size, untabled.applied_size);
        assert_eq!(tabled.guaranteed_knot_free, untabled.guaranteed_knot_free);
        assert_eq!(tabled.has_conditions, untabled.has_conditions);
        // A verbatim replay is pure table hits at the top level.
        let before = memo.stats();
        let replay = memo.compile_unchecked(&goal, &constraints);
        assert_eq!(replay.goal, untabled.goal);
        let after = memo.stats();
        assert!(after.hits > before.hits);
        assert_eq!(
            after.entries, before.entries,
            "replay creates no new entries"
        );
    }

    #[test]
    fn analyzer_queries_match_one_shot_functions() {
        let (goal, constraints) = demo();
        let mut an = Analyzer::new(&goal, &constraints).unwrap();
        let properties = [
            Constraint::klein_order("b", "c"),
            Constraint::klein_order("c", "b"),
            Constraint::must("e"),
            Constraint::must("d"),
        ];
        for p in &properties {
            assert_eq!(
                an.verify(p),
                analysis::verify(&goal, &constraints, p).unwrap(),
                "property {p}"
            );
        }
        assert_eq!(
            an.verify_all(&properties),
            properties
                .iter()
                .map(|p| analysis::verify(&goal, &constraints, p).unwrap())
                .collect::<Vec<_>>()
        );
        assert_eq!(
            an.activity_report(),
            analysis::activity_report(&goal, &constraints).unwrap()
        );
        for (x, y) in [("a", "e"), ("b", "c"), ("c", "d")] {
            assert_eq!(
                an.ordering(sym(x), sym(y)),
                analysis::ordering(&goal, &constraints, sym(x), sym(y)).unwrap(),
                "ordering({x}, {y})"
            );
        }
        assert!(an.stats().hits > 0);
    }

    #[test]
    fn analyzer_minimize_matches_one_shot() {
        let goal = conc(vec![g("a"), g("b"), g("c")]);
        let constraints = vec![
            Constraint::order("a", "b"),
            Constraint::order("b", "c"),
            Constraint::order("a", "c"),
        ];
        let mut an = Analyzer::new(&goal, &constraints).unwrap();
        assert_eq!(
            an.minimize_constraints(),
            analysis::minimize_constraints(&goal, &constraints).unwrap()
        );
        assert_eq!(an.constraints(), &constraints[..], "set left unchanged");
    }

    #[test]
    fn analyzer_incremental_edit_matches_recompile() {
        let (goal, constraints) = demo();
        let mut an = Analyzer::new(&goal, &constraints).unwrap();
        assert!(an.is_consistent());

        // Replace: demanding e before a contradicts the `⊗` backbone, so
        // the edited spec is inconsistent.
        let old = an.replace_constraint(0, Constraint::order("e", "a"));
        assert_eq!(old, constraints[0]);
        let edited = vec![Constraint::order("e", "a"), constraints[1].clone()];
        assert_eq!(
            an.compiled().goal,
            analysis::compile(&goal, &edited).unwrap().goal
        );
        assert!(!an.is_consistent());

        // Remove it again: back to the single must-not constraint.
        an.remove_constraint(0);
        assert_eq!(
            an.compiled().goal,
            analysis::compile(&goal, &constraints[1..]).unwrap().goal
        );

        // Add a fresh property and verify against the from-scratch path.
        let idx = an.add_constraint(Constraint::must("c"));
        assert_eq!(idx, 1);
        let now = vec![constraints[1].clone(), Constraint::must("c")];
        assert_eq!(
            an.compiled().goal,
            analysis::compile(&goal, &now).unwrap().goal
        );
        let p = Constraint::klein_order("b", "c");
        assert_eq!(an.verify(&p), analysis::verify(&goal, &now, &p).unwrap());
    }

    #[test]
    fn analyzer_rejects_non_unique_goals_once() {
        let bad = seq(vec![g("a"), g("a")]);
        assert!(matches!(
            Analyzer::new(&bad, &[]),
            Err(CompileError::NotUniqueEvent(_))
        ));
    }

    #[test]
    fn excise_diagnostics_are_cached_verbatim() {
        // A knotted compile (paper Example 4): receive ⊗ β ⊗ α ⊗ send.
        let t = or(vec![g("gamma"), seq(vec![g("beta"), g("alpha")])]);
        let constraints = vec![Constraint::order("alpha", "beta")];
        let mut memo = Memo::new();
        let first = memo.compile_unchecked(&t, &constraints);
        let reference = analysis::compile(&t, &constraints).unwrap();
        assert_eq!(first.goal, reference.goal);
        assert_eq!(first.knots, reference.knots);
        assert!(!first.knots.is_empty(), "the knot is reported");
        let replay = memo.compile_unchecked(&t, &constraints);
        assert_eq!(replay.knots, reference.knots, "cached reports replay");
    }

    #[test]
    fn stats_display_is_compact() {
        let s = MemoStats {
            hits: 3,
            misses: 2,
            entries: 4,
            interned: 5,
        };
        assert_eq!(
            s.to_string(),
            "3 hits, 2 misses, 4 entries, 5 interned subgoals"
        );
    }
}
