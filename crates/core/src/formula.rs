//! General CTR formulas — beyond the concurrent-Horn fragment.
//!
//! The executable fragment ([`Goal`]) omits `∧` and
//! `¬`: "in general, ∧ represents constrained execution, which is usually
//! hard to implement" (paper, §2). The point of the `Apply` compilation is
//! precisely to *eliminate* those connectives. This module supplies the
//! other half of the story: the full formula language with classical
//! conjunction and negation, interpreted over event traces, so that
//! specifications like `G ∧ C` can be *stated* and *checked* directly —
//! the declarative baseline the compiled form is proven against.
//!
//! Satisfaction of `⊗` and `|` over a trace requires guessing a
//! split/interleaving; both are decided here by memoized search, which is
//! exponential in the worst case. That is exactly the "efficiency gap
//! between concurrent-Horn execution and constrained execution" the paper
//! describes — this module is the slow, obviously-correct semantics; the
//! compiler is the fast path.

use crate::constraints::Constraint;
use crate::goal::Goal;
use crate::semantics;
use crate::symbol::Symbol;
use std::collections::BTreeSet;
use std::fmt;

/// A general CTR formula over propositional events.
#[derive(Clone, PartialEq, Eq)]
pub enum Formula {
    /// An embedded executable goal: the trace must be one of its
    /// executions.
    Goal(Goal),
    /// An embedded `CONSTR` constraint.
    Constraint(Constraint),
    /// `path` — true on every trace.
    Path,
    /// `state` — true precisely on paths of length 1, i.e. traces with no
    /// events (footnote 4 of the paper).
    State,
    /// Serial conjunction `F₁ ⊗ … ⊗ Fₙ`: the trace splits into
    /// consecutive segments satisfying each conjunct.
    Serial(Vec<Formula>),
    /// Concurrent conjunction `F₁ | … | Fₙ`: the trace is an interleaving
    /// of subsequences satisfying each conjunct.
    Conc(Vec<Formula>),
    /// Classical conjunction `F₁ ∧ … ∧ Fₙ`: the same trace satisfies all
    /// conjuncts — the "constrained execution" connective.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Classical negation — `¬path` is `Not(Path)`.
    Not(Box<Formula>),
}

impl Formula {
    /// The formula `G ∧ C₁ ∧ … ∧ Cₙ` — a workflow specification as one
    /// formula (paper, §4).
    pub fn spec(goal: Goal, constraints: &[Constraint]) -> Formula {
        let mut parts = vec![Formula::Goal(goal)];
        parts.extend(constraints.iter().cloned().map(Formula::Constraint));
        Formula::And(parts)
    }

    /// Does `trace` satisfy the formula? `budget` bounds the embedded
    /// goal-enumeration work.
    pub fn satisfied_by(
        &self,
        trace: &[Symbol],
        budget: usize,
    ) -> Result<bool, semantics::BudgetExceeded> {
        match self {
            Formula::Goal(g) => Ok(semantics::event_traces(g, budget)?
                .iter()
                .any(|t| t == trace)),
            Formula::Constraint(c) => Ok(semantics::satisfies(trace, c)),
            Formula::Path => Ok(true),
            Formula::State => Ok(trace.is_empty()),
            Formula::And(fs) => {
                for f in fs {
                    if !f.satisfied_by(trace, budget)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(fs) => {
                for f in fs {
                    if f.satisfied_by(trace, budget)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::Not(f) => Ok(!f.satisfied_by(trace, budget)?),
            Formula::Serial(fs) => satisfied_serially(fs, trace, budget),
            Formula::Conc(fs) => satisfied_interleaved(fs, trace, budget),
        }
    }

    /// The denotation of the formula restricted to the executions of a
    /// goal: `{ t ∈ traces(goal) | t ⊨ self }`. This is the reference
    /// meaning of "the executions of `goal ∧ formula`".
    pub fn executions_of(
        &self,
        goal: &Goal,
        budget: usize,
    ) -> Result<BTreeSet<Vec<Symbol>>, semantics::BudgetExceeded> {
        let mut out = BTreeSet::new();
        for t in semantics::event_traces(goal, budget)? {
            if self.satisfied_by(&t, budget)? {
                out.insert(t);
            }
        }
        Ok(out)
    }
}

/// `trace ⊨ F₁ ⊗ … ⊗ Fₙ`: search over consecutive split points.
fn satisfied_serially(
    fs: &[Formula],
    trace: &[Symbol],
    budget: usize,
) -> Result<bool, semantics::BudgetExceeded> {
    match fs {
        [] => Ok(trace.is_empty()),
        [only] => only.satisfied_by(trace, budget),
        [head, rest @ ..] => {
            for split in 0..=trace.len() {
                if head.satisfied_by(&trace[..split], budget)?
                    && satisfied_serially(rest, &trace[split..], budget)?
                {
                    return Ok(true);
                }
            }
            Ok(false)
        }
    }
}

/// `trace ⊨ F₁ | … | Fₙ`: search over interleaving assignments. Each
/// element of the trace is assigned to one conjunct; the induced
/// subsequences must satisfy their conjuncts.
fn satisfied_interleaved(
    fs: &[Formula],
    trace: &[Symbol],
    budget: usize,
) -> Result<bool, semantics::BudgetExceeded> {
    match fs {
        [] => Ok(trace.is_empty()),
        [only] => only.satisfied_by(trace, budget),
        [head, rest @ ..] => {
            // Choose the subsequence for `head`; the complement goes to
            // the rest. 2^n assignments, pruned by early satisfaction
            // checks.
            let n = trace.len();
            if n > 20 {
                return Err(semantics::BudgetExceeded { budget });
            }
            for mask in 0..(1u32 << n) {
                let mine: Vec<Symbol> = (0..n)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| trace[i])
                    .collect();
                let theirs: Vec<Symbol> = (0..n)
                    .filter(|i| mask & (1 << i) == 0)
                    .map(|i| trace[i])
                    .collect();
                if head.satisfied_by(&mine, budget)?
                    && satisfied_interleaved(rest, &theirs, budget)?
                {
                    return Ok(true);
                }
            }
            Ok(false)
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn join(fs: &[Formula], sep: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "(")?;
            for (i, part) in fs.iter().enumerate() {
                if i > 0 {
                    write!(f, "{sep}")?;
                }
                write!(f, "{part}")?;
            }
            write!(f, ")")
        }
        match self {
            Formula::Goal(g) => write!(f, "{g}"),
            Formula::Constraint(c) => write!(f, "{c}"),
            Formula::Path => write!(f, "path"),
            Formula::State => write!(f, "state"),
            Formula::Serial(fs) => join(fs, " * ", f),
            Formula::Conc(fs) => join(fs, " # ", f),
            Formula::And(fs) => join(fs, " /\\ ", f),
            Formula::Or(fs) => join(fs, " \\/ ", f),
            Formula::Not(inner) => write!(f, "not({inner})"),
        }
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply;
    use crate::excise::excise;
    use crate::goal::{conc, or, seq};
    use crate::symbol::sym;

    const BUDGET: usize = 100_000;

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    fn tr(names: &[&str]) -> Vec<Symbol> {
        names.iter().map(|n| sym(n)).collect()
    }

    #[test]
    fn path_and_negation() {
        assert!(Formula::Path.satisfied_by(&tr(&["x"]), BUDGET).unwrap());
        let nopath = Formula::Not(Box::new(Formula::Path));
        assert!(!nopath.satisfied_by(&tr(&[]), BUDGET).unwrap());
    }

    #[test]
    fn state_holds_only_on_unit_paths() {
        assert!(Formula::State.satisfied_by(&tr(&[]), BUDGET).unwrap());
        assert!(!Formula::State.satisfied_by(&tr(&["x"]), BUDGET).unwrap());
        // path ⊗ e ⊗ path (the ∇e shorthand) vs state ⊗ e ⊗ state (e alone).
        let exactly_e =
            Formula::Serial(vec![Formula::State, Formula::Goal(g("e")), Formula::State]);
        assert!(exactly_e.satisfied_by(&tr(&["e"]), BUDGET).unwrap());
        assert!(!exactly_e.satisfied_by(&tr(&["x", "e"]), BUDGET).unwrap());
    }

    #[test]
    fn goal_formula_matches_executions() {
        let f = Formula::Goal(conc(vec![g("a"), g("b")]));
        assert!(f.satisfied_by(&tr(&["a", "b"]), BUDGET).unwrap());
        assert!(f.satisfied_by(&tr(&["b", "a"]), BUDGET).unwrap());
        assert!(!f.satisfied_by(&tr(&["a"]), BUDGET).unwrap());
    }

    #[test]
    fn serial_formula_splits_traces() {
        // (a ∨ a⊗x) ⊗ b
        let f = Formula::Serial(vec![
            Formula::Goal(or(vec![g("a"), seq(vec![g("a"), g("x")])])),
            Formula::Goal(g("b")),
        ]);
        assert!(f.satisfied_by(&tr(&["a", "b"]), BUDGET).unwrap());
        assert!(f.satisfied_by(&tr(&["a", "x", "b"]), BUDGET).unwrap());
        assert!(!f.satisfied_by(&tr(&["b", "a"]), BUDGET).unwrap());
    }

    #[test]
    fn conc_formula_interleaves() {
        let f = Formula::Conc(vec![
            Formula::Goal(seq(vec![g("a"), g("b")])),
            Formula::Goal(g("c")),
        ]);
        assert!(f.satisfied_by(&tr(&["a", "c", "b"]), BUDGET).unwrap());
        assert!(f.satisfied_by(&tr(&["c", "a", "b"]), BUDGET).unwrap());
        assert!(!f.satisfied_by(&tr(&["b", "a", "c"]), BUDGET).unwrap());
    }

    #[test]
    fn and_is_constrained_execution() {
        // The declarative G ∧ C.
        let f = Formula::spec(conc(vec![g("a"), g("b")]), &[Constraint::order("a", "b")]);
        assert!(f.satisfied_by(&tr(&["a", "b"]), BUDGET).unwrap());
        assert!(!f.satisfied_by(&tr(&["b", "a"]), BUDGET).unwrap());
    }

    #[test]
    fn compiled_goal_denotes_the_spec_formula() {
        // The headline equivalence, stated at the formula level:
        // executions(Excise(Apply(C, G))) == executions of the formula
        // G ∧ C.
        let goal = seq(vec![
            g("s"),
            conc(vec![g("a"), g("b"), or(vec![g("c"), g("d")])]),
        ]);
        let constraints = [
            Constraint::klein_order("a", "b"),
            Constraint::klein_exists("c", "a"),
        ];
        let formula = Formula::spec(goal.clone(), &constraints);

        let compiled = excise(&apply(&constraints, &goal));
        let fast = semantics::event_traces(&compiled, BUDGET).unwrap();
        let declarative = formula.executions_of(&goal, BUDGET).unwrap();
        assert_eq!(fast, declarative);
    }

    #[test]
    fn executions_of_filters_goal_traces() {
        let goal = conc(vec![g("a"), g("b")]);
        let f = Formula::Constraint(Constraint::order("a", "b"));
        let execs = f.executions_of(&goal, BUDGET).unwrap();
        assert_eq!(execs, [tr(&["a", "b"])].into_iter().collect());
    }

    #[test]
    fn interleaving_search_is_bounded() {
        let f = Formula::Conc(vec![Formula::Path, Formula::Path]);
        let long: Vec<Symbol> = (0..25).map(|i| sym(&format!("long{i}"))).collect();
        assert!(
            f.satisfied_by(&long, BUDGET).is_err(),
            "over the mask limit"
        );
    }

    #[test]
    fn display_round_trips_visually() {
        let f = Formula::spec(g("a"), &[Constraint::must("b")]);
        assert_eq!(f.to_string(), "(a /\\ exists(b))");
    }
}
