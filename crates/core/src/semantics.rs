//! Reference trace semantics for propositional goals.
//!
//! The model theory of CTR interprets goals over *paths* — finite sequences
//! of database states (paper, §2). For the propositional workflow fragment
//! the observable content of a path is the sequence of significant events
//! executed along it, so a goal denotes a set of **event traces**. This
//! module enumerates that set exhaustively (with an explosion budget) and
//! evaluates `CONSTR` constraints on traces.
//!
//! It exists as the *oracle* against which the compiled transformations are
//! verified: Propositions 5.2/5.4/5.6 state `Apply(σ, T) ≡ T ∧ σ`, i.e.
//!
//! ```text
//! traces(Apply(σ, T))  ==  { t ∈ traces(T) | t ⊨ σ }
//! ```
//!
//! and the property-based tests of this crate check exactly that equation
//! on randomly generated unique-event goals. Enumeration is exponential by
//! nature — it is a specification, not the scheduler (see `ctr-engine` for
//! the efficient execution machinery).

use crate::constraints::{Basic, Conjunct, Constraint, NormalForm};
use crate::goal::{Channel, Goal};
use crate::symbol::Symbol;
use std::collections::BTreeSet;
use std::fmt;

/// A single step of a trace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Tok {
    /// A propositional activity/event.
    Ev(Symbol),
    /// `send(ξ)`.
    Send(Channel),
    /// `receive(ξ)`.
    Recv(Channel),
    /// A non-event step (first-order or negated atom, e.g. a transition
    /// condition). Opaque to constraints.
    Other,
}

/// Error raised when enumeration exceeds its budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The budget that was exceeded (number of intermediate traces).
    pub budget: usize,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace enumeration exceeded budget of {} traces",
            self.budget
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Sequence element during enumeration: a token, or an atomic block from an
/// `⊙`-isolated subgoal which must not be interleaved by siblings.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Unit {
    Tok(Tok),
    Block(Vec<Unit>),
}

fn flatten(units: &[Unit], out: &mut Vec<Tok>) {
    for u in units {
        match u {
            Unit::Tok(t) => out.push(*t),
            Unit::Block(inner) => flatten(inner, out),
        }
    }
}

/// Enumerates the raw token traces of `goal`, before channel validation.
fn raw_traces(goal: &Goal, budget: usize) -> Result<Vec<Vec<Unit>>, BudgetExceeded> {
    fn check(n: usize, budget: usize) -> Result<(), BudgetExceeded> {
        if n > budget {
            Err(BudgetExceeded { budget })
        } else {
            Ok(())
        }
    }

    fn shuffle(
        a: &[Unit],
        b: &[Unit],
        out: &mut Vec<Vec<Unit>>,
        prefix: &mut Vec<Unit>,
        budget: usize,
    ) -> Result<(), BudgetExceeded> {
        if a.is_empty() {
            let mut t = prefix.clone();
            t.extend_from_slice(b);
            out.push(t);
            return check(out.len(), budget);
        }
        if b.is_empty() {
            let mut t = prefix.clone();
            t.extend_from_slice(a);
            out.push(t);
            return check(out.len(), budget);
        }
        prefix.push(a[0].clone());
        shuffle(&a[1..], b, out, prefix, budget)?;
        prefix.pop();
        prefix.push(b[0].clone());
        shuffle(a, &b[1..], out, prefix, budget)?;
        prefix.pop();
        Ok(())
    }

    fn walk(goal: &Goal, budget: usize) -> Result<Vec<Vec<Unit>>, BudgetExceeded> {
        match goal {
            Goal::Atom(a) => {
                let tok = match a.as_event() {
                    Some(e) => Tok::Ev(e),
                    None => Tok::Other,
                };
                Ok(vec![vec![Unit::Tok(tok)]])
            }
            Goal::Send(c) => Ok(vec![vec![Unit::Tok(Tok::Send(*c))]]),
            Goal::Receive(c) => Ok(vec![vec![Unit::Tok(Tok::Recv(*c))]]),
            Goal::Empty => Ok(vec![vec![]]),
            Goal::NoPath => Ok(vec![]),
            Goal::Seq(gs) => {
                let mut acc: Vec<Vec<Unit>> = vec![vec![]];
                for g in gs.iter() {
                    let child = walk(g, budget)?;
                    let mut next = Vec::with_capacity(acc.len() * child.len());
                    for base in &acc {
                        for tail in &child {
                            let mut t = base.clone();
                            t.extend_from_slice(tail);
                            next.push(t);
                            check(next.len(), budget)?;
                        }
                    }
                    acc = next;
                }
                Ok(acc)
            }
            Goal::Conc(gs) => {
                let mut acc: Vec<Vec<Unit>> = vec![vec![]];
                for g in gs.iter() {
                    let child = walk(g, budget)?;
                    let mut next = Vec::new();
                    for base in &acc {
                        for tail in &child {
                            let mut prefix = Vec::new();
                            shuffle(base, tail, &mut next, &mut prefix, budget)?;
                        }
                    }
                    acc = next;
                }
                Ok(acc)
            }
            Goal::Or(gs) => {
                let mut acc = Vec::new();
                for g in gs.iter() {
                    acc.extend(walk(g, budget)?);
                    check(acc.len(), budget)?;
                }
                Ok(acc)
            }
            Goal::Isolated(g) => {
                // Each trace of the body becomes a single atomic block.
                Ok(walk(g, budget)?
                    .into_iter()
                    .map(|t| vec![Unit::Block(t)])
                    .collect())
            }
            Goal::Possible(g) => {
                // ◇g holds on a 1-path iff g is executable at the current
                // state. Propositionally: contributes the empty trace when
                // the body has at least one valid execution.
                let body = walk(g, budget)?;
                let executable = body.iter().any(|t| {
                    let mut flat = Vec::new();
                    flatten(t, &mut flat);
                    channels_valid(&flat)
                });
                if executable {
                    Ok(vec![vec![]])
                } else {
                    Ok(vec![])
                }
            }
        }
    }

    walk(goal, budget)
}

/// True if every `receive(ξ)` in the trace is preceded by `send(ξ)`.
fn channels_valid(trace: &[Tok]) -> bool {
    let mut sent: BTreeSet<Channel> = BTreeSet::new();
    for tok in trace {
        match tok {
            Tok::Send(c) => {
                sent.insert(*c);
            }
            Tok::Recv(c) if !sent.contains(c) => {
                return false;
            }
            _ => {}
        }
    }
    true
}

/// Enumerates the valid token traces of a goal (channel discipline
/// enforced, isolation blocks flattened).
pub fn token_traces(goal: &Goal, budget: usize) -> Result<BTreeSet<Vec<Tok>>, BudgetExceeded> {
    let raw = raw_traces(goal, budget)?;
    let mut out = BTreeSet::new();
    for units in raw {
        let mut flat = Vec::new();
        flatten(&units, &mut flat);
        if channels_valid(&flat) {
            out.insert(flat);
        }
    }
    Ok(out)
}

/// Enumerates the **event traces** of a goal: valid token traces with
/// channel and non-event steps erased. This is the observable denotation
/// used by the equivalence tests.
pub fn event_traces(goal: &Goal, budget: usize) -> Result<BTreeSet<Vec<Symbol>>, BudgetExceeded> {
    let toks = token_traces(goal, budget)?;
    Ok(toks
        .into_iter()
        .map(|t| {
            t.into_iter()
                .filter_map(|tok| match tok {
                    Tok::Ev(e) => Some(e),
                    _ => None,
                })
                .collect()
        })
        .collect())
}

/// True if the goal has at least one valid execution.
pub fn is_executable(goal: &Goal, budget: usize) -> Result<bool, BudgetExceeded> {
    Ok(!token_traces(goal, budget)?.is_empty())
}

/// True if the two goals denote the same set of event traces — the
/// observational equivalence `≡` used throughout the paper's propositions,
/// decided by exhaustive enumeration (specification-grade, not a fast
/// check).
pub fn equivalent(a: &Goal, b: &Goal, budget: usize) -> Result<bool, BudgetExceeded> {
    Ok(event_traces(a, budget)? == event_traces(b, budget)?)
}

// ---------------------------------------------------------------------------
// Constraint satisfaction on traces
// ---------------------------------------------------------------------------

/// `trace ⊨ basic`.
pub fn satisfies_basic(trace: &[Symbol], b: &Basic) -> bool {
    match *b {
        Basic::Must(e) => trace.contains(&e),
        Basic::MustNot(e) => !trace.contains(&e),
        Basic::Order(a, b) => {
            // ∇a ⊗ ∇b: both occur and some occurrence of a precedes some
            // occurrence of b. Greedy earliest-a is complete.
            match trace.iter().position(|&x| x == a) {
                Some(pa) => trace[pa + 1..].contains(&b),
                None => false,
            }
        }
    }
}

/// `trace ⊨ conjunct` (all basics hold).
pub fn satisfies_conjunct(trace: &[Symbol], conj: &Conjunct) -> bool {
    conj.iter().all(|b| satisfies_basic(trace, b))
}

/// `trace ⊨ nf` (some disjunct holds).
pub fn satisfies_normal_form(trace: &[Symbol], nf: &NormalForm) -> bool {
    nf.disjuncts.iter().any(|c| satisfies_conjunct(trace, c))
}

/// `trace ⊨ c`, evaluated directly on the constraint tree.
///
/// `Serial(e₁…eₙ)` holds iff the events occur as a subsequence of the
/// trace; greedy earliest-match is complete for subsequence containment.
pub fn satisfies(trace: &[Symbol], c: &Constraint) -> bool {
    match c {
        Constraint::Must(e) => trace.contains(e),
        Constraint::MustNot(e) => !trace.contains(e),
        Constraint::Serial(es) => {
            let mut pos = 0usize;
            for e in es {
                match trace[pos..].iter().position(|x| x == e) {
                    Some(rel) => pos += rel + 1,
                    None => return false,
                }
            }
            true
        }
        Constraint::And(cs) => cs.iter().all(|c| satisfies(trace, c)),
        Constraint::Or(cs) => cs.iter().any(|c| satisfies(trace, c)),
        Constraint::Not(c) => !satisfies(trace, c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::{conc, isolated, or, possible, seq};
    use crate::symbol::sym;

    const BUDGET: usize = 100_000;

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    fn evs(goal: &Goal) -> BTreeSet<Vec<Symbol>> {
        event_traces(goal, BUDGET).unwrap()
    }

    fn trace(names: &[&str]) -> Vec<Symbol> {
        names.iter().map(|n| sym(n)).collect()
    }

    #[test]
    fn atom_has_singleton_trace() {
        assert_eq!(evs(&g("a")), [trace(&["a"])].into_iter().collect());
    }

    #[test]
    fn seq_concatenates() {
        let goal = seq(vec![g("a"), g("b"), g("c")]);
        assert_eq!(evs(&goal), [trace(&["a", "b", "c"])].into_iter().collect());
    }

    #[test]
    fn conc_interleaves() {
        let goal = conc(vec![g("a"), g("b")]);
        assert_eq!(
            evs(&goal),
            [trace(&["a", "b"]), trace(&["b", "a"])]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn conc_of_seqs_preserves_internal_order() {
        let goal = conc(vec![seq(vec![g("a"), g("b")]), g("c")]);
        let traces = evs(&goal);
        assert_eq!(traces.len(), 3);
        for t in &traces {
            let pa = t.iter().position(|&x| x == sym("a")).unwrap();
            let pb = t.iter().position(|&x| x == sym("b")).unwrap();
            assert!(pa < pb);
        }
    }

    #[test]
    fn or_unions() {
        let goal = or(vec![g("a"), g("b")]);
        assert_eq!(
            evs(&goal),
            [trace(&["a"]), trace(&["b"])].into_iter().collect()
        );
    }

    #[test]
    fn nopath_has_no_traces() {
        assert!(evs(&Goal::NoPath).is_empty());
        assert!(!is_executable(&Goal::NoPath, BUDGET).unwrap());
    }

    #[test]
    fn empty_has_the_empty_trace() {
        assert_eq!(evs(&Goal::Empty), [vec![]].into_iter().collect());
    }

    #[test]
    fn isolation_prevents_interleaving() {
        let goal = conc(vec![isolated(seq(vec![g("a"), g("b")])), g("c")]);
        let traces = evs(&goal);
        // c may come before or after the block, never inside.
        assert_eq!(
            traces,
            [trace(&["c", "a", "b"]), trace(&["a", "b", "c"])]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn channels_enforce_order() {
        use crate::goal::Channel;
        let xi = Channel(0);
        let goal = conc(vec![
            seq(vec![g("a"), Goal::Send(xi)]),
            seq(vec![Goal::Receive(xi), g("b")]),
        ]);
        // This is exactly the compiled form (4) of the paper: b after a.
        assert_eq!(evs(&goal), [trace(&["a", "b"])].into_iter().collect());
    }

    #[test]
    fn unmatched_receive_deadlocks() {
        use crate::goal::Channel;
        let goal = seq(vec![Goal::Receive(Channel(9)), g("b")]);
        assert!(evs(&goal).is_empty());
    }

    #[test]
    fn send_without_receive_is_fine() {
        use crate::goal::Channel;
        let goal = seq(vec![g("a"), Goal::Send(Channel(3))]);
        assert_eq!(evs(&goal), [trace(&["a"])].into_iter().collect());
    }

    #[test]
    fn possible_succeeds_without_consuming_path() {
        let goal = seq(vec![possible(g("x")), g("a")]);
        assert_eq!(evs(&goal), [trace(&["a"])].into_iter().collect());
        let dead = seq(vec![possible(Goal::NoPath), g("a")]);
        assert!(evs(&dead).is_empty());
    }

    #[test]
    fn non_event_atoms_are_opaque() {
        use crate::term::Atom;
        let cond = Goal::Atom(Atom::prop("ok").negate());
        let goal = seq(vec![cond, g("a")]);
        assert_eq!(evs(&goal), [trace(&["a"])].into_iter().collect());
    }

    #[test]
    fn budget_is_enforced() {
        // 8 concurrent atoms → 8! = 40320 interleavings > 1000.
        let goal = conc((0..8).map(|i| g(&format!("x{i}"))).collect());
        assert_eq!(
            event_traces(&goal, 1000),
            Err(BudgetExceeded { budget: 1000 })
        );
    }

    #[test]
    fn equivalence_is_observational() {
        use crate::goal::isolated;
        // ⊗ is associative; ⊙ of a single atom is observationally the atom.
        let left = seq(vec![seq(vec![g("a"), g("b")]), g("c")]);
        let right = seq(vec![g("a"), seq(vec![g("b"), g("c")])]);
        assert!(equivalent(&left, &right, BUDGET).unwrap());
        assert!(equivalent(&isolated(g("a")), &g("a"), BUDGET).unwrap());
        assert!(!equivalent(&g("a"), &g("b"), BUDGET).unwrap());
        // But | and ⊗ differ.
        assert!(!equivalent(
            &conc(vec![g("a"), g("b")]),
            &seq(vec![g("a"), g("b")]),
            BUDGET
        )
        .unwrap());
    }

    #[test]
    fn satisfies_basics() {
        let t = trace(&["a", "b", "c"]);
        assert!(satisfies_basic(&t, &Basic::Must(sym("b"))));
        assert!(!satisfies_basic(&t, &Basic::Must(sym("z"))));
        assert!(satisfies_basic(&t, &Basic::MustNot(sym("z"))));
        assert!(satisfies_basic(&t, &Basic::Order(sym("a"), sym("c"))));
        assert!(!satisfies_basic(&t, &Basic::Order(sym("c"), sym("a"))));
        assert!(!satisfies_basic(&t, &Basic::Order(sym("a"), sym("z"))));
    }

    #[test]
    fn satisfies_serial_subsequence() {
        let t = trace(&["a", "x", "b", "y", "c"]);
        assert!(satisfies(
            &t,
            &Constraint::serial(vec![sym("a"), sym("b"), sym("c")])
        ));
        assert!(!satisfies(
            &t,
            &Constraint::serial(vec![sym("b"), sym("a")])
        ));
    }

    #[test]
    fn satisfies_matches_normal_form_semantics() {
        let c = Constraint::klein_order("a", "b");
        let nf = c.normalize();
        for t in [
            trace(&["a", "b"]),
            trace(&["b", "a"]),
            trace(&["a"]),
            trace(&[]),
        ] {
            assert_eq!(
                satisfies(&t, &c),
                satisfies_normal_form(&t, &nf),
                "trace {t:?}"
            );
        }
    }

    #[test]
    fn klein_order_semantics() {
        let c = Constraint::klein_order("e", "f");
        assert!(satisfies(&trace(&["e", "f"]), &c));
        assert!(!satisfies(&trace(&["f", "e"]), &c));
        assert!(satisfies(&trace(&["e"]), &c));
        assert!(satisfies(&trace(&["f"]), &c));
        assert!(satisfies(&trace(&[]), &c));
    }
}
