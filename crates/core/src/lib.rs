#![warn(missing_docs)]

//! # ctr — Concurrent Transaction Logic for workflows
//!
//! A faithful implementation of *Logic Based Modeling and Analysis of
//! Workflows* (Davulcu, Kifer, Ramakrishnan & Ramakrishnan, PODS 1998):
//! workflows as concurrent-Horn goals of Concurrent Transaction Logic
//! (CTR), global temporal constraints as the algebra `CONSTR`, and the
//! `Apply`/`Excise` compilation that turns `G ∧ C` into a directly
//! executable, constraint-free specification.
//!
//! ## Module map
//!
//! | Module | Paper section | Contents |
//! |--------|--------------|----------|
//! | [`symbol`], [`term`] | §2 | interned names, first-order terms, atoms |
//! | [`goal`] | §2 | concurrent-Horn goals (`⊗`, `\|`, `∨`, `⊙`, `◇`), `send`/`receive`, `¬path` tautologies; `Arc`-shared subtrees with cached size / event fingerprint / structural hash |
//! | [`unique`] | §3 | the unique-event property (Definition 3.1), linear-time check |
//! | [`constraints`] | §3 | the algebra `CONSTR`, negation closure (Lemma 3.4), splitting (Prop 3.3), normal form (Cor 3.5) |
//! | [`semantics`] | §2 | reference trace semantics — the oracle for `Apply(σ,T) ≡ T ∧ σ` |
//! | [`apply`](mod@apply) | §5 | the `Apply` transformation and `sync` (Defs 5.1/5.3/5.5), event-index pruning, deterministic parallel disjunct fan-out (`Parallelism`) |
//! | [`excise`](mod@excise) | §5 | knot detection and removal, `G_fail` diagnostics, parallel `∨`-branch fan-out |
//! | [`analysis`] | §4 | consistency, verification, redundancy (Thms 5.8–5.10) |
//! | [`memo`] | §5 | tabled analysis: hash-consed subgoal memoization and the cross-query [`Analyzer`] session |
//! | [`formula`] | §2 | full CTR formulas (adds `∧`, `¬`) with declarative trace satisfaction |
//! | [`timer`] | — | timer ticks as plain event *names* (`ev@after30000`): the tag scheme shared by the workflow compiler, runtime wheel, and enactor |
//! | [`gen`] | — | workload generators, incl. the 3-SAT reduction of Prop 4.1 |
//!
//! ## Quick example
//!
//! ```
//! use ctr::goal::{conc, seq, Goal};
//! use ctr::constraints::Constraint;
//! use ctr::analysis::{compile, verify, Verification};
//!
//! // book_flight | book_hotel, then pay — but a refundable hotel must be
//! // booked before the flight is committed.
//! let trip = seq(vec![
//!     conc(vec![Goal::atom("book_flight"), Goal::atom("book_hotel")]),
//!     Goal::atom("pay"),
//! ]);
//! let policy = [Constraint::order("book_hotel", "book_flight")];
//!
//! let compiled = compile(&trip, &policy).unwrap();
//! assert!(compiled.is_consistent());
//!
//! // And the policy now provably holds on every schedule:
//! let check = verify(&trip, &policy, &Constraint::klein_order("book_hotel", "book_flight"));
//! assert_eq!(check.unwrap(), Verification::Holds);
//! ```

pub mod analysis;
pub mod apply;
pub mod constraints;
pub mod excise;
pub mod formula;
pub mod gen;
pub mod goal;
pub mod memo;
pub mod semantics;
pub mod symbol;
pub mod term;
pub mod timer;
pub mod unique;

pub use analysis::{
    activity_report, compile, is_consistent, is_redundant, minimize_constraints, ordering, verify,
    ActivityStatus, Compiled, Verification,
};
pub use apply::{apply, ChannelAlloc};
pub use constraints::{Basic, Conjunct, Constraint, NormalForm};
pub use excise::{excise, excise_with_diagnostics, ExciseResult, KnotReport};
pub use formula::Formula;
pub use goal::{conc, isolated, or, possible, seq, Channel, Goal};
pub use memo::{Analyzer, Memo, MemoStats};
pub use semantics::equivalent;
pub use symbol::{sym, Symbol};
pub use term::{Atom, Term, Var};
pub use unique::{check_unique_events, is_unique_event};
