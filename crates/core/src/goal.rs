//! Concurrent-Horn goals — the executable fragment of CTR.
//!
//! A concurrent-Horn goal (paper, §2) is built from atomic formulas with
//! serial conjunction `⊗`, concurrent conjunction `|`, disjunction `∨`, the
//! isolation operator `⊙`, and the possibility operator `◇`. Control flow
//! graphs translate directly into this fragment — equation (1) in the paper
//! is the translation of Figure 1.
//!
//! Two special goals complete the algebra:
//!
//! * [`Goal::Empty`] — the unit of `⊗` and `|`; true exactly on paths of
//!   length 1 (the proposition the paper calls `state`). It is what remains
//!   when a branch of the workflow has nothing left to do.
//! * [`Goal::NoPath`] — the unexecutable transaction `¬path`, CTR's analog
//!   of classical `false`. The `Apply` transformation produces it for
//!   executions ruled out by a constraint, and the simplification
//!   tautologies of §5 — implemented here by the smart constructors — make
//!   it absorb `⊗`/`|` contexts and vanish from `∨` contexts.
//!
//! `send(ξ)`/`receive(ξ)` are the synchronization primitives used by the
//! `sync` rewriting of Definition 5.3; they are first-class goal forms so
//! the scheduler can give them their channel semantics.

use crate::symbol::Symbol;
use crate::term::Atom;
use std::collections::BTreeSet;
use std::fmt;

/// A synchronization channel `ξ`, created fresh by each order-constraint
/// compilation (Definition 5.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Channel(pub u32);

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xi{}", self.0)
    }
}

/// A concurrent-Horn goal.
///
/// `Seq`, `Conc`, and `Or` are n-ary: `Seq(vec![a, b, c])` is
/// `a ⊗ b ⊗ c`. The smart constructors [`seq`], [`conc`], and [`or`]
/// flatten nested applications, drop units, and apply the `¬path`
/// absorption tautologies of §5, so goals built through them are always in
/// a canonical simplified form. Pattern-matching code may rely on the
/// invariants documented on each constructor.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Goal {
    /// An atomic formula: an activity, significant event, elementary
    /// update, query, or rule-defined sub-workflow call.
    Atom(Atom),
    /// Serial conjunction `g₁ ⊗ … ⊗ gₙ` (n ≥ 2): execute left to right.
    Seq(Vec<Goal>),
    /// Concurrent conjunction `g₁ | … | gₙ` (n ≥ 2): execute interleaved.
    Conc(Vec<Goal>),
    /// Disjunction `g₁ ∨ … ∨ gₙ` (n ≥ 2): execute one, chosen
    /// nondeterministically.
    Or(Vec<Goal>),
    /// Isolated execution `⊙g`: no interleaving with concurrent siblings.
    Isolated(Box<Goal>),
    /// Executional possibility `◇g`: succeed on a 1-path if `g` is
    /// executable at the current state.
    Possible(Box<Goal>),
    /// `send(ξ)` — always executable; enables the matching `receive`.
    Send(Channel),
    /// `receive(ξ)` — executable only after `send(ξ)` has executed.
    Receive(Channel),
    /// The empty goal — unit of `⊗` and `|`.
    Empty,
    /// `¬path` — the unexecutable goal.
    NoPath,
}

impl Default for Goal {
    /// The empty goal — the unit of `⊗` and `|`.
    fn default() -> Goal {
        Goal::Empty
    }
}

impl Goal {
    /// Propositional atom goal, the common case for workflow activities.
    pub fn atom(name: impl Into<Symbol>) -> Goal {
        Goal::Atom(Atom::prop(name))
    }

    /// Number of nodes in the goal tree — the size measure `|G|` of
    /// Theorem 5.11.
    pub fn size(&self) -> usize {
        match self {
            Goal::Atom(_) | Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => 1,
            Goal::Seq(gs) | Goal::Conc(gs) | Goal::Or(gs) => {
                1 + gs.iter().map(Goal::size).sum::<usize>()
            }
            Goal::Isolated(g) | Goal::Possible(g) => 1 + g.size(),
        }
    }

    /// True if the goal is exactly `¬path`.
    pub fn is_nopath(&self) -> bool {
        matches!(self, Goal::NoPath)
    }

    /// True if the goal is the empty goal.
    pub fn is_empty_goal(&self) -> bool {
        matches!(self, Goal::Empty)
    }

    /// True if `event` occurs syntactically anywhere in the goal.
    pub fn mentions_event(&self, event: Symbol) -> bool {
        match self {
            Goal::Atom(a) => a.as_event() == Some(event),
            Goal::Seq(gs) | Goal::Conc(gs) | Goal::Or(gs) => {
                gs.iter().any(|g| g.mentions_event(event))
            }
            Goal::Isolated(g) | Goal::Possible(g) => g.mentions_event(event),
            Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => false,
        }
    }

    /// Collects every propositional atom symbol occurring in the goal.
    pub fn events(&self) -> BTreeSet<Symbol> {
        let mut set = BTreeSet::new();
        self.collect_events(&mut set);
        set
    }

    fn collect_events(&self, set: &mut BTreeSet<Symbol>) {
        match self {
            Goal::Atom(a) => {
                if let Some(e) = a.as_event() {
                    set.insert(e);
                }
            }
            Goal::Seq(gs) | Goal::Conc(gs) | Goal::Or(gs) => {
                for g in gs {
                    g.collect_events(set);
                }
            }
            Goal::Isolated(g) | Goal::Possible(g) => g.collect_events(set),
            Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => {}
        }
    }

    /// Collects every channel occurring in the goal.
    pub fn channels(&self) -> BTreeSet<Channel> {
        let mut set = BTreeSet::new();
        self.collect_channels(&mut set);
        set
    }

    fn collect_channels(&self, set: &mut BTreeSet<Channel>) {
        match self {
            Goal::Send(c) | Goal::Receive(c) => {
                set.insert(*c);
            }
            Goal::Seq(gs) | Goal::Conc(gs) | Goal::Or(gs) => {
                for g in gs {
                    g.collect_channels(set);
                }
            }
            Goal::Isolated(g) | Goal::Possible(g) => g.collect_channels(set),
            Goal::Atom(_) | Goal::Empty | Goal::NoPath => {}
        }
    }

    /// Rebuilds the goal through the smart constructors, enforcing the
    /// canonical simplified form (flattened connectives, units dropped,
    /// `¬path` absorbed per the tautologies of §5). Goals produced by this
    /// crate's own transformations are already canonical; this is for goals
    /// assembled by hand or by a parser.
    pub fn simplify(&self) -> Goal {
        match self {
            Goal::Seq(gs) => seq(gs.iter().map(Goal::simplify).collect()),
            Goal::Conc(gs) => conc(gs.iter().map(Goal::simplify).collect()),
            Goal::Or(gs) => or(gs.iter().map(Goal::simplify).collect()),
            Goal::Isolated(g) => isolated(g.simplify()),
            Goal::Possible(g) => possible(g.simplify()),
            other => other.clone(),
        }
    }

    /// Number of `∨`-alternatives if fully distributed — an upper bound on
    /// the number of structurally distinct execution variants. Saturates at
    /// `u64::MAX`.
    pub fn variant_count(&self) -> u64 {
        match self {
            Goal::Or(gs) => gs.iter().map(Goal::variant_count).fold(0u64, u64::saturating_add),
            Goal::Seq(gs) | Goal::Conc(gs) => {
                gs.iter().map(Goal::variant_count).fold(1u64, u64::saturating_mul)
            }
            Goal::Isolated(g) | Goal::Possible(g) => g.variant_count(),
            Goal::NoPath => 0,
            _ => 1,
        }
    }
}

/// Serial conjunction `⊗` of the given goals.
///
/// Invariants established: nested `Seq`s are flattened, `Empty` children
/// are dropped, any `NoPath` child absorbs the whole conjunction
/// (`¬path ⊗ φ ≡ φ ⊗ ¬path ≡ ¬path`), a zero-length conjunction is
/// `Empty`, and a singleton unwraps.
pub fn seq(goals: Vec<Goal>) -> Goal {
    let mut out = Vec::with_capacity(goals.len());
    for g in goals {
        match g {
            Goal::NoPath => return Goal::NoPath,
            Goal::Empty => {}
            Goal::Seq(inner) => out.extend(inner),
            other => out.push(other),
        }
    }
    match out.len() {
        0 => Goal::Empty,
        1 => out.pop().expect("len checked"),
        _ => Goal::Seq(out),
    }
}

/// Concurrent conjunction `|` of the given goals.
///
/// Same invariants as [`seq`] with the `|` absorption tautology
/// (`¬path | φ ≡ ¬path`).
pub fn conc(goals: Vec<Goal>) -> Goal {
    let mut out = Vec::with_capacity(goals.len());
    for g in goals {
        match g {
            Goal::NoPath => return Goal::NoPath,
            Goal::Empty => {}
            Goal::Conc(inner) => out.extend(inner),
            other => out.push(other),
        }
    }
    match out.len() {
        0 => Goal::Empty,
        1 => out.pop().expect("len checked"),
        _ => Goal::Conc(out),
    }
}

/// Disjunction `∨` of the given goals.
///
/// Nested `Or`s are flattened, `NoPath` alternatives are dropped
/// (`¬path ∨ φ ≡ φ`), and structurally identical alternatives are merged
/// (idempotence, `φ ∨ φ ≡ φ` — keeping the first occurrence, so branch
/// order is stable). An empty disjunction is `¬path` and a singleton
/// unwraps.
///
/// The idempotence step is what keeps repeated constraint compilation from
/// exceeding the genuine `d^N` bound of Theorem 5.11: sequential `Apply`
/// passes frequently regenerate identical pruned variants.
pub fn or(goals: Vec<Goal>) -> Goal {
    use std::collections::hash_map::{DefaultHasher, Entry};
    use std::collections::HashMap;
    use std::hash::{Hash, Hasher};

    let mut out: Vec<Goal> = Vec::with_capacity(goals.len());
    // Hash-bucketed dedup: one structural hash per candidate, equality
    // checked only within a bucket.
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
    let push_unique = |out: &mut Vec<Goal>, buckets: &mut HashMap<u64, Vec<usize>>, g: Goal| {
        let mut hasher = DefaultHasher::new();
        g.hash(&mut hasher);
        let h = hasher.finish();
        match buckets.entry(h) {
            Entry::Occupied(mut e) => {
                if e.get().iter().any(|&i| out[i] == g) {
                    return;
                }
                e.get_mut().push(out.len());
                out.push(g);
            }
            Entry::Vacant(e) => {
                e.insert(vec![out.len()]);
                out.push(g);
            }
        }
    };
    for g in goals {
        match g {
            Goal::NoPath => {}
            Goal::Or(inner) => {
                for child in inner {
                    push_unique(&mut out, &mut buckets, child);
                }
            }
            other => push_unique(&mut out, &mut buckets, other),
        }
    }
    match out.len() {
        0 => Goal::NoPath,
        1 => out.pop().expect("len checked"),
        _ => Goal::Or(out),
    }
}

/// Isolation `⊙g`. `⊙` of the empty goal or `¬path` is itself.
pub fn isolated(g: Goal) -> Goal {
    match g {
        Goal::Empty => Goal::Empty,
        Goal::NoPath => Goal::NoPath,
        other => Goal::Isolated(Box::new(other)),
    }
}

/// Possibility `◇g`. `◇¬path` can never succeed, so it is `¬path`;
/// `◇Empty` always succeeds on a 1-path, so it is `Empty`.
pub fn possible(g: Goal) -> Goal {
    match g {
        Goal::Empty => Goal::Empty,
        Goal::NoPath => Goal::NoPath,
        other => Goal::Possible(Box::new(other)),
    }
}

/// Binary serial conjunction convenience.
pub fn then(a: Goal, b: Goal) -> Goal {
    seq(vec![a, b])
}

impl fmt::Display for Goal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Precedence: ∨ (loosest) < | < ⊗ < unary (tightest). Children are
        // parenthesized when their connective binds no tighter than the
        // parent's.
        fn prec(g: &Goal) -> u8 {
            match g {
                Goal::Or(_) => 0,
                Goal::Conc(_) => 1,
                Goal::Seq(_) => 2,
                _ => 3,
            }
        }
        fn write(g: &Goal, parent: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let p = prec(g);
            // Same-connective nesting never occurs (smart constructors
            // flatten it), so strictly-looser children are the only ones
            // that need parentheses.
            let parens = p < 3 && p < parent;
            if parens {
                write!(f, "(")?;
            }
            match g {
                Goal::Atom(a) => write!(f, "{a}")?,
                Goal::Seq(gs) => {
                    for (i, child) in gs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " * ")?;
                        }
                        write(child, p, f)?;
                    }
                }
                Goal::Conc(gs) => {
                    for (i, child) in gs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " # ")?;
                        }
                        write(child, p, f)?;
                    }
                }
                Goal::Or(gs) => {
                    for (i, child) in gs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " + ")?;
                        }
                        write(child, p, f)?;
                    }
                }
                Goal::Isolated(inner) => {
                    write!(f, "iso(")?;
                    write(inner, 0, f)?;
                    write!(f, ")")?;
                }
                Goal::Possible(inner) => {
                    write!(f, "poss(")?;
                    write(inner, 0, f)?;
                    write!(f, ")")?;
                }
                Goal::Send(c) => write!(f, "send({c})")?,
                Goal::Receive(c) => write!(f, "receive({c})")?,
                Goal::Empty => write!(f, "empty")?,
                Goal::NoPath => write!(f, "nopath")?,
            }
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        write(self, 0, f)
    }
}

impl fmt::Debug for Goal {
    // Goals are best read in their concrete syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    fn a() -> Goal {
        Goal::atom("a")
    }
    fn b() -> Goal {
        Goal::atom("b")
    }
    fn c() -> Goal {
        Goal::atom("c")
    }

    #[test]
    fn seq_flattens_and_drops_units() {
        let g = seq(vec![a(), Goal::Empty, seq(vec![b(), c()])]);
        assert_eq!(g, Goal::Seq(vec![a(), b(), c()]));
    }

    #[test]
    fn seq_absorbs_nopath() {
        assert_eq!(seq(vec![a(), Goal::NoPath, b()]), Goal::NoPath);
    }

    #[test]
    fn conc_absorbs_nopath() {
        assert_eq!(conc(vec![a(), Goal::NoPath]), Goal::NoPath);
    }

    #[test]
    fn or_drops_nopath_branches() {
        assert_eq!(or(vec![Goal::NoPath, a(), Goal::NoPath]), a());
        assert_eq!(or(vec![Goal::NoPath, Goal::NoPath]), Goal::NoPath);
    }

    #[test]
    fn singletons_unwrap() {
        assert_eq!(seq(vec![a()]), a());
        assert_eq!(conc(vec![b()]), b());
        assert_eq!(or(vec![c()]), c());
    }

    #[test]
    fn empty_conjunctions_are_unit() {
        assert_eq!(seq(vec![]), Goal::Empty);
        assert_eq!(conc(vec![]), Goal::Empty);
        assert_eq!(or(vec![]), Goal::NoPath);
    }

    #[test]
    fn isolated_of_trivial_goals_simplifies() {
        assert_eq!(isolated(Goal::Empty), Goal::Empty);
        assert_eq!(isolated(Goal::NoPath), Goal::NoPath);
        assert!(matches!(isolated(a()), Goal::Isolated(_)));
    }

    #[test]
    fn possible_of_trivial_goals_simplifies() {
        assert_eq!(possible(Goal::Empty), Goal::Empty);
        assert_eq!(possible(Goal::NoPath), Goal::NoPath);
    }

    #[test]
    fn size_counts_nodes() {
        let g = seq(vec![a(), conc(vec![b(), c()])]);
        // Seq node + a + Conc node + b + c
        assert_eq!(g.size(), 5);
    }

    #[test]
    fn events_collects_prop_atoms_only() {
        let g = seq(vec![a(), Goal::Send(Channel(0)), or(vec![b(), c()])]);
        let evs = g.events();
        assert!(evs.contains(&sym("a")));
        assert!(evs.contains(&sym("b")));
        assert!(evs.contains(&sym("c")));
        assert_eq!(evs.len(), 3);
    }

    #[test]
    fn mentions_event_sees_through_modalities() {
        let g = isolated(seq(vec![a(), possible(b())]));
        assert!(g.mentions_event(sym("a")));
        assert!(g.mentions_event(sym("b")));
        assert!(!g.mentions_event(sym("zzz")));
    }

    #[test]
    fn channels_are_collected() {
        let g = conc(vec![
            seq(vec![a(), Goal::Send(Channel(7))]),
            seq(vec![Goal::Receive(Channel(7)), b()]),
        ]);
        assert_eq!(g.channels().into_iter().collect::<Vec<_>>(), vec![Channel(7)]);
    }

    #[test]
    fn display_uses_paper_precedence() {
        let g = seq(vec![a(), or(vec![b(), c()])]);
        assert_eq!(g.to_string(), "a * (b + c)");
        let h = or(vec![seq(vec![a(), b()]), c()]);
        assert_eq!(h.to_string(), "a * b + c");
        let k = conc(vec![seq(vec![a(), b()]), c()]);
        assert_eq!(k.to_string(), "a * b # c");
    }

    #[test]
    fn variant_count_multiplies_and_sums() {
        let g = seq(vec![or(vec![a(), b()]), or(vec![a(), b(), c()])]);
        assert_eq!(g.variant_count(), 6);
        assert_eq!(Goal::NoPath.variant_count(), 0);
        assert_eq!(a().variant_count(), 1);
    }

    #[test]
    fn simplify_is_idempotent_on_canonical_goals() {
        let g = seq(vec![a(), conc(vec![b(), c()])]);
        assert_eq!(g.simplify(), g);
    }

    #[test]
    fn simplify_normalizes_raw_goals() {
        let raw = Goal::Seq(vec![Goal::Seq(vec![a()]), Goal::Empty, b()]);
        assert_eq!(raw.simplify(), Goal::Seq(vec![a(), b()]));
        let dead = Goal::Conc(vec![a(), Goal::Or(vec![])]);
        assert_eq!(dead.simplify(), Goal::NoPath);
    }
}
