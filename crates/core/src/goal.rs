//! Concurrent-Horn goals — the executable fragment of CTR.
//!
//! A concurrent-Horn goal (paper, §2) is built from atomic formulas with
//! serial conjunction `⊗`, concurrent conjunction `|`, disjunction `∨`, the
//! isolation operator `⊙`, and the possibility operator `◇`. Control flow
//! graphs translate directly into this fragment — equation (1) in the paper
//! is the translation of Figure 1.
//!
//! Two special goals complete the algebra:
//!
//! * [`Goal::Empty`] — the unit of `⊗` and `|`; true exactly on paths of
//!   length 1 (the proposition the paper calls `state`). It is what remains
//!   when a branch of the workflow has nothing left to do.
//! * [`Goal::NoPath`] — the unexecutable transaction `¬path`, CTR's analog
//!   of classical `false`. The `Apply` transformation produces it for
//!   executions ruled out by a constraint, and the simplification
//!   tautologies of §5 — implemented here by the smart constructors — make
//!   it absorb `⊗`/`|` contexts and vanish from `∨` contexts.
//!
//! `send(ξ)`/`receive(ξ)` are the synchronization primitives used by the
//! `sync` rewriting of Definition 5.3; they are first-class goal forms so
//! the scheduler can give them their channel semantics.
//!
//! # Representation
//!
//! Recursive payloads are structurally shared: the n-ary connectives hold
//! an `Arc<GoalList>` and the unary modalities an `Arc<Goal>`, so cloning
//! a goal is a reference-count bump and a rewrite that leaves a subtree
//! untouched can return the *same* allocation (observable through
//! [`std::sync::Arc::ptr_eq`]). [`GoalList`] additionally caches, per
//! node, the subtree size, a bloom fingerprint of the event symbols
//! occurring below (see [`Goal::may_mention`]), and a structural hash —
//! all computed once at construction — which makes [`Goal::size`],
//! event-pruning tests, and `∨`-idempotence checks O(1) instead of
//! O(subtree).

use crate::symbol::Symbol;
use crate::term::Atom;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A synchronization channel `ξ`, created fresh by each order-constraint
/// compilation (Definition 5.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Channel(pub u32);

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xi{}", self.0)
    }
}

/// An immutable, shareable list of child goals with cached aggregates.
///
/// Dereferences to `[Goal]`, so existing slice-style consumers
/// (`gs.iter()`, `gs.len()`, indexing) work unchanged. Construction is
/// the only place the aggregates are computed; the children are never
/// mutated afterwards.
pub struct GoalList {
    children: Vec<Goal>,
    /// Nodes in this subtree including the connective node itself.
    size: usize,
    /// Bloom fingerprint (2 bits per symbol in a 64-bit word) of every
    /// event symbol occurring anywhere below, including under `◇`/`⊙`.
    events_fp: u64,
    /// Structural hash of the children sequence. Equal lists always have
    /// equal hashes, so it can stand in for the list in hash-based dedup.
    hash: u64,
}

impl GoalList {
    /// Builds a list, computing the cached size/fingerprint/hash.
    pub fn new(children: Vec<Goal>) -> GoalList {
        let mut size = 1usize;
        let mut events_fp = 0u64;
        let mut hash = 0xA076_1D64_78BD_642Fu64; // arbitrary non-zero init
        for child in &children {
            size += child.size();
            events_fp |= child.events_fingerprint();
            hash = mix64(hash ^ child.structural_hash());
        }
        GoalList {
            children,
            size,
            events_fp,
            hash,
        }
    }

    /// The children as an owned vector (clones are Arc bumps).
    pub fn to_vec(&self) -> Vec<Goal> {
        self.children.clone()
    }
}

impl std::ops::Deref for GoalList {
    type Target = [Goal];
    fn deref(&self) -> &[Goal] {
        &self.children
    }
}

impl fmt::Debug for GoalList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.children.fmt(f)
    }
}

impl PartialEq for GoalList {
    fn eq(&self, other: &GoalList) -> bool {
        self.hash == other.hash && self.children == other.children
    }
}

impl Eq for GoalList {}

/// SplitMix64 finalizer — the mixer behind both the structural hash and
/// the event fingerprint.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Two-bit bloom mask for one event symbol.
fn event_fp_bits(event: Symbol) -> u64 {
    let h = mix64(event.index() as u64 ^ 0xD6E8_FEB8_6659_FD93);
    (1u64 << (h & 63)) | (1u64 << ((h >> 6) & 63))
}

/// FxHash-style hasher behind the `Atom` case of [`Goal::structural_hash`].
///
/// The hash is purely in-memory (dedup buckets, memo keys) and never
/// persisted, so a keyed SipHash pass per atom is pure overhead: one
/// rotate-xor-multiply round per written word spreads interned symbol ids
/// and small term payloads well enough for bucketing. Same mixer as the
/// engine's symbol→slot map.
#[derive(Default)]
struct AtomHasher(u64);

impl std::hash::Hasher for AtomHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_isize(&mut self, v: isize) {
        self.write_u64(v as u64);
    }
}

/// A concurrent-Horn goal.
///
/// `Seq`, `Conc`, and `Or` are n-ary: `Goal::raw_seq(vec![a, b, c])` is
/// `a ⊗ b ⊗ c`. The smart constructors [`seq`], [`conc`], and [`or`]
/// flatten nested applications, drop units, and apply the `¬path`
/// absorption tautologies of §5, so goals built through them are always in
/// a canonical simplified form. Pattern-matching code may rely on the
/// invariants documented on each constructor.
#[derive(Clone)]
pub enum Goal {
    /// An atomic formula: an activity, significant event, elementary
    /// update, query, or rule-defined sub-workflow call.
    Atom(Atom),
    /// Serial conjunction `g₁ ⊗ … ⊗ gₙ` (n ≥ 2): execute left to right.
    Seq(Arc<GoalList>),
    /// Concurrent conjunction `g₁ | … | gₙ` (n ≥ 2): execute interleaved.
    Conc(Arc<GoalList>),
    /// Disjunction `g₁ ∨ … ∨ gₙ` (n ≥ 2): execute one, chosen
    /// nondeterministically.
    Or(Arc<GoalList>),
    /// Isolated execution `⊙g`: no interleaving with concurrent siblings.
    Isolated(Arc<Goal>),
    /// Executional possibility `◇g`: succeed on a 1-path if `g` is
    /// executable at the current state.
    Possible(Arc<Goal>),
    /// `send(ξ)` — always executable; enables the matching `receive`.
    Send(Channel),
    /// `receive(ξ)` — executable only after `send(ξ)` has executed.
    Receive(Channel),
    /// The empty goal — unit of `⊗` and `|`.
    Empty,
    /// `¬path` — the unexecutable goal.
    NoPath,
}

impl Default for Goal {
    /// The empty goal — the unit of `⊗` and `|`.
    fn default() -> Goal {
        Goal::Empty
    }
}

impl Goal {
    /// Propositional atom goal, the common case for workflow activities.
    pub fn atom(name: impl Into<Symbol>) -> Goal {
        Goal::Atom(Atom::prop(name))
    }

    /// Raw n-ary `⊗` node — no flattening or simplification. For code
    /// (tests, ablations, renamers) that deliberately builds
    /// non-canonical shapes; everything else should use [`seq`].
    pub fn raw_seq(children: Vec<Goal>) -> Goal {
        Goal::Seq(Arc::new(GoalList::new(children)))
    }

    /// Raw n-ary `|` node — see [`Goal::raw_seq`].
    pub fn raw_conc(children: Vec<Goal>) -> Goal {
        Goal::Conc(Arc::new(GoalList::new(children)))
    }

    /// Raw n-ary `∨` node — see [`Goal::raw_seq`].
    pub fn raw_or(children: Vec<Goal>) -> Goal {
        Goal::Or(Arc::new(GoalList::new(children)))
    }

    /// Raw `⊙` node — see [`Goal::raw_seq`].
    pub fn raw_isolated(inner: Goal) -> Goal {
        Goal::Isolated(Arc::new(inner))
    }

    /// Raw `◇` node — see [`Goal::raw_seq`].
    pub fn raw_possible(inner: Goal) -> Goal {
        Goal::Possible(Arc::new(inner))
    }

    /// Number of nodes in the goal tree — the size measure `|G|` of
    /// Theorem 5.11. O(1) for the n-ary connectives (cached at
    /// construction).
    pub fn size(&self) -> usize {
        match self {
            Goal::Atom(_) | Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => 1,
            Goal::Seq(gs) | Goal::Conc(gs) | Goal::Or(gs) => gs.size,
            Goal::Isolated(g) | Goal::Possible(g) => 1 + g.size(),
        }
    }

    /// Bloom fingerprint of the event symbols occurring in this subtree.
    /// A zero intersection with an event's mask proves absence; a nonzero
    /// one is only a maybe (see [`Goal::may_mention`]).
    pub fn events_fingerprint(&self) -> u64 {
        match self {
            Goal::Atom(a) => a.as_event().map_or(0, event_fp_bits),
            Goal::Seq(gs) | Goal::Conc(gs) | Goal::Or(gs) => gs.events_fp,
            Goal::Isolated(g) | Goal::Possible(g) => g.events_fingerprint(),
            Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => 0,
        }
    }

    /// Conservative event-occurrence test: `false` proves
    /// `!self.mentions_event(event)`; `true` means the event *may* occur
    /// (bloom false-positives are possible but rare). The Apply and sync
    /// rewrites use this to skip subtrees that provably cannot contain
    /// the constrained event.
    pub fn may_mention(&self, event: Symbol) -> bool {
        let mask = event_fp_bits(event);
        self.events_fingerprint() & mask == mask
    }

    /// True when the two goals share their backing allocation (`Arc::ptr_eq`
    /// on the payload) or are equal leaves. Implies structural equality; the
    /// rewrites use it to detect that a recursion returned its input
    /// unchanged, so the parent node can be reused instead of rebuilt.
    pub fn ptr_eq(&self, other: &Goal) -> bool {
        match (self, other) {
            (Goal::Seq(a), Goal::Seq(b))
            | (Goal::Conc(a), Goal::Conc(b))
            | (Goal::Or(a), Goal::Or(b)) => Arc::ptr_eq(a, b),
            (Goal::Isolated(a), Goal::Isolated(b)) | (Goal::Possible(a), Goal::Possible(b)) => {
                Arc::ptr_eq(a, b)
            }
            (Goal::Atom(a), Goal::Atom(b)) => a == b,
            (Goal::Send(a), Goal::Send(b)) | (Goal::Receive(a), Goal::Receive(b)) => a == b,
            (Goal::Empty, Goal::Empty) | (Goal::NoPath, Goal::NoPath) => true,
            _ => false,
        }
    }

    /// Structural hash, cached for the n-ary connectives. Structurally
    /// equal goals always hash equal.
    pub fn structural_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        match self {
            Goal::Atom(a) => {
                let mut hasher = AtomHasher::default();
                a.hash(&mut hasher);
                mix64(hasher.finish() ^ 0x01)
            }
            Goal::Seq(gs) => mix64(gs.hash ^ 0x02),
            Goal::Conc(gs) => mix64(gs.hash ^ 0x03),
            Goal::Or(gs) => mix64(gs.hash ^ 0x04),
            Goal::Isolated(g) => mix64(g.structural_hash() ^ 0x05),
            Goal::Possible(g) => mix64(g.structural_hash() ^ 0x06),
            Goal::Send(c) => mix64(0x9100 | c.0 as u64),
            Goal::Receive(c) => mix64(0xA200_0000 | c.0 as u64),
            Goal::Empty => 0x07,
            Goal::NoPath => 0x08,
        }
    }

    /// True if the goal is exactly `¬path`.
    pub fn is_nopath(&self) -> bool {
        matches!(self, Goal::NoPath)
    }

    /// True if the goal is the empty goal.
    pub fn is_empty_goal(&self) -> bool {
        matches!(self, Goal::Empty)
    }

    /// True if `event` occurs syntactically anywhere in the goal.
    pub fn mentions_event(&self, event: Symbol) -> bool {
        // The fingerprint answers definite absence without walking.
        if !self.may_mention(event) {
            return false;
        }
        match self {
            Goal::Atom(a) => a.as_event() == Some(event),
            Goal::Seq(gs) | Goal::Conc(gs) | Goal::Or(gs) => {
                gs.iter().any(|g| g.mentions_event(event))
            }
            Goal::Isolated(g) | Goal::Possible(g) => g.mentions_event(event),
            Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => false,
        }
    }

    /// Collects every propositional atom symbol occurring in the goal.
    pub fn events(&self) -> BTreeSet<Symbol> {
        let mut set = BTreeSet::new();
        self.collect_events(&mut set);
        set
    }

    fn collect_events(&self, set: &mut BTreeSet<Symbol>) {
        match self {
            Goal::Atom(a) => {
                if let Some(e) = a.as_event() {
                    set.insert(e);
                }
            }
            Goal::Seq(gs) | Goal::Conc(gs) | Goal::Or(gs) => {
                for g in gs.iter() {
                    g.collect_events(set);
                }
            }
            Goal::Isolated(g) | Goal::Possible(g) => g.collect_events(set),
            Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => {}
        }
    }

    /// Collects every channel occurring in the goal.
    pub fn channels(&self) -> BTreeSet<Channel> {
        let mut set = BTreeSet::new();
        self.collect_channels(&mut set);
        set
    }

    fn collect_channels(&self, set: &mut BTreeSet<Channel>) {
        match self {
            Goal::Send(c) | Goal::Receive(c) => {
                set.insert(*c);
            }
            Goal::Seq(gs) | Goal::Conc(gs) | Goal::Or(gs) => {
                for g in gs.iter() {
                    g.collect_channels(set);
                }
            }
            Goal::Isolated(g) | Goal::Possible(g) => g.collect_channels(set),
            Goal::Atom(_) | Goal::Empty | Goal::NoPath => {}
        }
    }

    /// Visits every atom in the goal, left to right. The shared walker
    /// behind variable-floor scans, predicate collection, and other
    /// atom-level analyses — callers should use this rather than matching
    /// the goal shape themselves.
    pub fn for_each_atom(&self, f: &mut impl FnMut(&Atom)) {
        match self {
            Goal::Atom(a) => f(a),
            Goal::Seq(gs) | Goal::Conc(gs) | Goal::Or(gs) => {
                for g in gs.iter() {
                    g.for_each_atom(f);
                }
            }
            Goal::Isolated(g) | Goal::Possible(g) => g.for_each_atom(f),
            Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => {}
        }
    }

    /// Rebuilds the goal with `f` applied to every atom, preserving the
    /// exact tree shape (raw constructors, no flattening), so an atom-level
    /// rewrite such as variable renaming cannot disturb the structure.
    pub fn map_atoms(&self, f: &mut impl FnMut(&Atom) -> Atom) -> Goal {
        match self {
            Goal::Atom(a) => Goal::Atom(f(a)),
            Goal::Seq(gs) => Goal::raw_seq(gs.iter().map(|g| g.map_atoms(f)).collect()),
            Goal::Conc(gs) => Goal::raw_conc(gs.iter().map(|g| g.map_atoms(f)).collect()),
            Goal::Or(gs) => Goal::raw_or(gs.iter().map(|g| g.map_atoms(f)).collect()),
            Goal::Isolated(g) => Goal::raw_isolated(g.map_atoms(f)),
            Goal::Possible(g) => Goal::raw_possible(g.map_atoms(f)),
            other => other.clone(),
        }
    }

    /// Rebuilds the goal through the smart constructors, enforcing the
    /// canonical simplified form (flattened connectives, units dropped,
    /// `¬path` absorbed per the tautologies of §5). Goals produced by this
    /// crate's own transformations are already canonical; this is for goals
    /// assembled by hand or by a parser.
    pub fn simplify(&self) -> Goal {
        match self.simplify_shared() {
            Some(changed) => changed,
            None => self.clone(),
        }
    }

    /// Sharing-aware worker for [`Goal::simplify`]: returns `None` when the
    /// subtree is already in canonical form, so callers reuse the existing
    /// `Arc` instead of rebuilding. On goals produced by this crate's own
    /// transformations (which go through the smart constructors) this is a
    /// pure check walk with no allocation.
    fn simplify_shared(&self) -> Option<Goal> {
        match self {
            Goal::Seq(gs) => match Self::simplify_children(gs) {
                Some(kids) => Some(seq(kids)),
                None if gs.len() < 2
                    || gs
                        .iter()
                        .any(|g| matches!(g, Goal::Seq(_) | Goal::Empty | Goal::NoPath)) =>
                {
                    Some(seq(gs.to_vec()))
                }
                None => None,
            },
            Goal::Conc(gs) => match Self::simplify_children(gs) {
                Some(kids) => Some(conc(kids)),
                None if gs.len() < 2
                    || gs
                        .iter()
                        .any(|g| matches!(g, Goal::Conc(_) | Goal::Empty | Goal::NoPath)) =>
                {
                    Some(conc(gs.to_vec()))
                }
                None => None,
            },
            Goal::Or(gs) => match Self::simplify_children(gs) {
                Some(kids) => Some(or(kids)),
                None if gs.len() < 2
                    || gs.iter().any(|g| matches!(g, Goal::Or(_) | Goal::NoPath))
                    || Self::has_duplicate_hash(gs) =>
                {
                    Some(or(gs.to_vec()))
                }
                None => None,
            },
            Goal::Isolated(g) => match g.simplify_shared() {
                Some(new) => Some(isolated(new)),
                None if matches!(**g, Goal::Empty | Goal::NoPath) => Some(isolated((**g).clone())),
                None => None,
            },
            Goal::Possible(g) => match g.simplify_shared() {
                Some(new) => Some(possible(new)),
                None if matches!(**g, Goal::Empty | Goal::NoPath) => Some(possible((**g).clone())),
                None => None,
            },
            Goal::Atom(_) | Goal::Send(_) | Goal::Receive(_) | Goal::Empty | Goal::NoPath => None,
        }
    }

    /// Simplifies each child of an n-ary node. Returns `None` when every
    /// child was already canonical (nothing to rebuild); otherwise the new
    /// child vector, reusing the untouched children's `Arc`s.
    fn simplify_children(gs: &GoalList) -> Option<Vec<Goal>> {
        let mut out: Option<Vec<Goal>> = None;
        for (i, child) in gs.iter().enumerate() {
            match child.simplify_shared() {
                Some(new) => out.get_or_insert_with(|| gs[..i].to_vec()).push(new),
                None => {
                    if let Some(v) = out.as_mut() {
                        v.push(child.clone());
                    }
                }
            }
        }
        out
    }

    /// Conservative duplicate test over the cached structural hashes: a
    /// repeated hash forces the `∨`-idempotence rebuild (which performs the
    /// exact equality check), a set of distinct hashes proves distinctness.
    fn has_duplicate_hash(gs: &GoalList) -> bool {
        if gs.len() <= 16 {
            // Small lists: quadratic scan over the cached u64s beats
            // allocating a hash set.
            return gs.iter().enumerate().any(|(i, g)| {
                let h = g.structural_hash();
                gs[..i].iter().any(|e| e.structural_hash() == h)
            });
        }
        let mut seen = std::collections::HashSet::with_capacity(gs.len());
        gs.iter().any(|g| !seen.insert(g.structural_hash()))
    }

    /// Number of `∨`-alternatives if fully distributed — an upper bound on
    /// the number of structurally distinct execution variants. Saturates at
    /// `u64::MAX`.
    pub fn variant_count(&self) -> u64 {
        match self {
            Goal::Or(gs) => gs
                .iter()
                .map(Goal::variant_count)
                .fold(0u64, u64::saturating_add),
            Goal::Seq(gs) | Goal::Conc(gs) => gs
                .iter()
                .map(Goal::variant_count)
                .fold(1u64, u64::saturating_mul),
            Goal::Isolated(g) | Goal::Possible(g) => g.variant_count(),
            Goal::NoPath => 0,
            _ => 1,
        }
    }

    /// Discriminant rank used by the manual `Ord` (mirrors the order the
    /// variants are declared in, which the old `derive(Ord)` used).
    fn rank(&self) -> u8 {
        match self {
            Goal::Atom(_) => 0,
            Goal::Seq(_) => 1,
            Goal::Conc(_) => 2,
            Goal::Or(_) => 3,
            Goal::Isolated(_) => 4,
            Goal::Possible(_) => 5,
            Goal::Send(_) => 6,
            Goal::Receive(_) => 7,
            Goal::Empty => 8,
            Goal::NoPath => 9,
        }
    }
}

impl PartialEq for Goal {
    fn eq(&self, other: &Goal) -> bool {
        match (self, other) {
            (Goal::Atom(a), Goal::Atom(b)) => a == b,
            (Goal::Seq(a), Goal::Seq(b))
            | (Goal::Conc(a), Goal::Conc(b))
            | (Goal::Or(a), Goal::Or(b)) => Arc::ptr_eq(a, b) || a == b,
            (Goal::Isolated(a), Goal::Isolated(b)) | (Goal::Possible(a), Goal::Possible(b)) => {
                Arc::ptr_eq(a, b) || a == b
            }
            (Goal::Send(a), Goal::Send(b)) | (Goal::Receive(a), Goal::Receive(b)) => a == b,
            (Goal::Empty, Goal::Empty) | (Goal::NoPath, Goal::NoPath) => true,
            _ => false,
        }
    }
}

impl Eq for Goal {}

impl std::hash::Hash for Goal {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // The cached structural hash is a function of structure alone, so
        // this stays consistent with the structural `Eq`.
        state.write_u64(self.structural_hash());
    }
}

impl PartialOrd for Goal {
    fn partial_cmp(&self, other: &Goal) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Goal {
    fn cmp(&self, other: &Goal) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Goal::Atom(a), Goal::Atom(b)) => a.cmp(b),
            (Goal::Seq(a), Goal::Seq(b))
            | (Goal::Conc(a), Goal::Conc(b))
            | (Goal::Or(a), Goal::Or(b)) => {
                if Arc::ptr_eq(a, b) {
                    Ordering::Equal
                } else {
                    a.children.cmp(&b.children)
                }
            }
            (Goal::Isolated(a), Goal::Isolated(b)) | (Goal::Possible(a), Goal::Possible(b)) => {
                if Arc::ptr_eq(a, b) {
                    Ordering::Equal
                } else {
                    (**a).cmp(b)
                }
            }
            (Goal::Send(a), Goal::Send(b)) | (Goal::Receive(a), Goal::Receive(b)) => a.cmp(b),
            (Goal::Empty, Goal::Empty) | (Goal::NoPath, Goal::NoPath) => Ordering::Equal,
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

/// Reclaims the children of a shared list: moves them out when this is
/// the only reference, clones (Arc bumps) otherwise.
fn unwrap_list(list: Arc<GoalList>) -> Vec<Goal> {
    match Arc::try_unwrap(list) {
        Ok(owned) => owned.children,
        Err(shared) => shared.to_vec(),
    }
}

/// Serial conjunction `⊗` of the given goals.
///
/// Invariants established: nested `Seq`s are flattened, `Empty` children
/// are dropped, any `NoPath` child absorbs the whole conjunction
/// (`¬path ⊗ φ ≡ φ ⊗ ¬path ≡ ¬path`), a zero-length conjunction is
/// `Empty`, and a singleton unwraps.
pub fn seq(goals: Vec<Goal>) -> Goal {
    let mut out = Vec::with_capacity(goals.len());
    for g in goals {
        match g {
            Goal::NoPath => return Goal::NoPath,
            Goal::Empty => {}
            Goal::Seq(inner) => out.extend(unwrap_list(inner)),
            other => out.push(other),
        }
    }
    match out.len() {
        0 => Goal::Empty,
        1 => out.pop().expect("len checked"),
        _ => Goal::raw_seq(out),
    }
}

/// Concurrent conjunction `|` of the given goals.
///
/// Same invariants as [`seq`] with the `|` absorption tautology
/// (`¬path | φ ≡ ¬path`).
pub fn conc(goals: Vec<Goal>) -> Goal {
    let mut out = Vec::with_capacity(goals.len());
    for g in goals {
        match g {
            Goal::NoPath => return Goal::NoPath,
            Goal::Empty => {}
            Goal::Conc(inner) => out.extend(unwrap_list(inner)),
            other => out.push(other),
        }
    }
    match out.len() {
        0 => Goal::Empty,
        1 => out.pop().expect("len checked"),
        _ => Goal::raw_conc(out),
    }
}

/// Disjunction `∨` of the given goals.
///
/// Nested `Or`s are flattened, `NoPath` alternatives are dropped
/// (`¬path ∨ φ ≡ φ`), and structurally identical alternatives are merged
/// (idempotence, `φ ∨ φ ≡ φ` — keeping the first occurrence, so branch
/// order is stable). An empty disjunction is `¬path` and a singleton
/// unwraps.
///
/// The idempotence step is what keeps repeated constraint compilation from
/// exceeding the genuine `d^N` bound of Theorem 5.11: sequential `Apply`
/// passes frequently regenerate identical pruned variants. The dedup uses
/// the cached structural hash, so each candidate costs O(1) hashing
/// rather than a full-tree walk.
pub fn or(goals: Vec<Goal>) -> Goal {
    use std::collections::hash_map::Entry;
    use std::collections::HashMap;

    let mut out: Vec<Goal> = Vec::with_capacity(goals.len());
    // Hash-bucketed dedup: the cached structural hash keys the buckets,
    // equality is checked only within a bucket (and starts with a pointer
    // comparison, so re-encountering a shared subtree is cheap).
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
    let push_unique = |out: &mut Vec<Goal>, buckets: &mut HashMap<u64, Vec<usize>>, g: Goal| {
        let h = g.structural_hash();
        match buckets.entry(h) {
            Entry::Occupied(mut e) => {
                if e.get().iter().any(|&i| out[i] == g) {
                    return;
                }
                e.get_mut().push(out.len());
                out.push(g);
            }
            Entry::Vacant(e) => {
                e.insert(vec![out.len()]);
                out.push(g);
            }
        }
    };
    for g in goals {
        match g {
            Goal::NoPath => {}
            Goal::Or(inner) => {
                for child in unwrap_list(inner) {
                    push_unique(&mut out, &mut buckets, child);
                }
            }
            other => push_unique(&mut out, &mut buckets, other),
        }
    }
    match out.len() {
        0 => Goal::NoPath,
        1 => out.pop().expect("len checked"),
        _ => Goal::raw_or(out),
    }
}

/// Isolation `⊙g`. `⊙` of the empty goal or `¬path` is itself.
pub fn isolated(g: Goal) -> Goal {
    match g {
        Goal::Empty => Goal::Empty,
        Goal::NoPath => Goal::NoPath,
        other => Goal::raw_isolated(other),
    }
}

/// Possibility `◇g`. `◇¬path` can never succeed, so it is `¬path`;
/// `◇Empty` always succeeds on a 1-path, so it is `Empty`.
pub fn possible(g: Goal) -> Goal {
    match g {
        Goal::Empty => Goal::Empty,
        Goal::NoPath => Goal::NoPath,
        other => Goal::raw_possible(other),
    }
}

/// Binary serial conjunction convenience.
pub fn then(a: Goal, b: Goal) -> Goal {
    seq(vec![a, b])
}

impl fmt::Display for Goal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Precedence: ∨ (loosest) < | < ⊗ < unary (tightest). Children are
        // parenthesized when their connective binds no tighter than the
        // parent's.
        fn prec(g: &Goal) -> u8 {
            match g {
                Goal::Or(_) => 0,
                Goal::Conc(_) => 1,
                Goal::Seq(_) => 2,
                _ => 3,
            }
        }
        fn write(g: &Goal, parent: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let p = prec(g);
            // Same-connective nesting never occurs (smart constructors
            // flatten it), so strictly-looser children are the only ones
            // that need parentheses.
            let parens = p < 3 && p < parent;
            if parens {
                write!(f, "(")?;
            }
            match g {
                Goal::Atom(a) => write!(f, "{a}")?,
                Goal::Seq(gs) => {
                    for (i, child) in gs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " * ")?;
                        }
                        write(child, p, f)?;
                    }
                }
                Goal::Conc(gs) => {
                    for (i, child) in gs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " # ")?;
                        }
                        write(child, p, f)?;
                    }
                }
                Goal::Or(gs) => {
                    for (i, child) in gs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " + ")?;
                        }
                        write(child, p, f)?;
                    }
                }
                Goal::Isolated(inner) => {
                    write!(f, "iso(")?;
                    write(inner, 0, f)?;
                    write!(f, ")")?;
                }
                Goal::Possible(inner) => {
                    write!(f, "poss(")?;
                    write(inner, 0, f)?;
                    write!(f, ")")?;
                }
                Goal::Send(c) => write!(f, "send({c})")?,
                Goal::Receive(c) => write!(f, "receive({c})")?,
                Goal::Empty => write!(f, "empty")?,
                Goal::NoPath => write!(f, "nopath")?,
            }
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        write(self, 0, f)
    }
}

impl fmt::Debug for Goal {
    // Goals are best read in their concrete syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    fn a() -> Goal {
        Goal::atom("a")
    }
    fn b() -> Goal {
        Goal::atom("b")
    }
    fn c() -> Goal {
        Goal::atom("c")
    }

    #[test]
    fn seq_flattens_and_drops_units() {
        let g = seq(vec![a(), Goal::Empty, seq(vec![b(), c()])]);
        assert_eq!(g, Goal::raw_seq(vec![a(), b(), c()]));
    }

    #[test]
    fn seq_absorbs_nopath() {
        assert_eq!(seq(vec![a(), Goal::NoPath, b()]), Goal::NoPath);
    }

    #[test]
    fn conc_absorbs_nopath() {
        assert_eq!(conc(vec![a(), Goal::NoPath]), Goal::NoPath);
    }

    #[test]
    fn or_drops_nopath_branches() {
        assert_eq!(or(vec![Goal::NoPath, a(), Goal::NoPath]), a());
        assert_eq!(or(vec![Goal::NoPath, Goal::NoPath]), Goal::NoPath);
    }

    #[test]
    fn singletons_unwrap() {
        assert_eq!(seq(vec![a()]), a());
        assert_eq!(conc(vec![b()]), b());
        assert_eq!(or(vec![c()]), c());
    }

    #[test]
    fn empty_conjunctions_are_unit() {
        assert_eq!(seq(vec![]), Goal::Empty);
        assert_eq!(conc(vec![]), Goal::Empty);
        assert_eq!(or(vec![]), Goal::NoPath);
    }

    #[test]
    fn isolated_of_trivial_goals_simplifies() {
        assert_eq!(isolated(Goal::Empty), Goal::Empty);
        assert_eq!(isolated(Goal::NoPath), Goal::NoPath);
        assert!(matches!(isolated(a()), Goal::Isolated(_)));
    }

    #[test]
    fn possible_of_trivial_goals_simplifies() {
        assert_eq!(possible(Goal::Empty), Goal::Empty);
        assert_eq!(possible(Goal::NoPath), Goal::NoPath);
    }

    #[test]
    fn size_counts_nodes() {
        let g = seq(vec![a(), conc(vec![b(), c()])]);
        // Seq node + a + Conc node + b + c
        assert_eq!(g.size(), 5);
    }

    #[test]
    fn clone_shares_subtrees() {
        let g = seq(vec![a(), conc(vec![b(), c()])]);
        let h = g.clone();
        let (Goal::Seq(gl), Goal::Seq(hl)) = (&g, &h) else {
            panic!("expected Seq");
        };
        assert!(Arc::ptr_eq(gl, hl));
    }

    #[test]
    fn may_mention_has_no_false_negatives() {
        let g = isolated(seq(vec![a(), possible(b())]));
        assert!(g.may_mention(sym("a")));
        assert!(g.may_mention(sym("b")));
        // A symbol that is definitely absent: the fingerprint must clear
        // at least most such probes; this specific one is checked not to
        // collide so the pruning path is actually exercised in tests.
        assert!(!g.mentions_event(sym("definitely_absent_event")));
    }

    #[test]
    fn structural_hash_matches_equality() {
        let g1 = seq(vec![a(), or(vec![b(), c()])]);
        let g2 = seq(vec![a(), or(vec![b(), c()])]);
        assert_eq!(g1, g2);
        assert_eq!(g1.structural_hash(), g2.structural_hash());
        let g3 = seq(vec![a(), or(vec![c(), b()])]);
        assert_ne!(g1, g3);
    }

    #[test]
    fn events_collects_prop_atoms_only() {
        let g = seq(vec![a(), Goal::Send(Channel(0)), or(vec![b(), c()])]);
        let evs = g.events();
        assert!(evs.contains(&sym("a")));
        assert!(evs.contains(&sym("b")));
        assert!(evs.contains(&sym("c")));
        assert_eq!(evs.len(), 3);
    }

    #[test]
    fn mentions_event_sees_through_modalities() {
        let g = isolated(seq(vec![a(), possible(b())]));
        assert!(g.mentions_event(sym("a")));
        assert!(g.mentions_event(sym("b")));
        assert!(!g.mentions_event(sym("zzz")));
    }

    #[test]
    fn channels_are_collected() {
        let g = conc(vec![
            seq(vec![a(), Goal::Send(Channel(7))]),
            seq(vec![Goal::Receive(Channel(7)), b()]),
        ]);
        assert_eq!(
            g.channels().into_iter().collect::<Vec<_>>(),
            vec![Channel(7)]
        );
    }

    #[test]
    fn display_uses_paper_precedence() {
        let g = seq(vec![a(), or(vec![b(), c()])]);
        assert_eq!(g.to_string(), "a * (b + c)");
        let h = or(vec![seq(vec![a(), b()]), c()]);
        assert_eq!(h.to_string(), "a * b + c");
        let k = conc(vec![seq(vec![a(), b()]), c()]);
        assert_eq!(k.to_string(), "a * b # c");
    }

    #[test]
    fn variant_count_multiplies_and_sums() {
        let g = seq(vec![or(vec![a(), b()]), or(vec![a(), b(), c()])]);
        assert_eq!(g.variant_count(), 6);
        assert_eq!(Goal::NoPath.variant_count(), 0);
        assert_eq!(a().variant_count(), 1);
    }

    #[test]
    fn simplify_is_idempotent_on_canonical_goals() {
        let g = seq(vec![a(), conc(vec![b(), c()])]);
        assert_eq!(g.simplify(), g);
    }

    #[test]
    fn simplify_normalizes_raw_goals() {
        let raw = Goal::raw_seq(vec![Goal::raw_seq(vec![a()]), Goal::Empty, b()]);
        assert_eq!(raw.simplify(), Goal::raw_seq(vec![a(), b()]));
        let dead = Goal::raw_conc(vec![a(), Goal::raw_or(vec![])]);
        assert_eq!(dead.simplify(), Goal::NoPath);
    }
}
