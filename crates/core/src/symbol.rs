//! Interned identifiers.
//!
//! Every predicate name, activity name, event name, and constant in the
//! library is interned into a global table and referred to by a compact
//! [`Symbol`]. Interning makes atom comparison — the inner loop of the
//! `Apply` transformation (paper, Definition 5.1) — a single integer
//! compare, and keeps the recursive goal terms small.
//!
//! The table is **append-only**, which lets resolution be lock-free:
//! [`Symbol::as_str`] sits on every journal append, snapshot line, and
//! `eligible()` materialization in the runtime, so it must not serialize
//! concurrent readers behind the intern mutex. Names are published into a
//! chunked store whose slots are [`OnceLock`]s — a resolve is two atomic
//! acquire loads (chunk pointer, slot) and never blocks. Only an
//! intern-*miss* takes the [`Mutex`] guarding the name→id map.
//!
//! ## Poisoning
//!
//! The intern mutex recovers from poisoning (`PoisonError::into_inner`)
//! instead of propagating the panic, matching the runtime's lock
//! discipline. This is sound because interner state is valid after a
//! panic at any point: entries are appended in a fixed order — the name
//! slot is published (idempotently, via `get_or_init`) *before* the map
//! entry, and the map itself allocates the next id from its own length —
//! so an interrupted append is either invisible (no map entry: the next
//! `intern` of that name redoes it, reusing the already-published slot)
//! or complete. No operation ever leaves a map entry pointing at an
//! unpublished slot.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock, PoisonError};

/// An interned string.
///
/// Symbols are cheap to copy and compare. Two symbols are equal if and only
/// if they were interned from the same string. The ordering of symbols is
/// the order of first interning (stable within a process), which gives
/// deterministic iteration orders in the data structures built on top.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

/// Capacity of chunk 0; chunk `i` holds `CHUNK0 << i` slots. 26 chunks
/// reach id `64·(2²⁶−1)`, 64 ids short of `u32::MAX`, so a 27th absorbs
/// the tail and every `u32` id has a slot while a resolve stays two
/// pointer hops. (Chunks allocate on demand; the tail chunk only
/// materializes past ~4.3e9 interned names.)
const CHUNK0: u32 = 64;
const NUM_CHUNKS: usize = 27;

type Chunk = Box<[OnceLock<&'static str>]>;

/// The lock-free name store: id → name. Chunks are allocated on demand by
/// writers (who hold the intern mutex) and published through the outer
/// `OnceLock`; slots are published through the inner one. Readers only
/// ever perform acquire loads.
struct Names {
    chunks: [OnceLock<Chunk>; NUM_CHUNKS],
}

/// Decomposes an id into (chunk index, offset within chunk). Chunk `i`
/// spans ids `[CHUNK0·(2^i − 1), CHUNK0·(2^{i+1} − 1))`.
fn slot_of(index: u32) -> (usize, usize) {
    let v = index / CHUNK0 + 1;
    let chunk = (u32::BITS - 1 - v.leading_zeros()) as usize;
    let start = CHUNK0 * ((1u32 << chunk) - 1);
    (chunk, (index - start) as usize)
}

impl Names {
    fn new() -> Names {
        Names {
            chunks: std::array::from_fn(|_| OnceLock::new()),
        }
    }

    /// Lock-free resolve. Panics on an id that was never interned (which
    /// cannot be produced by the public API).
    fn resolve(&self, index: u32) -> &'static str {
        let (chunk, offset) = slot_of(index);
        self.chunks[chunk]
            .get()
            .and_then(|c| c[offset].get())
            .copied()
            .expect("symbol id was never interned")
    }

    /// Publishes `name` under `index`. Called with the intern mutex held;
    /// idempotent so a previously interrupted append is simply redone.
    fn publish(&self, index: u32, name: &'static str) -> &'static str {
        let (chunk, offset) = slot_of(index);
        let chunk = self.chunks[chunk].get_or_init(|| {
            let capacity = (CHUNK0 as usize) << chunk;
            (0..capacity).map(|_| OnceLock::new()).collect()
        });
        chunk[offset].get_or_init(|| name)
    }
}

struct Interner {
    names: Names,
    /// name → id. `map.len()` doubles as the next fresh id, so ids are
    /// only advanced by a completed append.
    map: Mutex<HashMap<&'static str, u32>>,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        names: Names::new(),
        map: Mutex::new(HashMap::new()),
    })
}

impl Symbol {
    /// Interns `name` and returns its symbol. Takes the intern mutex; the
    /// hot resolution path ([`Symbol::as_str`]) does not.
    pub fn intern(name: &str) -> Symbol {
        let interner = interner();
        // See the module docs: recovery is safe because appends publish
        // the name slot before the map entry.
        let mut map = interner.map.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(&id) = map.get(name) {
            return Symbol(id);
        }
        // Interned names live for the lifetime of the process. The leak is
        // bounded by the number of distinct identifiers in the program,
        // which is the usual trade-off for a global interner.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(map.len()).expect("symbol table exhausted the u32 id space");
        let published = interner.names.publish(id, leaked);
        map.insert(published, id);
        Symbol(id)
    }

    /// Looks `name` up **without interning it**: returns its symbol if
    /// some prior [`Symbol::intern`] created one, `None` otherwise.
    ///
    /// The table is append-only and process-global, so any path that
    /// interns externally-supplied strings (e.g. event names arriving
    /// over a service boundary) grows memory permanently — hostile or
    /// merely buggy clients can pump the table forever. Validation
    /// paths should use `try_get`: a name that was never interned
    /// cannot refer to anything in the system, so it can be rejected
    /// without allocating.
    pub fn try_get(name: &str) -> Option<Symbol> {
        let interner = interner();
        let map = interner.map.lock().unwrap_or_else(PoisonError::into_inner);
        map.get(name).map(|&id| Symbol(id))
    }

    /// Number of names interned so far, process-wide. Intended for
    /// tests asserting that an operation did not grow the table.
    pub fn interned_count() -> usize {
        interner()
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Returns the string this symbol was interned from.
    ///
    /// Lock-free: two atomic acquire loads into the append-only name
    /// store, never contending with concurrent interns or other readers.
    pub fn as_str(self) -> &'static str {
        interner().names.resolve(self.0)
    }

    /// The raw interner index. Useful as a dense array key.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Symbol {
        Symbol::intern(name)
    }
}

impl From<String> for Symbol {
    fn from(name: String) -> Symbol {
        Symbol::intern(&name)
    }
}

/// Interns a symbol; shorthand used pervasively in tests and examples.
pub fn sym(name: &str) -> Symbol {
    Symbol::intern(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a1 = Symbol::intern("alpha");
        let a2 = Symbol::intern("alpha");
        assert_eq!(a1, a2);
        assert_eq!(a1.as_str(), "alpha");
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let a = Symbol::intern("left");
        let b = Symbol::intern("right");
        assert_ne!(a, b);
        assert_ne!(a.index(), b.index());
    }

    #[test]
    fn display_round_trips() {
        let s = sym("trip_planning");
        assert_eq!(format!("{s}"), "trip_planning");
        assert_eq!(format!("{s:?}"), "trip_planning");
    }

    #[test]
    fn try_get_finds_interned_names_without_interning_new_ones() {
        let s = Symbol::intern("try_get_known");
        assert_eq!(Symbol::try_get("try_get_known"), Some(s));
        // An unknown name is rejected without growing the table. Other
        // tests intern concurrently, so retry the count comparison a few
        // times rather than demanding a quiescent table.
        for attempt in 0.. {
            let before = Symbol::interned_count();
            let miss = Symbol::try_get("try_get_never_interned_name");
            let after = Symbol::interned_count();
            assert_eq!(miss, None);
            if before == after {
                break;
            }
            assert!(attempt < 5, "interner table would not settle");
        }
        assert_eq!(Symbol::try_get("try_get_never_interned_name"), None);
    }

    #[test]
    fn from_string_matches_intern() {
        let owned: Symbol = String::from("owned").into();
        assert_eq!(owned, sym("owned"));
    }

    #[test]
    fn slot_decomposition_is_contiguous() {
        // Every id maps into a valid chunk, offsets are in range, and the
        // mapping is a bijection over chunk boundaries.
        let mut last = (0usize, 0usize);
        for id in 1..10_000u32 {
            let (chunk, offset) = slot_of(id);
            assert!(chunk < NUM_CHUNKS);
            assert!(offset < (CHUNK0 as usize) << chunk);
            if chunk == last.0 {
                assert_eq!(offset, last.1 + 1, "offsets advance within a chunk");
            } else {
                assert_eq!((chunk, offset), (last.0 + 1, 0), "chunks are adjacent");
            }
            last = (chunk, offset);
        }
        // Chunk boundaries land where the capacity formula says.
        assert_eq!(slot_of(0), (0, 0));
        assert_eq!(slot_of(63), (0, 63));
        assert_eq!(slot_of(64), (1, 0));
        assert_eq!(slot_of(191), (1, 127));
        assert_eq!(slot_of(192), (2, 0));
        // The very top of the u32 id space lands in the tail chunk, in
        // range — no id can index past NUM_CHUNKS.
        assert_eq!(slot_of(CHUNK0 * ((1 << 26) - 1) - 1), (25, (1 << 31) - 1));
        assert_eq!(slot_of(CHUNK0 * ((1 << 26) - 1)), (26, 0));
        assert_eq!(slot_of(u32::MAX), (26, 63));
        const _: () = assert!(26 < NUM_CHUNKS);
    }

    #[test]
    fn interning_is_thread_safe() {
        let handles: Vec<_> = (0..8)
            .map(|i| std::thread::spawn(move || Symbol::intern(&format!("t{}", i % 3))))
            .collect();
        let syms: Vec<Symbol> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(s.as_str(), format!("t{}", i % 3));
        }
    }

    #[test]
    fn concurrent_reads_race_concurrent_interns() {
        // The lock-free read path: reader threads hammer `as_str` on a
        // growing set of symbols while writer threads keep interning new
        // names (forcing chunk allocations past the first boundary).
        // Every resolve must return exactly the interned string.
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let stop = Arc::new(AtomicBool::new(false));
        let seed: Vec<(Symbol, String)> = (0..300)
            .map(|i| {
                let name = format!("stress_seed_{i}");
                (Symbol::intern(&name), name)
            })
            .collect();
        let seed = Arc::new(seed);

        std::thread::scope(|scope| {
            for _ in 0..4 {
                let stop = Arc::clone(&stop);
                let seed = Arc::clone(&seed);
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        for (s, name) in seed.iter() {
                            assert_eq!(s.as_str(), name.as_str());
                        }
                    }
                });
            }
            for w in 0..2 {
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut i = 0u32;
                    while !stop.load(Ordering::Relaxed) {
                        let name = format!("stress_new_{w}_{i}");
                        let s = Symbol::intern(&name);
                        assert_eq!(s.as_str(), name);
                        i += 1;
                        if i >= 2_000 {
                            break;
                        }
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(150));
            stop.store(true, Ordering::Relaxed);
        });
    }
}
