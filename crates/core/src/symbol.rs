//! Interned identifiers.
//!
//! Every predicate name, activity name, event name, and constant in the
//! library is interned into a global table and referred to by a compact
//! [`Symbol`]. Interning makes atom comparison — the inner loop of the
//! `Apply` transformation (paper, Definition 5.1) — a single integer
//! compare, and keeps the recursive goal terms small.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string.
///
/// Symbols are cheap to copy and compare. Two symbols are equal if and only
/// if they were interned from the same string. The ordering of symbols is
/// the order of first interning (stable within a process), which gives
/// deterministic iteration orders in the data structures built on top.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<&'static str>,
    map: HashMap<&'static str, u32>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            names: Vec::new(),
            map: HashMap::new(),
        }
    }

    fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&id) = self.map.get(name) {
            return Symbol(id);
        }
        // Interned names live for the lifetime of the process. The leak is
        // bounded by the number of distinct identifiers in the program,
        // which is the usual trade-off for a global interner.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = self.names.len() as u32;
        self.names.push(leaked);
        self.map.insert(leaked, id);
        Symbol(id)
    }

    fn resolve(&self, sym: Symbol) -> &'static str {
        self.names[sym.0 as usize]
    }
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(Interner::new()))
}

impl Symbol {
    /// Interns `name` and returns its symbol.
    pub fn intern(name: &str) -> Symbol {
        interner()
            .lock()
            .expect("symbol interner poisoned")
            .intern(name)
    }

    /// Returns the string this symbol was interned from.
    pub fn as_str(self) -> &'static str {
        interner()
            .lock()
            .expect("symbol interner poisoned")
            .resolve(self)
    }

    /// The raw interner index. Useful as a dense array key.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Symbol {
        Symbol::intern(name)
    }
}

impl From<String> for Symbol {
    fn from(name: String) -> Symbol {
        Symbol::intern(&name)
    }
}

/// Interns a symbol; shorthand used pervasively in tests and examples.
pub fn sym(name: &str) -> Symbol {
    Symbol::intern(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a1 = Symbol::intern("alpha");
        let a2 = Symbol::intern("alpha");
        assert_eq!(a1, a2);
        assert_eq!(a1.as_str(), "alpha");
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let a = Symbol::intern("left");
        let b = Symbol::intern("right");
        assert_ne!(a, b);
        assert_ne!(a.index(), b.index());
    }

    #[test]
    fn display_round_trips() {
        let s = sym("trip_planning");
        assert_eq!(format!("{s}"), "trip_planning");
        assert_eq!(format!("{s:?}"), "trip_planning");
    }

    #[test]
    fn from_string_matches_intern() {
        let owned: Symbol = String::from("owned").into();
        assert_eq!(owned, sym("owned"));
    }

    #[test]
    fn interning_is_thread_safe() {
        let handles: Vec<_> = (0..8)
            .map(|i| std::thread::spawn(move || Symbol::intern(&format!("t{}", i % 3))))
            .collect();
        let syms: Vec<Symbol> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(s.as_str(), format!("t{}", i % 3));
        }
    }
}
