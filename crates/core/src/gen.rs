//! Workload generators for tests and for the benchmark harness.
//!
//! Everything here produces unique-event goals *by construction*
//! (serial/concurrent siblings draw from disjoint event pools; only
//! `∨`-branches may share), so generated inputs are always in the class
//! the compilation is defined on.
//!
//! The generators correspond to the experiment families of DESIGN.md:
//! random goals for the property-based equivalence tests, layered
//! series-parallel workflows for the Theorem 5.11 size/time measurements,
//! and the 3-SAT reduction behind the NP-hardness claim of
//! Proposition 4.1.

use crate::constraints::Constraint;
use crate::goal::{conc, or, seq, Goal};
use crate::symbol::{sym, Symbol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_goal`].
#[derive(Clone, Copy, Debug)]
pub struct GoalShape {
    /// Maximum nesting depth.
    pub depth: usize,
    /// Maximum children per connective.
    pub width: usize,
    /// Probability that an interior node is an `∨` (the rest split evenly
    /// between `⊗` and `|`).
    pub or_bias: f64,
}

impl Default for GoalShape {
    fn default() -> Self {
        GoalShape {
            depth: 4,
            width: 3,
            or_bias: 0.34,
        }
    }
}

/// Generates a random unique-event goal over fresh events named
/// `{prefix}0, {prefix}1, …`. Returns the goal and the events used.
pub fn random_goal(seed: u64, shape: GoalShape, prefix: &str) -> (Goal, Vec<Symbol>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next = 0usize;
    let goal = build(&mut rng, shape.depth, shape, prefix, &mut next);
    let events = (0..next).map(|i| sym(&format!("{prefix}{i}"))).collect();
    (goal, events)
}

fn build(rng: &mut StdRng, depth: usize, shape: GoalShape, prefix: &str, next: &mut usize) -> Goal {
    // A sliver of empty goals keeps ε-branches (`a ∨ ε`) in the test
    // distribution — they exercise silent-finish scheduling.
    if rng.gen_bool(0.04) {
        return Goal::Empty;
    }
    if depth == 0 || rng.gen_bool(0.3) {
        let e = *next;
        *next += 1;
        return Goal::atom(format!("{prefix}{e}"));
    }
    let width = rng.gen_range(2..=shape.width.max(2));
    let children: Vec<Goal> = (0..width)
        .map(|_| build(rng, depth - 1, shape, prefix, next))
        .collect();
    if rng.gen_bool(shape.or_bias) {
        // ∨-branches may legally share events, but generating disjoint
        // pools keeps the goal unique-event for every subset of events.
        or(children)
    } else if rng.gen_bool(0.5) {
        seq(children)
    } else {
        conc(children)
    }
}

/// Picks `count` random constraints over the given events: a mix of Klein
/// order, Klein existence, `causes_later`, and primitive constraints —
/// the shapes catalogued in §3 of the paper.
pub fn random_constraints(seed: u64, events: &[Symbol], count: usize) -> Vec<Constraint> {
    assert!(events.len() >= 2, "need at least two events to constrain");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let a = events[rng.gen_range(0..events.len())];
            let mut b = events[rng.gen_range(0..events.len())];
            while b == a {
                b = events[rng.gen_range(0..events.len())];
            }
            match rng.gen_range(0..6) {
                0 => Constraint::klein_order(a, b),
                1 => Constraint::klein_exists(a, b),
                2 => Constraint::causes_later(a, b),
                3 => Constraint::must(a),
                4 => Constraint::must_not(a),
                _ => Constraint::requires_earlier(a, b),
            }
        })
        .collect()
}

/// A layered series-parallel workflow: `layers` sequential stages, each a
/// concurrent block of `lanes` branches, each branch an `∨` of two
/// activities (`l{i}_{j}` / `r{i}_{j}`) — the structured shape of
/// commercial control-flow graphs (Figure 1 writ large).
///
/// Size is `Θ(layers × lanes)`; every event is unique by construction.
pub fn layered_workflow(layers: usize, lanes: usize) -> Goal {
    seq((0..layers)
        .map(|i| {
            conc(
                (0..lanes)
                    .map(|j| {
                        or(vec![
                            Goal::atom(format!("l{i}_{j}")),
                            Goal::atom(format!("r{i}_{j}")),
                        ])
                    })
                    .collect(),
            )
        })
        .collect())
}

/// The events of [`layered_workflow`]'s `(i, j)` cell.
pub fn layered_events(i: usize, j: usize) -> (Symbol, Symbol) {
    (sym(&format!("l{i}_{j}")), sym(&format!("r{i}_{j}")))
}

/// A pure pipeline `t0 ⊗ t1 ⊗ … ⊗ t{n−1}` — the `d = 1` workload for the
/// serial-constraints corollary of Theorem 5.11.
pub fn pipeline_workflow(n: usize) -> Goal {
    seq((0..n).map(|i| Goal::atom(format!("t{i}"))).collect())
}

/// A fully concurrent workflow `t0 | t1 | … | t{n−1}` — the workload where
/// scheduling choices are maximal.
pub fn parallel_workflow(n: usize) -> Goal {
    conc((0..n).map(|i| Goal::atom(format!("t{i}"))).collect())
}

/// `k` Klein order constraints chaining the stages of a layered workflow:
/// `l{i}_0` before `l{i+1}_0`. Each has `d = 3` disjuncts.
pub fn klein_chain(k: usize) -> Vec<Constraint> {
    (0..k)
        .map(|i| {
            let (a, _) = layered_events(i, 0);
            let (b, _) = layered_events(i + 1, 0);
            Constraint::klein_order(a, b)
        })
        .collect()
}

/// `k` plain order constraints (`d = 1`) over a pipeline's tasks:
/// `t{2i}` before `t{2i+1}`.
pub fn order_chain(k: usize) -> Vec<Constraint> {
    (0..k)
        .map(|i| Constraint::order(sym(&format!("t{}", 2 * i)), sym(&format!("t{}", 2 * i + 1))))
        .collect()
}

// ---------------------------------------------------------------------------
// The 3-SAT reduction of Proposition 4.1
// ---------------------------------------------------------------------------

/// A 3-SAT instance: `clauses[i]` holds up to three literals; a literal is
/// `(variable, polarity)` with `polarity = true` for the positive literal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SatInstance {
    /// Number of propositional variables, named `0..vars`.
    pub vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<(usize, bool)>>,
}

impl SatInstance {
    /// Evaluates the instance under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|cl| cl.iter().any(|&(v, pol)| assignment[v] == pol))
    }

    /// Brute-force satisfiability — the ground truth for testing the
    /// reduction (only for small `vars`).
    pub fn brute_force_sat(&self) -> bool {
        assert!(self.vars <= 24, "brute force limited to small instances");
        (0u32..(1 << self.vars)).any(|bits| {
            let assignment: Vec<bool> = (0..self.vars).map(|v| bits & (1 << v) != 0).collect();
            self.eval(&assignment)
        })
    }
}

/// A random 3-SAT instance at the given clause/variable ratio.
pub fn random_3sat(seed: u64, vars: usize, clauses: usize) -> SatInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let clauses = (0..clauses)
        .map(|_| {
            let mut lits = Vec::with_capacity(3);
            while lits.len() < 3 {
                let v = rng.gen_range(0..vars);
                if lits.iter().all(|&(w, _)| w != v) {
                    lits.push((v, rng.gen_bool(0.5)));
                }
            }
            lits
        })
        .collect();
    SatInstance { vars, clauses }
}

/// The workflow-consistency encoding of a 3-SAT instance — the reduction
/// behind Proposition 4.1, using **existence constraints only**.
///
/// The workflow runs one concurrent lane per variable, each choosing
/// `x{v}_t` (true) or `x{v}_f` (false). Each clause becomes the existence
/// constraint `∇lit₁ ∨ ∇lit₂ ∨ ∇lit₃`. The specification is consistent
/// iff the instance is satisfiable.
pub fn sat_to_workflow(inst: &SatInstance) -> (Goal, Vec<Constraint>) {
    let goal = conc(
        (0..inst.vars)
            .map(|v| {
                or(vec![
                    Goal::atom(format!("x{v}_t")),
                    Goal::atom(format!("x{v}_f")),
                ])
            })
            .collect(),
    );
    let constraints = inst
        .clauses
        .iter()
        .map(|cl| {
            Constraint::or(
                cl.iter()
                    .map(|&(v, pol)| {
                        Constraint::must(sym(&format!("x{v}_{}", if pol { 't' } else { 'f' })))
                    })
                    .collect(),
            )
        })
        .collect();
    (goal, constraints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::is_consistent;
    use crate::unique::is_unique_event;

    #[test]
    fn random_goals_are_unique_event() {
        for seed in 0..20 {
            let (goal, _) = random_goal(seed, GoalShape::default(), "e");
            assert!(is_unique_event(&goal), "seed {seed}: {goal}");
        }
    }

    #[test]
    fn random_goal_is_deterministic_per_seed() {
        let (g1, _) = random_goal(42, GoalShape::default(), "e");
        let (g2, _) = random_goal(42, GoalShape::default(), "e");
        assert_eq!(g1, g2);
    }

    #[test]
    fn layered_workflow_shape() {
        let w = layered_workflow(3, 2);
        assert!(is_unique_event(&w));
        // 3 stages × 2 lanes × (or + 2 atoms) + 2 conc + 1 seq wrappers.
        assert_eq!(w.size(), 3 * 2 * 3 + 3 + 1);
        assert_eq!(w.variant_count(), 1 << 6);
    }

    #[test]
    fn pipeline_and_parallel_workflows() {
        assert_eq!(pipeline_workflow(4).size(), 5);
        assert_eq!(parallel_workflow(4).size(), 5);
        assert_eq!(pipeline_workflow(1), Goal::atom("t0"));
    }

    #[test]
    fn klein_chain_references_layered_events() {
        let cs = klein_chain(2);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0], Constraint::klein_order("l0_0", "l1_0"));
    }

    #[test]
    fn sat_reduction_round_trips_satisfiability() {
        for seed in 0..12 {
            // ratio ~4.3 straddles the sat/unsat threshold: both outcomes
            // appear across seeds.
            let inst = random_3sat(seed, 5, 21);
            let (goal, constraints) = sat_to_workflow(&inst);
            assert_eq!(
                is_consistent(&goal, &constraints).unwrap(),
                inst.brute_force_sat(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn sat_reduction_on_known_instances() {
        // (x0 ∨ x1 ∨ x2) ∧ (¬x0 ∨ ¬x1 ∨ ¬x2): satisfiable.
        let sat = SatInstance {
            vars: 3,
            clauses: vec![
                vec![(0, true), (1, true), (2, true)],
                vec![(0, false), (1, false), (2, false)],
            ],
        };
        let (g, c) = sat_to_workflow(&sat);
        assert!(is_consistent(&g, &c).unwrap());

        // x0 ∧ ¬x0 via two unit-ish clauses: unsatisfiable.
        let unsat = SatInstance {
            vars: 1,
            clauses: vec![vec![(0, true)], vec![(0, false)]],
        };
        assert!(!unsat.brute_force_sat());
        let (g, c) = sat_to_workflow(&unsat);
        assert!(!is_consistent(&g, &c).unwrap());
    }

    #[test]
    fn random_constraints_cover_catalogue() {
        let events: Vec<Symbol> = (0..5).map(|i| sym(&format!("v{i}"))).collect();
        let cs = random_constraints(7, &events, 40);
        assert_eq!(cs.len(), 40);
        // All constraint events come from the pool.
        for c in &cs {
            for e in c.events() {
                assert!(events.contains(&e));
            }
        }
    }
}
