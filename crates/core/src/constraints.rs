//! The temporal constraint algebra `CONSTR` (paper, §3).
//!
//! `CONSTR` is as expressive as Singh's event algebra and covers Klein's
//! constraints. Its building blocks are formulas `∇e ≡ path ⊗ e ⊗ path`
//! over significant events `e`:
//!
//! * primitive constraints `∇e` ("e must happen") and `¬∇e` ("e must not
//!   happen");
//! * serial constraints `∇e₁ ⊗ ⋯ ⊗ ∇eₙ` over positive primitives;
//! * `∧` and `∨` combinations.
//!
//! The algebra is closed under negation (Lemma 3.4): negation is pushed
//! down with De Morgan's laws, and the negation of a binary serial
//! constraint unfolds to `¬∇e₁ ∨ ¬∇e₂ ∨ (∇e₂ ⊗ ∇e₁)`. Serial constraints
//! split into binary *order constraints* (Proposition 3.3), and every
//! constraint normalizes to `∨ᵢ ∧ⱼ basicᵢⱼ` where each basic is a
//! primitive or an order constraint (Corollary 3.5). The `Apply`
//! compilation consumes that normal form.

use crate::symbol::Symbol;
use std::fmt;

/// A constraint in the algebra `CONSTR`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// `∇e`: event `e` must happen.
    Must(Symbol),
    /// `¬∇e`: event `e` must not happen.
    MustNot(Symbol),
    /// `∇e₁ ⊗ ⋯ ⊗ ∇eₙ` (n ≥ 2): all must happen, in this order.
    Serial(Vec<Symbol>),
    /// Conjunction: all must hold on the execution.
    And(Vec<Constraint>),
    /// Disjunction: at least one must hold.
    Or(Vec<Constraint>),
    /// Negation; `CONSTR` is closed under it (Lemma 3.4).
    Not(Box<Constraint>),
}

impl Constraint {
    /// `∇e`.
    pub fn must(e: impl Into<Symbol>) -> Constraint {
        Constraint::Must(e.into())
    }

    /// `¬∇e`.
    pub fn must_not(e: impl Into<Symbol>) -> Constraint {
        Constraint::MustNot(e.into())
    }

    /// The order constraint `∇a ⊗ ∇b`: both occur, `a` before `b`. Note
    /// this is *stronger* than Klein's order constraint, which is
    /// conditional on both events occurring (see [`Constraint::klein_order`]).
    pub fn order(a: impl Into<Symbol>, b: impl Into<Symbol>) -> Constraint {
        Constraint::Serial(vec![a.into(), b.into()])
    }

    /// A serial constraint `∇e₁ ⊗ ⋯ ⊗ ∇eₙ`. Lengths 0/1 collapse to the
    /// equivalent trivial/primitive forms.
    pub fn serial(events: Vec<Symbol>) -> Constraint {
        match events.len() {
            0 => Constraint::And(Vec::new()), // vacuously true
            1 => Constraint::Must(events[0]),
            _ => Constraint::Serial(events),
        }
    }

    /// Conjunction.
    pub fn and(cs: Vec<Constraint>) -> Constraint {
        let mut out = Vec::with_capacity(cs.len());
        for c in cs {
            match c {
                Constraint::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        if out.len() == 1 {
            out.pop().expect("len checked")
        } else {
            Constraint::And(out)
        }
    }

    /// Disjunction.
    pub fn or(cs: Vec<Constraint>) -> Constraint {
        let mut out = Vec::with_capacity(cs.len());
        for c in cs {
            match c {
                Constraint::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        if out.len() == 1 {
            out.pop().expect("len checked")
        } else {
            Constraint::Or(out)
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(c: Constraint) -> Constraint {
        Constraint::Not(Box::new(c))
    }

    /// Material implication `c₁ ⇒ c₂ ≡ ¬c₁ ∨ c₂`.
    pub fn implies(premise: Constraint, conclusion: Constraint) -> Constraint {
        Constraint::or(vec![Constraint::not(premise), conclusion])
    }

    // --- The idioms catalogued in §3 -------------------------------------

    /// `∇e ∧ ∇f` — both events must occur, in some order.
    pub fn both(e: impl Into<Symbol>, f: impl Into<Symbol>) -> Constraint {
        Constraint::and(vec![Constraint::must(e), Constraint::must(f)])
    }

    /// `¬∇e ∨ ¬∇f` — `e` and `f` cannot both happen.
    pub fn mutually_exclusive(e: impl Into<Symbol>, f: impl Into<Symbol>) -> Constraint {
        Constraint::or(vec![Constraint::must_not(e), Constraint::must_not(f)])
    }

    /// `¬∇e ∨ (∇e ⊗ ∇f)` — if `e` occurs, `f` must occur later.
    pub fn causes_later(e: impl Into<Symbol>, f: impl Into<Symbol>) -> Constraint {
        let (e, f) = (e.into(), f.into());
        Constraint::or(vec![Constraint::must_not(e), Constraint::order(e, f)])
    }

    /// `¬∇f ∨ (∇e ⊗ ∇f)` — if `f` occurred, `e` must have occurred before.
    pub fn requires_earlier(e: impl Into<Symbol>, f: impl Into<Symbol>) -> Constraint {
        let (e, f) = (e.into(), f.into());
        Constraint::or(vec![Constraint::must_not(f), Constraint::order(e, f)])
    }

    /// Klein's order constraint `¬∇e ∨ ¬∇f ∨ (∇e ⊗ ∇f)` — if both occur,
    /// `e` comes first.
    pub fn klein_order(e: impl Into<Symbol>, f: impl Into<Symbol>) -> Constraint {
        let (e, f) = (e.into(), f.into());
        Constraint::or(vec![
            Constraint::must_not(e),
            Constraint::must_not(f),
            Constraint::order(e, f),
        ])
    }

    /// Klein's existence constraint `¬∇e ∨ ∇f` — if `e` occurs, so does
    /// `f` (before or after).
    pub fn klein_exists(e: impl Into<Symbol>, f: impl Into<Symbol>) -> Constraint {
        Constraint::or(vec![Constraint::must_not(e), Constraint::must(f)])
    }

    /// Every event symbol mentioned by the constraint.
    pub fn events(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_events(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_events(&self, out: &mut Vec<Symbol>) {
        match self {
            Constraint::Must(e) | Constraint::MustNot(e) => out.push(*e),
            Constraint::Serial(es) => out.extend(es.iter().copied()),
            Constraint::And(cs) | Constraint::Or(cs) => {
                for c in cs {
                    c.collect_events(out);
                }
            }
            Constraint::Not(c) => c.collect_events(out),
        }
    }

    /// Number of connective/primitive nodes — the constraint-size measure.
    pub fn size(&self) -> usize {
        match self {
            Constraint::Must(_) | Constraint::MustNot(_) => 1,
            Constraint::Serial(es) => es.len(),
            Constraint::And(cs) | Constraint::Or(cs) => {
                1 + cs.iter().map(Constraint::size).sum::<usize>()
            }
            Constraint::Not(c) => 1 + c.size(),
        }
    }

    /// Normalizes to the disjunctive normal form of Corollary 3.5.
    pub fn normalize(&self) -> NormalForm {
        normalize(self)
    }

    /// True if the constraint is an *existence* constraint — built from
    /// primitives with `∧`/`∨` only (footnote 5). The NP-hardness of
    /// Proposition 4.1 already holds for this subset.
    pub fn is_existence(&self) -> bool {
        match self {
            Constraint::Must(_) | Constraint::MustNot(_) => true,
            Constraint::Serial(_) => false,
            Constraint::And(cs) | Constraint::Or(cs) => cs.iter().all(Constraint::is_existence),
            Constraint::Not(c) => c.is_existence(),
        }
    }

    /// True if the constraint is an *order* constraint — no `∨` anywhere
    /// (footnote 6) and negation-free. For this subset the consistency
    /// problem is polynomial.
    pub fn is_order_only(&self) -> bool {
        match self {
            Constraint::Must(_) | Constraint::MustNot(_) | Constraint::Serial(_) => true,
            Constraint::And(cs) => cs.iter().all(Constraint::is_order_only),
            Constraint::Or(_) | Constraint::Not(_) => false,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write(c: &Constraint, parent_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            // or=0 < and=1 < atoms
            let p = match c {
                Constraint::Or(_) => 0,
                Constraint::And(_) => 1,
                _ => 2,
            };
            let parens = p < 2 && p < parent_prec;
            if parens {
                write!(f, "(")?;
            }
            match c {
                Constraint::Must(e) => write!(f, "exists({e})")?,
                Constraint::MustNot(e) => write!(f, "absent({e})")?,
                Constraint::Serial(es) => {
                    write!(f, "serial(")?;
                    for (i, e) in es.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")?;
                }
                Constraint::And(cs) => {
                    if cs.is_empty() {
                        write!(f, "true")?;
                    }
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " and ")?;
                        }
                        write(c, p, f)?;
                    }
                }
                Constraint::Or(cs) => {
                    if cs.is_empty() {
                        write!(f, "false")?;
                    }
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " or ")?;
                        }
                        write(c, p, f)?;
                    }
                }
                Constraint::Not(c) => {
                    write!(f, "not(")?;
                    write(c, 0, f)?;
                    write!(f, ")")?;
                }
            }
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        write(self, 0, f)
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

// ---------------------------------------------------------------------------
// Normal form (Corollary 3.5)
// ---------------------------------------------------------------------------

/// A basic constraint of the normal form: a primitive, or an order
/// constraint over two positive primitives.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Basic {
    /// `∇e`.
    Must(Symbol),
    /// `¬∇e`.
    MustNot(Symbol),
    /// `∇a ⊗ ∇b`.
    Order(Symbol, Symbol),
}

impl fmt::Display for Basic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Basic::Must(e) => write!(f, "exists({e})"),
            Basic::MustNot(e) => write!(f, "absent({e})"),
            Basic::Order(a, b) => write!(f, "before({a}, {b})"),
        }
    }
}

impl fmt::Debug for Basic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A conjunction of basics — one `∧ⱼ serialᵢⱼ` block of the normal form.
pub type Conjunct = Vec<Basic>;

/// The normal form `∨ᵢ ∧ⱼ basicᵢⱼ` of Corollary 3.5.
///
/// The number of disjuncts is the `d` of Theorem 5.11: `Apply` multiplies
/// the goal by at most `d` per constraint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NormalForm {
    /// The disjuncts; an execution satisfies the constraint iff it
    /// satisfies every basic of at least one disjunct. An empty disjunct
    /// list denotes the unsatisfiable constraint; a list containing an
    /// empty conjunct denotes the trivially true one.
    pub disjuncts: Vec<Conjunct>,
}

impl NormalForm {
    /// The trivially true constraint.
    pub fn trivial() -> NormalForm {
        NormalForm {
            disjuncts: vec![Vec::new()],
        }
    }

    /// The unsatisfiable constraint.
    pub fn unsat() -> NormalForm {
        NormalForm {
            disjuncts: Vec::new(),
        }
    }

    /// The `d` of Theorem 5.11 for this constraint.
    pub fn disjunct_count(&self) -> usize {
        self.disjuncts.len()
    }

    /// Reconstructs an equivalent [`Constraint`] from the normal form.
    pub fn to_constraint(&self) -> Constraint {
        Constraint::or(
            self.disjuncts
                .iter()
                .map(|conj| {
                    Constraint::and(
                        conj.iter()
                            .map(|b| match *b {
                                Basic::Must(e) => Constraint::Must(e),
                                Basic::MustNot(e) => Constraint::MustNot(e),
                                Basic::Order(a, bb) => Constraint::Serial(vec![a, bb]),
                            })
                            .collect(),
                    )
                })
                .collect(),
        )
    }
}

/// Pushes negation down to primitives (Lemma 3.4). The result contains no
/// `Not` nodes.
pub fn push_negation(c: &Constraint) -> Constraint {
    fn pos(c: &Constraint) -> Constraint {
        match c {
            Constraint::Must(_) | Constraint::MustNot(_) | Constraint::Serial(_) => c.clone(),
            Constraint::And(cs) => Constraint::and(cs.iter().map(pos).collect()),
            Constraint::Or(cs) => Constraint::or(cs.iter().map(pos).collect()),
            Constraint::Not(inner) => neg(inner),
        }
    }
    fn neg(c: &Constraint) -> Constraint {
        match c {
            Constraint::Must(e) => Constraint::MustNot(*e),
            Constraint::MustNot(e) => Constraint::Must(*e),
            // De Morgan (valid in CTR, Lemma 3.4).
            Constraint::And(cs) => Constraint::or(cs.iter().map(neg).collect()),
            Constraint::Or(cs) => Constraint::and(cs.iter().map(neg).collect()),
            Constraint::Not(inner) => pos(inner),
            Constraint::Serial(es) => {
                // Split first (Prop 3.3): ∇e₁⊗⋯⊗∇eₙ ≡ ∧ᵢ (∇eᵢ ⊗ ∇eᵢ₊₁),
                // then negate the conjunction; the negation of a binary
                // order constraint is ¬∇a ∨ ¬∇b ∨ (∇b ⊗ ∇a) under the
                // unique-event assumptions (2).
                let pairs: Vec<Constraint> = es
                    .windows(2)
                    .map(|w| {
                        Constraint::or(vec![
                            Constraint::MustNot(w[0]),
                            Constraint::MustNot(w[1]),
                            Constraint::Serial(vec![w[1], w[0]]),
                        ])
                    })
                    .collect();
                Constraint::or(pairs)
            }
        }
    }
    pos(c)
}

/// Splits serial constraints into binary order constraints
/// (Proposition 3.3): `∇e₁ ⊗ ∇e₂ ⊗ s ≡ (∇e₁ ⊗ ∇e₂) ∧ (∇e₂ ⊗ s)`.
/// Requires a negation-free constraint (run [`push_negation`] first).
pub fn split_serials(c: &Constraint) -> Constraint {
    match c {
        Constraint::Must(_) | Constraint::MustNot(_) => c.clone(),
        Constraint::Serial(es) => {
            if es.len() <= 2 {
                c.clone()
            } else {
                Constraint::and(
                    es.windows(2)
                        .map(|w| Constraint::Serial(vec![w[0], w[1]]))
                        .collect(),
                )
            }
        }
        Constraint::And(cs) => Constraint::and(cs.iter().map(split_serials).collect()),
        Constraint::Or(cs) => Constraint::or(cs.iter().map(split_serials).collect()),
        Constraint::Not(_) => unreachable!("split_serials requires negation-free input"),
    }
}

/// Computes the normal form of Corollary 3.5: negation pushed in, serial
/// constraints split, and the result distributed into `∨ᵢ ∧ⱼ basicᵢⱼ`.
///
/// Disjuncts are deduplicated; a disjunct containing both `∇e` and `¬∇e`
/// is dropped as unsatisfiable, and `∇e` is absorbed by an order
/// constraint mentioning `e` in the same conjunct.
pub fn normalize(c: &Constraint) -> NormalForm {
    let flat = split_serials(&push_negation(c));

    fn dnf(c: &Constraint) -> Vec<Conjunct> {
        match c {
            Constraint::Must(e) => vec![vec![Basic::Must(*e)]],
            Constraint::MustNot(e) => vec![vec![Basic::MustNot(*e)]],
            Constraint::Serial(es) => {
                debug_assert_eq!(es.len(), 2, "serials were split");
                vec![vec![Basic::Order(es[0], es[1])]]
            }
            Constraint::Or(cs) => cs.iter().flat_map(dnf).collect(),
            Constraint::And(cs) => {
                let mut acc: Vec<Conjunct> = vec![Vec::new()];
                for child in cs {
                    let child_d = dnf(child);
                    let mut next = Vec::with_capacity(acc.len() * child_d.len());
                    for base in &acc {
                        for extension in &child_d {
                            let mut merged = base.clone();
                            merged.extend(extension.iter().copied());
                            next.push(merged);
                        }
                    }
                    acc = next;
                }
                acc
            }
            Constraint::Not(_) => unreachable!("negation was pushed in"),
        }
    }

    let mut disjuncts: Vec<Conjunct> = Vec::new();
    'outer: for mut conj in dnf(&flat) {
        conj.sort_unstable();
        conj.dedup();
        // Drop conjuncts with an internal contradiction, and `Must(e)`
        // entries subsumed by an order constraint on `e`.
        let mut keep: Vec<Basic> = Vec::with_capacity(conj.len());
        for b in &conj {
            match *b {
                Basic::Must(e) => {
                    let contradicted = conj
                        .iter()
                        .any(|o| matches!(o, Basic::MustNot(x) if *x == e));
                    if contradicted {
                        continue 'outer;
                    }
                    let subsumed = conj
                        .iter()
                        .any(|o| matches!(o, Basic::Order(a, bb) if *a == e || *bb == e));
                    if !subsumed {
                        keep.push(*b);
                    }
                }
                Basic::MustNot(e) => {
                    let contradicted = conj.iter().any(|o| {
                        matches!(o, Basic::Must(x) if *x == e)
                            || matches!(o, Basic::Order(a, bb) if *a == e || *bb == e)
                    });
                    if contradicted {
                        continue 'outer;
                    }
                    keep.push(*b);
                }
                Basic::Order(a, bb) => {
                    if a == bb {
                        // ∇a ⊗ ∇a needs a to occur twice: impossible for
                        // unique-event goals.
                        continue 'outer;
                    }
                    let reversed = conj
                        .iter()
                        .any(|o| matches!(o, Basic::Order(x, y) if *x == bb && *y == a));
                    if reversed {
                        continue 'outer;
                    }
                    keep.push(*b);
                }
            }
        }
        if !disjuncts.contains(&keep) {
            disjuncts.push(keep);
        }
    }
    NormalForm { disjuncts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    #[test]
    fn klein_order_normal_form_has_three_disjuncts() {
        let nf = Constraint::klein_order("e", "f").normalize();
        assert_eq!(nf.disjunct_count(), 3);
        assert!(nf.disjuncts.contains(&vec![Basic::MustNot(sym("e"))]));
        assert!(nf.disjuncts.contains(&vec![Basic::MustNot(sym("f"))]));
        assert!(nf
            .disjuncts
            .contains(&vec![Basic::Order(sym("e"), sym("f"))]));
    }

    #[test]
    fn double_negation_cancels() {
        let c = Constraint::not(Constraint::not(Constraint::must("e")));
        assert_eq!(push_negation(&c), Constraint::must("e"));
    }

    #[test]
    fn negated_order_unfolds_per_lemma_3_4() {
        // ¬(∇e₁ ⊗ ∇e₂) ≡ ¬∇e₁ ∨ ¬∇e₂ ∨ (∇e₂ ⊗ ∇e₁)
        let c = Constraint::not(Constraint::order("e1", "e2"));
        let nf = c.normalize();
        assert_eq!(nf.disjunct_count(), 3);
        assert!(nf
            .disjuncts
            .contains(&vec![Basic::Order(sym("e2"), sym("e1"))]));
    }

    #[test]
    fn serial_splits_into_adjacent_pairs() {
        let c = Constraint::serial(vec![sym("a"), sym("b"), sym("c"), sym("d")]);
        let split = split_serials(&c);
        assert_eq!(
            split,
            Constraint::And(vec![
                Constraint::Serial(vec![sym("a"), sym("b")]),
                Constraint::Serial(vec![sym("b"), sym("c")]),
                Constraint::Serial(vec![sym("c"), sym("d")]),
            ])
        );
    }

    #[test]
    fn negated_long_serial_is_in_constr() {
        // ¬(∇e ⊗ ∇f ⊗ ∇g): "if e then f happens, g cannot happen later".
        let c = Constraint::not(Constraint::serial(vec![sym("e"), sym("f"), sym("g")]));
        let nf = c.normalize();
        // ¬((e<f) ∧ (f<g)) = ¬(e<f) ∨ ¬(f<g) → 3 + 3 disjuncts, of which
        // `absent(f)` appears in both and is deduplicated.
        assert_eq!(nf.disjunct_count(), 5);
    }

    #[test]
    fn contradictory_conjunct_is_pruned() {
        let c = Constraint::and(vec![Constraint::must("e"), Constraint::must_not("e")]);
        assert_eq!(c.normalize(), NormalForm::unsat());
    }

    #[test]
    fn must_subsumed_by_order_is_dropped() {
        let c = Constraint::and(vec![Constraint::must("a"), Constraint::order("a", "b")]);
        let nf = c.normalize();
        assert_eq!(nf.disjuncts, vec![vec![Basic::Order(sym("a"), sym("b"))]]);
    }

    #[test]
    fn mustnot_contradicts_order_on_same_event() {
        let c = Constraint::and(vec![Constraint::must_not("a"), Constraint::order("a", "b")]);
        assert_eq!(c.normalize(), NormalForm::unsat());
    }

    #[test]
    fn opposite_orders_are_unsat() {
        let c = Constraint::and(vec![
            Constraint::order("a", "b"),
            Constraint::order("b", "a"),
        ]);
        assert_eq!(c.normalize(), NormalForm::unsat());
    }

    #[test]
    fn reflexive_order_is_unsat() {
        assert_eq!(Constraint::order("a", "a").normalize(), NormalForm::unsat());
    }

    #[test]
    fn implies_is_not_or() {
        let c = Constraint::implies(Constraint::must("e"), Constraint::must("f"));
        let nf = c.normalize();
        assert_eq!(nf.disjunct_count(), 2);
        assert!(nf.disjuncts.contains(&vec![Basic::MustNot(sym("e"))]));
        assert!(nf.disjuncts.contains(&vec![Basic::Must(sym("f"))]));
    }

    #[test]
    fn normal_form_round_trips_through_constraint() {
        let c = Constraint::klein_order("x", "y");
        let nf = c.normalize();
        assert_eq!(nf.to_constraint().normalize(), nf);
    }

    #[test]
    fn existence_and_order_classification() {
        assert!(Constraint::klein_exists("a", "b").is_existence());
        assert!(!Constraint::klein_order("a", "b").is_existence());
        assert!(Constraint::order("a", "b").is_order_only());
        assert!(
            Constraint::and(vec![Constraint::order("a", "b"), Constraint::must("c")])
                .is_order_only()
        );
        assert!(!Constraint::klein_order("a", "b").is_order_only());
    }

    #[test]
    fn trivial_and_unsat_forms() {
        assert_eq!(
            Constraint::serial(vec![]).normalize(),
            NormalForm::trivial()
        );
        assert_eq!(NormalForm::trivial().disjunct_count(), 1);
        assert_eq!(NormalForm::unsat().disjunct_count(), 0);
    }

    #[test]
    fn events_are_collected_and_deduped() {
        let c = Constraint::klein_order("a", "b");
        assert_eq!(c.events(), vec![sym("a"), sym("b")]);
    }

    #[test]
    fn display_is_readable() {
        let c = Constraint::klein_exists("e", "f");
        assert_eq!(c.to_string(), "absent(e) or exists(f)");
        let k = Constraint::klein_order("e", "f");
        assert_eq!(k.to_string(), "absent(e) or absent(f) or serial(e, f)");
    }

    #[test]
    fn duplicate_disjuncts_are_removed() {
        let c = Constraint::or(vec![Constraint::must("e"), Constraint::must("e")]);
        assert_eq!(c.normalize().disjunct_count(), 1);
    }
}
