//! Timer events as *names*, not new goal forms.
//!
//! The timer surface syntax (`after(ev, 30s)`, `deadline(ev, 24h)`,
//! `every(ev, 5m)`) compiles into ordinary `send(ξ)`/`receive(ξ)`
//! channel goals plus one synthetic **tick event** per timer — an
//! ordinary [`crate::goal::Goal::Atom`] whose *name* carries the timer
//! metadata. Verification, the tabled [`crate::memo::Analyzer`], the
//! journal, and the wire protocol therefore see nothing new: a tick is
//! an event like any other, and every layer that needs to know "this
//! event is a timer due `d` after instance start" recovers that fact by
//! parsing the name with [`parse_tick`].
//!
//! The naming scheme is `<base>@after<ms>` / `<base>@deadline<ms>`
//! where `<ms>` is the delay in decimal milliseconds. `<base>` may
//! itself contain `@` (the parser's `repeat` sugar mints `poll@1`
//! style occurrence names), so parsing splits on the *last* `@`.
//! `every(ev, d)` is pure surface sugar: the k-th occurrence of the
//! family gets an `after` gate at `k·d`, so no `every` tag exists at
//! this layer.

use std::fmt;

/// What a tick event means for the event it guards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TimerKind {
    /// `after(ev, d)`: `ev` becomes eligible only once the tick has
    /// fired — the tick *gates* the event (tick ⊗-before a receive
    /// that guards `ev`).
    After,
    /// `deadline(ev, d)`: the tick races `ev` — firing `ev` cancels
    /// the tick (structurally: a send taken by the watchdog's receive
    /// branch), while an expired tick fires as an ordinary event that
    /// enactment escalates into compensation.
    Deadline,
}

impl TimerKind {
    /// The tag fragment used in tick names.
    pub fn tag(self) -> &'static str {
        match self {
            TimerKind::After => "after",
            TimerKind::Deadline => "deadline",
        }
    }
}

impl fmt::Display for TimerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A parsed tick name: the guarded base event, the timer kind, and the
/// delay from instance start in milliseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tick<'a> {
    /// The event the timer guards (`poll` in `poll@deadline300000`).
    pub base: &'a str,
    /// Gate (`after`) or watchdog (`deadline`).
    pub kind: TimerKind,
    /// Delay from instance start, in milliseconds.
    pub delay_ms: u64,
}

/// Renders the tick-event name for a timer on `base` of `kind` due
/// `delay_ms` after instance start. Inverse of [`parse_tick`].
pub fn tick_name(base: &str, kind: TimerKind, delay_ms: u64) -> String {
    format!("{base}@{}{delay_ms}", kind.tag())
}

/// Parses a tick-event name minted by [`tick_name`]; returns `None`
/// for ordinary event names. Splits on the *last* `@` so bases that
/// themselves contain `@` (occurrence names like `poll@1`) round-trip.
pub fn parse_tick(name: &str) -> Option<Tick<'_>> {
    let (base, tag) = name.rsplit_once('@')?;
    if base.is_empty() {
        return None;
    }
    let (kind, digits) = if let Some(d) = tag.strip_prefix("after") {
        (TimerKind::After, d)
    } else if let Some(d) = tag.strip_prefix("deadline") {
        (TimerKind::Deadline, d)
    } else {
        return None;
    };
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let delay_ms = digits.parse().ok()?;
    Some(Tick {
        base,
        kind,
        delay_ms,
    })
}

/// Renders a millisecond delay the way the surface syntax writes it:
/// exact in the largest unit that divides it (`30s`, `24h`, `150ms`).
pub fn render_delay(ms: u64) -> String {
    const HOUR: u64 = 3_600_000;
    const MIN: u64 = 60_000;
    const SEC: u64 = 1_000;
    if ms > 0 && ms.is_multiple_of(HOUR) {
        format!("{}h", ms / HOUR)
    } else if ms > 0 && ms.is_multiple_of(MIN) {
        format!("{}m", ms / MIN)
    } else if ms > 0 && ms.is_multiple_of(SEC) {
        format!("{}s", ms / SEC)
    } else {
        format!("{ms}ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_names_round_trip() {
        for (base, kind, ms) in [
            ("pay", TimerKind::After, 30_000),
            ("publish", TimerKind::Deadline, 86_400_000),
            ("poll@2", TimerKind::After, 1),
            ("a@b@c", TimerKind::Deadline, 0),
        ] {
            let name = tick_name(base, kind, ms);
            let tick = parse_tick(&name).expect(&name);
            assert_eq!((tick.base, tick.kind, tick.delay_ms), (base, kind, ms));
        }
    }

    #[test]
    fn ordinary_names_are_not_ticks() {
        for name in [
            "pay",
            "poll@1",
            "x@afterparty",
            "x@after12x",
            "@after5",
            "after5",
            "x@deadline",
            "x@every5",
        ] {
            assert_eq!(parse_tick(name), None, "{name}");
        }
    }

    #[test]
    fn delays_render_in_the_largest_exact_unit() {
        assert_eq!(render_delay(30_000), "30s");
        assert_eq!(render_delay(86_400_000), "24h");
        assert_eq!(render_delay(300_000), "5m");
        assert_eq!(render_delay(150), "150ms");
        assert_eq!(render_delay(0), "0ms");
        assert_eq!(render_delay(90_000), "90s");
    }
}
