//! The `Excise` transformation (paper, §5, "Knots").
//!
//! After `Apply` compiles order constraints into `send(ξ)`/`receive(ξ)`
//! pairs, the resulting goal may contain **knots** — sub-formulas where the
//! synchronization primitives wait on each other cyclically, so no
//! execution can complete (Example 5.7). Model-theoretically such a
//! formula is equivalent to `¬path`. `Excise` rewrites a compiled goal
//! into an equivalent knot-free goal, or into `¬path` if the whole
//! specification is inconsistent; on failure it also produces `G_fail`,
//! the smallest subpart of the workflow that is inconsistent with the
//! constraints, as designer feedback.
//!
//! # Algorithm
//!
//! The implementation is the "variant of the proof theory" the paper
//! alludes to, phrased as a static analysis:
//!
//! 1. `∨` at the root distributes: `Excise(A ∨ B) = Excise(A) ∨ Excise(B)`.
//!    This is exact — atoms in different branches of one `∨` never
//!    co-occur in an execution.
//! 2. For a choice-rooted-free region, collect every `send`/`receive`
//!    occurrence together with its tree path. The path determines, for any
//!    two occurrences, whether they can **co-occur** (their lowest common
//!    ancestor is not an `∨`) and whether one **precedes** the other in
//!    the series-parallel order (the LCA is a `⊗`). `⊙`-isolated blocks
//!    containing channel operations become atomic super-nodes with
//!    begin/end events, so cross-boundary waits respect atomicity.
//! 3. Build the dependency graph: series-parallel precedence edges plus
//!    channel edges `send(ξ) → receive(ξ)` between co-occurring pairs.
//!    A **cycle** whose nodes are all unconditional (not under any `∨`)
//!    dooms every execution: the region rewrites to `¬path`. A cycle
//!    through conditional occurrences is resolved *exactly* by expanding
//!    one participating `∨` node into its branches and recursing — the
//!    goal is equivalent to the disjunction of its branch-instantiations.
//! 4. A `receive` with no co-occurrence-guaranteed `send` (no compatible
//!    send whose choice-guards are implied by the receive's) is a dead
//!    wait and is resolved the same way.
//!
//! For goals produced by `Apply` on unique-event inputs, every execution
//! containing a `receive(ξ)` also contains the matching `send(ξ)` by
//! construction, and each channel has one send and one receive per
//! execution; on this class the analysis needs no expansion beyond the
//! knot-entangled choices and runs in time proportional to the goal size
//! (Theorem 5.11) — measured in experiment E2.

use crate::apply::Parallelism;
use crate::goal::{Channel, Goal};
use std::collections::BTreeSet;
use std::fmt;

/// Why a region was rewritten to `¬path`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KnotKind {
    /// A cyclic wait among the listed channels.
    CyclicWait(Vec<Channel>),
    /// A `receive` on the channel that no execution can ever satisfy.
    DeadReceive(Channel),
}

/// Designer feedback for an inconsistent (sub)workflow: the paper's
/// `G_fail`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KnotReport {
    /// The nature of the knot.
    pub kind: KnotKind,
    /// The smallest subgoal spanning the knot, before it was excised.
    pub subgoal: Goal,
}

impl fmt::Display for KnotReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            KnotKind::CyclicWait(chs) => {
                write!(f, "cyclic wait among channels [")?;
                for (i, c) in chs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, "] in `{}`", self.subgoal)
            }
            KnotKind::DeadReceive(c) => {
                write!(
                    f,
                    "receive({c}) can never be satisfied in `{}`",
                    self.subgoal
                )
            }
        }
    }
}

/// Outcome of [`excise_with_diagnostics`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExciseResult {
    /// The knot-free equivalent goal (possibly `¬path`).
    pub goal: Goal,
    /// One report per excised knot.
    pub reports: Vec<KnotReport>,
    /// False when the region contained co-occurring multiple sends on one
    /// channel — a shape `Apply` never produces — for which knot-freeness
    /// is not statically guaranteed and the run-time scheduler must be
    /// prepared to backtrack.
    pub guaranteed_knot_free: bool,
}

/// `Excise(G)`: rewrites `G` into an equivalent knot-free goal, or
/// `¬path`.
pub fn excise(goal: &Goal) -> Goal {
    excise_with_diagnostics(goal).goal
}

/// [`excise`] with `G_fail` diagnostics. Equivalent to
/// [`excise_with_diagnostics_par`] at [`Parallelism::Auto`].
pub fn excise_with_diagnostics(goal: &Goal) -> ExciseResult {
    excise_with_diagnostics_par(goal, Parallelism::Auto)
}

/// [`excise_with_diagnostics`] with an explicit parallelism mode.
///
/// A goal whose root is `∨` excises each branch independently (step 1 of
/// the algorithm — the distribution is exact), so the branches fan out
/// across threads. Branch results, knot reports, and the knot-freeness
/// flag are merged back in branch order, making the output identical
/// across modes.
pub fn excise_with_diagnostics_par(goal: &Goal, par: Parallelism) -> ExciseResult {
    let mut reports = Vec::new();
    let mut guaranteed = true;
    let out = match goal {
        Goal::Or(gs) if should_fan_out(par, goal, gs.len()) => {
            crate::goal::or(excise_branches_parallel(gs, &mut reports, &mut guaranteed))
        }
        _ => excise_inner(goal, &mut reports, &mut guaranteed),
    };
    ExciseResult {
        goal: out.simplify(),
        reports,
        guaranteed_knot_free: guaranteed,
    }
}

fn should_fan_out(par: Parallelism, goal: &Goal, branches: usize) -> bool {
    match par {
        Parallelism::Never => false,
        Parallelism::Always => branches > 1,
        Parallelism::Auto => branches > 1 && goal.size() >= 1 << 11,
    }
}

/// Excises the branches of a root `∨` on a pool of scoped threads: the
/// branch list is split into contiguous chunks, one worker per chunk,
/// each collecting its own reports; chunk results are then concatenated
/// in order so the merged output matches the sequential path exactly.
fn excise_branches_parallel(
    gs: &[Goal],
    reports: &mut Vec<KnotReport>,
    guaranteed: &mut bool,
) -> Vec<Goal> {
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(gs.len());
    let chunk_len = gs.len().div_ceil(workers);
    let chunk_results: Vec<(Vec<Goal>, Vec<KnotReport>, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = gs
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut chunk_reports = Vec::new();
                    let mut chunk_guaranteed = true;
                    let excised: Vec<Goal> = chunk
                        .iter()
                        .map(|g| excise_inner(g, &mut chunk_reports, &mut chunk_guaranteed))
                        .collect();
                    (excised, chunk_reports, chunk_guaranteed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("excise worker panicked"))
            .collect()
    });
    let mut branches = Vec::with_capacity(gs.len());
    for (excised, chunk_reports, chunk_guaranteed) in chunk_results {
        branches.extend(excised);
        reports.extend(chunk_reports);
        *guaranteed &= chunk_guaranteed;
    }
    branches
}

pub(crate) fn excise_inner(
    goal: &Goal,
    reports: &mut Vec<KnotReport>,
    guaranteed: &mut bool,
) -> Goal {
    match goal {
        // Exact distribution at a disjunctive root.
        Goal::Or(gs) => crate::goal::or(
            gs.iter()
                .map(|g| excise_inner(g, reports, guaranteed))
                .collect(),
        ),
        _ => excise_region(goal, reports, guaranteed),
    }
}

// ---------------------------------------------------------------------------
// Occurrence collection
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum NodeKind {
    Seq,
    Conc,
    Or,
    Iso,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum OccKind {
    Send(Channel),
    Recv(Channel),
    /// Start of an `⊙`-block containing channel operations; `usize`
    /// identifies the block.
    BlockBegin(usize),
    /// End of that block.
    BlockEnd(usize),
}

#[derive(Clone, Debug)]
struct Occ {
    kind: OccKind,
    /// Child indices from the region root down to the occurrence.
    path: Vec<usize>,
    /// Connective kind of each ancestor, aligned with `path`.
    ctx: Vec<NodeKind>,
    /// Enclosing `⊙`-block ids, outermost first.
    blocks: Vec<usize>,
}

impl Occ {
    /// Choice guards: `(depth, branch)` for each `∨` ancestor.
    fn guards(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.ctx
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == NodeKind::Or)
            .map(|(d, _)| (d, self.path[d]))
    }

    fn is_unguarded(&self) -> bool {
        self.guards().next().is_none()
    }
}

/// First index where the two paths diverge, if any.
fn divergence(a: &Occ, b: &Occ) -> Option<usize> {
    let n = a.path.len().min(b.path.len());
    (0..n).find(|&i| a.path[i] != b.path[i])
}

/// True if some execution can contain both occurrences.
fn compatible(a: &Occ, b: &Occ) -> bool {
    match divergence(a, b) {
        None => true,
        Some(d) => a.ctx[d] != NodeKind::Or,
    }
}

/// True if every execution containing `r` also contains `s`: all of `s`'s
/// choice ancestors lie on the common path prefix (where `r` makes the
/// same choices); any `∨` ancestor of `s` at or below the divergence point
/// is an independent choice that might exclude `s`.
fn guards_implied(s: &Occ, r: &Occ) -> bool {
    let d = divergence(s, r).unwrap_or_else(|| s.path.len().min(r.path.len()));
    !s.ctx[d.min(s.ctx.len())..].contains(&NodeKind::Or)
}

/// True if `a` strictly precedes `b` in the series-parallel order.
fn precedes(a: &Occ, b: &Occ) -> bool {
    match divergence(a, b) {
        Some(d) => a.ctx[d] == NodeKind::Seq && a.path[d] < b.path[d],
        None => false,
    }
}

struct Collector {
    occs: Vec<Occ>,
    next_block: usize,
}

fn collect_occurrences(goal: &Goal) -> Vec<Occ> {
    fn walk(
        goal: &Goal,
        path: &mut Vec<usize>,
        ctx: &mut Vec<NodeKind>,
        blocks: &mut Vec<usize>,
        col: &mut Collector,
    ) {
        match goal {
            Goal::Send(c) => col.occs.push(Occ {
                kind: OccKind::Send(*c),
                path: path.clone(),
                ctx: ctx.clone(),
                blocks: blocks.clone(),
            }),
            Goal::Receive(c) => col.occs.push(Occ {
                kind: OccKind::Recv(*c),
                path: path.clone(),
                ctx: ctx.clone(),
                blocks: blocks.clone(),
            }),
            Goal::Seq(gs) | Goal::Conc(gs) | Goal::Or(gs) => {
                let kind = match goal {
                    Goal::Seq(_) => NodeKind::Seq,
                    Goal::Conc(_) => NodeKind::Conc,
                    _ => NodeKind::Or,
                };
                for (i, g) in gs.iter().enumerate() {
                    path.push(i);
                    ctx.push(kind);
                    walk(g, path, ctx, blocks, col);
                    ctx.pop();
                    path.pop();
                }
            }
            Goal::Isolated(g) => {
                // Only blocks that actually contain channel operations need
                // atomicity super-nodes.
                if !g.channels().is_empty() {
                    let id = col.next_block;
                    col.next_block += 1;
                    col.occs.push(Occ {
                        kind: OccKind::BlockBegin(id),
                        path: path.clone(),
                        ctx: ctx.clone(),
                        blocks: blocks.clone(),
                    });
                    col.occs.push(Occ {
                        kind: OccKind::BlockEnd(id),
                        path: path.clone(),
                        ctx: ctx.clone(),
                        blocks: blocks.clone(),
                    });
                    blocks.push(id);
                    path.push(0);
                    ctx.push(NodeKind::Iso);
                    walk(g, path, ctx, blocks, col);
                    ctx.pop();
                    path.pop();
                    blocks.pop();
                } else {
                    path.push(0);
                    ctx.push(NodeKind::Iso);
                    walk(g, path, ctx, blocks, col);
                    ctx.pop();
                    path.pop();
                }
            }
            // ◇ bodies never execute on the path; their channel operations
            // take no part in scheduling.
            Goal::Possible(_) => {}
            Goal::Atom(_) | Goal::Empty | Goal::NoPath => {}
        }
    }
    let mut col = Collector {
        occs: Vec::new(),
        next_block: 0,
    };
    walk(
        goal,
        &mut Vec::new(),
        &mut Vec::new(),
        &mut Vec::new(),
        &mut col,
    );
    col.occs
}

// ---------------------------------------------------------------------------
// Region analysis
// ---------------------------------------------------------------------------

fn excise_region(goal: &Goal, reports: &mut Vec<KnotReport>, guaranteed: &mut bool) -> Goal {
    let occs = collect_occurrences(goal);
    if occs.is_empty() {
        return goal.clone();
    }

    // --- Dead-receive analysis -------------------------------------------
    for (ri, r) in occs.iter().enumerate() {
        let OccKind::Recv(ch) = r.kind else { continue };
        let compatible_sends: Vec<usize> = occs
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.kind, OccKind::Send(c) if c == ch))
            .filter(|(_, s)| compatible(s, r))
            .map(|(i, _)| i)
            .collect();
        let covered = compatible_sends
            .iter()
            .any(|&si| guards_implied(&occs[si], r));
        if covered {
            continue;
        }
        // Not statically covered: expand a guard to make progress, or
        // declare the region dead if there is nothing left to expand.
        let mut expandable: Option<(usize, usize)> = r.guards().next();
        if expandable.is_none() {
            for &si in &compatible_sends {
                if let Some(g) = occs[si].guards().next() {
                    expandable = Some(g);
                    break;
                }
            }
        }
        match expandable {
            Some((depth, _)) => {
                let prefix = r.path[..depth].to_vec();
                // If the guard came from a send, the prefix must be taken
                // from that occurrence's path.
                let prefix = if r.ctx.get(depth) == Some(&NodeKind::Or) {
                    prefix
                } else {
                    let si = compatible_sends
                        .iter()
                        .copied()
                        .find(|&si| occs[si].ctx.get(depth) == Some(&NodeKind::Or))
                        .expect("guard index originated from a send occurrence");
                    occs[si].path[..depth].to_vec()
                };
                return expand_and_recurse(goal, &prefix, reports, guaranteed);
            }
            None => {
                // The receive occurs in every execution (unguarded) and no
                // send can ever precede it.
                let _ = ri;
                reports.push(KnotReport {
                    kind: KnotKind::DeadReceive(ch),
                    subgoal: subtree_at(goal, &r.path).clone(),
                });
                return Goal::NoPath;
            }
        }
    }

    // --- Cycle analysis ----------------------------------------------------
    // Nodes: occurrences. Edges: SP precedence, channel waits, and
    // ⊙-atomicity, all lifted across block boundaries.
    let n = occs.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];

    let begin_of = |block: usize| -> usize {
        occs.iter()
            .position(|o| o.kind == OccKind::BlockBegin(block))
            .expect("block begin exists")
    };
    let end_of = |block: usize| -> usize {
        occs.iter()
            .position(|o| o.kind == OccKind::BlockEnd(block))
            .expect("block end exists")
    };

    // Structural block edges: begin → member → end.
    for (i, o) in occs.iter().enumerate() {
        for &b in &o.blocks {
            adj[begin_of(b)].push(i);
            adj[i].push(end_of(b));
        }
    }

    // Lift an edge u → v across differing block chains: a wait entering an
    // atomic block defers to its begin; a wait leaving one defers to its
    // end.
    let add_edge = |adj: &mut Vec<Vec<usize>>, u: usize, v: usize| {
        let (bu, bv) = (&occs[u].blocks, &occs[v].blocks);
        let k = bu.iter().zip(bv.iter()).take_while(|(a, b)| a == b).count();
        let src = if bu.len() > k { end_of(bu[k]) } else { u };
        let dst = if bv.len() > k { begin_of(bv[k]) } else { v };
        if src != dst {
            adj[src].push(dst);
        }
    };

    // Detect multi-send channels with co-occurring senders — outside the
    // Apply-produced class; waits become disjunctive and are not modeled.
    let mut disjunctive_channels: BTreeSet<Channel> = BTreeSet::new();
    for (i, a) in occs.iter().enumerate() {
        let OccKind::Send(ca) = a.kind else { continue };
        for b in occs.iter().skip(i + 1) {
            if matches!(b.kind, OccKind::Send(cb) if cb == ca) && compatible(a, b) {
                disjunctive_channels.insert(ca);
            }
        }
    }
    if !disjunctive_channels.is_empty() {
        *guaranteed = false;
    }

    for i in 0..n {
        for j in 0..n {
            if i == j || !compatible(&occs[i], &occs[j]) {
                continue;
            }
            if precedes(&occs[i], &occs[j]) {
                add_edge(&mut adj, i, j);
            }
            if let (OccKind::Send(cs), OccKind::Recv(cr)) = (occs[i].kind, occs[j].kind) {
                if cs == cr && !disjunctive_channels.contains(&cs) {
                    add_edge(&mut adj, i, j);
                }
            }
        }
    }

    match find_cycle(&adj) {
        None => goal.clone(),
        Some(cycle_nodes) => {
            // A knot. Conditional participants are resolved by expanding
            // one of their choices; a fully unconditional cycle kills the
            // region.
            for &i in &cycle_nodes {
                if let Some((depth, _)) = occs[i].guards().next() {
                    let prefix = occs[i].path[..depth].to_vec();
                    return expand_and_recurse(goal, &prefix, reports, guaranteed);
                }
            }
            debug_assert!(cycle_nodes.iter().all(|&i| occs[i].is_unguarded()));
            let channels: Vec<Channel> = cycle_nodes
                .iter()
                .filter_map(|&i| match occs[i].kind {
                    OccKind::Send(c) | OccKind::Recv(c) => Some(c),
                    _ => None,
                })
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            let lca = common_prefix(cycle_nodes.iter().map(|&i| occs[i].path.as_slice()));
            reports.push(KnotReport {
                kind: KnotKind::CyclicWait(channels),
                subgoal: subtree_at(goal, &lca).clone(),
            });
            Goal::NoPath
        }
    }
}

/// Longest common prefix of the given paths.
fn common_prefix<'a>(mut paths: impl Iterator<Item = &'a [usize]>) -> Vec<usize> {
    let first = match paths.next() {
        Some(p) => p.to_vec(),
        None => return Vec::new(),
    };
    paths.fold(first, |acc, p| {
        let k = acc.iter().zip(p.iter()).take_while(|(a, b)| a == b).count();
        acc[..k].to_vec()
    })
}

/// The subtree at a path of child indices.
fn subtree_at<'a>(goal: &'a Goal, path: &[usize]) -> &'a Goal {
    let mut cur = goal;
    for &i in path {
        cur = match cur {
            Goal::Seq(gs) | Goal::Conc(gs) | Goal::Or(gs) => &gs[i],
            Goal::Isolated(g) | Goal::Possible(g) => {
                debug_assert_eq!(i, 0);
                g
            }
            _ => return cur,
        };
    }
    cur
}

/// Replaces the `∨` node at `path` by each of its branches in turn,
/// producing the exact expansion `G ≡ ∨ᵦ G[∨ := branch]`, then excises each
/// variant. The expanded `∨` disappears, so recursion terminates.
fn expand_and_recurse(
    goal: &Goal,
    path: &[usize],
    reports: &mut Vec<KnotReport>,
    guaranteed: &mut bool,
) -> Goal {
    let or_node = subtree_at(goal, path);
    let branches = match or_node {
        Goal::Or(gs) => gs.len(),
        other => unreachable!("expansion target must be a disjunction, got `{other}`"),
    };
    let variants: Vec<Goal> = (0..branches)
        .map(|b| {
            let g = replace_or_at(goal, path, b);
            excise_inner(&g, reports, guaranteed)
        })
        .collect();
    crate::goal::or(variants)
}

/// Rebuilds `goal` with the `∨` at `path` replaced by its `branch`-th child.
fn replace_or_at(goal: &Goal, path: &[usize], branch: usize) -> Goal {
    if path.is_empty() {
        let Goal::Or(gs) = goal else {
            unreachable!("path leads to a disjunction")
        };
        return gs[branch].clone();
    }
    let (head, rest) = (path[0], &path[1..]);
    match goal {
        Goal::Seq(gs) => {
            let mut out = gs.to_vec();
            out[head] = replace_or_at(&gs[head], rest, branch);
            Goal::raw_seq(out)
        }
        Goal::Conc(gs) => {
            let mut out = gs.to_vec();
            out[head] = replace_or_at(&gs[head], rest, branch);
            Goal::raw_conc(out)
        }
        Goal::Or(gs) => {
            let mut out = gs.to_vec();
            out[head] = replace_or_at(&gs[head], rest, branch);
            Goal::raw_or(out)
        }
        Goal::Isolated(g) => Goal::raw_isolated(replace_or_at(g, rest, branch)),
        Goal::Possible(g) => Goal::raw_possible(replace_or_at(g, rest, branch)),
        _ => unreachable!("path descends through an interior node"),
    }
}

/// Returns the nodes of one strongly connected component with ≥ 2 nodes (or
/// a self-loop), if any — iterative Tarjan.
fn find_cycle(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;

    enum Frame {
        Enter(usize),
        Resume(usize, usize),
    }

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame::Enter(start)];
        while let Some(frame) = call.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    call.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut ei) => {
                    let mut descended = false;
                    while ei < adj[v].len() {
                        let w = adj[v][ei];
                        ei += 1;
                        if index[w] == usize::MAX {
                            call.push(Frame::Resume(v, ei));
                            call.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack invariant");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        let self_loop = comp.len() == 1 && adj[comp[0]].contains(&comp[0]);
                        if comp.len() > 1 || self_loop {
                            return Some(comp);
                        }
                    }
                    // Propagate lowlink to the parent frame.
                    if let Some(Frame::Resume(parent, _)) = call.last() {
                        let parent = *parent;
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply;
    use crate::constraints::Constraint;
    use crate::goal::{conc, isolated, or, seq};
    use crate::semantics::event_traces;

    const BUDGET: usize = 200_000;

    fn g(name: &str) -> Goal {
        Goal::atom(name)
    }

    /// Excise must preserve the trace semantics exactly.
    fn assert_excise_equiv(goal: &Goal) {
        let excised = excise(goal);
        assert_eq!(
            event_traces(&excised, BUDGET).unwrap(),
            event_traces(goal, BUDGET).unwrap(),
            "on goal {goal}"
        );
    }

    #[test]
    fn goal_without_channels_is_untouched() {
        let goal = seq(vec![g("a"), or(vec![g("b"), g("c")])]);
        assert_eq!(excise(&goal), goal);
    }

    #[test]
    fn straight_line_knot_is_excised() {
        // receive(ξ) ⊗ β ⊗ α ⊗ send(ξ): the receive waits for a send that
        // can only come later.
        let xi = Channel(0);
        let goal = seq(vec![
            Goal::Receive(xi),
            g("beta"),
            g("alpha"),
            Goal::Send(xi),
        ]);
        let result = excise_with_diagnostics(&goal);
        assert_eq!(result.goal, Goal::NoPath);
        assert_eq!(result.reports.len(), 1);
        assert!(matches!(result.reports[0].kind, KnotKind::CyclicWait(_)));
    }

    #[test]
    fn valid_sync_is_kept() {
        let xi = Channel(0);
        let goal = conc(vec![
            seq(vec![g("a"), Goal::Send(xi)]),
            seq(vec![Goal::Receive(xi), g("b")]),
        ]);
        assert_eq!(excise(&goal), goal);
    }

    #[test]
    fn example_5_7_knot() {
        // G = γ ⊗ (η ∨ (α | β | η)), constraints c₁: α causes β later,
        // c₂: β causes η later, c₃: if α occurs, η precedes α.
        // Excise(Apply(c₁∧c₂∧c₃, G)) ≡ γ ⊗ η.
        let goal = seq(vec![
            g("gamma"),
            or(vec![g("eta"), conc(vec![g("alpha"), g("beta"), g("eta")])]),
        ]);
        let constraints = [
            Constraint::causes_later("alpha", "beta"),
            Constraint::causes_later("beta", "eta"),
            Constraint::or(vec![
                Constraint::must_not("alpha"),
                Constraint::order("eta", "alpha"),
            ]),
        ];
        let compiled = apply(&constraints, &goal);
        let result = excise_with_diagnostics(&compiled);
        assert_eq!(result.goal, seq(vec![g("gamma"), g("eta")]));
        assert!(
            !result.reports.is_empty(),
            "the α-branch knot must be reported"
        );
    }

    #[test]
    fn two_channel_cross_wait_is_a_knot() {
        let (x1, x2) = (Channel(1), Channel(2));
        let goal = conc(vec![
            seq(vec![Goal::Receive(x1), g("a"), Goal::Send(x2)]),
            seq(vec![Goal::Receive(x2), g("b"), Goal::Send(x1)]),
        ]);
        let result = excise_with_diagnostics(&goal);
        assert_eq!(result.goal, Goal::NoPath);
        match &result.reports[0].kind {
            KnotKind::CyclicWait(chs) => assert_eq!(chs, &vec![x1, x2]),
            other => panic!("expected cyclic wait, got {other:?}"),
        }
    }

    #[test]
    fn knot_in_one_or_branch_prunes_only_that_branch() {
        let xi = Channel(0);
        let knotted = seq(vec![Goal::Receive(xi), g("a"), Goal::Send(xi)]);
        let fine = seq(vec![g("b"), g("c")]);
        let goal = or(vec![knotted, fine.clone()]);
        assert_eq!(excise(&goal), fine);
    }

    #[test]
    fn dead_receive_without_send_is_reported() {
        let xi = Channel(7);
        let goal = seq(vec![g("a"), Goal::Receive(xi)]);
        let result = excise_with_diagnostics(&goal);
        assert_eq!(result.goal, Goal::NoPath);
        assert_eq!(result.reports[0].kind, KnotKind::DeadReceive(xi));
    }

    #[test]
    fn receive_with_send_in_unchosen_branch_prunes_choice() {
        // (a ∨ (b ⊗ send ξ)) ⊗ receive ξ — choosing `a` deadlocks; Excise
        // must keep only the send branch.
        let xi = Channel(0);
        let goal = seq(vec![
            or(vec![g("a"), seq(vec![g("b"), Goal::Send(xi)])]),
            Goal::Receive(xi),
        ]);
        let excised = excise(&goal);
        assert_eq!(
            excised,
            seq(vec![g("b"), Goal::Send(xi), Goal::Receive(xi)])
        );
        assert_excise_equiv(&goal);
    }

    #[test]
    fn guarded_knot_expands_choice() {
        // In branch 0 the receive precedes the send (knot); branch 1 is a
        // plain activity. Both under a ⊗ context so the Or is interior.
        let xi = Channel(0);
        let inner = or(vec![
            seq(vec![Goal::Receive(xi), g("x"), Goal::Send(xi)]),
            g("y"),
        ]);
        let goal = seq(vec![g("pre"), inner, g("post")]);
        assert_eq!(excise(&goal), seq(vec![g("pre"), g("y"), g("post")]));
    }

    #[test]
    fn isolation_blocks_cross_waits() {
        // ⊙(recv ξ ⊗ a) | (send ξ): the sibling cannot interleave into the
        // atomic block, but it can run entirely before it — no knot.
        let xi = Channel(0);
        let goal = conc(vec![
            isolated(seq(vec![Goal::Receive(xi), g("a")])),
            Goal::Send(xi),
        ]);
        assert_eq!(excise(&goal), goal);
        assert_excise_equiv(&goal);
    }

    #[test]
    fn isolation_atomicity_creates_knot() {
        // Block B = ⊙(send ξ₁ ⊗ recv ξ₂); sibling = recv ξ₁ ⊗ send ξ₂.
        // The sibling needs ξ₁ (produced inside B) before it can produce
        // ξ₂ (needed inside B) — impossible without interleaving into B.
        let (x1, x2) = (Channel(1), Channel(2));
        let goal = conc(vec![
            isolated(seq(vec![Goal::Send(x1), Goal::Receive(x2)])),
            seq(vec![Goal::Receive(x1), Goal::Send(x2)]),
        ]);
        let result = excise_with_diagnostics(&goal);
        assert_eq!(result.goal, Goal::NoPath);
        assert_excise_equiv(&goal);
    }

    #[test]
    fn multi_send_goals_are_flagged_not_guaranteed() {
        let xi = Channel(0);
        let goal = conc(vec![
            Goal::Send(xi),
            Goal::Send(xi),
            seq(vec![Goal::Receive(xi), g("b")]),
        ]);
        let result = excise_with_diagnostics(&goal);
        assert!(!result.guaranteed_knot_free);
        // Still executable — nothing is pruned.
        assert!(!result.goal.is_nopath());
    }

    #[test]
    fn compiled_workflows_never_have_dead_receives() {
        // Apply guarantees send/receive pairing per execution; excising any
        // compiled goal preserves traces exactly.
        let goal = seq(vec![
            g("s"),
            conc(vec![or(vec![g("a"), g("x")]), or(vec![g("b"), g("y")])]),
            g("t"),
        ]);
        for constraints in [
            vec![Constraint::order("a", "b")],
            vec![Constraint::klein_order("b", "a")],
            vec![
                Constraint::causes_later("x", "y"),
                Constraint::klein_exists("a", "b"),
            ],
        ] {
            let compiled = apply(&constraints, &goal);
            assert_excise_equiv(&compiled);
        }
    }

    #[test]
    fn excise_is_idempotent() {
        let goal = seq(vec![
            or(vec![g("a"), seq(vec![g("b"), Goal::Send(Channel(0))])]),
            Goal::Receive(Channel(0)),
        ]);
        let once = excise(&goal);
        assert_eq!(excise(&once), once);
    }

    #[test]
    fn tarjan_detects_self_loop() {
        let adj = vec![vec![0]];
        assert_eq!(find_cycle(&adj), Some(vec![0]));
    }

    #[test]
    fn tarjan_on_dag_finds_nothing() {
        let adj = vec![vec![1, 2], vec![2], vec![]];
        assert_eq!(find_cycle(&adj), None);
    }
}
